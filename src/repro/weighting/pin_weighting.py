"""Pin-level criticality helpers.

These are the smooth, pin-level quantities that path-free timing-driven
placers work with.  The Differentiable-TDP-style baseline uses
:func:`smooth_pin_pair_weights` to attract every net arc with a weight that
decays smoothly with the sink pin's slack — all paths are considered
implicitly, but timing information is smoothed rather than taken from
explicit critical paths (the accuracy trade-off the paper discusses).
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.netlist.design import Design
from repro.timing.graph import ArcKind, TimingGraph
from repro.timing.sta import STAResult


def pin_criticality(result: STAResult, *, temperature: float = 0.25) -> np.ndarray:
    """Smooth criticality in [0, 1] per pin from its slack.

    ``sigmoid(-slack / (temperature * |WNS|))``: pins at the WNS level get a
    value near 0.73+, pins with zero slack 0.5, and comfortably passing pins
    approach 0.  The temperature controls how sharply criticality focuses on
    the worst pins.
    """
    scale = max(abs(result.wns), 1e-9) * temperature
    return 1.0 / (1.0 + np.exp(np.clip(result.slack / scale, -60.0, 60.0)))


def smooth_pin_pair_weights(
    design: Design,
    graph: TimingGraph,
    result: STAResult,
    *,
    temperature: float = 0.25,
    threshold: float = 0.05,
) -> Dict[Tuple[int, int], float]:
    """Pin-pair attraction weights over all net arcs from smoothed slacks.

    Returns a mapping ``(driver_pin, sink_pin) -> weight`` for every net arc
    whose sink criticality exceeds ``threshold``.  This is the smoothed,
    path-free counterpart of the paper's extracted-path pin pairs.
    """
    criticality = pin_criticality(result, temperature=temperature)
    net_arc_mask = graph.arc_kind == int(ArcKind.NET)
    crit = criticality[graph.arc_to]
    selected = np.nonzero(net_arc_mask & (crit > threshold))[0]
    weights: Dict[Tuple[int, int], float] = {
        (int(graph.arc_from[a]), int(graph.arc_to[a])): float(crit[a])
        for a in selected
    }
    return weights
