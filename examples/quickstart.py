#!/usr/bin/env python3
"""Quickstart: timing-driven placement of a synthetic design in ~30 lines.

Generates a small superblue-like design, runs the Efficient-TDP flow
(wirelength-driven global placement, periodic critical path extraction,
pin-to-pin attraction with the quadratic loss, Abacus legalization), and
prints the resulting HPWL / TNS / WNS next to a wirelength-only baseline.

Run:  python examples/quickstart.py
"""

from repro.baselines import DreamPlaceBaseline
from repro.benchgen import load_benchmark
from repro.core import EfficientTDPConfig, EfficientTDPlacer
from repro.placement import PlacementConfig


def main() -> None:
    name = "sb_mini_18"

    # Wirelength-only baseline (DREAMPlace-style).
    baseline_design = load_benchmark(name)
    baseline = DreamPlaceBaseline(
        baseline_design, PlacementConfig(max_iterations=450, seed=1)
    ).run()

    # The paper's flow: path-level timing feedback + pin-to-pin attraction.
    design = load_benchmark(name)
    flow = EfficientTDPlacer(design, EfficientTDPConfig(verbose=False))
    result = flow.run()

    print(f"design: {name}  ({len(design.cells)} cells, "
          f"clock period {design.clock_period:.0f} ps)")
    print(f"{'metric':<10}{'DREAMPlace':>15}{'Efficient-TDP':>16}")
    for metric in ("hpwl", "tns", "wns"):
        base_value = getattr(baseline.evaluation, metric)
        ours_value = getattr(result.evaluation, metric)
        print(f"{metric:<10}{base_value:>15.1f}{ours_value:>16.1f}")
    print(f"pin pairs attracted: {result.num_pin_pairs}")
    print(f"timing iterations:   {len(result.extraction_stats)}")
    print(f"runtime:             {result.runtime_seconds:.1f} s "
          f"(baseline {baseline.runtime_seconds:.1f} s)")


if __name__ == "__main__":
    main()
