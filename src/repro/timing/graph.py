"""Pin-level timing graph.

The graph follows the standard STA formulation the paper relies on
(Sec. II-B): nodes are design pins, directed edges ("timing arcs") are either

* **net arcs** — from a net's driver pin to each of its sink pins, whose delay
  is the Elmore wire delay and therefore depends on the placement, or
* **cell arcs** — from an input pin to an output pin of the same instance,
  whose delay follows the library characterization and the driven load.

Clock distribution is treated as ideal: nets feeding flip-flop clock pins are
excluded from the data graph and every clock pin gets arrival time zero, so
register-to-register paths start at clock-to-q arcs and end at D pins.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.netlist.design import Design, PinRef
from repro.netlist.library import TimingArcSpec


class ArcKind(enum.IntEnum):
    """Type of a timing arc."""

    CELL = 0
    NET = 1


@dataclass(frozen=True)
class Arc:
    """One timing arc (edge) of the graph."""

    index: int
    from_pin: int
    to_pin: int
    kind: ArcKind
    net_index: int = -1
    spec: Optional[TimingArcSpec] = None

    @property
    def is_net_arc(self) -> bool:
        return self.kind is ArcKind.NET


class TimingGraph:
    """Levelized timing DAG over the pins of a finalized design."""

    def __init__(self, design: Design) -> None:
        if not design.finalized:
            raise ValueError("TimingGraph requires a finalized design")
        self.design = design
        self.num_pins = design.num_pins

        self.clock_nets: Set[int] = self._identify_clock_nets()
        self.arcs: List[Arc] = []
        self._build_arcs()

        # Flat arrays for vectorized delay evaluation / propagation.
        self.arc_from = np.array([a.from_pin for a in self.arcs], dtype=np.int64)
        self.arc_to = np.array([a.to_pin for a in self.arcs], dtype=np.int64)
        self.arc_kind = np.array([int(a.kind) for a in self.arcs], dtype=np.int8)
        self.arc_net = np.array([a.net_index for a in self.arcs], dtype=np.int64)

        self._build_adjacency()
        self.level = self._levelize()
        self.max_level = int(self.level.max()) if self.num_pins else 0

        self.startpoints = self._find_startpoints()
        self.endpoints = self._find_endpoints()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _identify_clock_nets(self) -> Set[int]:
        design = self.design
        clock_nets: Set[int] = set()
        for net in design.nets:
            if any(p.lib_pin.is_clock for p in net.sinks):
                clock_nets.add(net.index)
                continue
            driver = net.driver
            if (
                driver is not None
                and driver.instance.is_port
                and design.clock_port is not None
                and driver.instance.name == design.clock_port
            ):
                clock_nets.add(net.index)
        return clock_nets

    def _build_arcs(self) -> None:
        design = self.design
        # Net arcs (excluding clock nets).
        for net in design.nets:
            if net.index in self.clock_nets:
                continue
            driver = net.driver
            if driver is None:
                continue
            for sink in net.sinks:
                self.arcs.append(
                    Arc(
                        index=len(self.arcs),
                        from_pin=driver.index,
                        to_pin=sink.index,
                        kind=ArcKind.NET,
                        net_index=net.index,
                    )
                )
        # Cell arcs.  Group pins by owning instance in a single pass first so
        # arc construction stays linear in design size.
        pins_by_instance: Dict[str, Dict[str, PinRef]] = {}
        for pin in design.pins:
            pins_by_instance.setdefault(pin.instance.name, {})[pin.lib_pin.name] = pin
        for inst in design.instances:
            if inst.is_port:
                continue
            pin_map = pins_by_instance.get(inst.name, {})
            for spec in inst.cell.arcs:
                from_pin = pin_map.get(spec.from_pin)
                to_pin = pin_map.get(spec.to_pin)
                if from_pin is None or to_pin is None:
                    continue
                self.arcs.append(
                    Arc(
                        index=len(self.arcs),
                        from_pin=from_pin.index,
                        to_pin=to_pin.index,
                        kind=ArcKind.CELL,
                        spec=spec,
                    )
                )

    def _build_adjacency(self) -> None:
        """CSR fanin/fanout adjacency: arc indices grouped by to/from pin."""
        num_arcs = len(self.arcs)
        fanin_counts = np.bincount(self.arc_to, minlength=self.num_pins) if num_arcs else np.zeros(self.num_pins, dtype=np.int64)
        fanout_counts = np.bincount(self.arc_from, minlength=self.num_pins) if num_arcs else np.zeros(self.num_pins, dtype=np.int64)
        self.fanin_offsets = np.concatenate([[0], np.cumsum(fanin_counts)]).astype(np.int64)
        self.fanout_offsets = np.concatenate([[0], np.cumsum(fanout_counts)]).astype(np.int64)
        self.fanin_arcs = np.argsort(self.arc_to, kind="stable").astype(np.int64) if num_arcs else np.zeros(0, dtype=np.int64)
        self.fanout_arcs = np.argsort(self.arc_from, kind="stable").astype(np.int64) if num_arcs else np.zeros(0, dtype=np.int64)

    def fanin_of(self, pin: int) -> np.ndarray:
        """Indices of arcs whose sink is ``pin``."""
        return self.fanin_arcs[self.fanin_offsets[pin]: self.fanin_offsets[pin + 1]]

    def fanout_of(self, pin: int) -> np.ndarray:
        """Indices of arcs whose source is ``pin``."""
        return self.fanout_arcs[self.fanout_offsets[pin]: self.fanout_offsets[pin + 1]]

    def _levelize(self) -> np.ndarray:
        """Topological levels via Kahn's algorithm; raises on cycles."""
        indegree = np.bincount(self.arc_to, minlength=self.num_pins).astype(np.int64) if len(self.arcs) else np.zeros(self.num_pins, dtype=np.int64)
        level = np.zeros(self.num_pins, dtype=np.int64)
        queue = [int(p) for p in np.nonzero(indegree == 0)[0]]
        processed = 0
        head = 0
        while head < len(queue):
            pin = queue[head]
            head += 1
            processed += 1
            for arc_idx in self.fanout_of(pin):
                arc = self.arcs[int(arc_idx)]
                target = arc.to_pin
                if level[target] < level[pin] + 1:
                    level[target] = level[pin] + 1
                indegree[target] -= 1
                if indegree[target] == 0:
                    queue.append(target)
        if processed != self.num_pins:
            remaining = int(self.num_pins - processed)
            raise ValueError(
                f"Timing graph contains combinational loops ({remaining} pins unresolved)"
            )
        return level

    def _find_startpoints(self) -> List[int]:
        """Primary-input driver pins and flip-flop clock pins."""
        points: List[int] = []
        for pin in self.design.pins:
            if pin.instance.is_port and pin.is_driver:
                points.append(pin.index)
            elif pin.lib_pin.is_clock and pin.instance.is_sequential:
                points.append(pin.index)
        return points

    def _find_endpoints(self) -> List[int]:
        """Primary-output pins and flip-flop data (D) pins."""
        points: List[int] = []
        for pin in self.design.pins:
            if pin.instance.is_port and not pin.is_driver:
                points.append(pin.index)
            elif (
                pin.instance.is_sequential
                and pin.lib_pin.is_input
                and not pin.lib_pin.is_clock
            ):
                points.append(pin.index)
        return points

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_arcs(self) -> int:
        return len(self.arcs)

    @property
    def num_net_arcs(self) -> int:
        return int(np.sum(self.arc_kind == int(ArcKind.NET))) if self.arcs else 0

    @property
    def num_cell_arcs(self) -> int:
        return int(np.sum(self.arc_kind == int(ArcKind.CELL))) if self.arcs else 0

    def pin_name(self, pin_index: int) -> str:
        return self.design.pins[pin_index].full_name

    def describe(self) -> Dict[str, int]:
        """Summary statistics used in logs and tests."""
        return {
            "num_pins": self.num_pins,
            "num_arcs": self.num_arcs,
            "num_net_arcs": self.num_net_arcs,
            "num_cell_arcs": self.num_cell_arcs,
            "num_startpoints": len(self.startpoints),
            "num_endpoints": len(self.endpoints),
            "num_clock_nets": len(self.clock_nets),
            "max_level": self.max_level,
        }
