#!/usr/bin/env python3
"""Tracing walkthrough: record a flow run as a Perfetto trace + metrics.

Enables the unified tracing subsystem (`repro.obs`), runs the paper's
Efficient-TDP flow on a synthetic design with a 2-worker kernel pool, and
shows everything the subsystem produces:

* hierarchical spans — ``flow.run`` > ``stage.*`` > ``gp.iteration`` >
  ``profile.gradient`` / ``kernel.dispatch``, with worker-side kernel spans
  shipped back over the pool's result channel and re-parented under the
  dispatch that launched them (lanes ``pool-worker-N``);
* user spans — wrap any region with ``span("name", key=value)``;
* a live listener — a callback invoked as each span finalizes;
* counters/gauges — aggregated exactly even when the ring buffer drops;
* a Chrome trace-event JSON file that loads in https://ui.perfetto.dev.

Tracing performs no array arithmetic, so the placement is bitwise
identical to an untraced run (asserted at the end).

Run:  python examples/trace_flow.py
      (or, with the package installed:
       repro run sb_mini_18 --preset efficient_tdp --trace trace.json)
"""

import numpy as np

from repro import build_flow, load_benchmark
from repro.obs import (
    chrome_trace,
    span,
    start_tracing,
    stop_tracing,
    validate_chrome_trace,
    write_chrome_trace,
)

SETTINGS = dict(
    max_iterations=60,
    timing_start_iteration=20,
    min_timing_iterations=20,
    timing_update_interval=10,
    kernel_workers=2,
)


def main() -> None:
    name = "sb_mini_18"
    design = load_benchmark(name, scale=0.4)

    # Reference run with tracing OFF: span()/counter() are no-ops here.
    untraced = build_flow("efficient_tdp", **SETTINGS).run(design, seed=0)

    tracer = start_tracing()

    # Optional: watch spans stream in as they finalize (a metrics bridge
    # would push these to statsd/OTLP; here we just count stage walls).
    stage_walls = {}

    def on_span(record):
        if record.name.startswith("stage."):
            stage_walls[record.name] = record.dur

    tracer.add_listener(on_span)

    try:
        # User spans nest around the library's own instrumentation.
        with span("example.traced_run", design=name):
            traced = build_flow("efficient_tdp", **SETTINGS).run(design, seed=0)
    finally:
        stop_tracing()

    out = "trace.json"
    write_chrome_trace(out, tracer)
    payload = chrome_trace(tracer)
    problems = validate_chrome_trace(payload)

    metrics = tracer.metrics()
    print(f"design: {name}  seed 0  kernel workers {SETTINGS['kernel_workers']}")
    print(f"trace:  {out}  ({len(payload['traceEvents'])} events, "
          f"{len(problems)} validation problems)  -> open in ui.perfetto.dev")
    print(f"spans recorded: {sum(s['count'] for s in metrics['spans'].values())} "
          f"(dropped: {metrics['dropped']})")
    print(f"{'span':<24}{'count':>8}{'total ms':>12}")
    for span_name in ("flow.run", "stage.global_place", "gp.iteration",
                      "profile.gradient", "kernel.dispatch"):
        stats = metrics["spans"].get(span_name)
        if stats:
            print(f"{span_name:<24}{stats['count']:>8}"
                  f"{stats['seconds'] * 1e3:>12.2f}")
    print(f"stage walls seen by listener: "
          f"{ {k: round(v, 3) for k, v in sorted(stage_walls.items())} }")
    if metrics["gauges"]:
        final_hpwl = metrics["gauges"].get("gp.hpwl")
        if final_hpwl is not None:
            print(f"gp.hpwl gauge (last GP iteration): {final_hpwl:.1f}")

    # The bit-exactness contract: tracing never perturbs the placement.
    assert np.array_equal(untraced.x, traced.x)
    assert np.array_equal(untraced.y, traced.y)
    print("traced placement bitwise identical to untraced run: OK")


if __name__ == "__main__":
    main()
