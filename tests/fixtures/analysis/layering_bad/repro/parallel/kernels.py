"""Fixture: worker kernel module importing the pool engine (any scope)."""


def resolve_pool(workers):
    from repro.parallel.engine import KernelPool

    return KernelPool(workers)
