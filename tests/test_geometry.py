"""Unit tests for repro.utils.geometry."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.utils.geometry import (
    BoundingBox,
    Rect,
    euclidean_distance,
    manhattan_distance,
    squared_distance,
)

coords = st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False)


class TestRect:
    def test_basic_properties(self):
        r = Rect(0, 0, 10, 4)
        assert r.width == 10
        assert r.height == 4
        assert r.area == 40
        assert r.center == (5.0, 2.0)

    def test_malformed_raises(self):
        with pytest.raises(ValueError):
            Rect(5, 0, 0, 10)
        with pytest.raises(ValueError):
            Rect(0, 5, 10, 0)

    def test_zero_area_allowed(self):
        r = Rect(1, 1, 1, 1)
        assert r.area == 0

    def test_contains_point(self):
        r = Rect(0, 0, 10, 10)
        assert r.contains_point(5, 5)
        assert r.contains_point(0, 0)
        assert r.contains_point(10, 10)
        assert not r.contains_point(10.1, 5)
        assert r.contains_point(10.05, 5, tol=0.1)

    def test_contains_rect(self):
        outer = Rect(0, 0, 10, 10)
        assert outer.contains_rect(Rect(1, 1, 9, 9))
        assert outer.contains_rect(outer)
        assert not outer.contains_rect(Rect(1, 1, 11, 9))

    def test_intersects_and_intersection(self):
        a = Rect(0, 0, 10, 10)
        b = Rect(5, 5, 15, 15)
        assert a.intersects(b)
        inter = a.intersection(b)
        assert inter == Rect(5, 5, 10, 10)

    def test_disjoint_intersection_is_none(self):
        a = Rect(0, 0, 1, 1)
        b = Rect(2, 2, 3, 3)
        assert not a.intersects(b)
        assert a.intersection(b) is None

    def test_touching_rects_intersect(self):
        a = Rect(0, 0, 1, 1)
        b = Rect(1, 0, 2, 1)
        assert a.intersects(b)
        assert a.intersection(b).area == 0

    def test_expanded(self):
        r = Rect(2, 2, 4, 4).expanded(1)
        assert r == Rect(1, 1, 5, 5)

    def test_as_tuple(self):
        assert Rect(1, 2, 3, 4).as_tuple() == (1, 2, 3, 4)


class TestBoundingBox:
    def test_empty(self):
        box = BoundingBox()
        assert box.empty
        assert box.half_perimeter == 0.0
        with pytest.raises(ValueError):
            box.to_rect()

    def test_single_point(self):
        box = BoundingBox()
        box.add(3, 4)
        assert not box.empty
        assert box.half_perimeter == 0.0
        assert box.count == 1

    def test_two_points(self):
        box = BoundingBox()
        box.add_points([(0, 0), (3, 4)])
        assert box.half_perimeter == 7.0
        assert box.to_rect() == Rect(0, 0, 3, 4)

    def test_iter(self):
        box = BoundingBox()
        box.add_points([(1, 2), (3, 5)])
        assert tuple(box) == (1, 2, 3, 5)

    @given(st.lists(st.tuples(coords, coords), min_size=2, max_size=30))
    def test_half_perimeter_matches_minmax(self, points):
        box = BoundingBox()
        box.add_points(points)
        xs = [p[0] for p in points]
        ys = [p[1] for p in points]
        expected = (max(xs) - min(xs)) + (max(ys) - min(ys))
        assert math.isclose(box.half_perimeter, expected, rel_tol=1e-9, abs_tol=1e-9)


class TestDistances:
    def test_manhattan(self):
        assert manhattan_distance(0, 0, 3, 4) == 7

    def test_euclidean(self):
        assert euclidean_distance(0, 0, 3, 4) == 5

    def test_squared(self):
        assert squared_distance(0, 0, 3, 4) == 25

    @given(coords, coords, coords, coords)
    def test_euclidean_le_manhattan(self, x1, y1, x2, y2):
        assert euclidean_distance(x1, y1, x2, y2) <= manhattan_distance(x1, y1, x2, y2) + 1e-6

    @given(coords, coords, coords, coords)
    def test_squared_is_euclidean_squared(self, x1, y1, x2, y2):
        d = euclidean_distance(x1, y1, x2, y2)
        assert math.isclose(squared_distance(x1, y1, x2, y2), d * d, rel_tol=1e-6, abs_tol=1e-6)

    @given(coords, coords)
    def test_zero_distance_to_self(self, x, y):
        assert manhattan_distance(x, y, x, y) == 0
        assert euclidean_distance(x, y, x, y) == 0
