"""Unit tests for the standard-cell library model."""

import pytest

from repro.netlist.library import (
    CellType,
    Library,
    LibraryPin,
    PinDirection,
    TimingArcSpec,
)


class TestPinDirection:
    def test_from_string_values(self):
        assert PinDirection.from_string("input") is PinDirection.INPUT
        assert PinDirection.from_string("OUTPUT") is PinDirection.OUTPUT
        assert PinDirection.from_string(" inout ") is PinDirection.INOUT
        assert PinDirection.from_string("in") is PinDirection.INPUT
        assert PinDirection.from_string("out") is PinDirection.OUTPUT

    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            PinDirection.from_string("sideways")


class TestTimingArcSpec:
    def test_linear_delay(self):
        arc = TimingArcSpec("a", "o", intrinsic=10.0, load_slope=100.0)
        assert arc.delay(0.0) == 10.0
        assert arc.delay(0.02) == pytest.approx(12.0)

    def test_table_delay_interpolation(self):
        arc = TimingArcSpec("a", "o", load_table=((0.0, 10.0), (1.0, 20.0)))
        assert arc.delay(0.5) == pytest.approx(15.0)

    def test_table_extrapolation(self):
        arc = TimingArcSpec("a", "o", load_table=((0.0, 10.0), (1.0, 20.0)))
        assert arc.delay(2.0) == pytest.approx(30.0)
        assert arc.delay(-1.0) == pytest.approx(0.0)

    def test_single_point_table(self):
        arc = TimingArcSpec("a", "o", load_table=((0.5, 7.0),))
        assert arc.delay(0.1) == 7.0
        assert arc.delay(10.0) == 7.0

    def test_table_overrides_linear(self):
        arc = TimingArcSpec("a", "o", intrinsic=99.0, load_slope=99.0,
                            load_table=((0.0, 1.0), (1.0, 2.0)))
        assert arc.delay(0.0) == pytest.approx(1.0)


class TestCellType:
    def test_add_pin_and_lookup(self):
        cell = CellType("X", width=2, height=10)
        cell.add_pin(LibraryPin("a", PinDirection.INPUT, capacitance=0.01))
        assert cell.pin("a").capacitance == 0.01
        with pytest.raises(KeyError):
            cell.pin("missing")

    def test_duplicate_pin_raises(self):
        cell = CellType("X", width=2, height=10)
        cell.add_pin(LibraryPin("a", PinDirection.INPUT))
        with pytest.raises(ValueError):
            cell.add_pin(LibraryPin("a", PinDirection.INPUT))

    def test_arc_requires_existing_pins(self):
        cell = CellType("X", width=2, height=10)
        cell.add_pin(LibraryPin("a", PinDirection.INPUT))
        with pytest.raises(ValueError):
            cell.add_arc(TimingArcSpec("a", "o"))

    def test_arc_queries(self):
        cell = CellType("X", width=2, height=10)
        cell.add_pin(LibraryPin("a", PinDirection.INPUT))
        cell.add_pin(LibraryPin("b", PinDirection.INPUT))
        cell.add_pin(LibraryPin("o", PinDirection.OUTPUT))
        cell.add_arc(TimingArcSpec("a", "o"))
        cell.add_arc(TimingArcSpec("b", "o"))
        assert len(cell.arcs_to("o")) == 2
        assert len(cell.arcs_from("a")) == 1

    def test_input_output_pin_lists(self):
        cell = CellType("X", width=2, height=10)
        cell.add_pin(LibraryPin("a", PinDirection.INPUT))
        cell.add_pin(LibraryPin("o", PinDirection.OUTPUT))
        assert [p.name for p in cell.input_pins] == ["a"]
        assert [p.name for p in cell.output_pins] == ["o"]

    def test_area(self):
        assert CellType("X", width=3, height=10).area == 30


class TestLibrary:
    def test_add_and_lookup(self):
        lib = Library("test")
        cell = CellType("X", width=1, height=1)
        lib.add_cell(cell)
        assert lib.cell("X") is cell
        assert "X" in lib
        assert len(lib) == 1

    def test_duplicate_cell_raises(self):
        lib = Library("test")
        lib.add_cell(CellType("X", width=1, height=1))
        with pytest.raises(ValueError):
            lib.add_cell(CellType("X", width=2, height=2))

    def test_missing_cell_raises(self):
        with pytest.raises(KeyError):
            Library("test").cell("nope")

    def test_merge(self):
        a = Library("a")
        b = Library("b")
        a.add_cell(CellType("X", width=1, height=1))
        b.add_cell(CellType("Y", width=1, height=1))
        a.merge(b)
        assert "Y" in a

    def test_merge_conflict(self):
        a = Library("a")
        b = Library("b")
        a.add_cell(CellType("X", width=1, height=1))
        b.add_cell(CellType("X", width=2, height=2))
        with pytest.raises(ValueError):
            a.merge(b)
        a.merge(b, overwrite=True)
        assert a.cell("X").width == 2


class TestGenericLibrary:
    def test_contains_expected_cells(self, library):
        for name in ["INV_X1", "NAND2_X1", "DFF_X1", "BUF_X4", "MUX2_X1"]:
            assert name in library

    def test_dff_is_sequential(self, library):
        assert library.cell("DFF_X1").is_sequential
        assert not library.cell("INV_X1").is_sequential

    def test_all_combinational_cells_have_arcs(self, library):
        for cell in library:
            if not cell.is_sequential:
                assert cell.arcs, f"{cell.name} has no timing arcs"

    def test_dff_clock_pin(self, library):
        dff = library.cell("DFF_X1")
        assert dff.pin("ck").is_clock
        assert dff.arcs[0].is_clock_to_q

    def test_cells_have_positive_footprint(self, library):
        for cell in library:
            assert cell.width > 0
            assert cell.height > 0

    def test_wire_rc_positive(self, library):
        assert library.wire_resistance_per_unit > 0
        assert library.wire_capacitance_per_unit > 0

    def test_larger_drive_has_lower_slope(self, library):
        weak = library.cell("BUF_X1").arcs[0].load_slope
        strong = library.cell("BUF_X4").arcs[0].load_slope
        assert strong < weak
