"""Execute a stage list over one design and collect the results."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.flow.context import FlowContext
from repro.flow.stage import FlowStage
from repro.netlist.design import Design
from repro.obs import active_tracer, clock, span
from repro.timing.constraints import TimingConstraints
from repro.utils.logging import get_logger
from repro.utils.profiling import RuntimeProfiler

logger = get_logger("flow.runner")


@dataclass
class FlowResult:
    """Outcome of one :meth:`FlowRunner.run` call."""

    context: FlowContext
    runtime_seconds: float
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    flow_name: str = "custom"

    # Convenience accessors mirroring the legacy result objects.
    @property
    def x(self) -> np.ndarray:
        x, _ = self.context.positions()
        return x

    @property
    def y(self) -> np.ndarray:
        _, y = self.context.positions()
        return y

    @property
    def evaluation(self):
        return self.context.evaluation

    @property
    def placement(self):
        return self.context.placement

    @property
    def history(self):
        return self.context.history

    @property
    def profiler(self) -> RuntimeProfiler:
        return self.context.profiler

    def summary(self) -> dict:
        """Flat dict of the headline metrics (JSON-friendly)."""
        out: dict = {
            "design": self.context.design.name,
            "flow": self.flow_name,
            "seed": self.context.seed,
            "runtime_sec": round(self.runtime_seconds, 3),
        }
        if self.context.evaluation is not None:
            ev = self.context.evaluation
            out.update(
                hpwl=ev.hpwl,
                tns=ev.tns,
                wns=ev.wns,
                failing_endpoints=ev.num_failing_endpoints,
                overlap_area=ev.overlap_area,
                out_of_die_cells=ev.out_of_die_cells,
            )
            if ev.per_corner is not None:
                out["corners"] = list(ev.per_corner)
                out["per_corner"] = ev.per_corner
            if ev.congestion_peak_overflow is not None:
                out["congestion_peak_overflow"] = ev.congestion_peak_overflow
                out["congestion_avg_overflow"] = ev.congestion_avg_overflow
                out["congestion_hotspots"] = ev.congestion_hotspots
        if self.context.placement is not None:
            out["iterations"] = self.context.placement.iterations
            out["converged"] = self.context.placement.converged
        if self.context.pin_pairs is not None:
            out["pin_pairs"] = len(self.context.pin_pairs)
        if "legalization" in self.context.metadata:
            out["legalizer"] = self.context.metadata["legalization"]["engine"]
        if "routability_repair" in self.context.metadata:
            repair = self.context.metadata["routability_repair"]
            out["inflation_rounds"] = len(repair["rounds"]) - 1
            out["congestion_initial_peak"] = repair["initial_peak_overflow"]
            out["congestion_final_peak"] = repair["final_peak_overflow"]
        feedback = self.context.metadata.get("feedback")
        if feedback and feedback.get("trajectory"):
            out["feedback_updates"] = len(feedback["trajectory"])
        return out


class FlowRunner:
    """Run an ordered list of stages over a design.

    The runner owns no placement logic itself: it builds the
    :class:`FlowContext`, executes each stage in order, and times them.
    Compose stages directly or via :mod:`repro.flow.presets`.
    """

    def __init__(
        self,
        stages: Sequence[FlowStage],
        *,
        name: str = "custom",
        kernel_workers: int = 0,
    ) -> None:
        self.stages: List[FlowStage] = list(stages)
        self.name = name
        self.kernel_workers = int(kernel_workers)
        if not self.stages:
            raise ValueError("A flow needs at least one stage")

    def _stage_config_seed(self) -> Optional[int]:
        for stage in self.stages:
            config = getattr(stage, "config", None)
            if config is not None and hasattr(config, "seed"):
                return int(config.seed)
        return None

    def run(
        self,
        design: Design,
        *,
        constraints: Optional[TimingConstraints] = None,
        corners=None,
        seed: Optional[int] = None,
        profiler: Optional[RuntimeProfiler] = None,
    ) -> FlowResult:
        """Execute every stage and return the accumulated result.

        The RNG seed lives in the stage configs (the placement stage reads
        ``config.seed``); by default it is picked up from there so the
        result's reported seed is the one actually used.  Passing ``seed``
        explicitly is a cross-check: a value disagreeing with the stage
        config raises instead of silently labeling the run with a seed that
        never seeded anything.

        ``corners`` selects the MCMM analysis corners for the whole run
        (timing feedback and evaluation).  Resolution order: this argument,
        then corner specs carried by the design (e.g. restored from a
        :class:`repro.netlist.CompiledDesign` snapshot), then any
        ``corners=`` the stages were built with.
        """
        config_seed = self._stage_config_seed()
        if seed is None:
            seed = config_seed if config_seed is not None else 0
        elif config_seed is not None and seed != config_seed:
            raise ValueError(
                f"run(seed={seed}) conflicts with the placement stage's "
                f"config.seed={config_seed}; set the seed through the "
                "stage/preset config (e.g. build_flow(..., seed=...))"
            )
        if corners is None:
            corners = getattr(design, "corners", None)
        resolved_corners = None
        if corners is not None:
            from repro.timing.mcmm import resolve_corners

            resolved_corners = resolve_corners(corners)
        ctx = FlowContext(
            design=design,
            constraints=(
                constraints
                if constraints is not None
                else TimingConstraints.from_design(design)
            ),
            profiler=profiler if profiler is not None else RuntimeProfiler(),
            seed=seed,
            corners=resolved_corners,
            kernel_workers=self.kernel_workers,
        )
        stage_seconds: Dict[str, float] = {}
        start = clock()
        with span("flow.run", flow=self.name, design=design.name, seed=seed):
            for stage in self.stages:
                stage_start = clock()
                logger.debug("flow %s: running stage %s", self.name, stage.name)
                with span(f"stage.{stage.name}"):
                    stage.run(ctx)
                stage_seconds[stage.name] = (
                    stage_seconds.get(stage.name, 0.0) + clock() - stage_start
                )
        runtime = clock() - start
        tracer = active_tracer()
        if tracer is not None:
            # Snapshot the aggregate span metrics now that the flow.run and
            # stage spans have closed; the flat where-did-the-time-go view
            # travels with the scores (EvaluationReport / --profile).
            snapshot = tracer.metrics()
            ctx.metadata["trace_metrics"] = snapshot
            if ctx.evaluation is not None:
                ctx.evaluation.trace_metrics = snapshot
        return FlowResult(
            context=ctx,
            runtime_seconds=runtime,
            stage_seconds=stage_seconds,
            flow_name=self.name,
        )
