"""Tests for the paper's contribution: losses, pin-pair set, attraction term, extractor."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    CriticalPathExtractor,
    ExtractionConfig,
    HPWLPairLoss,
    LinearLoss,
    PinAttractionObjective,
    PinPairSet,
    QuadraticLoss,
    SinglePathOptimizer,
    make_loss,
)
from repro.timing import STAEngine, report_timing_endpoint

finite = st.floats(-500, 500, allow_nan=False)


class TestLosses:
    def test_quadratic_value(self):
        loss = QuadraticLoss()
        value, gdx, gdy = loss.evaluate(np.array([3.0]), np.array([4.0]), np.array([2.0]))
        assert value == pytest.approx(2.0 * 25.0)
        assert gdx[0] == pytest.approx(2 * 2.0 * 3.0)
        assert gdy[0] == pytest.approx(2 * 2.0 * 4.0)

    def test_linear_value(self):
        loss = LinearLoss(epsilon=1e-9)
        value, gdx, gdy = loss.evaluate(np.array([3.0]), np.array([4.0]), np.array([1.0]))
        assert value == pytest.approx(5.0, rel=1e-6)
        assert np.hypot(gdx[0], gdy[0]) == pytest.approx(1.0, rel=1e-6)

    def test_hpwl_value(self):
        loss = HPWLPairLoss(epsilon=1e-9)
        value, gdx, gdy = loss.evaluate(np.array([3.0]), np.array([-4.0]), np.array([1.0]))
        assert value == pytest.approx(7.0, rel=1e-6)
        assert gdx[0] == pytest.approx(1.0, rel=1e-5)
        assert gdy[0] == pytest.approx(-1.0, rel=1e-5)

    def test_make_loss_factory(self):
        assert isinstance(make_loss("quadratic"), QuadraticLoss)
        assert isinstance(make_loss("linear"), LinearLoss)
        assert isinstance(make_loss("hpwl"), HPWLPairLoss)
        with pytest.raises(ValueError):
            make_loss("cubic")

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            LinearLoss(epsilon=0.0)
        with pytest.raises(ValueError):
            HPWLPairLoss(epsilon=-1.0)

    @given(finite, finite, st.floats(0.1, 10))
    @settings(max_examples=50)
    def test_quadratic_gradient_matches_finite_difference(self, dx, dy, w):
        loss = QuadraticLoss()
        eps = 1e-4
        value, gdx, gdy = loss.evaluate(np.array([dx]), np.array([dy]), np.array([w]))
        plus, _, _ = loss.evaluate(np.array([dx + eps]), np.array([dy]), np.array([w]))
        minus, _, _ = loss.evaluate(np.array([dx - eps]), np.array([dy]), np.array([w]))
        assert gdx[0] == pytest.approx((plus - minus) / (2 * eps), rel=1e-3, abs=1e-3)

    @given(finite, finite, st.floats(0.1, 10))
    @settings(max_examples=50)
    def test_losses_nonnegative_and_zero_at_origin(self, dx, dy, w):
        for loss in (QuadraticLoss(), LinearLoss(), HPWLPairLoss()):
            value, _, _ = loss.evaluate(np.array([dx]), np.array([dy]), np.array([w]))
            assert value >= 0
            zero, _, _ = loss.evaluate(np.array([0.0]), np.array([0.0]), np.array([w]))
            assert zero <= value + 1e-9

    @given(finite, finite)
    @settings(max_examples=50)
    def test_quadratic_dominates_linear_for_long_distances(self, dx, dy):
        if abs(dx) + abs(dy) < 2.0:
            return
        w = np.array([1.0])
        quad, _, _ = QuadraticLoss().evaluate(np.array([dx]), np.array([dy]), w)
        lin, _, _ = LinearLoss().evaluate(np.array([dx]), np.array([dy]), w)
        assert quad >= lin - 1e-6


class TestPinPairSet:
    def _fake_paths(self, engine):
        result = engine.update_timing()
        paths, _ = report_timing_endpoint(engine, 10, 1, failing_only=True)
        return paths, result

    def test_new_pairs_get_w0(self, tiny_design, tiny_constraints):
        engine = STAEngine(tiny_design, tiny_constraints)
        paths, result = self._fake_paths(engine)
        pairs = PinPairSet(w0=10.0, w1=0.2)
        added = pairs.update_from_paths(paths, engine.graph, result.wns)
        assert added == len(pairs) > 0
        for _, weight in pairs.items():
            assert weight == 10.0

    def test_repeated_update_accumulates_with_share(self, tiny_design, tiny_constraints):
        engine = STAEngine(tiny_design, tiny_constraints)
        paths, result = self._fake_paths(engine)
        pairs = PinPairSet(w0=10.0, w1=0.2)
        pairs.update_from_paths(paths, engine.graph, result.wns)
        pairs.update_from_paths(paths, engine.graph, result.wns)
        # The worst path has share 1.0, so its pairs gained exactly w1.
        worst_pairs = paths[0].pin_pairs(engine.graph)
        for pair in worst_pairs:
            assert pairs.weight(pair) == pytest.approx(10.0 + 0.2)

    def test_positive_slack_paths_ignored(self, tiny_design, tiny_constraints):
        engine = STAEngine(tiny_design, tiny_constraints)
        result = engine.update_timing()
        paths, _ = report_timing_endpoint(engine, 10, 1, failing_only=False)
        positive = [p for p in paths if p.slack >= 0]
        pairs = PinPairSet()
        pairs.update_from_paths(positive, engine.graph, result.wns)
        assert len(pairs) == 0

    def test_max_weight_cap(self, tiny_design, tiny_constraints):
        engine = STAEngine(tiny_design, tiny_constraints)
        paths, result = self._fake_paths(engine)
        pairs = PinPairSet(w0=10.0, w1=1.0, max_weight=10.5)
        for _ in range(5):
            pairs.update_from_paths(paths, engine.graph, result.wns)
        assert max(w for _, w in pairs.items()) <= 10.5

    def test_as_arrays_shapes(self, tiny_design, tiny_constraints):
        engine = STAEngine(tiny_design, tiny_constraints)
        paths, result = self._fake_paths(engine)
        pairs = PinPairSet()
        pairs.update_from_paths(paths, engine.graph, result.wns)
        pin_i, pin_j, weights = pairs.as_arrays()
        assert pin_i.shape == pin_j.shape == weights.shape
        assert pin_i.size == len(pairs)

    def test_empty_set_arrays(self):
        pin_i, pin_j, weights = PinPairSet().as_arrays()
        assert pin_i.size == pin_j.size == weights.size == 0

    def test_set_weights_and_clear(self):
        pairs = PinPairSet()
        pairs.set_weights({(1, 2): 3.0})
        assert (1, 2) in pairs
        assert pairs.total_weight() == 3.0
        pairs.clear()
        assert len(pairs) == 0


class TestPinAttractionObjective:
    def _attraction(self, design, constraints):
        engine = STAEngine(design, constraints)
        result = engine.update_timing()
        paths, _ = report_timing_endpoint(engine, 10, 1, failing_only=True)
        pairs = PinPairSet()
        pairs.update_from_paths(paths, engine.graph, result.wns)
        return PinAttractionObjective(design, pairs, beta=1.0), pairs

    def test_empty_pairs_zero_gradient(self, tiny_design):
        objective = PinAttractionObjective(tiny_design)
        x, y = tiny_design.positions()
        value, gx, gy = objective.evaluate(x, y)
        assert value == 0.0
        assert np.all(gx == 0) and np.all(gy == 0)

    def test_gradient_matches_finite_difference(self, tiny_design, tiny_constraints):
        objective, _ = self._attraction(tiny_design, tiny_constraints)
        x, y = tiny_design.positions()
        value, gx, gy = objective.evaluate(x, y)
        inst = tiny_design.instance("u1").index
        eps = 1e-4
        xp = x.copy(); xp[inst] += eps
        xm = x.copy(); xm[inst] -= eps
        numeric = (objective.evaluate(xp, y)[0] - objective.evaluate(xm, y)[0]) / (2 * eps)
        assert gx[inst] == pytest.approx(numeric, rel=1e-4, abs=1e-6)

    def test_gradient_pulls_pins_together(self, tiny_design, tiny_constraints):
        objective, _ = self._attraction(tiny_design, tiny_constraints)
        x, y = tiny_design.positions()
        _, gx, _ = objective.evaluate(x, y)
        # u1 sits between ff1 and u2 on the critical path; moving with the
        # negative gradient must reduce the loss.
        value0 = objective.evaluate(x, y)[0]
        step = 1.0
        x_new = x - step * gx / (np.abs(gx).max() + 1e-12)
        assert objective.evaluate(x_new, y)[0] < value0

    def test_fixed_instances_zero_gradient(self, tiny_design, tiny_constraints):
        objective, _ = self._attraction(tiny_design, tiny_constraints)
        x, y = tiny_design.positions()
        _, gx, gy = objective.evaluate(x, y)
        for port in tiny_design.ports:
            assert gx[port.index] == 0.0 and gy[port.index] == 0.0

    def test_snapshot_populated(self, tiny_design, tiny_constraints):
        objective, pairs = self._attraction(tiny_design, tiny_constraints)
        objective.evaluate(*tiny_design.positions())
        assert objective.last_snapshot.num_pairs == len(pairs)
        assert objective.last_snapshot.value > 0


class TestCriticalPathExtractor:
    def test_endpoint_mode_covers_all_failing(self, fresh_small_design):
        engine = STAEngine(fresh_small_design)
        result = engine.update_timing()
        extractor = CriticalPathExtractor(engine, ExtractionConfig(mode="endpoint"))
        paths, stats = extractor.extract(result)
        assert stats.num_endpoints == result.num_failing_endpoints
        assert stats.num_paths == result.num_failing_endpoints

    def test_report_timing_mode(self, fresh_small_design):
        engine = STAEngine(fresh_small_design)
        result = engine.update_timing()
        extractor = CriticalPathExtractor(
            engine, ExtractionConfig(mode="report_timing", endpoint_multiplier=1)
        )
        paths, stats = extractor.extract(result)
        assert stats.complexity == "O(n^2)"
        assert stats.num_endpoints <= result.num_failing_endpoints

    def test_max_endpoints_cap(self, fresh_small_design):
        engine = STAEngine(fresh_small_design)
        result = engine.update_timing()
        extractor = CriticalPathExtractor(engine, ExtractionConfig(max_endpoints=3))
        _, stats = extractor.extract(result)
        assert stats.num_endpoints <= 3

    def test_history_accumulates(self, fresh_small_design):
        engine = STAEngine(fresh_small_design)
        result = engine.update_timing()
        extractor = CriticalPathExtractor(engine)
        extractor.extract(result)
        extractor.extract(result)
        assert len(extractor.history) == 2
        assert extractor.total_extraction_time >= 0

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            ExtractionConfig(mode="bogus")
        with pytest.raises(ValueError):
            ExtractionConfig(paths_per_endpoint=0)

    def test_describe(self):
        assert ExtractionConfig().describe() == "report_timing_endpoint(n,1)"
        assert (
            ExtractionConfig(mode="report_timing", endpoint_multiplier=10).describe()
            == "report_timing(n*10)"
        )


class TestSinglePathOptimizer:
    @staticmethod
    def _scatter(design):
        """Give the design a coarse (scattered) placement, like Fig. 3's input."""
        from repro.placement import initial_placement

        x, y = initial_placement(design, spread=0.45, seed=9)
        design.set_positions(x, y)
        return design

    def test_quadratic_shortens_and_equalizes_path(self, fresh_small_design):
        optimizer = SinglePathOptimizer(self._scatter(fresh_small_design))
        path = optimizer.worst_path()
        outcome = optimizer.optimize(path, "quadratic", max_iterations=150)
        assert outcome.path_length_after < outcome.path_length_before
        assert outcome.improvement == pytest.approx(
            outcome.slack_after - outcome.slack_before
        )

    def test_full_vs_incremental_parity(self, small_spec):
        """Acceptance: the incremental-STA path (the default) produces the
        bitwise-identical optimizer result to the full-recompute path."""
        from repro.benchgen import generate_circuit

        results = {}
        for incremental in (False, True):
            design = self._scatter(generate_circuit(small_spec))
            optimizer = SinglePathOptimizer(design, incremental=incremental)
            results[incremental] = optimizer.compare_losses(max_iterations=80)
        for full, inc in zip(results[False], results[True]):
            assert full.loss_name == inc.loss_name
            assert full.slack_before == inc.slack_before
            assert full.slack_after == inc.slack_after
            assert full.path_length_before == inc.path_length_before
            assert full.path_length_after == inc.path_length_after
            assert full.iterations == inc.iterations
            np.testing.assert_array_equal(full.positions[0], inc.positions[0])
            np.testing.assert_array_equal(full.positions[1], inc.positions[1])

    def test_incremental_engine_used_between_queries(self, fresh_small_design):
        """After the seeding pass, optimizer STA updates run incrementally."""
        optimizer = SinglePathOptimizer(self._scatter(fresh_small_design))
        path = optimizer.worst_path()
        optimizer.optimize(path, "quadratic", max_iterations=30)
        stats = optimizer.engine.last_update_stats
        assert stats is not None and stats.mode == "incremental"

    def test_slack_history_tracking(self, fresh_small_design):
        optimizer = SinglePathOptimizer(self._scatter(fresh_small_design))
        path = optimizer.worst_path()
        outcome = optimizer.optimize(
            path, "quadratic", max_iterations=60, track_slack_every=10
        )
        assert outcome.slack_history
        iterations = [i for i, _ in outcome.slack_history]
        assert iterations == sorted(iterations)
        assert all(i % 10 == 0 for i in iterations)
        # The last sample at the final iterate agrees with the result.
        if iterations[-1] == outcome.iterations:
            assert outcome.slack_history[-1][1] == pytest.approx(
                outcome.slack_after
            )

    def test_compare_losses_returns_all(self, fresh_small_design):
        optimizer = SinglePathOptimizer(self._scatter(fresh_small_design))
        results = optimizer.compare_losses(max_iterations=80)
        assert [r.loss_name for r in results] == ["hpwl", "linear", "quadratic"]
        by_name = {r.loss_name: r for r in results}
        for r in results:
            assert r.iterations > 0
        # The quadratic loss yields the shortest path geometry of the three
        # (its slack ordering depends on the wire/cell delay balance; see
        # benchmarks/test_fig3_loss_comparison.py and EXPERIMENTS.md).
        assert by_name["quadratic"].path_length_after <= by_name["linear"].path_length_after + 1e-6
