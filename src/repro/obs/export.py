"""Chrome trace-event / Perfetto JSON export for :mod:`repro.obs` traces.

The output follows the Trace Event Format ("JSON Object Format" flavour:
a dict with a ``traceEvents`` list), which both ``chrome://tracing`` and
https://ui.perfetto.dev load directly.  Every span becomes one complete
("X") event with microsecond timestamps relative to the tracer epoch;
track assignments (main thread, worker threads, adopted pool-worker and
batch-job lanes) become thread rows via ``M`` metadata events.

``validate_chrome_trace`` is the schema check CI's trace-smoke step runs
(via ``python -m repro.obs trace.json``) so a malformed export fails the
build rather than failing silently in the viewer.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Union

from .tracer import Tracer

__all__ = ["chrome_trace", "write_chrome_trace", "validate_chrome_trace"]

_PID = 1


def _track_label(track: Union[int, str], main_thread: int) -> str:
    if isinstance(track, str):
        return track
    if track == main_thread:
        return "main"
    return f"thread-{track}"


def chrome_trace(tracer: Tracer) -> Dict[str, Any]:
    """Render the tracer's records as a Chrome trace-event JSON object."""
    records = tracer.records()
    # Stable lane numbering: "main" is tid 0, then lanes in first-appearance
    # order.  Adopted lanes carry string names ("pool-worker-1", ...).
    tids: Dict[str, int] = {"main": 0}
    events: List[Dict[str, Any]] = []
    for record in records:
        label = _track_label(record.track, tracer.main_thread)
        tid = tids.setdefault(label, len(tids))
        args: Dict[str, Any] = {"span_id": record.span_id}
        if record.parent_id is not None:
            args["parent_id"] = record.parent_id
        if record.attrs:
            args.update(record.attrs)
        events.append(
            {
                "name": record.name,
                "ph": "X",
                "ts": round((record.start - tracer.epoch) * 1e6, 3),
                "dur": round(max(record.dur, 0.0) * 1e6, 3),
                "pid": _PID,
                "tid": tid,
                "args": args,
            }
        )
    metadata: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": _PID,
            "tid": 0,
            "args": {"name": "repro"},
        }
    ]
    for label, tid in tids.items():
        metadata.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": _PID,
                "tid": tid,
                "args": {"name": label},
            }
        )
    return {
        "traceEvents": metadata + events,
        "displayTimeUnit": "ms",
        "otherData": tracer.metrics(),
    }


def write_chrome_trace(path: Union[str, Path], tracer: Tracer) -> Path:
    """Serialize :func:`chrome_trace` to ``path``; returns the path."""
    destination = Path(path)
    payload = chrome_trace(tracer)
    destination.write_text(json.dumps(payload), encoding="utf-8")
    return destination


def validate_chrome_trace(payload: Any) -> List[str]:
    """Check ``payload`` against the trace-event schema; return problems.

    An empty list means the trace is loadable.  The checks mirror what the
    Perfetto JSON importer requires: a ``traceEvents`` list whose entries
    carry ``name``/``ph``/``pid``/``tid``, with numeric non-negative
    ``ts``/``dur`` on every complete ("X") event, plus overall JSON
    serializability.
    """
    problems: List[str] = []
    if not isinstance(payload, dict):
        return [f"top level must be an object, got {type(payload).__name__}"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be a list"]
    if not events:
        problems.append("traceEvents is empty")
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: event must be an object")
            continue
        for key in ("name", "ph"):
            if not isinstance(event.get(key), str):
                problems.append(f"{where}: missing string field {key!r}")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                problems.append(f"{where}: missing integer field {key!r}")
        if event.get("ph") == "X":
            for key in ("ts", "dur"):
                value = event.get(key)
                if not isinstance(value, (int, float)) or isinstance(value, bool):
                    problems.append(f"{where}: 'X' event needs numeric {key!r}")
                elif value < 0:
                    problems.append(f"{where}: {key!r} must be non-negative")
        args = event.get("args")
        if args is not None and not isinstance(args, dict):
            problems.append(f"{where}: args must be an object when present")
    try:
        json.dumps(payload)
    except (TypeError, ValueError) as exc:
        problems.append(f"payload is not JSON-serializable: {exc}")
    return problems
