"""Nonlinear global placement engine (DREAMPlace-style).

The engine minimizes

    sum_e w_e * WL_e(x, y)  +  lambda * D(x, y)  +  sum_t beta_t * T_t(x, y)

where ``WL`` is the weighted-average smoothed wirelength, ``D`` the
electrostatic density penalty, and ``T_t`` optional extra terms (the paper's
pin-to-pin attraction, Eq. 6).  Net weights ``w_e`` default to one and are
adjusted by net-weighting timing-driven flows (Eq. 5).

A flow hooks into the engine through scheduled *placement feedbacks*
(:mod:`repro.feedback`): each feedback slot pairs an analysis component with
a firing cadence, and the engine's :class:`~repro.feedback.scheduler.
FeedbackScheduler` dispatches them once per iteration.  This is how the
timing-driven placers run STA every ``m`` iterations, update net weights or
pin-pair weights, and record TNS/WNS trajectories (Fig. 5) without the
engine knowing anything about timing — and how congestion weighting merges
into the same loop.  The legacy ``add_callback`` API remains as a thin shim
over an every-iteration feedback slot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.feedback.base import FeedbackCadence, PlacementFeedback
from repro.feedback.scheduler import CallbackFeedback, FeedbackScheduler, FeedbackSlot
from repro.netlist.design import Design
from repro.obs import active_tracer, clock, span
from repro.placement.arena import IterationArena
from repro.placement.density import ElectrostaticDensity
from repro.placement.initial import clamp_to_die, initial_placement
from repro.placement.nesterov import NesterovOptimizer
from repro.placement.objective import ObjectiveTerm, PlacementObjective
from repro.placement.wirelength import WeightedAverageWirelength, total_hpwl
from repro.utils.logging import get_logger
from repro.utils.profiling import RuntimeProfiler

logger = get_logger("placement.global")

IterationCallback = Callable[["GlobalPlacer", int, np.ndarray, np.ndarray], None]


@dataclass
class PlacementConfig:
    """Tunable knobs of the global placement engine."""

    max_iterations: int = 600
    min_iterations: int = 50
    stop_overflow: float = 0.08
    target_density: float = 1.0
    num_bins_x: Optional[int] = None
    num_bins_y: Optional[int] = None
    # Density multiplier schedule (the paper adopts DREAMPlace's rule).
    density_weight_init_ratio: float = 1.0e-3
    density_weight_growth: float = 1.05
    density_weight_max: float = 1.0e3
    # Wirelength smoothing schedule.
    gamma_base_bins: float = 4.0
    seed: int = 0
    verbose: bool = False
    log_every: int = 50
    # Record history (HPWL, overflow, ...) every N iterations (default: all).
    # XL runs can raise this to cut per-iteration bookkeeping cost; the
    # optimization trajectory is bitwise unaffected.
    history_every: int = 1
    # Kernel-pool workers for the density splat (0 = serial; see
    # repro.parallel for the bit-exactness guarantee).
    kernel_workers: int = 0


@dataclass
class PlacementHistory:
    """Per-iteration metrics recorded during a run (drives Fig. 5)."""

    iterations: List[int] = field(default_factory=list)
    hpwl: List[float] = field(default_factory=list)
    overflow: List[float] = field(default_factory=list)
    objective: List[float] = field(default_factory=list)
    density_weight: List[float] = field(default_factory=list)
    extra: Dict[str, List[Tuple[int, float]]] = field(default_factory=dict)

    def record_extra(self, name: str, iteration: int, value: float) -> None:
        self.extra.setdefault(name, []).append((iteration, value))


@dataclass
class PlacementResult:
    """Final global-placement solution and run statistics."""

    x: np.ndarray
    y: np.ndarray
    hpwl: float
    overflow: float
    iterations: int
    converged: bool
    history: PlacementHistory


class GlobalPlacer:
    """Analytical global placer with pluggable extra objective terms."""

    def __init__(
        self,
        design: Design,
        config: Optional[PlacementConfig] = None,
        *,
        profiler: Optional[RuntimeProfiler] = None,
    ) -> None:
        self.design = design
        self.config = config if config is not None else PlacementConfig()
        self.profiler = profiler if profiler is not None else RuntimeProfiler()
        arrays = design.arrays

        self.wirelength = WeightedAverageWirelength(
            design, workers=self.config.kernel_workers
        )
        self.density = ElectrostaticDensity(
            design,
            num_bins_x=self.config.num_bins_x,
            num_bins_y=self.config.num_bins_y,
            target_density=self.config.target_density,
            workers=self.config.kernel_workers,
        )
        self.objective = PlacementObjective()
        self.net_weights = np.ones(arrays.num_nets, dtype=np.float64)
        self.feedback = FeedbackScheduler()
        self.history = PlacementHistory()

        # Preconditioner: pins per instance + density_weight * area.
        self._pins_per_instance = np.bincount(
            arrays.pin_instance, minlength=arrays.num_instances
        ).astype(np.float64)
        self._inst_area = arrays.inst_area
        self._movable_mask = arrays.movable_mask
        self._fixed_mask = ~arrays.movable_mask

        # Iteration arena: reused work buffers for the gradient pipeline
        # (shared with the wirelength model); per-term gradient walls for
        # ``repro run --profile`` attribution.
        self.arena = IterationArena()
        self.wirelength.arena = self.arena
        self.density.arena = self.arena
        self.gradient_seconds: Dict[str, float] = {
            "wirelength": 0.0,
            "density": 0.0,
            "extra": 0.0,
            "scatter": 0.0,
        }
        self._density_weight_pending = False

        self.density_weight = 0.0
        self._gamma_bin = max(self.density.bin_w, self.density.bin_h)
        self._last_overflow = 1.0
        self._optimizer: Optional[NesterovOptimizer] = None

    # ------------------------------------------------------------------
    # Flow hooks
    # ------------------------------------------------------------------
    def add_objective_term(self, term: ObjectiveTerm) -> None:
        """Add an extra differentiable term (e.g. pin-to-pin attraction)."""
        self.objective.add_term(term)

    def add_feedback(
        self,
        feedback: PlacementFeedback,
        cadence: Optional[FeedbackCadence] = None,
    ) -> FeedbackSlot:
        """Schedule a placement feedback (fires on ``cadence``, default every
        iteration) and give it the chance to attach objective terms."""
        slot = self.feedback.add(feedback, cadence)
        feedback.attach(self)
        return slot

    def add_callback(self, callback: IterationCallback) -> None:
        """Register a per-iteration hook ``callback(placer, iteration, x, y)``.

        Compatibility shim over :meth:`add_feedback`: the callback becomes an
        every-iteration :class:`~repro.feedback.scheduler.CallbackFeedback`
        slot on the scheduler.
        """
        self.add_feedback(CallbackFeedback(callback))

    def set_net_weights(self, weights: np.ndarray) -> None:
        """Replace the per-net wirelength weights (net-weighting TDP flows).

        Accepts any real numeric array of shape ``(num_nets,)``; anything
        else — wrong shape (including scalars that would silently
        broadcast), non-numeric dtypes, negative or non-finite entries —
        raises with a description of the problem.
        """
        arr = np.asarray(weights)
        if arr.dtype == object or not np.issubdtype(arr.dtype, np.number):
            raise TypeError(
                f"net weights must be a real numeric array, got dtype {arr.dtype}"
            )
        if np.issubdtype(arr.dtype, np.complexfloating):
            raise TypeError("net weights must be real, got a complex array")
        if arr.shape != self.net_weights.shape:
            raise ValueError(
                f"net weight array has shape {arr.shape}, expected "
                f"{self.net_weights.shape} (one weight per net; scalars are "
                "not broadcast)"
            )
        arr = arr.astype(np.float64, copy=False)
        if not np.all(np.isfinite(arr)):
            raise ValueError("net weights must be finite (no NaN/inf)")
        if arr.size and float(arr.min()) < 0.0:
            raise ValueError("net weights must be non-negative")
        self.net_weights = arr

    def reset_optimizer_momentum(self) -> None:
        """Restart Nesterov momentum (call after changing the objective).

        Timing-driven flows change the objective every timing iteration (new
        net weights or new pin pairs); carrying momentum accumulated under the
        old objective across such a change can destabilize the optimizer.
        """
        if self._optimizer is not None:
            self._optimizer.reset_momentum()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _update_gamma(self, overflow: float) -> None:
        gamma = self._gamma_bin * self.config.gamma_base_bins * (0.1 + overflow)
        self.wirelength.set_gamma(max(gamma, 1e-3))

    def _gradient(self, x: np.ndarray, y: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Preconditioned objective gradient at ``(x, y)``.

        Returns arena-owned buffers that are reused on the next call; the
        optimizer copies what it keeps.  The staged in-place combine is
        bitwise identical to the allocating sum it replaced (IEEE ``+`` and
        ``*`` are commutative bit for bit).  Per-term walls accumulate into
        ``gradient_seconds`` with plain ``clock()`` deltas — the profiler's
        "gradient" section keeps the aggregate, and with tracing active the
        same deltas are re-emitted as ``gp.*`` spans (one clock read feeds
        both views, so the legacy dict and the trace agree exactly).
        """
        seconds = self.gradient_seconds
        tracer = active_tracer()
        with self.profiler.section("gradient"):
            t0 = clock()
            wl = self.wirelength.evaluate(x, y, net_weights=self.net_weights)
            t1 = clock()
            seconds["wirelength"] += t1 - t0
            dens = self.density.evaluate(x, y)
            t2 = clock()
            seconds["density"] += t2 - t1
            if self._density_weight_pending:
                # Folded first-iteration bootstrap: derive the initial
                # density multiplier from this evaluation instead of running
                # a duplicate evaluate before the loop (same positions, same
                # gamma — bitwise identical weight).
                self.density_weight = self._derive_density_weight(wl, dens)
                self._density_weight_pending = False
            arena = self.arena
            num_instances = self.design.arrays.num_instances
            _, extra_gx, extra_gy = self.objective.evaluate_extra(
                x,
                y,
                num_instances,
                out_x=arena.array("extra_gx", num_instances),
                out_y=arena.array("extra_gy", num_instances),
            )
            t3 = clock()
            seconds["extra"] += t3 - t2
            grad_x = arena.array("grad_x", num_instances)
            grad_y = arena.array("grad_y", num_instances)
            np.multiply(dens.grad_x, self.density_weight, out=grad_x)
            grad_x += wl.grad_x
            grad_x += extra_gx
            np.multiply(dens.grad_y, self.density_weight, out=grad_y)
            grad_y += wl.grad_y
            grad_y += extra_gy
            precond = arena.array("precond", num_instances)
            np.multiply(self._inst_area, self.density_weight, out=precond)
            precond += self._pins_per_instance
            np.maximum(precond, 1.0, out=precond)
            grad_x /= precond
            grad_y /= precond
            grad_x[self._fixed_mask] = 0.0
            grad_y[self._fixed_mask] = 0.0
            t4 = clock()
            seconds["scatter"] += t4 - t3
            if tracer is not None:
                tracer.record_complete("gp.wirelength", t0, t1 - t0)
                tracer.record_complete("gp.density", t1, t2 - t1)
                tracer.record_complete("gp.extra", t2, t3 - t2)
                tracer.record_complete("gp.scatter", t3, t4 - t3)
        self._last_density_result = dens
        return grad_x, grad_y

    def _derive_density_weight(self, wl, dens) -> float:
        """Initial density multiplier from one (wl, density) evaluation."""
        wl_norm = float(np.abs(wl.grad_x).sum() + np.abs(wl.grad_y).sum())
        dens_norm = float(np.abs(dens.grad_x).sum() + np.abs(dens.grad_y).sum())
        if dens_norm <= 1e-12:
            return self.config.density_weight_init_ratio
        return self.config.density_weight_init_ratio * wl_norm / dens_norm

    def _initial_density_weight(self, x: np.ndarray, y: np.ndarray) -> float:
        wl = self.wirelength.evaluate(x, y, net_weights=self.net_weights)
        dens = self.density.evaluate(x, y)
        return self._derive_density_weight(wl, dens)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(
        self,
        x0: Optional[np.ndarray] = None,
        y0: Optional[np.ndarray] = None,
    ) -> PlacementResult:
        """Run global placement and return the (unlegalized) solution.

        The design's stored positions are updated to the final solution.
        """
        config = self.config
        design = self.design
        if config.history_every < 1:
            raise ValueError("history_every must be >= 1")
        if x0 is None or y0 is None:
            x0, y0 = initial_placement(design, seed=config.seed)
        x, y = clamp_to_die(design, np.asarray(x0, float), np.asarray(y0, float))

        self._update_gamma(1.0)
        # The initial density weight is derived inside iteration 1's gradient
        # evaluation (same positions and gamma as the pre-loop evaluate it
        # replaces) instead of paying a duplicate wirelength+density pass.
        self.density_weight = 0.0
        self._density_weight_pending = True

        die = design.die
        min_step = 0.01 * design.site_width
        max_step = 0.05 * max(die.width, die.height)
        optimizer = NesterovOptimizer(
            x,
            y,
            movable_mask=self._movable_mask,
            min_step=min_step,
            max_step=max_step,
        )
        self._optimizer = optimizer

        core = design.arrays
        overflow = 1.0
        hpwl = total_hpwl(design, x, y)
        converged = False
        iteration = 0
        for iteration in range(1, config.max_iterations + 1):
            with span("gp.iteration", i=iteration):
                x, y = optimizer.step_once(self._gradient)
                # In-place clamp: the returned arrays are the optimizer's
                # major solution, freshly allocated this iteration, so
                # clipping them directly keeps optimizer state and loop state
                # in sync without a copy (values identical to the copying
                # clamp).
                clamp_to_die(design, x, y, copy=False)

                dens = self._last_density_result
                overflow = dens.overflow
                self._update_gamma(overflow)
                # Grow the density multiplier only while the spreading target
                # has not been met.  Once the target is reached the multiplier
                # is frozen so flows that keep iterating (timing optimization)
                # can refine wirelength/timing without the density term
                # eventually dominating; if timing forces re-cluster cells and
                # overflow rises above the target again, growth resumes
                # automatically.
                if overflow > config.stop_overflow:
                    self.density_weight = min(
                        self.density_weight * config.density_weight_growth,
                        config.density_weight_max,
                    )

                with self.profiler.section("others"):
                    if iteration % config.history_every == 0:
                        pin_x, pin_y = self.arena.gather_pins(core, x, y)
                        hpwl = core.total_hpwl(x, y, pin_x=pin_x, pin_y=pin_y)
                        self.history.iterations.append(iteration)
                        self.history.hpwl.append(hpwl)
                        self.history.overflow.append(overflow)
                        self.history.density_weight.append(self.density_weight)
                        self.history.objective.append(hpwl)
                        tracer = active_tracer()
                        if tracer is not None:
                            tracer.gauge("gp.overflow", overflow)
                            tracer.gauge("gp.hpwl", hpwl)

                self.feedback.dispatch(self, iteration, x, y)

            if config.verbose and iteration % config.log_every == 0:
                logger.info(
                    "iter %4d  hpwl %.4e  overflow %.3f  lambda %.3e",
                    iteration,
                    hpwl,
                    overflow,
                    self.density_weight,
                )

            if iteration >= config.min_iterations and overflow <= config.stop_overflow:
                converged = True
                break

        if iteration % config.history_every != 0:
            # Last iteration skipped bookkeeping; the result still reports
            # the final HPWL.
            hpwl = total_hpwl(design, x, y)

        self.feedback.finalize(self)
        design.set_positions(x, y)
        return PlacementResult(
            x=x,
            y=y,
            hpwl=hpwl,
            overflow=overflow,
            iterations=iteration,
            converged=converged,
            history=self.history,
        )
