"""Fixture: engine-layer module using the sanctioned lazy-import seam."""


def run_everything(design):
    from repro.flow.presets import build_flow

    return build_flow("baseline").run(design)
