"""The paper's contribution: efficient critical path extraction driving a
fine-grained pin-to-pin attraction objective with a quadratic distance loss.

Public API:

* :class:`CriticalPathExtractor` — wraps the STA engine's reporting commands,
  including the proposed ``report_timing_endpoint(n, k)``.
* :class:`PinPairSet` — the maintained set ``P`` of attracted pin pairs and
  the path-sharing-aware weight update of Eq. 9.
* :class:`QuadraticLoss` / :class:`LinearLoss` / :class:`HPWLPairLoss` — the
  pin-to-pin distance losses compared in Sec. III-C.
* :class:`PinAttractionObjective` — the ``beta * PP(x, y)`` placement
  objective term (Eq. 6/10).
* :class:`EfficientTDPlacer` — the complete timing-driven placement flow of
  Fig. 1 (global placement -> periodic path-level timing analysis ->
  pin-pair weighting -> legalization -> evaluation).
* :class:`SinglePathOptimizer` — the single-path study behind Fig. 3.
"""

from repro.core.losses import HPWLPairLoss, LinearLoss, PairLoss, QuadraticLoss, make_loss
from repro.core.pin_attraction import PinAttractionObjective, PinPairSet
from repro.core.path_extraction import CriticalPathExtractor, ExtractionConfig
from repro.core.placer import EfficientTDPConfig, EfficientTDPlacer, TDPResult
from repro.core.path_optimizer import SinglePathOptimizer, PathOptimizationResult

__all__ = [
    "PairLoss",
    "QuadraticLoss",
    "LinearLoss",
    "HPWLPairLoss",
    "make_loss",
    "PinPairSet",
    "PinAttractionObjective",
    "CriticalPathExtractor",
    "ExtractionConfig",
    "EfficientTDPConfig",
    "EfficientTDPlacer",
    "TDPResult",
    "SinglePathOptimizer",
    "PathOptimizationResult",
]
