"""Circuit data model and file I/O.

Public API:

* :class:`Library`, :class:`CellType`, :class:`LibraryPin`, :class:`PinDirection`,
  :class:`TimingArcSpec` — standard-cell library model.
* :class:`Design`, :class:`Instance`, :class:`Net`, :class:`PinRef`, :class:`Row` —
  flat gate-level design with floorplan and placement state.
* :class:`DesignCore` — the array-first core every compute layer reads
  (``Instance``/``Net`` are index-backed views onto it after ``finalize()``).
* :class:`CompiledDesign` / :func:`compile_design` — frozen, picklable,
  array-only snapshots for shipping designs across processes (with an
  opt-in :class:`SharedDesignPack` shared-memory transport).
* :func:`make_generic_library` — small generic library used by the synthetic
  benchmarks and tests.
* Parsers/writers for simplified LEF/DEF/Verilog/Liberty/SDC/Bookshelf views
  live in :mod:`repro.netlist.parsers` and :mod:`repro.netlist.writers`.
"""

from repro.netlist.library import (
    CellType,
    Library,
    LibraryPin,
    PinDirection,
    TimingArcSpec,
    make_generic_library,
)
from repro.netlist.core import DesignCore, Row, as_core
from repro.netlist.design import Design, DesignArrays, Instance, Net, PinRef
from repro.netlist.compiled import (
    CompiledDesign,
    SharedDesignHandle,
    SharedDesignPack,
    compile_design,
)

__all__ = [
    "CellType",
    "Library",
    "LibraryPin",
    "PinDirection",
    "TimingArcSpec",
    "make_generic_library",
    "Design",
    "DesignArrays",
    "DesignCore",
    "as_core",
    "CompiledDesign",
    "SharedDesignHandle",
    "SharedDesignPack",
    "compile_design",
    "Instance",
    "Net",
    "PinRef",
    "Row",
]
