"""Contract-lint engine: AST-enforced invariants for the placement stack.

Five rules guard the properties the rest of the repo's performance work
depends on:

* ``kernel-purity`` — worker kernels perform no order-sensitive float
  accumulation, RNG, time, or I/O (float scatter-adds belong to the
  parent replay, which owns canonical serial order).
* ``alloc`` — steady-state GP inner-loop functions allocate nothing:
  no ``np.zeros``-family constructors, no ``out=``-less binary ufuncs.
* ``shm-unlink`` — every ``SharedMemory(create=True)`` is provably
  unlinked on all exit paths.
* ``ref-parity`` — every ``_reference_*`` implementation has a fast-path
  twin and a test naming both, so golden paths cannot drift untested.
* ``layering`` — engine packages never import the flow/CLI layer at
  module scope; worker kernel modules never import the pool engine.

Run it with ``repro lint-contracts src/`` or ``python -m repro.analysis``.
Suppress individual findings with ``# contract: allow(<rule>) reason=...``.
"""

from repro.analysis.contracts import steady_state
from repro.analysis.engine import run_lint
from repro.analysis.findings import Finding, LintReport
from repro.analysis.rules import RULE_DESCRIPTIONS, RULES, rule_ids

__all__ = [
    "Finding",
    "LintReport",
    "RULES",
    "RULE_DESCRIPTIONS",
    "rule_ids",
    "run_lint",
    "steady_state",
]
