"""Net-based timing-driven weighting schemes (the interface DREAMPlace 4.0 uses)."""

from repro.weighting.net_weighting import MomentumNetWeighting, net_worst_slack
from repro.weighting.pin_weighting import pin_criticality, smooth_pin_pair_weights

__all__ = [
    "MomentumNetWeighting",
    "net_worst_slack",
    "pin_criticality",
    "smooth_pin_pair_weights",
]
