"""Net routing topologies for RC tree construction.

Global placement does not know the routed topology of a net, so timing-driven
placers estimate it.  Two estimators are provided:

* :func:`star_topology` — every pin connects to a virtual center node (the
  pin centroid).  O(p) and fully vectorizable; the default the STA engine
  uses during placement iterations.
* :func:`mst_topology` — rectilinear minimum spanning tree over the pins
  (Prim's algorithm on Manhattan distance), rooted at the driver.  A closer
  approximation of a Steiner route for analysis/reporting.

Both return a :class:`NetTopology`: a tree of nodes (pins plus optional
virtual nodes) with per-edge lengths, which :class:`repro.timing.rc_tree.RCTree`
converts into resistors and capacitors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np


@dataclass
class NetTopology:
    """Tree topology of one net.

    ``node_xy`` holds coordinates for every node; nodes ``0..num_pins-1``
    correspond to the net's pins in their original order (driver first when
    the caller puts it first), higher indices are virtual (Steiner/star)
    nodes.  ``edges`` are ``(parent, child, length)`` triples forming a tree
    rooted at ``root`` (the driver's node).
    """

    node_xy: np.ndarray
    edges: List[Tuple[int, int, float]]
    root: int
    num_pins: int

    @property
    def total_length(self) -> float:
        return float(sum(length for _, _, length in self.edges))

    def children(self, node: int) -> List[Tuple[int, float]]:
        return [(child, length) for parent, child, length in self.edges if parent == node]


def star_topology(
    pin_x: Sequence[float],
    pin_y: Sequence[float],
    driver_index: int = 0,
) -> NetTopology:
    """Star topology: driver -> virtual center -> every sink.

    Degenerate nets (fewer than two pins) yield an empty edge list.  Two-pin
    nets connect driver and sink directly without a virtual node, which both
    matches physical routing and keeps the Elmore delay exact for that case.
    """
    xs = np.asarray(pin_x, dtype=np.float64)
    ys = np.asarray(pin_y, dtype=np.float64)
    num_pins = xs.size
    if num_pins < 2:
        return NetTopology(np.stack([xs, ys], axis=1), [], driver_index, num_pins)
    if num_pins == 2:
        sink = 1 - driver_index
        length = float(abs(xs[0] - xs[1]) + abs(ys[0] - ys[1]))
        node_xy = np.stack([xs, ys], axis=1)
        return NetTopology(node_xy, [(driver_index, sink, length)], driver_index, num_pins)

    center_x = float(xs.mean())
    center_y = float(ys.mean())
    node_xy = np.vstack([np.stack([xs, ys], axis=1), [[center_x, center_y]]])
    center = num_pins
    edges: List[Tuple[int, int, float]] = []
    driver_len = float(abs(xs[driver_index] - center_x) + abs(ys[driver_index] - center_y))
    edges.append((driver_index, center, driver_len))
    for i in range(num_pins):
        if i == driver_index:
            continue
        length = float(abs(xs[i] - center_x) + abs(ys[i] - center_y))
        edges.append((center, i, length))
    return NetTopology(node_xy, edges, driver_index, num_pins)


def mst_topology(
    pin_x: Sequence[float],
    pin_y: Sequence[float],
    driver_index: int = 0,
    *,
    max_pins_exact: int = 64,
) -> NetTopology:
    """Rectilinear MST topology rooted at the driver (Prim's algorithm).

    Nets larger than ``max_pins_exact`` pins fall back to the star topology;
    the O(p^2) Prim construction would dominate runtime on huge fan-out nets
    (clock or reset trees), exactly the nets whose topology a placer cannot
    meaningfully estimate anyway.
    """
    xs = np.asarray(pin_x, dtype=np.float64)
    ys = np.asarray(pin_y, dtype=np.float64)
    num_pins = xs.size
    if num_pins < 2:
        return NetTopology(np.stack([xs, ys], axis=1), [], driver_index, num_pins)
    if num_pins > max_pins_exact:
        return star_topology(pin_x, pin_y, driver_index)

    in_tree = np.zeros(num_pins, dtype=bool)
    in_tree[driver_index] = True
    # best_dist[i]: cheapest Manhattan distance from i to the current tree.
    best_dist = np.abs(xs - xs[driver_index]) + np.abs(ys - ys[driver_index])
    best_parent = np.full(num_pins, driver_index, dtype=np.int64)
    edges: List[Tuple[int, int, float]] = []
    for _ in range(num_pins - 1):
        candidates = np.where(~in_tree, best_dist, np.inf)
        nxt = int(np.argmin(candidates))
        edges.append((int(best_parent[nxt]), nxt, float(best_dist[nxt])))
        in_tree[nxt] = True
        dist_to_new = np.abs(xs - xs[nxt]) + np.abs(ys - ys[nxt])
        improved = (~in_tree) & (dist_to_new < best_dist)
        best_dist = np.where(improved, dist_to_new, best_dist)
        best_parent = np.where(improved, nxt, best_parent)

    node_xy = np.stack([xs, ys], axis=1)
    return NetTopology(node_xy, edges, driver_index, num_pins)


def half_perimeter(pin_x: Sequence[float], pin_y: Sequence[float]) -> float:
    """HPWL of a pin set; convenience used in tests against topology lengths."""
    xs = np.asarray(pin_x, dtype=np.float64)
    ys = np.asarray(pin_y, dtype=np.float64)
    if xs.size < 2:
        return 0.0
    return float((xs.max() - xs.min()) + (ys.max() - ys.min()))
