"""Static timing analysis engine.

Given a placed design, :class:`STAEngine` computes, for every pin, the worst
arrival time, the required arrival time, and the slack, plus the design-level
WNS and TNS metrics defined in the paper (Eqs. 2-4).  Propagation is
vectorized level-by-level so that re-running STA inside the placement loop
(every ``m`` iterations in the paper's flow) remains cheap without a C++
timer.

The engine deliberately mirrors OpenTimer's interface shape used by
DREAMPlace 4.0: ``update_timing()`` refreshes arrival/required/slack, and the
report functions in :mod:`repro.timing.report` extract critical paths from the
annotated graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.netlist.design import Design
from repro.timing.constraints import TimingConstraints
from repro.timing.delay_model import CellDelayModel, WireRCModel
from repro.timing.graph import ArcKind, TimingGraph

_NEG_INF = -1.0e30
_POS_INF = 1.0e30


@dataclass
class STAResult:
    """Snapshot of one timing update."""

    arrival: np.ndarray           # [num_pins] worst (latest) arrival time
    required: np.ndarray          # [num_pins] required arrival time
    slack: np.ndarray             # [num_pins] required - arrival
    arc_delay: np.ndarray         # [num_arcs] delay used for each arc
    net_load: np.ndarray          # [num_nets] driver load capacitance
    endpoint_pins: np.ndarray     # [num_endpoints] pin indices of endpoints
    endpoint_slack: np.ndarray    # [num_endpoints] slack per endpoint
    wns: float
    tns: float

    @property
    def failing_endpoints(self) -> np.ndarray:
        """Endpoint pin indices with negative slack, worst first."""
        mask = self.endpoint_slack < 0
        failing = self.endpoint_pins[mask]
        order = np.argsort(self.endpoint_slack[mask])
        return failing[order]

    @property
    def num_failing_endpoints(self) -> int:
        return int(np.sum(self.endpoint_slack < 0))

    def endpoint_slack_of(self, pin_index: int) -> float:
        matches = np.nonzero(self.endpoint_pins == pin_index)[0]
        if matches.size == 0:
            raise KeyError(f"Pin {pin_index} is not an endpoint")
        return float(self.endpoint_slack[matches[0]])


class STAEngine:
    """Arrival/required/slack propagation over a :class:`TimingGraph`."""

    def __init__(
        self,
        design: Design,
        constraints: Optional[TimingConstraints] = None,
        *,
        graph: Optional[TimingGraph] = None,
        wire_model: Optional[WireRCModel] = None,
    ) -> None:
        self.design = design
        self.constraints = (
            constraints if constraints is not None else TimingConstraints.from_design(design)
        )
        self.constraints.validate()
        self.graph = graph if graph is not None else TimingGraph(design)
        self.wire_model = wire_model if wire_model is not None else WireRCModel(design)
        self.cell_model = CellDelayModel(self.graph)
        self._prepare_boundary_conditions()
        self._prepare_level_buckets()
        self.last_result: Optional[STAResult] = None

    # ------------------------------------------------------------------
    # Precomputation
    # ------------------------------------------------------------------
    def _prepare_boundary_conditions(self) -> None:
        graph = self.graph
        design = self.design
        constraints = self.constraints

        self._source_pins: List[int] = []
        self._source_arrival: List[float] = []
        for pin_index in graph.startpoints:
            pin = design.pins[pin_index]
            if pin.instance.is_port:
                arrival = constraints.input_delay(pin.instance.name)
            else:
                arrival = 0.0  # ideal clock at flip-flop clock pins
            self._source_pins.append(pin_index)
            self._source_arrival.append(arrival)

        self._endpoint_pins: List[int] = []
        self._endpoint_required: List[float] = []
        period = constraints.clock_period
        for pin_index in graph.endpoints:
            pin = design.pins[pin_index]
            if pin.instance.is_port:
                required = period - constraints.output_delay(pin.instance.name)
            else:
                required = period - constraints.setup_time
            self._endpoint_pins.append(pin_index)
            self._endpoint_required.append(required)

        self.endpoint_pins = np.array(self._endpoint_pins, dtype=np.int64)
        self.endpoint_required = np.array(self._endpoint_required, dtype=np.float64)
        self.source_pins = np.array(self._source_pins, dtype=np.int64)
        self.source_arrival = np.array(self._source_arrival, dtype=np.float64)

    def _prepare_level_buckets(self) -> None:
        """Group arcs by the level of their sink (forward) / source (backward)."""
        graph = self.graph
        if graph.num_arcs == 0:
            self._forward_buckets: List[np.ndarray] = []
            self._backward_buckets: List[np.ndarray] = []
            return
        to_level = graph.level[graph.arc_to]
        from_level = graph.level[graph.arc_from]
        max_level = graph.max_level
        self._forward_buckets = [
            np.nonzero(to_level == lvl)[0] for lvl in range(1, max_level + 1)
        ]
        self._backward_buckets = [
            np.nonzero(from_level == lvl)[0] for lvl in range(max_level - 1, -1, -1)
        ]

    # ------------------------------------------------------------------
    # Timing update
    # ------------------------------------------------------------------
    def update_timing(
        self,
        x: Optional[np.ndarray] = None,
        y: Optional[np.ndarray] = None,
    ) -> STAResult:
        """Run a full STA pass for instance positions ``(x, y)``.

        When positions are omitted the design's stored positions are used.
        """
        design = self.design
        graph = self.graph
        pin_x, pin_y = design.pin_positions(x, y)

        wire = self.wire_model.evaluate(pin_x, pin_y)
        arc_delay = self.cell_model.evaluate(wire.net_load)
        # Net arcs: Elmore delay from driver to this arc's sink pin.
        net_arc_mask = graph.arc_kind == int(ArcKind.NET)
        arc_delay[net_arc_mask] = wire.sink_delay[graph.arc_to[net_arc_mask]]

        arrival = self._propagate_arrival(arc_delay)
        required = self._propagate_required(arc_delay, arrival)
        slack = required - arrival

        endpoint_arrival = arrival[self.endpoint_pins] if self.endpoint_pins.size else np.zeros(0)
        endpoint_slack = self.endpoint_required - endpoint_arrival if self.endpoint_pins.size else np.zeros(0)
        # Endpoints never reached by any path are ignored (no constraint).
        reachable = endpoint_arrival > _NEG_INF / 2
        endpoint_slack = np.where(reachable, endpoint_slack, np.inf)

        negative = endpoint_slack[endpoint_slack < 0]
        wns = float(negative.min()) if negative.size else 0.0
        tns = float(negative.sum()) if negative.size else 0.0

        result = STAResult(
            arrival=arrival,
            required=required,
            slack=slack,
            arc_delay=arc_delay,
            net_load=wire.net_load,
            endpoint_pins=self.endpoint_pins,
            endpoint_slack=endpoint_slack,
            wns=wns,
            tns=tns,
        )
        self.last_result = result
        return result

    def _propagate_arrival(self, arc_delay: np.ndarray) -> np.ndarray:
        graph = self.graph
        arrival = np.full(graph.num_pins, _NEG_INF, dtype=np.float64)
        # Pins with no fanin start at 0 so cell arcs out of floating inputs
        # do not poison downstream arrivals with -inf.
        no_fanin = np.diff(graph.fanin_offsets) == 0
        arrival[no_fanin] = 0.0
        if self.source_pins.size:
            arrival[self.source_pins] = self.source_arrival
        for bucket in self._forward_buckets:
            if bucket.size == 0:
                continue
            candidate = arrival[graph.arc_from[bucket]] + arc_delay[bucket]
            np.maximum.at(arrival, graph.arc_to[bucket], candidate)
        return arrival

    def _propagate_required(self, arc_delay: np.ndarray, arrival: np.ndarray) -> np.ndarray:
        graph = self.graph
        required = np.full(graph.num_pins, _POS_INF, dtype=np.float64)
        if self.endpoint_pins.size:
            required[self.endpoint_pins] = self.endpoint_required
        for bucket in self._backward_buckets:
            if bucket.size == 0:
                continue
            candidate = required[graph.arc_to[bucket]] - arc_delay[bucket]
            np.minimum.at(required, graph.arc_from[bucket], candidate)
        return required

    # ------------------------------------------------------------------
    # Convenience metrics
    # ------------------------------------------------------------------
    def wns(self) -> float:
        self._require_result()
        return self.last_result.wns  # type: ignore[union-attr]

    def tns(self) -> float:
        self._require_result()
        return self.last_result.tns  # type: ignore[union-attr]

    def _require_result(self) -> None:
        if self.last_result is None:
            raise RuntimeError("Call update_timing() before querying results")

    def summary(self) -> Dict[str, float]:
        self._require_result()
        result = self.last_result
        assert result is not None
        return {
            "wns": result.wns,
            "tns": result.tns,
            "failing_endpoints": result.num_failing_endpoints,
            "endpoints": int(self.endpoint_pins.size),
            "clock_period": self.constraints.clock_period,
        }
