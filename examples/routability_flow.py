#!/usr/bin/env python3
"""Routability-driven placement on the congestion-stressed design.

Runs the baseline wirelength/density flow and the ``routability`` preset
(RUDY congestion maps + the congestion-driven cell-inflation loop) on
``sb_cong_1`` — a wide, thin die with shared high-fan-out hub nets at 88%
utilization, built to overflow — then prints the congestion scores and the
inflation-round trajectory side by side.

Run:  python examples/routability_flow.py
      (or, with the package installed:  repro run sb_cong_1 --preset routability)
"""

from repro import build_flow, estimate_congestion, load_benchmark

DESIGN = "sb_cong_1"


def main() -> None:
    # Baseline: wirelength + density only, congestion-blind.
    base_design = load_benchmark(DESIGN)
    base = build_flow("dreamplace", max_iterations=300).run(base_design, seed=0)
    base_congestion = estimate_congestion(base_design, base.x, base.y)

    # Routability: the same placement engine inside the inflation loop.
    routed_design = load_benchmark(DESIGN)
    routed = build_flow("routability", max_iterations=300).run(routed_design, seed=0)
    routed_congestion = routed.context.congestion

    print(f"{'':>22} {'baseline':>12} {'routability':>12}")
    rows = [
        ("HPWL", base.evaluation.hpwl, routed.evaluation.hpwl),
        ("peak overflow", base_congestion.peak_overflow,
         routed_congestion.peak_overflow),
        ("average overflow", base_congestion.average_overflow,
         routed_congestion.average_overflow),
        ("hotspot bins", base_congestion.num_hotspots,
         routed_congestion.num_hotspots),
        ("weighted congestion", base_congestion.weighted_congestion(),
         routed_congestion.weighted_congestion()),
    ]
    for label, a, b in rows:
        print(f"{label:>22} {a:>12.3f} {b:>12.3f}")

    print("\ninflation rounds (peak overflow trajectory):")
    repair = routed.context.metadata["routability_repair"]
    for entry in repair["rounds"]:
        marker = "accepted" if entry["accepted"] else "rejected"
        print(
            f"  round {entry['round']}: peak {entry['peak_overflow']:.3f}  "
            f"hpwl {entry['hpwl']:.0f}  inflated {entry['num_inflated']:>4d} "
            f"cells ({marker})"
        )

    drop = 1.0 - routed_congestion.peak_overflow / base_congestion.peak_overflow
    cost = routed.evaluation.hpwl / base.evaluation.hpwl - 1.0
    print(f"\npeak overflow drop: {100 * drop:.0f}%  at HPWL cost {100 * cost:+.1f}%")


if __name__ == "__main__":
    main()
