"""Nesterov accelerated gradient optimizer with Barzilai-Borwein step sizes.

This is the optimizer used by ePlace/DREAMPlace for nonlinear global
placement: Nesterov's accelerated gradient method where the step size is
estimated each iteration from the displacement/gradient-change inner products
(the BB method), clamped to a sane range derived from the die dimensions.
The optimizer is agnostic of the objective; the placer supplies a gradient
callback and applies its own preconditioning before calling :meth:`step`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

import numpy as np

GradientFn = Callable[[np.ndarray, np.ndarray], Tuple[np.ndarray, np.ndarray]]


@dataclass
class OptimizerState:
    """Internal state carried across iterations."""

    major_x: np.ndarray
    major_y: np.ndarray
    reference_x: np.ndarray
    reference_y: np.ndarray
    prev_grad_x: Optional[np.ndarray] = None
    prev_grad_y: Optional[np.ndarray] = None
    prev_x: Optional[np.ndarray] = None
    prev_y: Optional[np.ndarray] = None
    momentum: float = 1.0


class NesterovOptimizer:
    """Nesterov's method with BB step estimation for placement coordinates."""

    def __init__(
        self,
        x0: np.ndarray,
        y0: np.ndarray,
        *,
        movable_mask: np.ndarray,
        min_step: float,
        max_step: float,
        initial_step: Optional[float] = None,
    ) -> None:
        if min_step <= 0 or max_step <= 0 or max_step < min_step:
            raise ValueError("Step bounds must satisfy 0 < min_step <= max_step")
        self.movable_mask = movable_mask
        self.min_step = float(min_step)
        self.max_step = float(max_step)
        self.step = float(initial_step) if initial_step is not None else float(
            np.sqrt(min_step * max_step)
        )
        self.state = OptimizerState(
            major_x=x0.copy(),
            major_y=y0.copy(),
            reference_x=x0.copy(),
            reference_y=y0.copy(),
        )
        self.iteration = 0

    # ------------------------------------------------------------------
    def _bb_step(
        self,
        x: np.ndarray,
        y: np.ndarray,
        grad_x: np.ndarray,
        grad_y: np.ndarray,
    ) -> float:
        """Barzilai-Borwein step-size estimate, clamped to the allowed range."""
        state = self.state
        if state.prev_grad_x is None or state.prev_x is None:
            return self.step
        dx = np.concatenate([x - state.prev_x, y - state.prev_y])
        dg = np.concatenate([grad_x - state.prev_grad_x, grad_y - state.prev_grad_y])
        dg_dot = float(np.dot(dg, dg))
        if dg_dot <= 1e-30:
            return self.step
        step = abs(float(np.dot(dx, dg))) / dg_dot
        return float(np.clip(step, self.min_step, self.max_step))

    def step_once(
        self,
        grad_fn: GradientFn,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Perform one Nesterov update; returns the new major solution."""
        state = self.state
        mask = self.movable_mask

        grad_x, grad_y = grad_fn(state.reference_x, state.reference_y)
        self.step = self._bb_step(state.reference_x, state.reference_y, grad_x, grad_y)

        new_major_x = state.reference_x.copy()
        new_major_y = state.reference_y.copy()
        new_major_x[mask] -= self.step * grad_x[mask]
        new_major_y[mask] -= self.step * grad_y[mask]

        # Nesterov momentum coefficient sequence a_{k+1} = (1+sqrt(4a_k^2+1))/2.
        next_momentum = 0.5 * (1.0 + np.sqrt(4.0 * state.momentum**2 + 1.0))
        beta = (state.momentum - 1.0) / next_momentum

        new_reference_x = new_major_x.copy()
        new_reference_y = new_major_y.copy()
        new_reference_x[mask] += beta * (new_major_x[mask] - state.major_x[mask])
        new_reference_y[mask] += beta * (new_major_y[mask] - state.major_y[mask])

        state.prev_x = state.reference_x
        state.prev_y = state.reference_y
        state.prev_grad_x = grad_x
        state.prev_grad_y = grad_y
        state.major_x = new_major_x
        state.major_y = new_major_y
        state.reference_x = new_reference_x
        state.reference_y = new_reference_y
        state.momentum = next_momentum
        self.iteration += 1
        return new_major_x, new_major_y

    def reset_momentum(self) -> None:
        """Restart momentum (used when the objective changes, e.g. when the
        timing term switches on or the density multiplier jumps)."""
        self.state.momentum = 1.0
        self.state.reference_x = self.state.major_x.copy()
        self.state.reference_y = self.state.major_y.copy()

    @property
    def solution(self) -> Tuple[np.ndarray, np.ndarray]:
        return self.state.major_x, self.state.major_y
