"""Cross-method metric aggregation (the paper's "Average Ratio" rows).

Tables II-IV normalize every method's metric by the proposed method's value
per design and report the geometric-mean-free simple average of those ratios.
These helpers reproduce that bookkeeping and render aligned text tables for
the benchmark harness output.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence


def ratio_table(
    values: Mapping[str, Mapping[str, float]],
    reference_method: str,
) -> Dict[str, Dict[str, float]]:
    """Per-design ratios of each method's value to the reference method's.

    ``values[method][design]`` is the raw metric.  For metrics where "more
    negative is worse" (TNS/WNS) the ratio of magnitudes is what the paper
    reports, so callers should pass absolute values.
    """
    if reference_method not in values:
        raise KeyError(f"Reference method {reference_method!r} missing from values")
    reference = values[reference_method]
    ratios: Dict[str, Dict[str, float]] = {}
    for method, per_design in values.items():
        ratios[method] = {}
        for design, value in per_design.items():
            ref = reference.get(design)
            if ref is None:
                continue
            if abs(ref) < 1e-12:
                # Reference is exactly zero: a ratio is meaningless; use 1 when
                # the other method is also zero, else infinity.
                ratios[method][design] = 1.0 if abs(value) < 1e-12 else float("inf")
            else:
                ratios[method][design] = value / ref
    return ratios


def average_ratio(
    values: Mapping[str, Mapping[str, float]],
    reference_method: str,
) -> Dict[str, float]:
    """Average of per-design ratios for each method (the table's last row)."""
    ratios = ratio_table(values, reference_method)
    averages: Dict[str, float] = {}
    for method, per_design in ratios.items():
        finite = [v for v in per_design.values() if v != float("inf")]
        averages[method] = sum(finite) / len(finite) if finite else float("nan")
    return averages


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: Optional[str] = None,
    float_format: str = "{:.2f}",
) -> str:
    """Render an aligned plain-text table (used by the benchmark harness)."""
    formatted_rows: List[List[str]] = []
    for row in rows:
        formatted: List[str] = []
        for value in row:
            if isinstance(value, float):
                formatted.append(float_format.format(value))
            else:
                formatted.append(str(value))
        formatted_rows.append(formatted)
    widths = [len(h) for h in headers]
    for row in formatted_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in formatted_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)
