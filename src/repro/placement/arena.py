"""Reusable buffer arena for the global-place inner loop.

The nonlinear placer evaluates the same gradient pipeline ~600 times per
run; before PR 7 every iteration re-allocated each work array (pin gathers,
exponential terms, combined gradients, preconditioner).  The arena is a
small named-buffer pool owned by :class:`~repro.placement.global_placer.
GlobalPlacer` and shared with the wirelength model: a buffer is allocated
the first time a name is requested and reused verbatim on every subsequent
request with the same shape/dtype, so steady-state iterations perform no
arena allocations (``allocations`` stops growing after iteration one —
asserted by the tests).

Numerical contract: arena reuse never changes results.  Consumers write
buffers with ``out=``-style element-wise operations whose values are
bitwise identical to the allocating expressions they replaced; callers that
hold onto a returned array across iterations must copy it (the optimizer
copies its ``prev_grad`` state for exactly this reason).
"""

from __future__ import annotations

from typing import Dict, Tuple, Union

import numpy as np

Shape = Union[int, Tuple[int, ...]]


class IterationArena:
    """Named pool of preallocated numpy buffers."""

    def __init__(self) -> None:
        self._buffers: Dict[str, np.ndarray] = {}
        # Total np.empty calls; steady-state iterations must not grow this.
        self.allocations = 0

    def array(self, name: str, shape: Shape, dtype=np.float64) -> np.ndarray:
        """Uninitialized buffer for ``name`` (reused while shape/dtype match)."""
        if isinstance(shape, int):
            shape = (shape,)
        buf = self._buffers.get(name)
        if buf is None or buf.shape != shape or buf.dtype != np.dtype(dtype):
            buf = np.empty(shape, dtype=dtype)
            self._buffers[name] = buf
            self.allocations += 1
        return buf

    def zeros(self, name: str, shape: Shape, dtype=np.float64) -> np.ndarray:
        """Zero-filled buffer (bitwise identical to a fresh ``np.zeros``)."""
        buf = self.array(name, shape, dtype)
        buf.fill(0)
        return buf

    def gather_pins(
        self, core, x: np.ndarray, y: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Absolute pin coordinates into reused buffers.

        Bitwise identical to ``core.pin_positions(x, y)``: ``np.take`` is an
        exact copy and the in-place add rounds identically to the allocating
        ``x[pin_instance] + pin_offset_x``.
        """
        pin_x = self.array("pin_x", core.num_pins)
        pin_y = self.array("pin_y", core.num_pins)
        np.take(x, core.pin_instance, out=pin_x)
        pin_x += core.pin_offset_x
        np.take(y, core.pin_instance, out=pin_y)
        pin_y += core.pin_offset_y
        return pin_x, pin_y
