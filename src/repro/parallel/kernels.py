"""Shard kernels dispatched by the parallel kernel engine.

A kernel is a named function ``fn(arrays, args) -> result`` where ``arrays``
is a flat ``{name: ndarray}`` namespace (the union of the shared blocks a
call was given) and ``args`` is a small picklable tuple — almost always a
contiguous index range ``(start, end)`` plus a few scalars.  Kernels are
looked up *by name* so worker processes never unpickle closures: the parent
sends ``("run", name, ...)`` and the worker resolves the same registry.

Bit-exactness contract
----------------------

Every kernel here performs only work whose result is independent of the
shard decomposition:

* elementwise arithmetic (per-pin coordinates, per-cell splat weights) —
  trivially identical per element;
* ``min``/``max`` reductions over fixed index sets (net bounding boxes, STA
  arrival/required candidates) — IEEE min/max is associative and
  commutative for the NaN-free inputs these paths produce, so any grouping
  yields the same bits;
* integer accumulation (pin-density counts) — exact under any summation
  order;
* per-net sequential folds over *whole* nets (the WA-wirelength
  ``np.bincount`` sums) — every net lives entirely inside one shard, so
  each per-net fold sees the same addends in the same order as the serial
  single-pass ``bincount``.

Order-sensitive floating-point scatter-adds (``np.add.at`` on the RUDY
corner grid, the cloud-in-cell density deposit) are deliberately **not**
sharded: workers only produce the per-element indices and values, and the
parent replays the scatter in the exact serial order.  This is what lets the
``workers=N`` paths promise bitwise equality with ``workers=0`` instead of
"equal up to roundoff".
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from repro.timing.graph import csr_gather as _csr_gather

__all__ = ["register_kernel", "get_kernel", "run_kernel", "kernel_names"]

Kernel = Callable[[Dict[str, np.ndarray], tuple], object]

_KERNELS: Dict[str, Kernel] = {}


def register_kernel(name: str) -> Callable[[Kernel], Kernel]:
    """Class-level decorator registering ``fn`` under ``name``."""

    def wrap(fn: Kernel) -> Kernel:
        if name in _KERNELS:
            raise ValueError(f"kernel {name!r} already registered")
        _KERNELS[name] = fn
        return fn

    return wrap


def get_kernel(name: str) -> Kernel:
    try:
        return _KERNELS[name]
    except KeyError:
        raise KeyError(f"unknown kernel {name!r}; known: {sorted(_KERNELS)}") from None


def run_kernel(name: str, arrays: Dict[str, np.ndarray], args: tuple) -> object:
    """Execute one kernel inline (used by workers and the serial runner)."""
    return get_kernel(name)(arrays, args)


def kernel_names() -> tuple:
    return tuple(sorted(_KERNELS))


# ----------------------------------------------------------------------
# RUDY congestion kernels
# ----------------------------------------------------------------------
@register_kernel("rudy_bbox")
def _rudy_bbox(a: Dict[str, np.ndarray], args: tuple) -> None:
    """Bounding boxes of active nets ``[s, e)`` from the filtered CSR pins.

    Writes ``bbox_{xmin,xmax,ymin,ymax}[s:e]``.  Per-pin coordinates use the
    same ``x[pin_instance] + pin_offset`` expression as
    ``DesignCore.pin_positions`` and the min/max reduction is exact, so the
    result matches the serial reduction bit for bit.
    """
    s, e = args
    if e <= s:
        return None
    offsets = a["active_csr_offsets"]
    lo = int(offsets[s])
    hi = int(offsets[e])
    pins = a["csr_pins"][lo:hi]
    inst = a["pin_instance"][pins]
    px = a["x"][inst] + a["pin_offset_x"][pins]
    py = a["y"][inst] + a["pin_offset_y"][pins]
    starts = (offsets[s:e] - lo).astype(np.int64)
    a["bbox_xmin"][s:e] = np.minimum.reduceat(px, starts)
    a["bbox_xmax"][s:e] = np.maximum.reduceat(px, starts)
    a["bbox_ymin"][s:e] = np.minimum.reduceat(py, starts)
    a["bbox_ymax"][s:e] = np.maximum.reduceat(py, starts)
    return None


@register_kernel("pin_bins")
def _pin_bins(a: Dict[str, np.ndarray], args: tuple) -> np.ndarray:
    """Integer pin-density counts for pins ``[s, e)`` over the full grid.

    Returns an ``int64`` flat partial grid; partials sum exactly, so the
    parent's shard-order total equals the serial single-pass ``bincount``.
    """
    s, e, nbx, nby, xl, yl, bin_w, bin_h = args
    inst = a["pin_instance"][s:e]
    px = a["x"][inst] + a["pin_offset_x"][s:e]
    py = a["y"][inst] + a["pin_offset_y"][s:e]
    pu = np.clip(np.floor((px - xl) / bin_w).astype(np.int64), 0, nbx - 1)
    pv = np.clip(np.floor((py - yl) / bin_h).astype(np.int64), 0, nby - 1)
    return np.bincount(pu * nby + pv, minlength=nbx * nby)


# ----------------------------------------------------------------------
# STA level-sweep kernels
# ----------------------------------------------------------------------
@register_kernel("sta_forward")
def _sta_forward(a: Dict[str, np.ndarray], args: tuple) -> int:
    """Arrival times of ``level_pins[s:e]`` (all pins on one logic level).

    Pin-centric form of the serial arc-centric ``np.maximum.at`` sweep:
    ``arrival[p] = max(base[p], max over fanin candidates)``.  Pins within a
    level have no arcs between them, writes are disjoint across shards, and
    ``max`` is exact — bitwise identical under any split of the level.
    """
    s, e = args
    pins = a["level_pins"][s:e]
    new = a["base_arrival"][pins].copy()
    flat, lengths = _csr_gather(a["fanin_offsets"], a["fanin_arcs"], pins)
    if flat.size:
        nonzero = lengths > 0
        candidates = a["arrival"][a["arc_from"][flat]] + a["arc_delay"][flat]
        reduced = np.maximum.reduceat(
            candidates, np.cumsum(lengths[nonzero]) - lengths[nonzero]
        )
        new[nonzero] = np.maximum(new[nonzero], reduced)
    a["arrival"][pins] = new
    return int(pins.size)


@register_kernel("sta_backward")
def _sta_backward(a: Dict[str, np.ndarray], args: tuple) -> int:
    """Required times of ``level_pins[s:e]`` — mirror of ``sta_forward``."""
    s, e = args
    pins = a["level_pins"][s:e]
    new = a["base_required"][pins].copy()
    flat, lengths = _csr_gather(a["fanout_offsets"], a["fanout_arcs"], pins)
    if flat.size:
        nonzero = lengths > 0
        candidates = a["required"][a["arc_to"][flat]] - a["arc_delay"][flat]
        reduced = np.minimum.reduceat(
            candidates, np.cumsum(lengths[nonzero]) - lengths[nonzero]
        )
        new[nonzero] = np.minimum(new[nonzero], reduced)
    a["required"][pins] = new
    return int(pins.size)


# ----------------------------------------------------------------------
# Density splat kernel
# ----------------------------------------------------------------------
@register_kernel("density_terms")
def _density_terms(a: Dict[str, np.ndarray], args: tuple) -> None:
    """Cloud-in-cell bin indices and weights for movable cells ``[s, e)``.

    Writes ``iu/iv/iu1/iv1`` and the four corner weights ``w00/w10/w01/w11``
    (the exact expressions from ``ElectrostaticDensity._splat``); the parent
    replays the ``np.add.at`` deposits in serial order so the grid matches
    the serial splat bit for bit.
    """
    s, e, xl, yl, bin_w, bin_h, nbx, nby = args
    mov = a["movable"][s:e]
    cx = a["x"][mov] + a["half_w"][s:e]
    cy = a["y"][mov] + a["half_h"][s:e]
    u = (cx - xl) / bin_w - 0.5
    v = (cy - yl) / bin_h - 0.5
    u = np.clip(u, 0.0, nbx - 1.0)
    v = np.clip(v, 0.0, nby - 1.0)
    iu = np.floor(u).astype(np.int64)
    iv = np.floor(v).astype(np.int64)
    fu = u - iu
    fv = v - iv
    area = a["area"][s:e]
    a["iu"][s:e] = iu
    a["iv"][s:e] = iv
    a["iu1"][s:e] = np.minimum(iu + 1, nbx - 1)
    a["iv1"][s:e] = np.minimum(iv + 1, nby - 1)
    a["w00"][s:e] = area * (1 - fu) * (1 - fv)
    a["w10"][s:e] = area * fu * (1 - fv)
    a["w01"][s:e] = area * (1 - fu) * fv
    a["w11"][s:e] = area * fu * fv
    return None


# ----------------------------------------------------------------------
# WA wirelength kernel
# ----------------------------------------------------------------------
@register_kernel("wa_wirelength")
def _wa_wirelength(a: Dict[str, np.ndarray], args: tuple) -> None:
    """WA values and pin gradients for valid nets ``[s, e)`` (both axes).

    ``[lo, hi)`` is the matching filtered-CSR pin range (nets are whole, so
    shard boundaries never split a net).  Writes ``per_net_{x,y}[s:e]`` and
    ``pin_grad_{x,y}[lo:hi]``; the parent replays the value sum and the
    pin→instance scatter in canonical order.  All per-net reductions here
    (``reduceat`` extrema, ``bincount`` folds) see exactly the pins the
    serial plan path feeds them, in the same order — bitwise identical for
    any worker count.
    """
    s, e, lo, hi, gamma = args
    if e <= s:
        return None
    seg = a["seg_id"][lo:hi] - s
    starts = (a["seg_starts"][s:e] - lo).astype(np.int64)
    pinst = a["pinst"][lo:hi]
    net_w = a["net_w"][s:e]
    num_local = e - s
    for axis in ("x", "y"):
        c = a[axis][pinst] + a[f"off_{axis}"][lo:hi]
        cmax = np.maximum.reduceat(c, starts)
        cmin = np.minimum.reduceat(c, starts)
        exp_pos = np.exp((c - cmax[seg]) / gamma)
        exp_neg = np.exp((cmin[seg] - c) / gamma)
        sum_pos = np.bincount(seg, weights=exp_pos, minlength=num_local)
        sum_neg = np.bincount(seg, weights=exp_neg, minlength=num_local)
        sum_cpos = np.bincount(seg, weights=c * exp_pos, minlength=num_local)
        sum_cneg = np.bincount(seg, weights=c * exp_neg, minlength=num_local)
        with np.errstate(invalid="ignore", divide="ignore"):
            wa_max = np.where(sum_pos > 0, sum_cpos / np.maximum(sum_pos, 1e-300), 0.0)
            wa_min = np.where(sum_neg > 0, sum_cneg / np.maximum(sum_neg, 1e-300), 0.0)
        a[f"per_net_{axis}"][s:e] = wa_max - wa_min
        sp = sum_pos[seg]
        sn = sum_neg[seg]
        scp = sum_cpos[seg]
        scn = sum_cneg[seg]
        grad_max = (
            exp_pos * ((1.0 + c / gamma) * sp - scp / gamma) / np.maximum(sp * sp, 1e-300)
        )
        grad_min = (
            exp_neg * ((1.0 - c / gamma) * sn + scn / gamma) / np.maximum(sn * sn, 1e-300)
        )
        a[f"pin_grad_{axis}"][lo:hi] = (grad_max - grad_min) * net_w[seg]
    return None


# ----------------------------------------------------------------------
# Legalization row-band candidate kernel
# ----------------------------------------------------------------------
@register_kernel("legalize_rowband")
def _legalize_rowband(a: Dict[str, np.ndarray], args: tuple) -> None:
    """Nearest-row candidate bands for legalization cells ``[s, e)``.

    For each cell (in the legalizer's x-sorted processing order) this emits
    the ``k`` placement rows nearest to the cell's desired y, in increasing
    |row_y - y| order — the row band Abacus walks when it looks for a row
    with free capacity.  ``row_y`` is sorted ascending (rows are built
    bottom-up), so a ``searchsorted`` seed plus a two-pointer expansion
    replaces the all-rows ``argsort`` of the reference path.

    Tie-break (documented, parity-tested): when a cell sits exactly midway
    between two rows the *lower* row index is emitted first — the same
    order a stable argsort of ``|row_y - y|`` produces.  Slots past the row
    count (``k > num_rows``) are filled with ``-1``.

    Every step is elementwise over the cell slice and writes the disjoint
    ``cand_rows[s*k:e*k]`` range, so the result is independent of the shard
    decomposition; the parent replays the (order-sensitive, sequential)
    cluster insertion itself.
    """
    s, e, k = args
    if e <= s:
        return None
    row_y = a["row_y"]
    num_rows = int(row_y.size)
    y = a["cell_y"][s:e]
    m = int(y.size)
    out = a["cand_rows"]
    # searchsorted(left): row_y[hi-1] < y <= row_y[hi], so the band starts
    # at the tightest bracketing pair (lo, hi) = (hi-1, hi).
    hi = np.searchsorted(row_y, y, side="left").astype(np.int64)
    lo = hi - 1
    slots = s * k + np.arange(m, dtype=np.int64) * k
    for j in range(k):
        lo_valid = lo >= 0
        hi_valid = hi < num_rows
        # |row_y - y| without np.abs: the pointers never cross, so the
        # bracketing differences are the nonnegative distances directly.
        d_lo = np.where(lo_valid, y - row_y[np.where(lo_valid, lo, 0)], np.inf)
        d_hi = np.where(
            hi_valid, row_y[np.where(hi_valid, hi, num_rows - 1)] - y, np.inf
        )
        # <= : equidistant rows resolve to the lower index (stable order).
        take_lo = d_lo <= d_hi
        exhausted = ~lo_valid & ~hi_valid
        choice = np.where(take_lo, lo, hi)
        choice[exhausted] = -1
        out[slots + j] = choice
        advance = ~exhausted
        lo = np.where(take_lo & advance, lo - 1, lo)
        hi = np.where(~take_lo & advance, hi + 1, hi)
    return None


# ----------------------------------------------------------------------
# Self-test kernels (pool plumbing / crash-safety tests)
# ----------------------------------------------------------------------
@register_kernel("_selftest_sum")
def _selftest_sum(a: Dict[str, np.ndarray], args: tuple) -> float:
    s, e = args
    return float(np.sum(a["data"][s:e]))


@register_kernel("_selftest_scale")
def _selftest_scale(a: Dict[str, np.ndarray], args: tuple) -> None:
    s, e, factor = args
    a["out"][s:e] = a["data"][s:e] * factor
    return None


@register_kernel("_selftest_fail")
def _selftest_fail(a: Dict[str, np.ndarray], args: tuple) -> None:
    raise RuntimeError("selftest kernel failure (intentional)")
