"""Wirelength models: exact HPWL and the weighted-average (WA) smooth model.

The WA model (Hsu, Chang, Balabanov, DAC'11) approximates the max/min of the
pin coordinates of a net with log-sum-exp-style weighted averages controlled
by a smoothing parameter ``gamma``; it is the wirelength model used by
DREAMPlace and therefore by every placer in this library.  Values and
gradients are computed for all nets at once from the design core's CSR
net-to-pin arrays, then pin gradients are accumulated onto instances.

Every entry point takes either a :class:`repro.netlist.Design` or a bare
:class:`repro.netlist.core.DesignCore` — the smooth model never touches the
object netlist.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.netlist.core import as_core


def hpwl_per_net(
    design,
    x: Optional[np.ndarray] = None,
    y: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Exact half-perimeter wirelength of every net (zeros for degenerate nets)."""
    return as_core(design).hpwl_per_net(x, y)


def total_hpwl(
    design,
    x: Optional[np.ndarray] = None,
    y: Optional[np.ndarray] = None,
    *,
    net_weights: Optional[np.ndarray] = None,
) -> float:
    """Total (optionally net-weighted) HPWL of the design."""
    return as_core(design).total_hpwl(x, y, net_weights=net_weights)


@dataclass
class WirelengthResult:
    """Value and per-instance gradient of the smooth wirelength."""

    value: float
    grad_x: np.ndarray
    grad_y: np.ndarray


class WeightedAverageWirelength:
    """Weighted-average smoothed wirelength with analytic gradients.

    ``gamma`` controls smoothness: smaller values track HPWL more closely but
    yield stiffer gradients.  DREAMPlace anneals gamma with overflow; the
    :class:`repro.placement.global_placer.GlobalPlacer` does the same through
    :meth:`set_gamma`.
    """

    def __init__(self, design, *, gamma: float = 5.0) -> None:
        core = as_core(design)
        self.core = core
        self.gamma = float(gamma)
        counts = np.diff(core.net_pin_offsets)
        # Only nets with at least two pins contribute wirelength.
        self._valid_nets = np.nonzero(counts >= 2)[0]
        valid_mask = np.isin(core.csr_net, self._valid_nets)
        self._csr_pins = core.net_pin_index[valid_mask]
        self._csr_net = core.csr_net[valid_mask]
        self._pin_instance = core.pin_instance
        self._num_nets = core.num_nets
        self._num_instances = core.num_instances
        self._movable_mask = core.movable_mask

    def set_gamma(self, gamma: float) -> None:
        if gamma <= 0:
            raise ValueError("gamma must be positive")
        self.gamma = float(gamma)

    def evaluate(
        self,
        x: np.ndarray,
        y: np.ndarray,
        *,
        net_weights: Optional[np.ndarray] = None,
    ) -> WirelengthResult:
        """Smoothed wirelength and its gradient w.r.t. instance positions."""
        pin_x, pin_y = self.core.pin_positions(x, y)
        weights = (
            np.ones(self._num_nets, dtype=np.float64)
            if net_weights is None
            else np.asarray(net_weights, dtype=np.float64)
        )

        value_x, pin_grad_x = self._directional(pin_x, weights)
        value_y, pin_grad_y = self._directional(pin_y, weights)

        grad_x = np.zeros(self._num_instances, dtype=np.float64)
        grad_y = np.zeros(self._num_instances, dtype=np.float64)
        np.add.at(grad_x, self._pin_instance[self._csr_pins], pin_grad_x)
        np.add.at(grad_y, self._pin_instance[self._csr_pins], pin_grad_y)
        grad_x[~self._movable_mask] = 0.0
        grad_y[~self._movable_mask] = 0.0
        return WirelengthResult(value=value_x + value_y, grad_x=grad_x, grad_y=grad_y)

    def _directional(
        self, coord: np.ndarray, net_weights: np.ndarray
    ) -> Tuple[float, np.ndarray]:
        """WA wirelength and per-CSR-pin gradient along one axis."""
        gamma = self.gamma
        pins = self._csr_pins
        nets = self._csr_net
        num_nets = self._num_nets
        c = coord[pins]

        # Stabilize exponentials per net.
        cmax = np.full(num_nets, -np.inf)
        cmin = np.full(num_nets, np.inf)
        np.maximum.at(cmax, nets, c)
        np.minimum.at(cmin, nets, c)
        exp_pos = np.exp((c - cmax[nets]) / gamma)
        exp_neg = np.exp((cmin[nets] - c) / gamma)

        sum_pos = np.bincount(nets, weights=exp_pos, minlength=num_nets)
        sum_neg = np.bincount(nets, weights=exp_neg, minlength=num_nets)
        sum_cpos = np.bincount(nets, weights=c * exp_pos, minlength=num_nets)
        sum_cneg = np.bincount(nets, weights=c * exp_neg, minlength=num_nets)

        with np.errstate(invalid="ignore", divide="ignore"):
            wa_max = np.where(sum_pos > 0, sum_cpos / np.maximum(sum_pos, 1e-300), 0.0)
            wa_min = np.where(sum_neg > 0, sum_cneg / np.maximum(sum_neg, 1e-300), 0.0)
        per_net = wa_max - wa_min
        value = float(np.sum(per_net * net_weights))

        # Gradient of the WA max/min estimators w.r.t. each pin coordinate.
        sp = sum_pos[nets]
        sn = sum_neg[nets]
        scp = sum_cpos[nets]
        scn = sum_cneg[nets]
        grad_max = exp_pos * ((1.0 + c / gamma) * sp - scp / gamma) / np.maximum(sp * sp, 1e-300)
        grad_min = exp_neg * ((1.0 - c / gamma) * sn + scn / gamma) / np.maximum(sn * sn, 1e-300)
        pin_grad = (grad_max - grad_min) * net_weights[nets]
        return value, pin_grad
