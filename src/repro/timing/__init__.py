"""Static timing analysis substrate (OpenTimer stand-in).

The package provides:

* :class:`TimingGraph` — pin-level timing DAG (net arcs + cell arcs) with
  levelization and clock-network handling.
* :class:`CellDelayModel` / :class:`WireRCModel` — NLDM-like cell delays and
  Elmore wire delays on star or Steiner RC topologies.
* :class:`RCTree` — explicit RC tree with exact Elmore delay evaluation.
* :class:`STAEngine` — arrival/required/slack propagation, WNS/TNS.
* :func:`report_timing` / :func:`report_timing_endpoint` — critical path
  enumeration, including the paper's O(n*k) endpoint-centric extraction.
"""

from repro.timing.graph import Arc, ArcKind, TimingGraph
from repro.timing.delay_model import CellDelayModel, WireRCModel
from repro.timing.rc_tree import RCTree
from repro.timing.steiner import star_topology, mst_topology, NetTopology
from repro.timing.sta import STAEngine, STAResult
from repro.timing.mcmm import (
    CORNER_PRESETS,
    MultiCornerResult,
    MultiCornerSTA,
    corner_preset,
    resolve_corners,
)
from repro.timing.report import (
    TimingPath,
    report_timing,
    report_timing_endpoint,
    PathExtractionStats,
)
from repro.timing.constraints import Corner, TimingConstraints

__all__ = [
    "Arc",
    "ArcKind",
    "TimingGraph",
    "CellDelayModel",
    "WireRCModel",
    "RCTree",
    "star_topology",
    "mst_topology",
    "NetTopology",
    "STAEngine",
    "STAResult",
    "CORNER_PRESETS",
    "Corner",
    "MultiCornerResult",
    "MultiCornerSTA",
    "corner_preset",
    "resolve_corners",
    "TimingPath",
    "report_timing",
    "report_timing_endpoint",
    "PathExtractionStats",
    "TimingConstraints",
]
