"""Shared utilities: geometry helpers, RNG handling, profiling, logging."""

from repro.utils.geometry import BoundingBox, Rect, manhattan_distance, euclidean_distance
from repro.utils.rng import make_rng
from repro.utils.profiling import RuntimeProfiler, Timer
from repro.utils.logging import get_logger

__all__ = [
    "BoundingBox",
    "Rect",
    "manhattan_distance",
    "euclidean_distance",
    "make_rng",
    "RuntimeProfiler",
    "Timer",
    "get_logger",
]
