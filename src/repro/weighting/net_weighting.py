"""Momentum-based net weighting (DREAMPlace 4.0 style).

DREAMPlace 4.0 periodically queries the timer for pin slacks, derives a
criticality per net from the worst slack of the net's pins, and folds it into
the net weights with a momentum term so weights grow smoothly across timing
iterations (Eq. 5 of the paper).  This module reimplements that interface on
top of the :class:`repro.timing.STAEngine`; it is used both by the
DREAMPlace 4.0 baseline and by the paper's "w/o Path Extraction" ablation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.netlist.design import Design
from repro.timing.sta import STAResult


def net_worst_slack(design: Design, result: STAResult) -> np.ndarray:
    """Worst (most negative) pin slack of each net.

    Pins on unconstrained cones carry +inf-like slacks; nets with no
    constrained pin keep a large positive value and therefore zero
    criticality.
    """
    arrays = design.arrays
    num_nets = arrays.num_nets
    worst = np.full(num_nets, np.inf, dtype=np.float64)
    csr_net = np.repeat(np.arange(num_nets), np.diff(arrays.net_pin_offsets))
    pin_slack = result.slack[arrays.net_pin_index]
    np.minimum.at(worst, csr_net, pin_slack)
    return worst


@dataclass
class MomentumNetWeighting:
    """Momentum-guided multiplicative net weighting.

    Each timing iteration, a net's criticality is its share of the worst
    negative slack, and its weight is pushed toward ``w * (1 + max_boost *
    criticality)`` with momentum ``decay``:

        w_e  <-  decay * w_e + (1 - decay) * w_e * (1 + max_boost * crit_e)

    Non-critical nets keep their weight, so repeated applications compound on
    persistently critical nets — the "momentum" behaviour of DREAMPlace 4.0.
    """

    decay: float = 0.75
    max_boost: float = 3.0
    max_weight: float = 16.0

    def update(
        self,
        design: Design,
        result: STAResult,
        weights: np.ndarray,
    ) -> np.ndarray:
        """Return updated net weights (the input array is not modified)."""
        if not 0.0 <= self.decay <= 1.0:
            raise ValueError("decay must be within [0, 1]")
        worst = net_worst_slack(design, result)
        wns = min(result.wns, -1e-12)
        criticality = np.clip(worst / wns, 0.0, 1.0)  # 1 at the WNS net, 0 if non-negative
        criticality[~np.isfinite(worst)] = 0.0
        target = weights * (1.0 + self.max_boost * criticality)
        updated = self.decay * weights + (1.0 - self.decay) * target
        return np.minimum(updated, self.max_weight)
