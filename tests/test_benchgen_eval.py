"""Tests for benchmark generation, the evaluation kit, and metric helpers."""

import pytest

from repro.benchgen import CircuitSpec, SB_MINI_SUITE, benchmark_names, generate_circuit, load_benchmark
from repro.evaluation import Evaluator, average_ratio, evaluate_placement, format_table, ratio_table
from repro.timing import STAEngine, TimingGraph


class TestCircuitSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitSpec(num_cells=5)
        with pytest.raises(ValueError):
            CircuitSpec(sequential_fraction=0.95)
        with pytest.raises(ValueError):
            CircuitSpec(logic_depth=0)
        with pytest.raises(ValueError):
            CircuitSpec(utilization=1.2)
        with pytest.raises(ValueError):
            CircuitSpec(clock_tightness=0.0)


class TestGenerator:
    def test_deterministic(self, small_spec):
        a = generate_circuit(small_spec)
        b = generate_circuit(small_spec)
        assert [i.name for i in a.instances] == [i.name for i in b.instances]
        assert [n.name for n in a.nets] == [n.name for n in b.nets]
        assert a.clock_period == b.clock_period

    def test_size_close_to_request(self, small_design, small_spec):
        assert abs(len(small_design.cells) - small_spec.num_cells) <= 2

    def test_sequential_fraction(self, small_design, small_spec):
        num_seq = sum(1 for c in small_design.cells if c.is_sequential)
        expected = small_spec.num_cells * small_spec.sequential_fraction
        assert abs(num_seq - expected) <= max(3, 0.1 * expected)

    def test_every_net_has_single_driver(self, small_design):
        for net in small_design.nets:
            drivers = [p for p in net.pins if p.is_driver]
            assert len(drivers) == 1, net.name

    def test_every_input_pin_connected(self, small_design):
        for pin in small_design.pins:
            if not pin.instance.is_port and pin.lib_pin.is_input:
                assert pin.net is not None, pin.full_name

    def test_clock_reaches_all_flops(self, small_design):
        clock_net = None
        for net in small_design.nets:
            if any(p.lib_pin.is_clock for p in net.sinks):
                clock_net = net
                break
        assert clock_net is not None
        flops = [c for c in small_design.cells if c.is_sequential]
        clocked = {p.instance.name for p in clock_net.sinks}
        assert {f.name for f in flops} <= clocked

    def test_graph_is_acyclic_and_constrained(self, small_design):
        graph = TimingGraph(small_design)  # raises on loops
        assert graph.endpoints and graph.startpoints

    def test_utilization_below_requested(self, small_design, small_spec):
        assert small_design.utilization() <= small_spec.utilization + 0.05

    def test_ports_on_boundary(self, small_design):
        die = small_design.die
        for port in small_design.ports:
            on_edge = (
                abs(port.x - die.xl) < 1e-6
                or abs(port.x - die.xh) < 1e-6
                or abs(port.y - die.yl) < 1e-6
                or abs(port.y - die.yh) < 1e-6
            )
            assert on_edge, port.name

    def test_design_has_failing_endpoints_when_tight(self, small_design):
        engine = STAEngine(small_design)
        # Even at the centered initial placement the tight clock must bite.
        result = engine.update_timing()
        assert result.num_failing_endpoints > 0


class TestSuite:
    def test_suite_has_eight_designs(self):
        assert len(SB_MINI_SUITE) == 8
        assert benchmark_names()[0] == "sb_mini_1"

    def test_load_unknown_raises(self):
        with pytest.raises(KeyError):
            load_benchmark("superblue999")

    def test_load_with_scale(self):
        design = load_benchmark("sb_mini_18", scale=0.5)
        full = SB_MINI_SUITE["sb_mini_18"].num_cells
        assert abs(len(design.cells) - full * 0.5) < 0.2 * full

    def test_specs_are_distinct(self):
        sizes = {spec.num_cells for spec in SB_MINI_SUITE.values()}
        assert len(sizes) >= 6


class TestEvaluator:
    def test_reports_match_engine(self, fresh_small_design):
        evaluator = Evaluator(fresh_small_design)
        report = evaluator.evaluate()
        assert report.hpwl > 0
        assert report.tns <= 0
        assert report.wns <= 0
        assert report.num_endpoints > 0
        assert report.tns <= report.wns

    def test_one_shot_wrapper(self, fresh_small_design):
        report = evaluate_placement(fresh_small_design)
        assert report.design_name == fresh_small_design.name

    def test_overlap_detected_for_stacked_cells(self, tiny_design, tiny_constraints):
        design = tiny_design
        # Stack u1 and u2 on the same spot in the same row.
        design.instance("u1").x = 100.0
        design.instance("u2").x = 100.0
        design.instance("u1").y = 96.0
        design.instance("u2").y = 96.0
        report = Evaluator(design, tiny_constraints).evaluate()
        assert report.overlap_area > 0

    def test_out_of_die_detected(self, tiny_design, tiny_constraints):
        tiny_design.instance("u1").x = 1e6
        report = Evaluator(tiny_design, tiny_constraints).evaluate()
        assert report.out_of_die_cells >= 1

    def test_as_dict_keys(self, fresh_small_design):
        d = evaluate_placement(fresh_small_design).as_dict()
        assert {"design", "hpwl", "tns", "wns"} <= set(d)


class TestMetrics:
    def test_ratio_table(self):
        values = {
            "ours": {"a": 10.0, "b": 20.0},
            "base": {"a": 20.0, "b": 30.0},
        }
        ratios = ratio_table(values, "ours")
        assert ratios["base"]["a"] == pytest.approx(2.0)
        assert ratios["ours"]["b"] == pytest.approx(1.0)

    def test_average_ratio(self):
        values = {
            "ours": {"a": 10.0, "b": 20.0},
            "base": {"a": 20.0, "b": 60.0},
        }
        averages = average_ratio(values, "ours")
        assert averages["base"] == pytest.approx((2.0 + 3.0) / 2)
        assert averages["ours"] == pytest.approx(1.0)

    def test_zero_reference(self):
        values = {"ours": {"a": 0.0}, "base": {"a": 5.0}}
        ratios = ratio_table(values, "ours")
        assert ratios["base"]["a"] == float("inf")
        assert ratios["ours"]["a"] == 1.0

    def test_missing_reference_raises(self):
        with pytest.raises(KeyError):
            ratio_table({"base": {"a": 1.0}}, "ours")

    def test_format_table(self):
        text = format_table(["name", "value"], [["x", 1.234], ["yy", 5.0]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert "1.23" in text


class TestXLGenerator:
    """The vectorized XL generator: deterministic, DAG-leveled, suite-wired."""

    def test_xl_names_registered(self):
        from repro.benchgen.suite import available_design_names

        names = available_design_names()
        assert "sb_xl_1" in names and "sb_xl_2" in names

    def test_xl_generation_is_deterministic(self):
        import numpy as np

        a = load_benchmark("sb_xl_1", scale=0.03)
        b = load_benchmark("sb_xl_1", scale=0.03)
        assert a.num_instances == b.num_instances
        assert a.num_pins == b.num_pins
        assert np.array_equal(a.core.net_pin_index, b.core.net_pin_index)
        assert a.clock_period == b.clock_period

    def test_xl_scales_and_levelizes(self):
        design = load_benchmark("sb_xl_2", scale=0.02)
        assert design.num_instances >= 5000
        # The combinational graph is a DAG: STA levelization must succeed
        # and produce the spec's depth plus register/IO stages.
        graph = TimingGraph(design)
        assert graph.max_level >= 10
        engine = STAEngine(design)
        result = engine.update_timing()
        assert result.arrival.shape == (design.num_pins,)
