"""Shared fixtures for the test suite.

Expensive artifacts (generated benchmarks, placed designs) are module- or
session-scoped so the suite stays fast while still exercising the real flows.
"""

from __future__ import annotations

import pytest

from repro.benchgen import CircuitSpec, generate_circuit
from repro.netlist import Design, make_generic_library
from repro.timing import TimingConstraints


@pytest.fixture(scope="session")
def library():
    return make_generic_library()


def build_tiny_design(library, *, period: float = 100.0) -> Design:
    """A 4-cell pipeline: in0 -> ff1 -> INV -> BUF -> ff2 -> out0."""
    design = Design("tiny", die=(0, 0, 200, 204), library=library)
    design.add_port("in0", "input", x=0, y=100)
    design.add_port("clk", "input", x=0, y=0)
    design.add_port("out0", "output", x=200, y=100)
    design.add_instance("ff1", "DFF_X1", x=20, y=96)
    design.add_instance("u1", "INV_X1", x=100, y=96)
    design.add_instance("u2", "BUF_X1", x=150, y=96)
    design.add_instance("ff2", "DFF_X1", x=180, y=96)
    for net in ["nin", "nclk", "n1", "n2", "n3", "nq2"]:
        design.add_net(net)
    design.connect("nin", "in0")
    design.connect("nin", "ff1", "d")
    design.connect("nclk", "clk")
    design.connect("nclk", "ff1", "ck")
    design.connect("nclk", "ff2", "ck")
    design.connect("n1", "ff1", "q")
    design.connect("n1", "u1", "a")
    design.connect("n2", "u1", "o")
    design.connect("n2", "u2", "a")
    design.connect("n3", "u2", "o")
    design.connect("n3", "ff2", "d")
    design.connect("nq2", "ff2", "q")
    design.connect("nq2", "out0")
    design.clock_period = period
    design.clock_port = "clk"
    design.finalize()
    return design


@pytest.fixture()
def tiny_design(library):
    return build_tiny_design(library)


@pytest.fixture()
def tiny_constraints():
    return TimingConstraints(clock_period=100.0, clock_port="clk")


@pytest.fixture(scope="session")
def small_spec():
    return CircuitSpec(
        name="unit_small",
        num_cells=220,
        sequential_fraction=0.2,
        logic_depth=6,
        num_primary_inputs=8,
        num_primary_outputs=8,
        utilization=0.6,
        clock_tightness=0.8,
        seed=7,
    )


@pytest.fixture(scope="session")
def small_design(small_spec):
    """A ~220-cell synthetic design shared (read-only topology) across tests."""
    return generate_circuit(small_spec)


@pytest.fixture()
def fresh_small_design(small_spec):
    """A private copy of the small design for tests that move cells."""
    return generate_circuit(small_spec)
