"""Deterministic synthetic gate-level circuit generator.

The generator produces pipelined random logic: primary inputs and flip-flop
outputs feed a leveled combinational cloud whose outputs are captured by
flip-flop data pins and primary outputs.  Key structural knobs:

* ``num_cells`` and ``sequential_fraction`` — design size and register count;
* ``logic_depth`` — number of combinational levels, which sets how long
  register-to-register paths are (and therefore how tight the clock is);
* ``fanout_alpha`` — skew of the driver-selection distribution: smaller
  values produce more high-fan-out nets (shared data paths), which is what
  makes net weighting over-constrain non-critical pins in the paper's Fig. 2;
* ``utilization`` — die area relative to total cell area;
* ``clock_tightness`` — clock period as a fraction of the estimated critical
  path delay; values below 1 guarantee failing endpoints for the timers.

Routability stress knobs (all default-off, leaving the classic designs
bit-identical):

* ``aspect_ratio`` — die width over height.  A wide, thin die narrows the
  vertical routing channel, so left-right traffic concentrates;
* ``hub_fraction`` / ``hub_count`` — each gate input connects, with
  probability ``hub_fraction``, to one of ``hub_count`` shared "hub"
  signals instead of its level-based driver.  Hubs become high-fan-out
  nets whose sinks are scattered across the whole logic cloud: the placer
  cannot localize them, so their bounding boxes cross the die and pile
  routing demand onto the center bins — the classic congestion pattern
  routability-driven placement papers stress.

The same seed always yields the same design, so experiments are reproducible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.netlist.design import Design
from repro.netlist.library import Library, make_generic_library
from repro.utils.rng import make_rng

# Combinational masters the generator draws from, with sampling weights
# roughly matching the gate mix of a mapped random-logic netlist.
_GATE_CHOICES: Tuple[Tuple[str, float], ...] = (
    ("INV_X1", 0.16),
    ("BUF_X1", 0.08),
    ("NAND2_X1", 0.22),
    ("NOR2_X1", 0.14),
    ("AND2_X1", 0.14),
    ("OR2_X1", 0.12),
    ("XOR2_X1", 0.08),
    ("MUX2_X1", 0.06),
)


@dataclass
class CircuitSpec:
    """Parameters of one synthetic design."""

    name: str = "synthetic"
    num_cells: int = 1000
    sequential_fraction: float = 0.15
    logic_depth: int = 10
    num_primary_inputs: int = 16
    num_primary_outputs: int = 16
    fanout_alpha: float = 1.2
    utilization: float = 0.65
    clock_tightness: float = 0.85
    io_delay_fraction: float = 0.05
    seed: int = 1
    # Routability stress (defaults leave the classic designs bit-identical).
    aspect_ratio: float = 1.0
    hub_fraction: float = 0.0
    hub_count: int = 16

    def __post_init__(self) -> None:
        if self.num_cells < 10:
            raise ValueError("num_cells must be at least 10")
        if not 0.0 < self.sequential_fraction < 0.9:
            raise ValueError("sequential_fraction must be in (0, 0.9)")
        if self.logic_depth < 1:
            raise ValueError("logic_depth must be >= 1")
        if not 0.05 < self.utilization <= 0.95:
            raise ValueError("utilization must be in (0.05, 0.95]")
        if self.clock_tightness <= 0:
            raise ValueError("clock_tightness must be positive")
        if self.aspect_ratio <= 0:
            raise ValueError("aspect_ratio must be positive")
        if not 0.0 <= self.hub_fraction < 1.0:
            raise ValueError("hub_fraction must be in [0, 1)")
        if self.hub_count < 1:
            raise ValueError("hub_count must be at least 1")


def generate_circuit(
    spec: CircuitSpec,
    *,
    library: Optional[Library] = None,
) -> Design:
    """Generate a finalized, unplaced synthetic design from ``spec``."""
    rng = make_rng(spec.seed)
    lib = library if library is not None else make_generic_library()

    num_ff = max(2, int(round(spec.num_cells * spec.sequential_fraction)))
    num_comb = max(4, spec.num_cells - num_ff)

    gate_names = [name for name, _ in _GATE_CHOICES]
    gate_probs = np.array([w for _, w in _GATE_CHOICES], dtype=np.float64)
    gate_probs /= gate_probs.sum()
    comb_cells = rng.choice(gate_names, size=num_comb, p=gate_probs)

    # ------------------------------------------------------------------
    # Floorplan sizing.
    # ------------------------------------------------------------------
    total_area = float(
        sum(lib.cell(c).area for c in comb_cells) + num_ff * lib.cell("DFF_X1").area
    )
    row_height = lib.cell("DFF_X1").height
    die_side = math.sqrt(total_area / spec.utilization)
    # aspect_ratio stretches width and shrinks height at constant area;
    # sqrt(1.0) == 1.0 keeps the classic designs bit-identical.
    aspect = math.sqrt(spec.aspect_ratio)
    die_height = math.ceil(die_side / aspect / row_height) * row_height
    die_width = math.ceil(die_side * aspect)
    design = Design(
        spec.name,
        die=(0.0, 0.0, float(die_width), float(die_height)),
        library=lib,
        row_height=row_height,
        site_width=1.0,
    )

    # ------------------------------------------------------------------
    # Ports.
    # ------------------------------------------------------------------
    boundary = _boundary_positions(
        die_width, die_height, spec.num_primary_inputs + spec.num_primary_outputs + 1
    )
    cursor = 0
    design.add_port("clk", "input", x=boundary[cursor][0], y=boundary[cursor][1])
    cursor += 1
    pi_names: List[str] = []
    for i in range(spec.num_primary_inputs):
        name = f"in{i}"
        design.add_port(name, "input", x=boundary[cursor][0], y=boundary[cursor][1])
        pi_names.append(name)
        cursor += 1
    po_names: List[str] = []
    for i in range(spec.num_primary_outputs):
        name = f"out{i}"
        design.add_port(name, "output", x=boundary[cursor][0], y=boundary[cursor][1])
        po_names.append(name)
        cursor += 1

    # ------------------------------------------------------------------
    # Instances.
    # ------------------------------------------------------------------
    center = (die_width * 0.5, die_height * 0.5)
    ff_names = [f"ff{i}" for i in range(num_ff)]
    for name in ff_names:
        design.add_instance(name, "DFF_X1", x=center[0], y=center[1])
    comb_names = [f"g{i}" for i in range(num_comb)]
    for name, cell in zip(comb_names, comb_cells):
        design.add_instance(name, str(cell), x=center[0], y=center[1])

    # ------------------------------------------------------------------
    # Nets.  Every driver (PI, FF/Q, gate output) owns one net.
    # ------------------------------------------------------------------
    clock_net = design.add_net("clknet")
    design.connect(clock_net, "clk")
    for name in ff_names:
        design.connect(clock_net, name, "ck")

    # Driver pool entries: (net_name, level).  Level 0 = registers and PIs.
    driver_levels: List[int] = []
    driver_nets: List[str] = []

    for name in pi_names:
        net = design.add_net(f"n_{name}")
        design.connect(net, name)
        driver_nets.append(net.name)
        driver_levels.append(0)
    for name in ff_names:
        net = design.add_net(f"n_{name}_q")
        design.connect(net, name, "q")
        driver_nets.append(net.name)
        driver_levels.append(0)

    # Assign each combinational gate a level in [1, logic_depth], weighted so
    # deeper levels have slightly fewer gates (cone-shaped logic).
    level_weights = np.linspace(1.0, 0.6, spec.logic_depth)
    level_weights /= level_weights.sum()
    comb_levels = rng.choice(
        np.arange(1, spec.logic_depth + 1), size=num_comb, p=level_weights
    )
    order = np.argsort(comb_levels, kind="stable")

    driver_levels_arr = np.array(driver_levels, dtype=np.int64)
    fanout_counts = np.zeros(len(driver_nets), dtype=np.float64)

    # Hub signals for the congestion-stressed variant: a fixed set of
    # level-0 drivers (PIs and register outputs, evenly sampled) that gate
    # inputs across every level share with probability ``hub_fraction``.
    hub_pool: Optional[np.ndarray] = None
    if spec.hub_fraction > 0.0:
        num_level0 = len(driver_nets)
        count = min(spec.hub_count, num_level0)
        hub_pool = np.unique(np.linspace(0, num_level0 - 1, count).astype(np.int64))

    input_pins_by_cell: Dict[str, List[str]] = {}
    for gate_name, _ in _GATE_CHOICES:
        cell = lib.cell(gate_name)
        input_pins_by_cell[gate_name] = [p.name for p in cell.input_pins]

    for idx in order:
        gate = comb_names[int(idx)]
        cell_name = str(comb_cells[int(idx)])
        level = int(comb_levels[int(idx)])
        out_net = design.add_net(f"n_{gate}")
        design.connect(out_net, gate, "o")
        inputs = input_pins_by_cell[cell_name]
        chosen = _choose_drivers(
            rng,
            driver_levels_arr,
            fanout_counts,
            level,
            len(inputs),
            spec.fanout_alpha,
        )
        if hub_pool is not None:
            # Reroute a fraction of the inputs to shared hub signals; the
            # extra RNG draws happen only on this (stress) path, so the
            # classic designs keep their exact generation stream.
            take_hub = rng.random(len(chosen)) < spec.hub_fraction
            if np.any(take_hub):
                hubs = iter(rng.choice(hub_pool, size=int(take_hub.sum())))
                chosen = [
                    int(next(hubs)) if is_hub else driver
                    for driver, is_hub in zip(chosen, take_hub)
                ]
        for pin_name, driver_idx in zip(inputs, chosen):
            design.connect(driver_nets[driver_idx], gate, pin_name)
            fanout_counts[driver_idx] += 1.0
        # Register the new driver.
        driver_nets.append(out_net.name)
        driver_levels_arr = np.append(driver_levels_arr, level)
        fanout_counts = np.append(fanout_counts, 0.0)

    # ------------------------------------------------------------------
    # Capture: flip-flop D pins and primary outputs take deep signals.
    # ------------------------------------------------------------------
    deep_pool = np.nonzero(driver_levels_arr >= max(1, spec.logic_depth - 2))[0]
    if deep_pool.size == 0:
        deep_pool = np.arange(len(driver_nets))
    for name in ff_names:
        driver_idx = int(rng.choice(deep_pool))
        design.connect(driver_nets[driver_idx], name, "d")
        fanout_counts[driver_idx] += 1.0
    for name in po_names:
        driver_idx = int(rng.choice(deep_pool))
        design.connect(driver_nets[driver_idx], name)
        fanout_counts[driver_idx] += 1.0

    design.finalize()

    # ------------------------------------------------------------------
    # Clock constraint.
    # ------------------------------------------------------------------
    period = _estimate_clock_period(design, lib, spec)
    design.clock_period = period
    design.clock_name = "clk"
    design.clock_port = "clk"
    io_delay = spec.io_delay_fraction * period
    design.input_delays = {name: io_delay for name in pi_names}
    design.output_delays = {name: io_delay for name in po_names}
    return design


def _boundary_positions(width: float, height: float, count: int) -> List[Tuple[float, float]]:
    """Evenly spaced positions around the die boundary."""
    positions: List[Tuple[float, float]] = []
    perimeter = 2.0 * (width + height)
    for i in range(count):
        d = (i + 0.5) * perimeter / count
        if d < width:
            positions.append((d, 0.0))
        elif d < width + height:
            positions.append((width, d - width))
        elif d < 2 * width + height:
            positions.append((width - (d - width - height), height))
        else:
            positions.append((0.0, height - (d - 2 * width - height)))
    return positions


def _choose_drivers(
    rng: np.random.Generator,
    driver_levels: np.ndarray,
    fanout_counts: np.ndarray,
    gate_level: int,
    count: int,
    fanout_alpha: float,
) -> List[int]:
    """Pick ``count`` distinct driver signals from levels below ``gate_level``.

    Preference goes to signals at the immediately preceding level (building
    long chains) and, with probability controlled by ``fanout_alpha``, to
    signals that already have fan-out (building shared, high-fan-out nets).
    """
    eligible = np.nonzero(driver_levels < gate_level)[0]
    if eligible.size == 0:
        eligible = np.arange(driver_levels.size)
    level_gap = gate_level - driver_levels[eligible]
    # Strong preference for the previous level, exponential decay for older.
    weights = np.exp(-0.9 * (level_gap - 1).astype(np.float64))
    # Preferential attachment: existing fan-out increases selection odds.
    weights *= (1.0 + fanout_counts[eligible]) ** (1.0 / max(fanout_alpha, 0.1) - 1.0)
    weights /= weights.sum()
    take = min(count, eligible.size)
    chosen = rng.choice(eligible, size=take, replace=False, p=weights)
    result = [int(c) for c in chosen]
    while len(result) < count:
        result.append(int(rng.choice(eligible)))
    return result


def _estimate_clock_period(design: Design, lib: Library, spec: CircuitSpec) -> float:
    """Clock period = tightness * estimated critical path delay.

    The estimate assumes an average combinational stage delay (intrinsic plus
    a typical fan-out-of-2 load) and a wire delay for an average-length net on
    a spread-out placement, times the logic depth, plus the clock-to-q launch.
    Tightness below 1.0 therefore leaves endpoints failing even after a good
    placement, matching the always-violating ICCAD-2015 benchmarks.
    """
    typical_load = 2.0 * lib.cell("NAND2_X1").pin("a").capacitance
    avg_net_len = 0.12 * (design.die.width + design.die.height)
    wire_cap = lib.wire_capacitance_per_unit * avg_net_len
    wire_res = lib.wire_resistance_per_unit * avg_net_len
    stage_cell = lib.cell("NAND2_X1").arcs[0]
    stage_delay = stage_cell.delay(typical_load + wire_cap)
    wire_delay = wire_res * (0.5 * wire_cap + typical_load)
    clk_to_q = lib.cell("DFF_X1").arcs[0].delay(typical_load + wire_cap)
    critical_estimate = clk_to_q + spec.logic_depth * (stage_delay + wire_delay)
    # Empirical calibration: after a wirelength-driven placement the worst
    # path is ~1.8x this analytic estimate (longer-than-average critical nets
    # and high-fan-out loads), measured across the sb_mini suite.  Folding the
    # factor in here keeps ``clock_tightness`` interpretable as "fraction of
    # the post-placement critical delay".
    calibration = 1.8
    return float(spec.clock_tightness * calibration * critical_estimate)
