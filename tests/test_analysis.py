"""Contract-lint engine tests: every rule against positive/negative
fixtures, pragma suppression semantics, CLI exit codes, and the acceptance
check that the production tree itself lints clean."""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis import run_lint
from repro.analysis.contracts import repro_subpath
from repro.analysis.engine import main as analysis_main
from repro.analysis.pragmas import PRAGMA_RE, matching_pragma, scan_pragmas
from repro.analysis.rules import rule_ids
from repro.flow.cli import main as cli_main

ROOT = Path(__file__).resolve().parent.parent
FIXTURES = ROOT / "tests" / "fixtures" / "analysis"
FIXTURE_TESTS = FIXTURES / "fixture_tests"


def lint(*names, tests_dir=None, rules=None):
    return run_lint(
        [str(FIXTURES / name) for name in names],
        tests_dir=str(tests_dir) if tests_dir else None,
        rules=rules,
    )


def rules_hit(report):
    return sorted({f.rule for f in report.findings})


# ----------------------------------------------------------------------
# Rule 1: kernel-purity
# ----------------------------------------------------------------------
class TestKernelPurity:
    def test_flags_every_impurity(self):
        # The fixture's time.monotonic() call also trips raw-timing (by
        # design — worker wall-clock reads break both contracts); scope to
        # the rule under test.
        report = lint("kernel_bad.py", rules=["kernel-purity"])
        assert rules_hit(report) == ["kernel-purity"]
        messages = " | ".join(f.message for f in report.findings)
        assert "np.add.at" in messages
        assert "np.add.reduceat" in messages
        assert "in-place accumulation" in messages
        assert "RNG" in messages
        assert "'time'" in messages
        assert "print()" in messages
        assert len(report.findings) == 6

    def test_pure_kernel_passes(self):
        report = lint("kernel_ok.py")
        assert report.findings == []


# ----------------------------------------------------------------------
# Rule 2: alloc
# ----------------------------------------------------------------------
class TestAllocDiscipline:
    def test_decorated_function_flagged(self):
        report = lint("alloc_deco_bad.py")
        assert rules_hit(report) == ["alloc"]
        messages = " | ".join(f.message for f in report.findings)
        assert "np.zeros" in messages
        assert "np.multiply" in messages
        assert ".copy()" in messages
        assert ".astype" in messages
        assert len(report.findings) == 4

    def test_staged_out_ops_pass(self):
        report = lint("alloc_deco_ok.py")
        assert report.findings == []

    def test_registry_applies_by_repro_path(self):
        report = lint("alloc_registry")
        assert len(report.findings) == 1
        finding = report.findings[0]
        assert finding.rule == "alloc"
        assert "evaluate" in finding.message
        assert "cold_rebuild" not in " ".join(f.message for f in report.findings)


# ----------------------------------------------------------------------
# Pragmas
# ----------------------------------------------------------------------
class TestPragmas:
    def test_valid_pragma_suppresses_with_reason(self):
        report = lint("alloc_pragma.py")
        suppressed = report.suppressed
        assert len(suppressed) == 1
        assert suppressed[0].rule == "alloc"
        assert suppressed[0].reason == "fallback when no arena is attached"

    def test_reasonless_pragma_suppresses_nothing_and_is_flagged(self):
        report = lint("alloc_pragma.py")
        unsuppressed_rules = sorted(f.rule for f in report.unsuppressed)
        assert unsuppressed_rules == ["alloc", "bad-pragma"]

    def test_pragma_regex_and_line_above_matching(self):
        lines = [
            "# contract: allow(alloc, shm-unlink) reason=shared waiver",
            "x = np.zeros(4)",
            "y = np.zeros(4)  # contract: allow(alloc)",
        ]
        pragmas = scan_pragmas(lines)
        assert set(pragmas) == {1, 3}
        assert pragmas[1].rules == ("alloc", "shm-unlink")
        assert pragmas[1].valid
        assert not pragmas[3].valid
        assert matching_pragma(pragmas, 2, "alloc") is pragmas[1]
        assert matching_pragma(pragmas, 2, "shm-unlink") is pragmas[1]
        assert matching_pragma(pragmas, 2, "ref-parity") is None
        # An empty reason parses as a pragma but never validates — it gets a
        # bad-pragma finding instead of being silently ignored.
        empty = scan_pragmas(["# contract: allow(alloc) reason="])
        assert 1 in empty and not empty[1].valid
        assert PRAGMA_RE.search("# contract: allow(alloc) reason=ok") is not None


# ----------------------------------------------------------------------
# Rule 3: shm-unlink
# ----------------------------------------------------------------------
class TestShmLifecycle:
    def test_unpaired_create_flagged(self):
        report = lint("shm_bad.py")
        assert rules_hit(report) == ["shm-unlink"]
        assert len(report.findings) == 2

    def test_guarded_creates_pass(self):
        report = lint("shm_ok.py")
        assert report.findings == []


# ----------------------------------------------------------------------
# Rule 4: ref-parity
# ----------------------------------------------------------------------
class TestReferenceParity:
    def test_orphan_and_untested_flagged(self):
        report = lint("refparity_bad.py", tests_dir=FIXTURE_TESTS)
        assert rules_hit(report) == ["ref-parity"]
        messages = " | ".join(f.message for f in report.findings)
        assert "orphaned" in messages
        assert "no test module" in messages
        assert len(report.findings) == 2

    def test_paired_and_tested_passes(self):
        report = lint("refparity_ok.py", tests_dir=FIXTURE_TESTS)
        assert report.findings == []

    def test_without_tests_dir_only_structure_is_checked(self):
        report = lint("refparity_bad.py")
        assert len(report.findings) == 1
        assert "orphaned" in report.findings[0].message


# ----------------------------------------------------------------------
# Rule 5: layering
# ----------------------------------------------------------------------
class TestLayering:
    def test_module_scope_flow_import_and_engine_import_flagged(self):
        report = lint("layering_bad")
        assert rules_hit(report) == ["layering"]
        messages = " | ".join(f.message for f in report.findings)
        assert "repro.flow.presets" in messages
        assert "repro.parallel.engine" in messages
        assert len(report.findings) == 2

    def test_lazy_function_scope_import_passes(self):
        report = lint("layering_ok")
        assert report.findings == []


# ----------------------------------------------------------------------
# Rule 6: raw-timing
# ----------------------------------------------------------------------
class TestRawTiming:
    def test_flags_every_spelling(self):
        report = lint("timing_bad.py")
        assert rules_hit(report) == ["raw-timing"]
        messages = " | ".join(f.message for f in report.findings)
        assert "time.perf_counter" in messages
        assert "time.time" in messages
        assert "time.process_time" in messages
        assert "time.monotonic" in messages
        assert len(report.findings) == 5

    def test_obs_clock_sleep_and_waiver_pass(self):
        report = lint("timing_ok.py")
        assert report.unsuppressed == []
        assert len(report.suppressed) == 1
        assert report.suppressed[0].rule == "raw-timing"
        assert report.suppressed[0].reason == "calibrating the clock itself"

    def test_blessed_repro_paths_are_exempt(self, tmp_path):
        body = "import time\n\ndef t():\n    return time.perf_counter()\n"
        blessed_obs = tmp_path / "repro" / "obs" / "tracer.py"
        blessed_prof = tmp_path / "repro" / "utils" / "profiling.py"
        banned = tmp_path / "repro" / "flow" / "runner.py"
        for path in (blessed_obs, blessed_prof, banned):
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(body, encoding="utf-8")
        report = run_lint([str(tmp_path)], rules=["raw-timing"])
        assert [f.file for f in report.findings] == [str(banned)]


# ----------------------------------------------------------------------
# Engine plumbing
# ----------------------------------------------------------------------
class TestEngine:
    def test_repro_subpath_component_matching(self):
        assert repro_subpath("a/b/repro/placement/x.py") == "placement/x.py"
        assert repro_subpath("repro/x.py") == "x.py"
        assert repro_subpath("myrepro/placement/x.py") == ""
        assert repro_subpath("plain/module.py") == ""

    def test_rule_registry_is_complete(self):
        assert rule_ids() == (
            "alloc",
            "kernel-purity",
            "layering",
            "raw-timing",
            "ref-parity",
            "shm-unlink",
        )

    def test_unknown_rule_rejected(self):
        code = analysis_main(
            [str(FIXTURES / "kernel_ok.py"), "--rule", "nope", "--quiet"]
        )
        assert code == 2

    def test_seeded_kernel_violation_detected(self, tmp_path):
        seeded = tmp_path / "seeded_kernel.py"
        seeded.write_text(
            "import numpy as np\n"
            "def register_kernel(name):\n"
            "    def wrap(fn):\n"
            "        return fn\n"
            "    return wrap\n"
            "@register_kernel('seeded')\n"
            "def seeded(arrays, start, end):\n"
            "    np.add.at(arrays['g'], arrays['i'], arrays['w'])\n",
            encoding="utf-8",
        )
        report = run_lint([str(seeded)])
        assert [f.rule for f in report.unsuppressed] == ["kernel-purity"]

    def test_syntax_error_becomes_finding(self, tmp_path):
        broken = tmp_path / "broken.py"
        broken.write_text("def nope(:\n", encoding="utf-8")
        report = run_lint([str(broken)])
        assert [f.rule for f in report.findings] == ["syntax-error"]


# ----------------------------------------------------------------------
# CLI contract (module entry + repro subcommand)
# ----------------------------------------------------------------------
class TestCli:
    def test_exit_zero_on_clean_tree(self):
        code = analysis_main(
            [str(FIXTURES / "kernel_ok.py"), "--tests-dir", "", "--quiet"]
        )
        assert code == 0

    def test_exit_one_on_findings(self):
        code = analysis_main(
            [str(FIXTURES / "kernel_bad.py"), "--tests-dir", "", "--quiet"]
        )
        assert code == 1

    def test_exit_two_on_usage_error(self):
        assert analysis_main([str(FIXTURES / "does_not_exist.py")]) == 2

    def test_json_stdout_is_machine_readable(self, capsys):
        code = analysis_main(
            [
                str(FIXTURES / "alloc_pragma.py"),
                "--tests-dir",
                "",
                "--json",
                "-",
                "--quiet",
            ]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["files_scanned"] == 1
        assert payload["counts"]["total"] == len(payload["findings"])
        assert payload["counts"]["suppressed"] == 1
        by_rule = {f["rule"] for f in payload["findings"]}
        assert {"alloc", "bad-pragma"} <= by_rule
        suppressed = [f for f in payload["findings"] if f["suppressed"]]
        assert suppressed[0]["reason"] == "fallback when no arena is attached"

    def test_repro_subcommand_exit_codes(self):
        ok = cli_main(
            [
                "lint-contracts",
                str(FIXTURES / "kernel_ok.py"),
                "--tests-dir",
                "",
                "--quiet",
            ]
        )
        bad = cli_main(
            [
                "lint-contracts",
                str(FIXTURES / "shm_bad.py"),
                "--tests-dir",
                "",
                "--quiet",
            ]
        )
        usage = cli_main(
            ["lint-contracts", str(FIXTURES / "does_not_exist.py"), "--quiet"]
        )
        assert (ok, bad, usage) == (0, 1, 2)

    def test_list_rules(self, capsys):
        assert analysis_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in rule_ids():
            assert rule in out


# ----------------------------------------------------------------------
# Acceptance: the merged tree lints clean, every waiver has a reason
# ----------------------------------------------------------------------
class TestProductionTree:
    def test_src_is_clean_and_all_suppressions_reasoned(self):
        report = run_lint([str(ROOT / "src")], tests_dir=str(ROOT / "tests"))
        assert report.unsuppressed == []
        assert report.suppressed, "expected documented waivers in the tree"
        assert all(f.reason and f.reason.strip() for f in report.suppressed)
