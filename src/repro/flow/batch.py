"""Concurrent multi-design flow execution with aggregated reporting.

A :class:`BatchJob` names a benchmark, a flow preset, a seed, and optional
config overrides; :func:`run_batch` fans the jobs out over a
``concurrent.futures`` pool and folds the per-design summaries into a
:class:`BatchReport`.  Failures are contained: a job that raises is reported
with its error string instead of aborting the batch.

How the design reaches each worker is controlled by ``ship``:

* ``"generate"`` (default) — every worker regenerates its benchmark from the
  spec.  No transfer cost, but the generation work is repeated per job.
* ``"compiled"`` — the parent builds each unique (design, scale) once,
  snapshots it into a :class:`repro.netlist.CompiledDesign` (array-only, no
  object graph, ~10-30x smaller than pickling the design), and ships the
  snapshot; workers rebuild the design index-for-index identical.
* ``"shared"`` — like ``"compiled"``, but the snapshot's read-only arrays
  are placed in ``multiprocessing.shared_memory``; workers attach instead of
  receiving a copy.  Opt-in, same results bit for bit.

Results are identical across all ship modes and both executors — the
snapshot round-trip is exact, and every flow is deterministic given its seed.
"""

from __future__ import annotations

import contextlib
import json
import os
import traceback
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.benchgen.suite import load_benchmark
from repro.netlist.compiled import (
    CompiledDesign,
    SharedDesignHandle,
    SharedDesignPack,
    compile_design,
)
from repro.obs import (
    active_tracer,
    adopt_spans,
    clock,
    serialize_trace,
    start_tracing,
    stop_tracing,
)
from repro.utils.logging import get_logger

logger = get_logger("flow.batch")

SHIP_MODES = ("generate", "compiled", "shared")


@dataclass
class BatchJob:
    """One design x preset x seed cell of a batch run."""

    design: str
    preset: str = "efficient_tdp"
    seed: int = 0
    scale: float = 1.0
    overrides: Dict[str, Any] = field(default_factory=dict)
    label: Optional[str] = None

    def resolved_label(self) -> str:
        if self.label:
            return self.label
        tag = f"{self.design}:{self.preset}:s{self.seed}"
        if self.scale != 1.0:
            tag += f":x{self.scale:g}"
        return tag


@dataclass
class BatchItemResult:
    """Outcome of one job: a summary dict, or an error string."""

    label: str
    design: str
    preset: str
    seed: int
    scale: float
    runtime_seconds: float
    summary: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    # Serialized span payload shipped back from a process-executor worker
    # (see repro.obs.remote); consumed and cleared by run_batch when it
    # re-parents the spans under its own dispatch span.  Never part of
    # as_dict() — traces are exported separately from the JSON report.
    trace: Optional[Dict[str, Any]] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def as_dict(self) -> Dict[str, Any]:
        return {
            "label": self.label,
            "design": self.design,
            "preset": self.preset,
            "seed": self.seed,
            "scale": self.scale,
            "runtime_sec": round(self.runtime_seconds, 3),
            "summary": self.summary,
            "error": self.error,
        }


@dataclass
class BatchReport:
    """Aggregated outcome of a :func:`run_batch` call."""

    items: List[BatchItemResult]
    total_runtime_seconds: float
    max_workers: int
    executor: str
    ship: str = "generate"
    # How max_workers was resolved: "explicit" (caller passed it) or
    # "auto" (affinity-aware CPU count).
    workers_source: str = "explicit"

    @property
    def num_ok(self) -> int:
        return sum(1 for item in self.items if item.ok)

    @property
    def num_failed(self) -> int:
        return len(self.items) - self.num_ok

    def aggregate(self) -> Dict[str, Any]:
        """Design-count, mean metrics overall and per preset."""

        def metrics_of(items: Sequence[BatchItemResult]) -> Dict[str, float]:
            rows = [item.summary for item in items if item.ok and item.summary]
            out: Dict[str, float] = {"runs": float(len(rows))}
            for key in ("hpwl", "tns", "wns", "runtime_sec"):
                values = [row[key] for row in rows if key in row]
                if values:
                    out[f"mean_{key}"] = sum(values) / len(values)
            tns_values = [row["tns"] for row in rows if "tns" in row]
            if tns_values:
                out["total_tns"] = sum(tns_values)
            return out

        by_preset: Dict[str, Dict[str, float]] = {}
        for preset in sorted({item.preset for item in self.items}):
            by_preset[preset] = metrics_of([i for i in self.items if i.preset == preset])
        return {
            "jobs": len(self.items),
            "ok": self.num_ok,
            "failed": self.num_failed,
            "wall_seconds": round(self.total_runtime_seconds, 3),
            "cpu_seconds": round(sum(i.runtime_seconds for i in self.items), 3),
            "overall": metrics_of(self.items),
            "by_preset": by_preset,
        }

    def as_dict(self) -> Dict[str, Any]:
        return {
            "max_workers": self.max_workers,
            "workers_source": self.workers_source,
            "executor": self.executor,
            "ship": self.ship,
            "aggregate": self.aggregate(),
            "items": [item.as_dict() for item in self.items],
        }

    def to_json(self, path: str) -> str:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.as_dict(), handle, indent=2)
        return path

    def format_table(self) -> str:
        from repro.evaluation.metrics import format_table

        rows = []
        for item in self.items:
            if item.ok and item.summary:
                rows.append([
                    item.label,
                    round(item.summary.get("tns", 0.0), 1),
                    round(item.summary.get("wns", 0.0), 1),
                    round(item.summary.get("hpwl", 0.0), 0),
                    round(item.summary.get("runtime_sec", 0.0), 2),
                ])
            else:
                rows.append([item.label, "ERROR", "-", "-", round(item.runtime_seconds, 2)])
        return format_table(
            ["Job", "TNS (ps)", "WNS (ps)", "HPWL", "Runtime (s)"],
            rows,
            title=f"Batch: {self.num_ok}/{len(self.items)} ok, "
            f"wall {self.total_runtime_seconds:.1f}s "
            f"({self.executor} x{self.max_workers})",
        )


def _materialize_design(job: BatchJob, payload):
    """Turn a job's shipped payload (or its name) into a fresh design."""
    if payload is None:
        return load_benchmark(job.design, scale=job.scale)
    if isinstance(payload, CompiledDesign):
        return payload.to_design()
    if isinstance(payload, SharedDesignHandle):
        loaded = payload.load()
        try:
            return loaded.compiled.to_design()
        finally:
            loaded.close()
    raise TypeError(f"Unsupported batch payload type {type(payload).__name__}")


def run_job(job: BatchJob, payload=None, trace_parent=None) -> BatchItemResult:
    """Execute one batch job in the current process/thread.

    ``payload`` optionally carries the design as a :class:`CompiledDesign`
    snapshot or a :class:`SharedDesignHandle`; without it the benchmark is
    regenerated from its spec.

    ``trace_parent`` is the dispatching ``batch.run`` span id when the batch
    is being traced.  Thread-executor workers share the parent's tracer and
    record a ``batch.job`` span directly under it; process-executor workers
    (no tracer of their own) record into a fresh local tracer and ship the
    serialized spans back on ``BatchItemResult.trace`` for re-parenting.
    """
    from repro.flow.presets import build_flow

    label = job.resolved_label()
    tracer = active_tracer()
    if tracer is not None and tracer.pid != os.getpid():
        # Fork-started process worker: the inherited tracer global belongs
        # to the parent and can never ship back — replace it with a local
        # tracer (trace_parent set) or drop it (tracing disabled mid-fork).
        stop_tracing()
        tracer = None
    child_tracer = None
    if tracer is None and trace_parent is not None:
        child_tracer = tracer = start_tracing()
    handle = None
    if tracer is not None:
        handle = tracer.begin(
            "batch.job",
            parent=trace_parent if child_tracer is None else None,
            label=label,
            design=job.design,
            preset=job.preset,
            seed=job.seed,
        )
    start = clock()
    try:
        _check_job_seed(job)
        design = _materialize_design(job, payload)
        overrides = dict(job.overrides)
        overrides["seed"] = job.seed
        runner = build_flow(job.preset, **overrides)
        result = runner.run(design, seed=job.seed)
        summary = result.summary()
        item = BatchItemResult(
            label=label,
            design=job.design,
            preset=job.preset,
            seed=job.seed,
            scale=job.scale,
            runtime_seconds=clock() - start,
            summary=summary,
        )
    except Exception:  # noqa: BLE001 - contained per-job failure
        logger.exception("batch job %s failed", label)
        item = BatchItemResult(
            label=label,
            design=job.design,
            preset=job.preset,
            seed=job.seed,
            scale=job.scale,
            runtime_seconds=clock() - start,
            error=traceback.format_exc(limit=8),
        )
    if tracer is not None:
        tracer.end(handle)
    if child_tracer is not None:
        stop_tracing()
        item.trace = serialize_trace(child_tracer)
    return item


def _check_job_seed(job: BatchJob) -> None:
    """``job.seed`` is authoritative (labels and the report quote it); a
    disagreeing ``overrides['seed']`` would silently desynchronize them."""
    if "seed" in job.overrides and job.overrides["seed"] != job.seed:
        raise ValueError(
            f"BatchJob {job.resolved_label()}: "
            f"overrides['seed']={job.overrides['seed']!r} conflicts with "
            f"job.seed={job.seed}; set BatchJob.seed instead"
        )


def _make_executor(kind: str, max_workers: int) -> Executor:
    if kind == "thread":
        return ThreadPoolExecutor(max_workers=max_workers)
    if kind == "process":
        return ProcessPoolExecutor(max_workers=max_workers)
    raise ValueError(f"executor must be 'thread' or 'process', got {kind!r}")


def _build_payloads(
    jobs: Sequence[BatchJob], ship: str, cleanup: contextlib.ExitStack
) -> List[Optional[object]]:
    """Compile each unique (design, scale) once and map it onto the jobs.

    Shared-memory packs are registered on ``cleanup`` the moment they are
    created, so their segments are closed **and unlinked** no matter where a
    later failure happens — a benchmark that fails to build, a worker that
    raises mid-batch, or the executor itself going down.
    """
    payloads: List[Optional[object]] = [None] * len(jobs)
    if ship == "generate":
        return payloads
    compiled_cache: Dict[Tuple[str, float], object] = {}
    for position, job in enumerate(jobs):
        key = (job.design, job.scale)
        payload = compiled_cache.get(key)
        if payload is None:
            snapshot = compile_design(load_benchmark(job.design, scale=job.scale))
            if ship == "shared":
                pack = cleanup.enter_context(SharedDesignPack(snapshot))
                payload = pack.handle
            else:
                payload = snapshot
            compiled_cache[key] = payload
        payloads[position] = payload
    return payloads


def run_batch(
    jobs: Sequence[BatchJob],
    *,
    max_workers: Optional[int] = None,
    executor: str = "thread",
    ship: str = "generate",
) -> BatchReport:
    """Run every job concurrently and aggregate a :class:`BatchReport`.

    ``executor="thread"`` (default) shares the process; ``"process"`` forks
    workers (jobs are plain dataclasses, so they pickle cleanly).  ``ship``
    selects how designs reach workers (see the module docstring): with
    ``"compiled"`` each unique design is built once in the parent and shipped
    as an array-only snapshot; ``"shared"`` additionally moves the snapshot
    arrays into shared memory.
    """
    jobs = list(jobs)
    workers_source = "auto" if max_workers is None else "explicit"
    if not jobs:
        raise ValueError("run_batch needs at least one job")
    if ship not in SHIP_MODES:
        raise ValueError(f"ship must be one of {', '.join(SHIP_MODES)}, got {ship!r}")
    for job in jobs:
        # Validate up front: a malformed job should fail the batch before
        # any compute is spent, not after every other job has finished.
        _check_job_seed(job)
    if max_workers is None:
        from repro.parallel import resolve_worker_count

        # Affinity-aware: honors cgroup/sched_setaffinity CPU limits
        # (os.process_cpu_count where available) instead of raw cpu_count.
        max_workers = min(len(jobs), resolve_worker_count())
    max_workers = max(1, int(max_workers))
    start = clock()
    tracer = active_tracer()
    batch_handle = None
    if tracer is not None:
        batch_handle = tracer.begin(
            "batch.run",
            jobs=len(jobs),
            executor=executor,
            ship=ship,
            workers=max_workers,
        )
    parents = [None if batch_handle is None else batch_handle.span_id] * len(jobs)
    try:
        # ExitStack guarantees close()+unlink() of every shared-memory pack
        # on any exit path: normal completion, a failing payload build, or a
        # worker exception that escapes the pool (no /dev/shm segment may
        # leak).
        with contextlib.ExitStack() as cleanup:
            payloads = _build_payloads(jobs, ship, cleanup)
            with _make_executor(executor, max_workers) as pool:
                items = list(pool.map(run_job, jobs, payloads, parents))
    finally:
        if tracer is not None:
            tracer.end(batch_handle)
    if tracer is not None:
        # Process-executor workers shipped their spans back on the items;
        # replay them under the batch.run span, one lane per job.
        for index, item in enumerate(items):
            if item.trace:
                adopt_spans(
                    tracer,
                    item.trace,
                    parent_id=batch_handle.span_id,
                    base=batch_handle.start,
                    track=f"batch-job-{index}",
                )
                item.trace = None
    return BatchReport(
        items=items,
        total_runtime_seconds=clock() - start,
        max_workers=max_workers,
        executor=executor,
        ship=ship,
        workers_source=workers_source,
    )
