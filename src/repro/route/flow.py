"""The ``routability`` flow preset configuration and retrofit helpers.

The preset composes the existing pipeline stages with the routability
subsystem::

    global_place -> routability_repair -> legalize -> congestion -> evaluate

:func:`add_routability` retrofits the same behavior onto any already-built
stage list (this is what the CLI's ``--routability`` flag does): a
:class:`~repro.flow.stages.RoutabilityRepairStage` is inserted right after
the last global-placement stage, a congestion-map stage is added after
legalization, and the evaluation stage is switched to report congestion
metrics alongside HPWL/TNS/WNS.
"""

from __future__ import annotations

import copy
import dataclasses
from dataclasses import dataclass, field
from typing import List, Optional

from repro.placement.global_placer import PlacementConfig
from repro.route.inflation import InflationConfig
from repro.route.rudy import CongestionConfig

__all__ = ["RoutabilityConfig", "add_routability"]


@dataclass
class RoutabilityConfig:
    """Configuration of the ``routability`` preset.

    Placement knobs mirror :class:`PlacementConfig`; the congestion and
    inflation knobs are grouped in their own sub-configs so ``--set`` style
    overrides address the flat, flow-level fields.
    """

    # Placement engine schedule.
    max_iterations: int = 450
    stop_overflow: float = 0.08
    target_density: float = 1.0
    seed: int = 0
    verbose: bool = False
    # Inflation loop.  The flat fields exist so ``--set`` style overrides can
    # address the common knobs; ``None`` means "defer to self.inflation",
    # so an explicitly provided InflationConfig is honored in full.
    inflate: bool = True
    inflation_rounds: Optional[int] = None
    overflow_target: Optional[float] = None
    max_hpwl_growth: Optional[float] = None
    refine_iterations: int = 150
    # Congestion model.
    congestion: CongestionConfig = field(default_factory=CongestionConfig)
    inflation: InflationConfig = field(default_factory=InflationConfig)
    # MCMM analysis corners for the evaluation stage (None = single corner).
    corners: Optional[object] = None
    # Post-processing.
    legalize: bool = True

    def placement_config(self) -> PlacementConfig:
        return PlacementConfig(
            max_iterations=self.max_iterations,
            stop_overflow=self.stop_overflow,
            target_density=self.target_density,
            seed=self.seed,
            verbose=self.verbose,
        )

    def inflation_config(self) -> InflationConfig:
        """The sub-config with any flat-field overrides applied on top."""
        overrides = {
            key: value
            for key, value in (
                ("max_rounds", self.inflation_rounds),
                ("overflow_target", self.overflow_target),
                ("max_hpwl_growth", self.max_hpwl_growth),
            )
            if value is not None
        }
        cfg = dataclasses.replace(self.inflation, **overrides)
        cfg.validate()
        return cfg


def add_routability(
    stages: List[object],
    *,
    congestion: Optional[CongestionConfig] = None,
    inflation: Optional[InflationConfig] = None,
    refine_iterations: int = 150,
) -> List[object]:
    """Retrofit congestion awareness onto an existing stage list.

    Returns a new stage list: a routability-repair stage is inserted after
    the last global-placement stage (raises if the flow has none), a
    congestion-report stage is appended after legalization (or after repair
    when the flow does not legalize), and any evaluation stage is switched
    to congestion reporting.
    """
    from repro.flow.stages import (
        CongestionStage,
        EvaluateStage,
        GlobalPlaceStage,
        LegalizeStage,
        RoutabilityRepairStage,
    )

    place_positions = [
        i for i, stage in enumerate(stages) if isinstance(stage, GlobalPlaceStage)
    ]
    if not place_positions:
        raise ValueError(
            "--routability requires a flow with a global_place stage "
            "(the inflation loop re-runs global placement)"
        )
    repair = RoutabilityRepairStage(
        congestion=congestion,
        inflation=inflation,
        refine_iterations=refine_iterations,
    )
    out: List[object] = list(stages)
    out.insert(place_positions[-1] + 1, repair)

    legalize_positions = [
        i for i, stage in enumerate(out) if isinstance(stage, LegalizeStage)
    ]
    report_at = (
        legalize_positions[-1] + 1
        if legalize_positions
        else out.index(repair) + 1
    )
    out.insert(report_at, CongestionStage(config=congestion))
    # Switch evaluation to congestion reporting on *copies*: the caller's
    # original stage list must keep scoring exactly as before.
    for index, stage in enumerate(out):
        if isinstance(stage, EvaluateStage):
            scored = copy.copy(stage)
            scored.congestion = congestion if congestion is not None else True
            out[index] = scored
    return out
