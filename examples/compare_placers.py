#!/usr/bin/env python3
"""Compare all four placement flows on a chosen benchmark (Table II, one row).

Runs DREAMPlace, DREAMPlace 4.0 (momentum net weighting), Differentiable-TDP
(smoothed path-free attraction), and Efficient-TDP (ours) on one sb_mini
design and prints their TNS / WNS / HPWL / runtime side by side.

Run:  python examples/compare_placers.py [benchmark_name]
"""

import sys

from repro.baselines import (
    DifferentiableTDPBaseline,
    DreamPlace4Baseline,
    DreamPlaceBaseline,
)
from repro.benchgen import benchmark_names, load_benchmark
from repro.core import EfficientTDPConfig, EfficientTDPlacer
from repro.evaluation import format_table
from repro.placement import PlacementConfig


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "sb_mini_1"
    if name not in benchmark_names():
        raise SystemExit(f"unknown benchmark {name!r}; choose from {benchmark_names()}")

    flows = {
        "DREAMPlace": lambda d: DreamPlaceBaseline(
            d, PlacementConfig(max_iterations=450, seed=1)
        ),
        "DREAMPlace 4.0": lambda d: DreamPlace4Baseline(d),
        "Differentiable-TDP": lambda d: DifferentiableTDPBaseline(d),
        "Efficient-TDP (ours)": lambda d: EfficientTDPlacer(d, EfficientTDPConfig()),
    }

    rows = []
    for method, make_flow in flows.items():
        design = load_benchmark(name)
        result = make_flow(design).run()
        ev = result.evaluation
        rows.append(
            [method, round(ev.tns, 1), round(ev.wns, 1), round(ev.hpwl, 0),
             round(result.runtime_seconds, 2)]
        )

    print(format_table(
        ["Method", "TNS (ps)", "WNS (ps)", "HPWL", "Runtime (s)"],
        rows,
        title=f"Timing-driven placement comparison on {name}",
    ))


if __name__ == "__main__":
    main()
