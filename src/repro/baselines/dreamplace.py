"""Wirelength-driven baseline (DREAMPlace without any timing feedback)."""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.evaluation.evaluator import EvaluationReport, Evaluator
from repro.netlist.design import Design
from repro.placement.global_placer import (
    GlobalPlacer,
    PlacementConfig,
    PlacementHistory,
    PlacementResult,
)
from repro.placement.legalization.abacus import AbacusLegalizer
from repro.placement.legalization.greedy import GreedyLegalizer
from repro.timing.constraints import TimingConstraints
from repro.timing.sta import STAEngine
from repro.utils.profiling import RuntimeProfiler


@dataclass
class BaselineResult:
    """Common result type for all baseline flows."""

    x: np.ndarray
    y: np.ndarray
    evaluation: EvaluationReport
    placement: PlacementResult
    history: PlacementHistory
    profiler: RuntimeProfiler
    runtime_seconds: float

    def summary(self) -> dict:
        return {
            "design": self.evaluation.design_name,
            "hpwl": self.evaluation.hpwl,
            "tns": self.evaluation.tns,
            "wns": self.evaluation.wns,
            "runtime_sec": round(self.runtime_seconds, 2),
            "iterations": self.placement.iterations,
        }


class DreamPlaceBaseline:
    """Plain wirelength + density global placement, then legalization."""

    def __init__(
        self,
        design: Design,
        config: Optional[PlacementConfig] = None,
        *,
        constraints: Optional[TimingConstraints] = None,
        record_timing_every: Optional[int] = None,
    ) -> None:
        self.design = design
        self.config = config if config is not None else PlacementConfig()
        self.constraints = (
            constraints if constraints is not None else TimingConstraints.from_design(design)
        )
        self.profiler = RuntimeProfiler()
        self.record_timing_every = record_timing_every
        self._sta: Optional[STAEngine] = None

    def run(self) -> BaselineResult:
        start = time.perf_counter()
        placer = GlobalPlacer(self.design, self.config, profiler=self.profiler)
        if self.record_timing_every:
            self._sta = STAEngine(self.design, self.constraints)
            interval = self.record_timing_every

            def record(placer_obj: GlobalPlacer, iteration: int, x: np.ndarray, y: np.ndarray) -> None:
                if iteration % interval != 0:
                    return
                result = self._sta.update_timing(x, y)
                placer_obj.history.record_extra("tns", iteration, result.tns)
                placer_obj.history.record_extra("wns", iteration, result.wns)

            placer.add_callback(record)

        placement = placer.run()
        x, y = placement.x, placement.y
        with self.profiler.section("legalization"):
            legal = AbacusLegalizer(self.design).legalize(x, y)
            if not legal.success:
                legal = GreedyLegalizer(self.design).legalize(x, y)
            x, y = legal.x, legal.y
            self.design.set_positions(x, y)
        with self.profiler.section("io"):
            evaluation = Evaluator(self.design, self.constraints).evaluate(x, y)
        return BaselineResult(
            x=x,
            y=y,
            evaluation=evaluation,
            placement=placement,
            history=placement.history,
            profiler=self.profiler,
            runtime_seconds=time.perf_counter() - start,
        )
