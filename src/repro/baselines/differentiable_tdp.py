"""Differentiable-TDP-style baseline (Guo & Lin, DAC'22 spirit).

Guo & Lin integrate a differentiable timing engine into DREAMPlace and
back-propagate a smoothed TNS objective through every arc of the timing
graph.  The key properties relative to the paper's method are that (a) all
net arcs participate (paths are considered implicitly, no explicit
extraction), and (b) the timing metric is smoothed, trading accuracy for
differentiability.

This baseline reproduces those two properties on the shared substrate: every
``m`` iterations it refreshes STA and rebuilds a pin-pair attraction set over
*all* net arcs, weighted by a smooth (sigmoid) criticality of the sink pin's
slack, optimized with a linear Euclidean distance loss.  It is path-free and
smooth — accurate enough to beat pure net weighting, but without the
fine-grained path coverage of explicit extraction, which is where the
proposed method gains.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.baselines.dreamplace import BaselineResult
from repro.core.losses import LinearLoss
from repro.core.pin_attraction import PinAttractionObjective, PinPairSet
from repro.evaluation.evaluator import Evaluator
from repro.netlist.design import Design
from repro.placement.global_placer import GlobalPlacer, PlacementConfig
from repro.placement.legalization.abacus import AbacusLegalizer
from repro.placement.legalization.greedy import GreedyLegalizer
from repro.timing.constraints import TimingConstraints
from repro.timing.sta import STAEngine
from repro.utils.profiling import RuntimeProfiler
from repro.weighting.pin_weighting import smooth_pin_pair_weights


@dataclass
class DifferentiableTDPConfig:
    """Schedule and smoothing knobs of the differentiable-TDP-style baseline."""

    max_iterations: int = 450
    timing_start_iteration: int = 150
    min_timing_iterations: int = 120
    stop_overflow: float = 0.08
    target_density: float = 1.0
    seed: int = 0
    timing_update_interval: int = 15
    temperature: float = 0.25
    criticality_threshold: float = 0.05
    attraction_ratio: float = 0.15
    verbose: bool = False

    def placement_config(self) -> PlacementConfig:
        return PlacementConfig(
            max_iterations=self.max_iterations,
            min_iterations=self.timing_start_iteration + self.min_timing_iterations,
            stop_overflow=self.stop_overflow,
            target_density=self.target_density,
            seed=self.seed,
            verbose=self.verbose,
        )


class DifferentiableTDPBaseline:
    """Smoothed, path-free timing attraction over all net arcs."""

    def __init__(
        self,
        design: Design,
        config: Optional[DifferentiableTDPConfig] = None,
        *,
        constraints: Optional[TimingConstraints] = None,
    ) -> None:
        self.design = design
        self.config = config if config is not None else DifferentiableTDPConfig()
        self.constraints = (
            constraints if constraints is not None else TimingConstraints.from_design(design)
        )
        self.profiler = RuntimeProfiler()
        with self.profiler.section("io"):
            self.sta = STAEngine(design, self.constraints)
        self.pairs = PinPairSet()
        self.attraction = PinAttractionObjective(
            design, self.pairs, loss=LinearLoss(), beta=1.0
        )
        self._calibrated = False

    def _timing_callback(
        self, placer: GlobalPlacer, iteration: int, x: np.ndarray, y: np.ndarray
    ) -> None:
        cfg = self.config
        if iteration < cfg.timing_start_iteration:
            return
        if (iteration - cfg.timing_start_iteration) % cfg.timing_update_interval != 0:
            return
        with self.profiler.section("timing_analysis"):
            result = self.sta.update_timing(x, y)
        with self.profiler.section("weighting"):
            weights = smooth_pin_pair_weights(
                self.design,
                self.sta.graph,
                result,
                temperature=cfg.temperature,
                threshold=cfg.criticality_threshold,
            )
            self.pairs.set_weights(weights)
            if not self._calibrated and weights:
                # Per-pair vs per-cell force calibration, matching the scheme
                # used by EfficientTDPlacer so the comparison is about *which*
                # pins are attracted, not about force magnitudes.
                wl = placer.wirelength.evaluate(x, y, net_weights=placer.net_weights)
                wl_norm = float(np.abs(wl.grad_x).sum() + np.abs(wl.grad_y).sum())
                num_movable = max(int(self.design.arrays.movable_mask.sum()), 1)
                pp_norm = self.attraction.gradient_norm(x, y)
                num_pairs = max(len(self.pairs), 1)
                if pp_norm > 1e-12 and wl_norm > 1e-12:
                    self.attraction.weight = (
                        cfg.attraction_ratio * (wl_norm / num_movable) / (pp_norm / num_pairs)
                    )
                    self._calibrated = True
        placer.reset_optimizer_momentum()
        placer.history.record_extra("tns", iteration, result.tns)
        placer.history.record_extra("wns", iteration, result.wns)

    def run(self) -> BaselineResult:
        start = time.perf_counter()
        placer = GlobalPlacer(
            self.design, self.config.placement_config(), profiler=self.profiler
        )
        placer.add_objective_term(self.attraction)
        placer.add_callback(self._timing_callback)
        placement = placer.run()
        x, y = placement.x, placement.y
        with self.profiler.section("legalization"):
            legal = AbacusLegalizer(self.design).legalize(x, y)
            if not legal.success:
                legal = GreedyLegalizer(self.design).legalize(x, y)
            x, y = legal.x, legal.y
            self.design.set_positions(x, y)
        with self.profiler.section("io"):
            evaluation = Evaluator(self.design, self.constraints).evaluate(x, y)
        return BaselineResult(
            x=x,
            y=y,
            evaluation=evaluation,
            placement=placement,
            history=placement.history,
            profiler=self.profiler,
            runtime_seconds=time.perf_counter() - start,
        )
