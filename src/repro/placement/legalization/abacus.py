"""Abacus legalization (Spindler, Schlichtmann, Johannes, ISPD'08).

Cells are processed in order of their global-placement x coordinate and
inserted into the row that minimizes displacement.  Within a row, cells are
kept in clusters; when the newly inserted cell's cluster overlaps its
predecessor, the clusters are merged and the merged cluster is re-placed at
its quadratic-optimal position (the weighted mean of its members' desired
positions minus their offsets), clamped to the row.  The paper's flow runs
Abacus after global placement before writing the DEF (Fig. 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.netlist.core import Row, as_core


@dataclass
class _Cluster:
    """A maximal group of abutting cells in one row (Abacus bookkeeping)."""

    weight: float = 0.0   # e_c: sum of cell weights
    width: float = 0.0    # w_c: sum of cell widths
    q: float = 0.0        # q_c: sum of weight * (desired_x - offset_in_cluster)
    cells: List[int] = field(default_factory=list)

    def add_cell(self, cell: int, desired_x: float, cell_width: float, cell_weight: float = 1.0) -> None:
        self.cells.append(cell)
        self.q += cell_weight * (desired_x - self.width)
        self.weight += cell_weight
        self.width += cell_width

    def add_cluster(self, other: "_Cluster") -> None:
        self.cells.extend(other.cells)
        self.q += other.q - other.weight * self.width
        self.weight += other.weight
        self.width += other.width

    def optimal_x(self, row: Row) -> float:
        x = self.q / max(self.weight, 1e-12)
        return float(np.clip(x, row.xl, max(row.xl, row.xh - self.width)))


@dataclass
class LegalizationResult:
    """Outcome of a legalization pass."""

    x: np.ndarray
    y: np.ndarray
    total_displacement: float
    max_displacement: float
    num_failed: int

    @property
    def success(self) -> bool:
        return self.num_failed == 0


class AbacusLegalizer:
    """Row-based Abacus legalizer for standard cells."""

    def __init__(
        self,
        design,
        *,
        site_aligned: bool = True,
        max_candidate_rows: int = 24,
    ) -> None:
        self.core = as_core(design)
        self.site_aligned = site_aligned
        self.max_candidate_rows = max_candidate_rows
        self.rows = self.core.rows()
        if not self.rows:
            raise ValueError("Design has no placement rows (die too short?)")

    def legalize(
        self,
        x: Optional[np.ndarray] = None,
        y: Optional[np.ndarray] = None,
    ) -> LegalizationResult:
        """Legalize movable cells; returns legal positions for all instances."""
        arrays = self.core
        if x is None or y is None:
            x, y = arrays.positions()
        x = np.asarray(x, dtype=np.float64).copy()
        y = np.asarray(y, dtype=np.float64).copy()

        movable = arrays.movable_index
        widths = arrays.inst_width
        order = movable[np.argsort(x[movable], kind="stable")]

        row_clusters: List[List[_Cluster]] = [[] for _ in self.rows]
        row_used = np.zeros(len(self.rows), dtype=np.float64)
        row_y = np.array([r.y for r in self.rows])

        legal_x = x.copy()
        legal_y = y.copy()
        num_failed = 0

        for cell in order:
            cell = int(cell)
            desired_x = float(x[cell])
            desired_y = float(y[cell])
            width = float(widths[cell])
            candidate_rows = np.argsort(np.abs(row_y - desired_y))
            placed = False
            for row_idx in candidate_rows[: self.max_candidate_rows]:
                row_idx = int(row_idx)
                row = self.rows[row_idx]
                if row_used[row_idx] + width > row.width + 1e-9:
                    continue
                self._insert_into_row(cell, desired_x, width, row, row_clusters[row_idx])
                row_used[row_idx] += width
                legal_y[cell] = row.y
                placed = True
                break
            if not placed:
                # Last resort: least-filled row, even if far away.
                row_idx = int(np.argmin(row_used))
                row = self.rows[row_idx]
                if row_used[row_idx] + width <= row.width + 1e-9:
                    self._insert_into_row(cell, desired_x, width, row, row_clusters[row_idx])
                    row_used[row_idx] += width
                    legal_y[cell] = row.y
                else:
                    num_failed += 1

        for row, clusters in zip(self.rows, row_clusters):
            for cluster in clusters:
                cursor = cluster.optimal_x(row)
                if self.site_aligned:
                    cursor = row.xl + round((cursor - row.xl) / row.site_width) * row.site_width
                    cursor = max(row.xl, min(cursor, row.xh - cluster.width))
                for cell in cluster.cells:
                    legal_x[cell] = cursor
                    cursor += widths[cell]

        displacement = np.abs(legal_x[movable] - x[movable]) + np.abs(
            legal_y[movable] - y[movable]
        )
        return LegalizationResult(
            x=legal_x,
            y=legal_y,
            total_displacement=float(displacement.sum()),
            max_displacement=float(displacement.max()) if displacement.size else 0.0,
            num_failed=num_failed,
        )

    def _insert_into_row(
        self,
        cell: int,
        desired_x: float,
        width: float,
        row: Row,
        clusters: List[_Cluster],
    ) -> None:
        cluster = _Cluster()
        cluster.add_cell(cell, desired_x, width)
        clusters.append(cluster)
        # Collapse: while the last cluster overlaps its predecessor, merge.
        while len(clusters) >= 2:
            last = clusters[-1]
            prev = clusters[-2]
            if prev.optimal_x(row) + prev.width <= last.optimal_x(row) + 1e-9:
                break
            prev.add_cluster(last)
            clusters.pop()

    def apply(self, result: LegalizationResult) -> None:
        """Write legalized positions back onto the design core."""
        self.core.set_positions(result.x, result.y)
