"""Uniform placement scoring: HPWL, TNS, WNS, legality checks.

The evaluator plays the role of the ICCAD-2015 contest evaluation kit: every
competing placement of the same design is scored with one STA configuration
(same constraints, same wire RC, same Elmore model) so differences come from
the placement alone.

With ``corners`` the evaluator scores against a multi-corner analysis: the
headline ``tns``/``wns`` become the *merged* (worst-over-corners) metrics and
the report additionally carries the per-corner breakdown.  A single identity
corner reproduces the single-corner numbers bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from repro.netlist.core import as_core
from repro.netlist.design import Design
from repro.placement.wirelength import total_hpwl
from repro.route.rudy import CongestionConfig, CongestionEstimator
from repro.timing.constraints import TimingConstraints
from repro.timing.mcmm import CornersSpec, MultiCornerResult, MultiCornerSTA
from repro.timing.sta import STAEngine


@dataclass
class EvaluationReport:
    """Scores of one placement.

    ``tns``/``wns`` are merged over corners when the evaluation was
    multi-corner (``per_corner`` is then populated, keyed by corner name).
    """

    design_name: str
    hpwl: float
    tns: float
    wns: float
    num_failing_endpoints: int
    num_endpoints: int
    overlap_area: float
    out_of_die_cells: int
    per_corner: Optional[Dict[str, Dict[str, float]]] = field(default=None)
    # Routability metrics (populated when the evaluation was built with a
    # congestion model; None otherwise so timing-only reports are unchanged).
    congestion_peak_overflow: Optional[float] = field(default=None)
    congestion_avg_overflow: Optional[float] = field(default=None)
    congestion_hotspots: Optional[int] = field(default=None)
    congestion_weighted: Optional[float] = field(default=None)
    # In-loop feedback trajectory (populated by flows that ran scheduled
    # placement feedbacks): one row per feedback update with the iteration,
    # which feedbacks fired, and their WNS / peak-overflow / weight-norm
    # metrics.  None for plain evaluations.
    feedback_trajectory: Optional[List[Dict[str, Any]]] = field(default=None)
    # Aggregate tracing metrics (repro.obs Tracer.metrics() snapshot taken
    # by the evaluation stage): per-span seconds/counts plus counters and
    # gauges.  None when the run was not traced.
    trace_metrics: Optional[Dict[str, Any]] = field(default=None)

    def as_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "design": self.design_name,
            "hpwl": self.hpwl,
            "tns": self.tns,
            "wns": self.wns,
            "failing_endpoints": self.num_failing_endpoints,
            "endpoints": self.num_endpoints,
            "overlap_area": self.overlap_area,
            "out_of_die_cells": self.out_of_die_cells,
        }
        if self.per_corner is not None:
            out["per_corner"] = self.per_corner
        if self.congestion_peak_overflow is not None:
            out["congestion_peak_overflow"] = self.congestion_peak_overflow
            out["congestion_avg_overflow"] = self.congestion_avg_overflow
            out["congestion_hotspots"] = self.congestion_hotspots
            out["congestion_weighted"] = self.congestion_weighted
        if self.feedback_trajectory is not None:
            out["feedback_trajectory"] = self.feedback_trajectory
        if self.trace_metrics is not None:
            out["trace_metrics"] = self.trace_metrics
        return out


class Evaluator:
    """Score placements of one design with a fixed STA configuration."""

    def __init__(
        self,
        design: Design,
        constraints: Optional[TimingConstraints] = None,
        *,
        corners: CornersSpec = None,
        congestion: Optional[CongestionConfig] = None,
    ) -> None:
        self.design = design
        self.constraints = (
            constraints if constraints is not None else TimingConstraints.from_design(design)
        )
        if corners is not None:
            self._engine: "STAEngine | MultiCornerSTA" = MultiCornerSTA(
                design, corners, default_constraints=self.constraints
            )
        else:
            self._engine = STAEngine(design, self.constraints)
        # Congestion scoring is opt-in so timing-only evaluations stay
        # byte-for-byte identical (and pay nothing for the estimator).  The
        # estimator itself is built lazily: callers that hand a precomputed
        # CongestionResult to evaluate() never pay for one.
        self._congestion_config = congestion
        self._congestion: Optional[CongestionEstimator] = None

    def evaluate(
        self,
        x: Optional[np.ndarray] = None,
        y: Optional[np.ndarray] = None,
        *,
        congestion_result=None,
    ) -> EvaluationReport:
        """Evaluate positions ``(x, y)`` (design's stored positions if omitted).

        ``congestion_result`` injects an already-built
        :class:`~repro.route.rudy.CongestionResult` for the *same*
        positions (flows that just ran a congestion stage reuse it instead
        of rebuilding the maps); otherwise the maps are estimated here when
        the evaluator was configured with a congestion model.
        """
        design = self.design
        if x is None or y is None:
            x, y = design.positions()
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)

        core = design.core
        hpwl = total_hpwl(core, x, y)
        result = self._engine.update_timing(x, y)
        per_corner = (
            result.per_corner_summary() if isinstance(result, MultiCornerResult) else None
        )
        overlap = _row_overlap_area(core, x, y)
        outside = _out_of_die_count(core, x, y)
        report = EvaluationReport(
            design_name=design.name,
            hpwl=hpwl,
            tns=result.tns,
            wns=result.wns,
            num_failing_endpoints=result.num_failing_endpoints,
            num_endpoints=int(result.endpoint_pins.size),
            overlap_area=overlap,
            out_of_die_cells=outside,
            per_corner=per_corner,
        )
        congestion = congestion_result
        if congestion is None and self._congestion_config is not None:
            if self._congestion is None:
                self._congestion = CongestionEstimator(
                    design, self._congestion_config
                )
            congestion = self._congestion.estimate(x, y)
        if congestion is not None:
            report.congestion_peak_overflow = congestion.peak_overflow
            report.congestion_avg_overflow = congestion.average_overflow
            report.congestion_hotspots = congestion.num_hotspots
            report.congestion_weighted = congestion.weighted_congestion()
        return report

    @property
    def engine(self) -> "STAEngine | MultiCornerSTA":
        """The underlying STA engine (shared with reporting utilities)."""
        return self._engine


def evaluate_placement(
    design: Design,
    x: Optional[np.ndarray] = None,
    y: Optional[np.ndarray] = None,
    *,
    constraints: Optional[TimingConstraints] = None,
    corners: CornersSpec = None,
    congestion: Optional[CongestionConfig] = None,
) -> EvaluationReport:
    """One-shot convenience wrapper around :class:`Evaluator`."""
    return Evaluator(
        design, constraints, corners=corners, congestion=congestion
    ).evaluate(x, y)


def _row_overlap_area(design, x: np.ndarray, y: np.ndarray) -> float:
    """Total pairwise overlap area between movable cells sharing a row."""
    arrays = as_core(design)
    movable = arrays.movable_index
    if movable.size == 0:
        return 0.0
    overlap = 0.0
    # Group by y coordinate (legal placements put cells exactly on rows).
    ys = y[movable]
    for row_y in np.unique(ys):
        in_row = movable[ys == row_y]
        if in_row.size < 2:
            continue
        order = in_row[np.argsort(x[in_row], kind="stable")]
        right_edge = x[order] + arrays.inst_width[order]
        gaps = x[order][1:] - right_edge[:-1]
        heights = np.minimum(arrays.inst_height[order][1:], arrays.inst_height[order][:-1])
        overlap += float(np.sum(np.maximum(-gaps, 0.0) * heights))
    return overlap


def _out_of_die_count(design, x: np.ndarray, y: np.ndarray) -> int:
    """Number of movable cells whose footprint leaves the die area."""
    arrays = as_core(design)
    die = arrays.die
    movable = arrays.movable_index
    if movable.size == 0:
        return 0
    xl = x[movable]
    yl = y[movable]
    xh = xl + arrays.inst_width[movable]
    yh = yl + arrays.inst_height[movable]
    bad = (
        (xl < die.xl - 1e-6)
        | (yl < die.yl - 1e-6)
        | (xh > die.xh + 1e-6)
        | (yh > die.yh + 1e-6)
    )
    return int(np.sum(bad))
