"""Timing constraints and analysis-corner specs consumed by the STA engines.

The constraints mirror the subset of SDC the library parses: one ideal clock,
per-port input/output delays, and a global flip-flop setup time.  They can be
constructed directly, converted from a parsed
:class:`repro.netlist.parsers.sdc.SDCConstraints`, or pulled from the fields a
:class:`repro.netlist.Design` carries after ``apply_sdc``.

A :class:`TimingConstraints` describes one *mode*; a :class:`Corner` couples a
mode with the physical derates of one PVT corner (wire-RC scale, cell-delay
derate).  Multi-corner/multi-mode analysis stacks several corners in one
:class:`repro.timing.mcmm.MultiCornerSTA` pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.netlist.design import Design


@dataclass
class TimingConstraints:
    """Constraints for one analysis mode (clock, IO delays, setup margin)."""

    clock_period: float = 1000.0
    clock_name: str = "clk"
    clock_port: Optional[str] = None
    setup_time: float = 20.0
    input_delays: Dict[str, float] = field(default_factory=dict)
    output_delays: Dict[str, float] = field(default_factory=dict)
    default_input_delay: float = 0.0
    default_output_delay: float = 0.0

    @classmethod
    def from_design(cls, design: Design, *, setup_time: float = 20.0) -> "TimingConstraints":
        """Build constraints from the SDC-derived fields stored on a design."""
        period = design.clock_period if design.clock_period is not None else 1000.0
        return cls(
            clock_period=period,
            clock_name=design.clock_name,
            clock_port=design.clock_port,
            setup_time=setup_time,
            input_delays=dict(design.input_delays),
            output_delays=dict(design.output_delays),
        )

    def input_delay(self, port_name: str) -> float:
        return self.input_delays.get(port_name, self.default_input_delay)

    def output_delay(self, port_name: str) -> float:
        return self.output_delays.get(port_name, self.default_output_delay)

    def validate(self) -> None:
        if self.clock_period <= 0:
            raise ValueError("clock_period must be positive")
        if self.setup_time < 0:
            raise ValueError("setup_time cannot be negative")


@dataclass(frozen=True)
class Corner:
    """One PVT analysis corner: physical derates plus an optional mode.

    ``wire_rc_scale`` multiplies both per-unit wire resistance and
    capacitance; ``cell_derate`` multiplies every cell-arc delay.  The
    identity corner (both 1.0) reproduces the plain single-corner engine bit
    for bit.  ``constraints`` optionally pins the corner to a specific mode;
    when ``None`` the design's SDC-derived constraints are used.
    """

    name: str
    wire_rc_scale: float = 1.0
    cell_derate: float = 1.0
    constraints: Optional[TimingConstraints] = None

    def validate(self) -> None:
        if self.wire_rc_scale <= 0:
            raise ValueError(f"Corner {self.name!r}: wire_rc_scale must be positive")
        if self.cell_derate <= 0:
            raise ValueError(f"Corner {self.name!r}: cell_derate must be positive")
        if self.constraints is not None:
            self.constraints.validate()

    def constraints_for(
        self, design: Design, default: Optional[TimingConstraints] = None
    ) -> TimingConstraints:
        """The corner's mode constraints.

        Resolution order (the one :class:`repro.timing.mcmm.MultiCornerSTA`
        uses): the corner's own pinned constraints, then the caller-provided
        ``default`` (e.g. a flow's constraints), then the design's
        SDC-derived fields.
        """
        if self.constraints is not None:
            return self.constraints
        if default is not None:
            return default
        return TimingConstraints.from_design(design)

    @property
    def is_identity(self) -> bool:
        """True when the corner applies no physical derating."""
        return self.wire_rc_scale == 1.0 and self.cell_derate == 1.0
