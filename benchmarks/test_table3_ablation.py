"""Table III — ablation study of the Efficient-TDP design choices.

Six arms, mirroring the paper:

* ``w/ HPWL Loss``            — pin-pair loss replaced by per-pair HPWL;
* ``w/ Linear Loss``          — pin-pair loss replaced by Euclidean distance;
* ``w/ rpt_timing(n*10)``     — extraction via OpenTimer-style report_timing;
* ``w/ rpt_timing_ept(n,10)`` — 10 paths per failing endpoint;
* ``w/o Path Extraction``     — momentum net weighting instead of paths;
* ``Our Method``              — quadratic loss + report_timing_endpoint(n,1).

Reported per design: TNS and WNS, plus average ratios normalized by ours.
To keep the harness laptop-fast the ablation uses four of the eight designs;
pass ``--full-ablation`` via the REPRO_FULL_ABLATION env var to use all.
"""

from __future__ import annotations

import os
from typing import Dict

import pytest

from benchmarks.conftest import save_json, save_text
from repro.baselines import DreamPlace4Baseline
from repro.benchgen import benchmark_names, load_benchmark
from repro.core import EfficientTDPConfig, EfficientTDPlacer, ExtractionConfig
from repro.evaluation import average_ratio, format_table

ABLATION_DESIGNS = (
    benchmark_names()
    if os.environ.get("REPRO_FULL_ABLATION")
    else ["sb_mini_1", "sb_mini_5", "sb_mini_16", "sb_mini_18"]
)

ARMS = [
    "w/ HPWL Loss",
    "w/ Linear Loss",
    "w/ rpt_timing(n*10)",
    "w/ rpt_timing_ept(n,10)",
    "w/o Path Extraction",
    "Our Method",
]


def _run_arm(arm: str, design_name: str):
    design = load_benchmark(design_name)
    if arm == "w/o Path Extraction":
        return DreamPlace4Baseline(design).run()
    config = EfficientTDPConfig()
    if arm == "w/ HPWL Loss":
        config.loss = "hpwl"
    elif arm == "w/ Linear Loss":
        config.loss = "linear"
    elif arm == "w/ rpt_timing(n*10)":
        config.extraction = ExtractionConfig(mode="report_timing", endpoint_multiplier=10,
                                             max_endpoints=200)
    elif arm == "w/ rpt_timing_ept(n,10)":
        config.extraction = ExtractionConfig(mode="endpoint", paths_per_endpoint=10)
    return EfficientTDPlacer(design, config).run()


@pytest.fixture(scope="module")
def ablation_results() -> Dict[str, Dict[str, object]]:
    results: Dict[str, Dict[str, object]] = {}
    for design in ABLATION_DESIGNS:
        results[design] = {arm: _run_arm(arm, design) for arm in ARMS}
    return results


def test_table3_ablation(ablation_results, benchmark):
    tns = {arm: {} for arm in ARMS}
    wns = {arm: {} for arm in ARMS}

    def collect():
        for design, per_arm in ablation_results.items():
            for arm, result in per_arm.items():
                tns[arm][design] = abs(result.evaluation.tns)
                wns[arm][design] = abs(result.evaluation.wns)
        return tns, wns

    benchmark.pedantic(collect, rounds=1, iterations=1)

    rows = []
    for design in ABLATION_DESIGNS:
        row = [design]
        for arm in ARMS:
            ev = ablation_results[design][arm].evaluation
            row.extend([round(ev.tns, 1), round(ev.wns, 1)])
        rows.append(row)
    avg_tns = average_ratio(tns, "Our Method")
    avg_wns = average_ratio(wns, "Our Method")
    ratio_row = ["Average Ratio"]
    for arm in ARMS:
        ratio_row.extend([round(avg_tns[arm], 2), round(avg_wns[arm], 2)])
    rows.append(ratio_row)

    headers = ["Benchmark"]
    for arm in ARMS:
        headers.extend([f"{arm} TNS", "WNS"])
    table = format_table(headers, rows, title="Table III — ablation study (TNS / WNS)")
    print("\n" + table)
    save_text("table3_ablation.txt", table)
    save_json(
        "table3_ablation.json",
        {
            "designs": ABLATION_DESIGNS,
            "average_ratio": {"tns": avg_tns, "wns": avg_wns},
            "per_design": {
                design: {arm: ablation_results[design][arm].evaluation.as_dict() for arm in ARMS}
                for design in ABLATION_DESIGNS
            },
        },
    )

    # Shape checks from the paper's ablation discussion:
    # 1. the quadratic loss is at least as good on average as HPWL/linear pair losses;
    assert avg_tns["w/ HPWL Loss"] >= avg_tns["Our Method"] - 0.05
    assert avg_tns["w/ Linear Loss"] >= avg_tns["Our Method"] - 0.05
    # 2. endpoint extraction with k=10 stays in the same ballpark as k=1
    #    (more paths, slightly different trade-off), and all arms produce
    #    legal placements.
    assert avg_tns["w/ rpt_timing_ept(n,10)"] == pytest.approx(1.0, abs=0.6)
    for design in ABLATION_DESIGNS:
        for arm in ARMS:
            assert ablation_results[design][arm].evaluation.out_of_die_cells == 0
