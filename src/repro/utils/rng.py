"""Deterministic random number generation helpers.

Every stochastic component in the library (benchmark generation, initial
placement perturbation) accepts either an integer seed or an existing
``numpy.random.Generator``.  Centralizing the coercion keeps experiments
reproducible: the same seed always yields the same synthetic design and the
same placement trajectory.
"""

from __future__ import annotations

from typing import Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator]


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a ``numpy.random.Generator``.

    Passing an existing generator returns it unchanged so that a caller can
    thread one generator through several components.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rng(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent child generators from ``rng``."""
    if count < 0:
        raise ValueError("count must be non-negative")
    seeds = rng.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]


def derive_seed(rng: np.random.Generator) -> int:
    """Draw a fresh integer seed from ``rng`` (useful for logging/repro)."""
    return int(rng.integers(0, 2**31 - 1))
