"""Baseline placers used in the Table II / Table III comparisons.

All baselines run on exactly the same substrate (placement engine, STA
engine, legalizer, evaluator) as the proposed method, so differences in
TNS/WNS/HPWL come from the timing-driven strategy alone:

* :class:`DreamPlaceBaseline` — wirelength/density only (DREAMPlace).
* :class:`DreamPlace4Baseline` — momentum-based net weighting
  (DREAMPlace 4.0); also the "w/o Path Extraction" ablation arm.
* :class:`DifferentiableTDPBaseline` — smoothed, pin-level path-free timing
  attraction in the spirit of Guo & Lin's differentiable-timing objective.
"""

from repro.baselines.dreamplace import DreamPlaceBaseline, BaselineResult
from repro.baselines.dreamplace4 import DreamPlace4Baseline, DreamPlace4Config
from repro.baselines.differentiable_tdp import (
    DifferentiableTDPBaseline,
    DifferentiableTDPConfig,
)

__all__ = [
    "BaselineResult",
    "DreamPlaceBaseline",
    "DreamPlace4Baseline",
    "DreamPlace4Config",
    "DifferentiableTDPBaseline",
    "DifferentiableTDPConfig",
]
