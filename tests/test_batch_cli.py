"""The multi-design batch runner and the ``repro`` CLI."""

import json

import pytest

from repro.flow.batch import BatchJob, run_batch
from repro.flow.cli import _parse_overrides, _parse_value, main

# Keep the designs tiny so the whole module stays fast.
FAST_SET = [
    "--set", "max_iterations=60",
    "--set", "timing_start_iteration=20",
    "--set", "min_timing_iterations=20",
    "--set", "timing_update_interval=10",
]
FAST_OVERRIDES = {
    "max_iterations": 60,
    "timing_start_iteration": 20,
    "min_timing_iterations": 20,
    "timing_update_interval": 10,
}


def _fast_jobs(preset="efficient_tdp", seeds=(0,)):
    overrides = (
        dict(FAST_OVERRIDES) if preset == "efficient_tdp" else {"max_iterations": 60}
    )
    return [
        BatchJob(
            design=name,
            preset=preset,
            seed=seed,
            scale=0.2,
            overrides=dict(overrides),
        )
        for name in ["sb_mini_18", "sb_mini_4", "sb_mini_16", "sb_mini_1"]
        for seed in seeds
    ]


class TestRunBatch:
    def test_four_designs_concurrently(self):
        """Acceptance: >= 4 synthetic designs run concurrently with a report."""
        report = run_batch(_fast_jobs(), max_workers=4)
        assert len(report.items) == 4
        assert report.num_ok == 4
        assert report.max_workers == 4
        aggregate = report.aggregate()
        assert aggregate["ok"] == 4
        assert aggregate["overall"]["runs"] == 4
        assert aggregate["overall"]["mean_hpwl"] > 0

    def test_per_design_seeds_respected(self):
        report = run_batch(_fast_jobs(preset="dreamplace", seeds=(3, 4)), max_workers=4)
        assert len(report.items) == 8
        seeds = {(item.design, item.seed) for item in report.items}
        assert ("sb_mini_18", 3) in seeds and ("sb_mini_18", 4) in seeds
        for item in report.items:
            assert item.ok
            assert item.summary["seed"] == item.seed

    def test_seed_changes_result(self):
        jobs = [
            BatchJob("sb_mini_18", preset="dreamplace", seed=s, scale=0.2,
                     overrides={"max_iterations": 60})
            for s in (0, 1)
        ]
        report = run_batch(jobs, max_workers=2)
        hpwls = [item.summary["hpwl"] for item in report.items]
        assert hpwls[0] != hpwls[1]

    def test_failures_are_contained(self):
        jobs = [
            BatchJob("sb_mini_18", preset="dreamplace", scale=0.2,
                     overrides={"max_iterations": 40}),
            BatchJob("sb_mini_18", preset="dreamplace",
                     overrides={"no_such_field": 1}),
        ]
        report = run_batch(jobs, max_workers=2)
        assert report.num_ok == 1
        assert report.num_failed == 1
        failed = next(item for item in report.items if not item.ok)
        assert "no_such_field" in failed.error
        assert report.aggregate()["failed"] == 1

    def test_json_round_trip(self, tmp_path):
        report = run_batch(_fast_jobs(preset="dreamplace"), max_workers=4)
        path = report.to_json(str(tmp_path / "batch.json"))
        payload = json.loads(open(path, encoding="utf-8").read())
        assert payload["aggregate"]["jobs"] == 4
        assert len(payload["items"]) == 4
        assert all(item["summary"]["hpwl"] > 0 for item in payload["items"])

    def test_format_table_mentions_every_job(self):
        report = run_batch(_fast_jobs(preset="dreamplace"), max_workers=4)
        table = report.format_table()
        for item in report.items:
            assert item.label in table

    def test_process_executor(self):
        report = run_batch(
            _fast_jobs(preset="dreamplace")[:2], max_workers=2, executor="process"
        )
        assert report.num_ok == 2
        assert report.executor == "process"

    def test_conflicting_seed_override_rejected_up_front(self):
        jobs = _fast_jobs(preset="dreamplace")
        jobs.append(BatchJob("sb_mini_18", preset="dreamplace", seed=1,
                             overrides={"seed": 2}))
        with pytest.raises(ValueError, match="conflicts with job.seed"):
            run_batch(jobs, max_workers=2)

    def test_matching_seed_override_allowed(self):
        report = run_batch(
            [BatchJob("sb_mini_18", preset="dreamplace", seed=7, scale=0.2,
                      overrides={"seed": 7, "max_iterations": 40})],
            max_workers=1,
        )
        assert report.num_ok == 1
        assert report.items[0].summary["seed"] == 7

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            run_batch([])

    def test_bad_executor_rejected(self):
        with pytest.raises(ValueError, match="executor"):
            run_batch(_fast_jobs()[:1], executor="fork_bomb")


class TestCLIParsing:
    def test_parse_value_types(self):
        assert _parse_value("3") == 3
        assert _parse_value("2.5e-5") == pytest.approx(2.5e-5)
        assert _parse_value("true") is True
        assert _parse_value("False") is False
        assert _parse_value("quadratic") == "quadratic"

    def test_parse_overrides(self):
        assert _parse_overrides(["a=1", "b=x"]) == {"a": 1, "b": "x"}
        with pytest.raises(SystemExit):
            _parse_overrides(["oops"])


class TestCLICommands:
    def test_run_writes_json(self, tmp_path, capsys):
        out = tmp_path / "run.json"
        code = main(["run", "sb_mini_18", "--preset", "efficient_tdp",
                     "--scale", "0.2", "--json", str(out), *FAST_SET])
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["design"] == "sb_mini_18"
        assert payload["flow"] == "efficient_tdp"
        assert "hpwl" in payload
        assert "hpwl" in capsys.readouterr().out

    def test_batch_four_designs(self, tmp_path, capsys):
        out = tmp_path / "batch.json"
        code = main([
            "batch", "sb_mini_18", "sb_mini_4", "sb_mini_16", "sb_mini_1",
            "--preset", "dreamplace", "--scale", "0.2", "--jobs", "4",
            "--set", "max_iterations=60", "--json", str(out),
        ])
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["aggregate"]["jobs"] == 4
        assert payload["aggregate"]["ok"] == 4
        assert "Batch: 4/4 ok" in capsys.readouterr().out

    def test_run_with_corners_reports_per_corner(self, tmp_path):
        out = tmp_path / "mcmm.json"
        code = main([
            "run", "sb_mini_18", "--preset", "dreamplace", "--scale", "0.2",
            "--set", "max_iterations=40", "--corners", "fast,typ,slow",
            "--json", str(out),
        ])
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["corners"] == ["fast", "typ", "slow"]
        assert set(payload["per_corner"]) == {"fast", "typ", "slow"}
        # Headline WNS is the merged (worst-corner) value.
        assert payload["wns"] == min(
            row["wns"] for row in payload["per_corner"].values()
        )

    def test_unknown_corner_preset_exits(self):
        with pytest.raises(SystemExit, match="corners"):
            main(["run", "sb_mini_18", "--corners", "nonsense"])

    def test_corners_via_set_rejected(self):
        with pytest.raises(SystemExit, match="--corners"):
            main([
                "run", "sb_mini_18", "--corners", "typ",
                "--set", "corners=fast",
            ])

    def test_batch_with_corners(self, tmp_path):
        out = tmp_path / "batch_mcmm.json"
        code = main([
            "batch", "sb_mini_18", "sb_mini_4", "--preset", "dreamplace",
            "--scale", "0.2", "--jobs", "2", "--set", "max_iterations=40",
            "--corners", "fast,slow", "--ship", "compiled", "--json", str(out),
        ])
        assert code == 0
        payload = json.loads(out.read_text())
        for item in payload["items"]:
            assert set(item["summary"]["per_corner"]) == {"fast", "slow"}

    def test_batch_unknown_design_exits(self):
        with pytest.raises(SystemExit):
            main(["batch", "not_a_design"])

    def test_batch_without_designs_exits(self):
        with pytest.raises(SystemExit):
            main(["batch"])

    def test_sweep(self, tmp_path):
        out = tmp_path / "sweep.json"
        code = main([
            "sweep", "sb_mini_18", "--preset", "dreamplace", "--scale", "0.2",
            "--param", "max_iterations", "--values", "30,60",
            "--json", str(out),
        ])
        assert code == 0
        payload = json.loads(out.read_text())
        labels = [item["label"] for item in payload["items"]]
        assert labels == ["max_iterations=30", "max_iterations=60"]

    def test_compare_runs_all_presets(self, tmp_path):
        out = tmp_path / "compare.json"
        code = main([
            "compare", "sb_mini_18", "--scale", "0.15", "--jobs", "4",
            *FAST_SET, "--json", str(out),
        ])
        assert code == 0
        payload = json.loads(out.read_text())
        presets = {item["preset"] for item in payload["items"]}
        assert presets == {
            "efficient_tdp", "dreamplace", "dreamplace4", "differentiable_tdp",
            "routability", "routability-gp",
        }
        assert payload["aggregate"]["failed"] == 0

    def test_run_routability_flag(self, tmp_path):
        out = tmp_path / "routed.json"
        code = main([
            "run", "sb_cong_1", "--preset", "dreamplace", "--scale", "0.4",
            "--set", "max_iterations=80", "--routability", "--json", str(out),
        ])
        assert code == 0
        payload = json.loads(out.read_text())
        assert "congestion_peak_overflow" in payload
        assert "inflation_rounds" in payload

    def test_congestion_command(self, tmp_path):
        out = tmp_path / "congestion.json"
        code = main([
            "congestion", "sb_cong_1", "--preset", "dreamplace",
            "--scale", "0.4", "--set", "max_iterations=80",
            "--top", "3", "--json", str(out),
        ])
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["congestion"]["peak_overflow"] >= 0.0
        assert len(payload["hotspots"]) == 3
        assert "congestion_peak_overflow" in payload["run"]

    def test_congestion_command_top_beyond_stage_default(self, tmp_path):
        """--top is served from the full map, not the stage's top-10 cache."""
        out = tmp_path / "congestion_top.json"
        code = main([
            "congestion", "sb_cong_1", "--preset", "dreamplace",
            "--scale", "0.4", "--set", "max_iterations=80",
            "--top", "15", "--json", str(out),
        ])
        assert code == 0
        payload = json.loads(out.read_text())
        assert len(payload["hotspots"]) == 15

    def test_run_routability_preset_by_name(self, tmp_path):
        out = tmp_path / "preset.json"
        code = main([
            "run", "sb_cong_1", "--preset", "routability", "--scale", "0.4",
            "--set", "max_iterations=80", "--set", "refine_iterations=40",
            "--json", str(out),
        ])
        assert code == 0
        payload = json.loads(out.read_text())
        assert "congestion_peak_overflow" in payload

    def test_run_congestion_weighting_flag_with_profile(self, tmp_path):
        """--congestion-weighting retrofits in-loop weighting onto any
        preset, and --profile reports the per-feedback breakdown."""
        out = tmp_path / "weighted.json"
        code = main([
            "run", "sb_cong_1", "--preset", "dreamplace", "--scale", "0.4",
            "--set", "max_iterations=140", "--congestion-weighting",
            "--profile", "--json", str(out),
        ])
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload.get("feedback_updates", 0) >= 1
        profile = json.loads((tmp_path / "weighted.profile.json").read_text())
        assert "congestion" in profile["feedback"]["seconds"]
        assert profile["feedback"]["calls"]["congestion"] >= 1
        assert profile["feedback"]["updates"] >= 1

    def test_run_routability_gp_preset_by_name(self, tmp_path):
        out = tmp_path / "gp.json"
        code = main([
            "run", "sb_cong_1", "--preset", "routability-gp", "--scale", "0.4",
            "--set", "max_iterations=140", "--set", "refine_iterations=40",
            "--json", str(out),
        ])
        assert code == 0
        payload = json.loads(out.read_text())
        assert "congestion_peak_overflow" in payload
        assert payload.get("feedback_updates", 0) >= 1

    def test_congestion_command_json_to_stdout(self, capsys):
        """`repro congestion --json -` streams the full report to stdout
        (scriptable hotspot reports, satellite of ISSUE 5)."""
        code = main([
            "congestion", "sb_cong_1", "--preset", "dreamplace",
            "--scale", "0.4", "--set", "max_iterations=80",
            "--top", "2", "--json", "-",
        ])
        assert code == 0
        text = capsys.readouterr().out
        start = text.index("{")
        payload = json.loads(text[start:])
        assert payload["congestion"]["peak_overflow"] >= 0.0
        assert len(payload["hotspots"]) == 2
        assert "run" in payload

    def test_congestion_command_with_weighting_flag(self, tmp_path):
        out = tmp_path / "weighted_congestion.json"
        code = main([
            "congestion", "sb_cong_1", "--preset", "dreamplace",
            "--scale", "0.4", "--set", "max_iterations=140",
            "--congestion-weighting", "--top", "2", "--json", str(out),
        ])
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["congestion"]["peak_overflow"] >= 0.0

    def test_routability_flag_on_gp_preset_is_noop(self, tmp_path):
        """--routability on a preset that already repairs must not insert a
        second inflation loop (guards on stages, not preset names)."""
        out = tmp_path / "gp_routability.json"
        code = main([
            "run", "sb_cong_1", "--preset", "routability-gp", "--scale", "0.4",
            "--set", "max_iterations=140", "--set", "refine_iterations=30",
            "--routability", "--congestion-weighting", "--json", str(out),
        ])
        assert code == 0
        payload = json.loads(out.read_text())
        # One repair loop, not two: inflation_rounds stays in single digits
        # and the summary parses (a duplicated stage would double-run).
        assert payload["inflation_rounds"] <= 5

    def test_congestion_weighting_rejects_dreamplace4(self):
        with pytest.raises(SystemExit, match="momentum net-weighting"):
            main([
                "run", "sb_mini_18", "--preset", "dreamplace4", "--scale", "0.2",
                "--set", "max_iterations=40", "--congestion-weighting",
            ])

    def test_profile_with_json_stdout_names_profile_after_run(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        code = main([
            "run", "sb_mini_18", "--preset", "dreamplace", "--scale", "0.2",
            "--set", "max_iterations=40", "--profile", "--json", "-",
        ])
        assert code == 0
        assert not (tmp_path / "-.profile.json").exists()
        assert (tmp_path / "sb_mini_18_dreamplace.profile.json").exists()
