"""Back-end scale tests: array Abacus, delta-HPWL detailed place, row bands.

PR 10's contract mirrors PR 7's: every back-end rewrite is *bitwise*
neutral.  The array-backed ``AbacusLegalizer.legalize`` must match the
object-based ``_reference_legalize`` twin bit for bit, the
``legalize_rowband`` kernel must produce identical candidate bands for any
shard count (serial, sharded, real pool), and the delta-HPWL
``DetailedPlacer.refine`` must take exactly the decisions of the
full-recompute ``_reference_refine`` twin.  The row-overflow bugfix and the
stale-order detailed-placement fix are pinned here too.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.benchgen.suite import load_benchmark
from repro.flow.runner import FlowRunner
from repro.flow.stages import DetailedPlaceStage, LegalizeStage
from repro.netlist import Design, make_generic_library
from repro.parallel import KernelPool, SerialShardRunner
from repro.parallel.kernels import run_kernel
from repro.placement.detailed import DetailedPlacer
from repro.placement.initial import initial_placement
from repro.placement.legalization.abacus import AbacusLegalizer
from repro.placement.wirelength import total_hpwl

DESIGNS = ("sb_mini_18", "sb_mini_4", "sb_cong_1")


def _design(name="sb_mini_18", scale=0.4):
    return load_benchmark(name, scale=scale)


def _positions(design, seed, jitter=2.5):
    rng = np.random.default_rng(seed)
    x, y = initial_placement(design, seed=seed)
    x += rng.normal(0.0, jitter, x.size)
    y += rng.normal(0.0, jitter, y.size)
    return x, y


def _assert_same_result(a, b):
    assert np.array_equal(a.x, b.x)
    assert np.array_equal(a.y, b.y)
    assert a.total_displacement == b.total_displacement
    assert a.max_displacement == b.max_displacement
    assert a.num_failed == b.num_failed
    assert a.num_overfull_rows == b.num_overfull_rows


# ----------------------------------------------------------------------
# Array-backed Abacus ≡ object-based reference, bitwise
# ----------------------------------------------------------------------
class TestAbacusParity:
    @settings(max_examples=10, deadline=None)
    @given(
        name=st.sampled_from(DESIGNS),
        scale=st.floats(0.3, 0.6),
        seed=st.integers(0, 2**31 - 1),
        slack=st.sampled_from([0.0, 0.25]),
    )
    def test_legalize_matches_reference_bitwise(self, name, scale, seed, slack):
        design = _design(name, scale)
        x, y = _positions(design, seed)
        legalizer = AbacusLegalizer(design, capacity_slack=slack)
        _assert_same_result(legalizer.legalize(x, y), legalizer._reference_legalize(x, y))

    def test_site_alignment_off_matches_too(self):
        design = _design("sb_mini_18", 0.4)
        x, y = _positions(design, 11)
        legalizer = AbacusLegalizer(design, site_aligned=False)
        _assert_same_result(legalizer.legalize(x, y), legalizer._reference_legalize(x, y))

    def test_narrow_candidate_window_matches(self):
        # Forces the fallback path (least-filled row) to fire frequently.
        design = _design("sb_cong_1", 0.4)
        x, y = _positions(design, 3)
        legalizer = AbacusLegalizer(design, max_candidate_rows=2)
        _assert_same_result(legalizer.legalize(x, y), legalizer._reference_legalize(x, y))


# ----------------------------------------------------------------------
# Sharded row-band dispatch ≡ serial, any worker count
# ----------------------------------------------------------------------
class TestRowbandSharding:
    @settings(max_examples=8, deadline=None)
    @given(
        name=st.sampled_from(DESIGNS),
        seed=st.integers(0, 2**31 - 1),
        shards=st.integers(1, 8),
    )
    def test_serial_shards_match(self, name, seed, shards):
        design = _design(name, 0.4)
        x, y = _positions(design, seed)
        base = AbacusLegalizer(design).legalize(x, y)
        sharded = AbacusLegalizer(design, runner=SerialShardRunner(shards)).legalize(x, y)
        _assert_same_result(sharded, base)

    def test_real_pool_matches(self):
        design = _design("sb_mini_18", 0.4)
        x, y = _positions(design, 5)
        base = AbacusLegalizer(design).legalize(x, y)
        with KernelPool(2) as pool:
            pooled = AbacusLegalizer(design, runner=pool).legalize(x, y)
        _assert_same_result(pooled, base)

    def test_band_order_is_stable_argsort_with_midpoint_ties(self):
        # Documented tie-break: a cell exactly midway between two rows gets
        # the lower row first — the order a stable argsort of |row_y - y|
        # produces.  Exercise exact midpoints explicitly.
        row_y = np.arange(8, dtype=np.float64) * 10.0
        cell_y = np.array([15.0, 35.0, 0.0, 79.0, 41.0, -3.0, 100.0])
        k = 5
        cand = np.empty(cell_y.size * k, dtype=np.int32)
        run_kernel(
            "legalize_rowband",
            {"row_y": row_y, "cell_y": cell_y, "cand_rows": cand},
            (0, int(cell_y.size), k),
        )
        for i, yy in enumerate(cell_y):
            expect = np.argsort(np.abs(row_y - yy), kind="stable")[:k]
            assert np.array_equal(cand[i * k : (i + 1) * k], expect.astype(np.int32))

    def test_band_pads_with_minus_one_when_rows_run_out(self):
        row_y = np.array([0.0, 10.0])
        cell_y = np.array([4.0])
        k = 4
        cand = np.empty(k, dtype=np.int32)
        run_kernel(
            "legalize_rowband",
            {"row_y": row_y, "cell_y": cell_y, "cand_rows": cand},
            (0, 1, k),
        )
        assert cand.tolist() == [0, 1, -1, -1]


# ----------------------------------------------------------------------
# Row-overflow surfacing (bugfix regression)
# ----------------------------------------------------------------------
def _overfilled_design():
    """A deliberately overfilled die: two 60-wide rows, 160 units of cells."""
    library = make_generic_library()
    design = Design("overfull", die=(0, 0, 60, 26), library=library)
    design.add_port("in0", "input", x=0, y=0)
    design.add_net("n_share")
    rng = np.random.default_rng(0)
    for i in range(80):
        design.add_instance(
            f"u{i}", "INV_X1", x=float(rng.uniform(0, 56)), y=float(rng.uniform(0, 24))
        )
        design.connect("n_share", f"u{i}", "a")
    design.connect("n_share", "in0")
    design.finalize()
    return design


class TestRowOverflow:
    def test_strict_capacity_fails_cells_but_never_overflows(self):
        design = _overfilled_design()
        x, y = design.positions()
        legal = AbacusLegalizer(design).legalize(x, y)
        assert legal.num_failed > 0
        assert legal.num_overfull_rows == 0
        assert not legal.success

    def test_capacity_slack_trades_failures_for_surfaced_overflow(self):
        design = _overfilled_design()
        x, y = design.positions()
        legal = AbacusLegalizer(design, capacity_slack=2.0).legalize(x, y)
        assert legal.num_failed == 0
        assert legal.num_overfull_rows > 0
        assert not legal.success
        # The overflow is real geometry: some cell's right edge spills
        # past its row end.
        core = design.arrays
        rows = core.rows()
        movable = core.movable_index
        right_edge = legal.x[movable] + core.inst_width[movable]
        spilled = False
        for row in rows:
            in_row = legal.y[movable] == row.y
            if np.any(in_row) and float(right_edge[in_row].max()) > row.xh + 1e-6:
                spilled = True
        assert spilled

    def test_overflow_parity_with_reference(self):
        design = _overfilled_design()
        x, y = design.positions()
        legalizer = AbacusLegalizer(design, capacity_slack=2.0)
        _assert_same_result(legalizer.legalize(x, y), legalizer._reference_legalize(x, y))

    def test_clean_design_reports_zero_overfull(self):
        design = _design("sb_mini_18", 0.4)
        x, y = _positions(design, 0)
        legal = AbacusLegalizer(design).legalize(x, y)
        assert legal.num_overfull_rows == 0
        assert legal.success


# ----------------------------------------------------------------------
# Delta-HPWL detailed placement ≡ full-recompute reference, bitwise
# ----------------------------------------------------------------------
class TestDetailedParity:
    @settings(max_examples=6, deadline=None)
    @given(
        name=st.sampled_from(DESIGNS),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_refine_matches_reference_bitwise(self, name, seed):
        design = _design(name, 0.35)
        x, y = _positions(design, seed)
        legal = AbacusLegalizer(design).legalize(x, y)
        placer = DetailedPlacer(design)
        # The cap keeps the full-recompute reference affordable; both paths
        # apply it identically so the comparison covers real accept chains.
        dx, dy, dacc = placer.refine(legal.x, legal.y, max_candidates=250)
        rx, ry, racc = placer._reference_refine(legal.x, legal.y, max_candidates=250)
        assert dacc == racc
        assert np.array_equal(dx, rx)
        assert np.array_equal(dy, ry)

    def test_uncapped_refine_matches_reference(self):
        design = _design("sb_mini_18", 0.3)
        x, y = _positions(design, 2)
        legal = AbacusLegalizer(design).legalize(x, y)
        placer = DetailedPlacer(design, max_passes=2)
        dx, dy, dacc = placer.refine(legal.x, legal.y)
        rx, ry, racc = placer._reference_refine(legal.x, legal.y)
        assert dacc == racc
        assert np.array_equal(dx, rx)
        assert np.array_equal(dy, ry)

    def test_refine_never_raises_hpwl(self):
        design = _design("sb_mini_18", 0.4)
        x, y = _positions(design, 0)
        legal = AbacusLegalizer(design).legalize(x, y)
        before = total_hpwl(design, legal.x, legal.y)
        rx, ry, accepted = DetailedPlacer(design).refine(legal.x, legal.y)
        after = total_hpwl(design, rx, ry)
        assert accepted > 0
        assert after < before

    def test_stale_order_fix_golden(self):
        # Golden pin for the stale-order bugfix (pairs re-derived from the
        # maintained row order, ascending-y/x visitation, left-to-right net
        # sums).  The old implementation iterated a pair list frozen per
        # row pass and summed set-ordered gathers pairwise; this accepted-
        # swap count documents the new deterministic behavior.
        design = _design("sb_mini_18", 0.4)
        x, y = initial_placement(design, seed=0)
        legal = AbacusLegalizer(design).legalize(x, y)
        rx, ry, accepted = DetailedPlacer(design).refine(legal.x, legal.y)
        assert accepted == 355
        assert np.array_equal(ry, legal.y)

    def test_swapped_cells_keep_row_order_invariant(self):
        design = _design("sb_mini_4", 0.4)
        x, y = _positions(design, 9)
        legal = AbacusLegalizer(design).legalize(x, y)
        rx, ry, _ = DetailedPlacer(design).refine(legal.x, legal.y)
        core = design.arrays
        movable = core.movable_index
        for row_y in np.unique(ry[movable]):
            cells = movable[ry[movable] == row_y]
            order = np.argsort(rx[cells], kind="stable")
            xs = rx[cells][order]
            widths = core.inst_width[cells][order]
            # Adjacent cells may abut but never overlap.
            assert np.all(xs[1:] >= xs[:-1] + widths[:-1] - 1e-6)


# ----------------------------------------------------------------------
# Flow integration
# ----------------------------------------------------------------------
class TestBackendStages:
    def test_detailed_place_stage_runs_after_legalize(self):
        design = _design("sb_mini_18", 0.4)
        x, y = initial_placement(design, seed=0)
        design.set_positions(x, y)
        runner = FlowRunner([LegalizeStage(), DetailedPlaceStage()])
        result = runner.run(design)
        meta = result.context.metadata["detailed_place"]
        assert meta["accepted_swaps"] > 0
        assert result.context.metadata["legalization"]["num_overfull_rows"] == 0

    def test_legalize_stage_threads_kernel_workers(self):
        design = _design("sb_mini_18", 0.4)
        x, y = initial_placement(design, seed=0)
        serial = AbacusLegalizer(design).legalize(x, y)
        design.set_positions(x, y)
        runner = FlowRunner([LegalizeStage()], kernel_workers=2)
        result = runner.run(design)
        assert np.array_equal(result.x, serial.x)
        assert np.array_equal(result.y, serial.y)
