"""Shared state threaded through a flow pipeline run.

A :class:`FlowContext` is created once per :meth:`FlowRunner.run` and handed
to every stage in order.  Stages communicate exclusively through it: the
global placement stage publishes positions and history, the timing-weight
stage publishes the shared STA engine, pin-pair set, and extraction
statistics, legalization rewrites the positions, and evaluation attaches the
final report.  Anything not worth a dedicated field goes into ``metadata``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.netlist.design import Design
from repro.timing.constraints import Corner, TimingConstraints
from repro.timing.mcmm import MultiCornerResult, MultiCornerSTA
from repro.timing.sta import STAEngine, STAResult
from repro.utils.profiling import RuntimeProfiler

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.core.pin_attraction import PinPairSet
    from repro.evaluation.evaluator import EvaluationReport
    from repro.placement.global_placer import (
        GlobalPlacer,
        PlacementHistory,
        PlacementResult,
    )
    from repro.route.rudy import CongestionResult
    from repro.timing.report import PathExtractionStats

# A hook applied to the GlobalPlacer right after construction, before the
# placement loop starts.  Timing stages use hooks to attach objective terms
# and per-iteration callbacks without owning the placer.
PlacerHook = Callable[["GlobalPlacer", "FlowContext"], None]


@dataclass
class FlowContext:
    """Everything a flow accumulates while its stages execute."""

    design: Design
    constraints: TimingConstraints
    profiler: RuntimeProfiler
    seed: int = 0
    # MCMM: analysis corners shared by timing and evaluation stages
    # (``None`` = plain single-corner analysis, today's behavior).
    corners: Optional[Tuple[Corner, ...]] = None
    # Kernel-pool workers for STA level sweeps (0 = serial; see
    # repro.parallel).  Filled by FlowRunner from the preset config.
    kernel_workers: int = 0
    # Positions (set by placement, rewritten by legalization).
    x: Optional[np.ndarray] = None
    y: Optional[np.ndarray] = None
    # Stage products.
    placement: Optional["PlacementResult"] = None
    history: Optional["PlacementHistory"] = None
    evaluation: Optional["EvaluationReport"] = None
    sta: Optional[Union[STAEngine, MultiCornerSTA]] = None
    sta_result: Optional[Union[STAResult, MultiCornerResult]] = None
    # Routability: the most recent congestion estimate of the placement
    # (published by the congestion / routability-repair stages), plus the
    # exact position arrays it was estimated from — stages rebind rather
    # than mutate position arrays, so an identity match on these means the
    # estimate is still current and can be reused instead of rebuilt.
    congestion: Optional["CongestionResult"] = None
    congestion_xy: Optional[Tuple[np.ndarray, np.ndarray]] = None
    pin_pairs: Optional["PinPairSet"] = None
    extraction_stats: List["PathExtractionStats"] = field(default_factory=list)
    # Wiring between configuration stages and the placement stage.
    placer: Optional["GlobalPlacer"] = None
    placer_hooks: List[PlacerHook] = field(default_factory=list)
    # Free-form stage outputs (legalization diagnostics, CLI echoes, ...).
    metadata: Dict[str, Any] = field(default_factory=dict)

    def require_sta(self, **engine_kwargs: Any) -> "STAEngine | MultiCornerSTA":
        """Return the flow-wide STA engine, creating it on first use.

        All timing stages share one engine so the timing graph is built once
        per run.  With :attr:`corners` set the shared engine is a
        :class:`MultiCornerSTA` (the flow then optimizes against merged
        slack); otherwise it is the plain single-corner :class:`STAEngine`.
        ``engine_kwargs`` (e.g. ``incremental=True``) apply to the creating
        call; a later caller requesting *different* settings than the engine
        was created with raises instead of being silently handed a
        mismatched engine.
        """
        if self.sta is None:
            if self.corners is not None:
                self.sta = MultiCornerSTA(
                    self.design,
                    self.corners,
                    default_constraints=self.constraints,
                    **engine_kwargs,
                )
            else:
                engine_kwargs.setdefault("workers", self.kernel_workers)
                self.sta = STAEngine(self.design, self.constraints, **engine_kwargs)
            return self.sta
        engine = self.sta
        effective = {
            "incremental": engine.incremental,
            "move_tolerance": engine.move_tolerance,
            "incremental_rebuild_fraction": engine.incremental_rebuild_fraction,
        }
        conflicts = {
            key: value
            for key, value in engine_kwargs.items()
            if key in effective and effective[key] != value
        }
        if conflicts:
            raise ValueError(
                "The flow's shared STA engine is configured with "
                f"{effective}; a later stage requested incompatible "
                f"settings {conflicts}"
            )
        return self.sta

    def feedback_record(self) -> Dict[str, Any]:
        """The run-wide feedback accounting record (created on first use).

        One ``{"trajectory": [...], "seconds": {...}, "calls": {...}}`` dict
        per flow run, shared by every placer the run constructs (the main
        global place and any routability-repair refines), so per-update
        trajectory rows and per-feedback runtimes accumulate in one place.
        Lives in ``metadata["feedback"]`` for JSON-friendly reporting.
        """
        from repro.feedback.scheduler import feedback_record

        return feedback_record(self)

    def positions(self) -> tuple[np.ndarray, np.ndarray]:
        """Current cell positions, falling back to the design's stored ones."""
        if self.x is None or self.y is None:
            return self.design.positions()
        return self.x, self.y
