"""Shared fixtures for the benchmark harness.

The expensive part — running every placer on every sb_mini design — is done
once per pytest session and reused by the Table II / Table IV / Fig. 4 /
Fig. 5 benchmarks.  Results (tables and machine-readable JSON) are written to
``benchmarks/results/``.
"""

from __future__ import annotations

import json
import os
from typing import Dict

import pytest

from repro.baselines import (
    DifferentiableTDPBaseline,
    DreamPlace4Baseline,
    DreamPlaceBaseline,
)
from repro.benchgen import benchmark_names, load_benchmark
from repro.core import EfficientTDPConfig, EfficientTDPlacer
from repro.placement import PlacementConfig

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

# The designs every cross-method table uses (the full sb_mini suite).
SUITE = benchmark_names()

METHODS = ["DREAMPlace", "DREAMPlace 4.0", "Differentiable-TDP", "Efficient-TDP (ours)"]


def results_dir() -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


def save_json(name: str, payload) -> str:
    path = os.path.join(results_dir(), name)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
    return path


def save_text(name: str, text: str) -> str:
    path = os.path.join(results_dir(), name)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")
    return path


def run_method(method: str, design_name: str):
    """Run one placer flow on a freshly generated copy of ``design_name``."""
    design = load_benchmark(design_name)
    if method == "DREAMPlace":
        flow = DreamPlaceBaseline(
            design, PlacementConfig(max_iterations=450, seed=1), record_timing_every=15
        )
    elif method == "DREAMPlace 4.0":
        flow = DreamPlace4Baseline(design)
    elif method == "Differentiable-TDP":
        flow = DifferentiableTDPBaseline(design)
    elif method == "Efficient-TDP (ours)":
        flow = EfficientTDPlacer(design, EfficientTDPConfig())
    else:
        raise ValueError(f"Unknown method {method!r}")
    return flow.run()


@pytest.fixture(scope="session")
def suite_results() -> Dict[str, Dict[str, object]]:
    """``results[design][method] -> flow result`` for the whole suite."""
    results: Dict[str, Dict[str, object]] = {}
    for design_name in SUITE:
        results[design_name] = {}
        for method in METHODS:
            results[design_name][method] = run_method(method, design_name)
    return results
