"""Pin-level timing graph.

The graph follows the standard STA formulation the paper relies on
(Sec. II-B): nodes are design pins, directed edges ("timing arcs") are either

* **net arcs** — from a net's driver pin to each of its sink pins, whose delay
  is the Elmore wire delay and therefore depends on the placement, or
* **cell arcs** — from an input pin to an output pin of the same instance,
  whose delay follows the library characterization and the driven load.

Clock distribution is treated as ideal: nets feeding flip-flop clock pins are
excluded from the data graph and every clock pin gets arrival time zero, so
register-to-register paths start at clock-to-q arcs and end at D pins.

Construction is array-first: arcs are derived from the design core's CSR
connectivity and per-master arc tables with vectorized kernels — the object
netlist is never walked.  Arc ordering is deterministic and identical to the
historical object walk (net arcs in net/CSR order, then cell arcs in instance
order with each master's declared arc order), which keeps path extraction
tie-breaking stable across code generations.  :class:`Arc` objects are
materialized lazily for reporting/debugging only.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.netlist.design import Design
from repro.netlist.library import TimingArcSpec


class ArcKind(enum.IntEnum):
    """Type of a timing arc."""

    CELL = 0
    NET = 1


def csr_gather(
    offsets: np.ndarray, sorted_items: np.ndarray, idx: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Concatenate CSR ranges ``[offsets[i], offsets[i+1])`` for ``i in idx``.

    Returns ``(flat_items, lengths)``: the payload of every requested row
    back to back, and each row's count (possibly zero).
    """
    starts = offsets[idx]
    lengths = offsets[idx + 1] - starts
    total = int(lengths.sum())
    if total == 0:
        return np.zeros(0, dtype=sorted_items.dtype), lengths
    cum = np.cumsum(lengths) - lengths
    positions = np.repeat(starts - cum, lengths) + np.arange(total, dtype=np.int64)
    return sorted_items[positions], lengths


@dataclass(frozen=True)
class Arc:
    """One timing arc (edge) of the graph."""

    index: int
    from_pin: int
    to_pin: int
    kind: ArcKind
    net_index: int = -1
    spec: Optional[TimingArcSpec] = None

    @property
    def is_net_arc(self) -> bool:
        return self.kind is ArcKind.NET


class TimingGraph:
    """Levelized timing DAG over the pins of a finalized design."""

    def __init__(self, design: Design) -> None:
        if not design.finalized:
            raise ValueError("TimingGraph requires a finalized design")
        self.design = design
        self.num_pins = design.num_pins

        self._build_arcs()
        self._build_adjacency()
        self.level = self._levelize()
        self.max_level = int(self.level.max()) if self.num_pins else 0

        self.startpoints = self._find_startpoints()
        self.endpoints = self._find_endpoints()
        self._arcs_cache: Optional[List[Arc]] = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _identify_clock_nets(
        self, csr_net: np.ndarray, driver_pin: np.ndarray
    ) -> np.ndarray:
        """Boolean mask over nets: feeds a clock pin or is the clock root."""
        core = self.design.core
        csr_pins = core.net_pin_index
        clock_mask = np.zeros(core.num_nets, dtype=bool)
        sink_is_clock = core.pin_is_clock[csr_pins] & ~core.pin_is_driver[csr_pins]
        clock_mask[csr_net[sink_is_clock]] = True

        clock_port = self.design.clock_port
        if clock_port is not None and self.design.has_instance(clock_port):
            port_index = self.design.instance(clock_port).index
            if core.inst_is_port[port_index]:
                has_driver = driver_pin >= 0
                driven_by_port = has_driver & (
                    core.pin_instance[np.maximum(driver_pin, 0)] == port_index
                )
                clock_mask |= driven_by_port
        return clock_mask

    def _build_arcs(self) -> None:
        core = self.design.core
        csr_pins = core.net_pin_index
        csr_net = core.csr_net
        driver_pin = core.net_driver_pin

        clock_mask = self._identify_clock_nets(csr_net, driver_pin)
        self.clock_nets: Set[int] = set(np.nonzero(clock_mask)[0].tolist())

        # Net arcs: driver -> each sink, in net-major CSR (connection) order.
        valid_net = (driver_pin >= 0) & ~clock_mask
        sel = valid_net[csr_net] & ~core.pin_is_driver[csr_pins]
        net_arc_to = csr_pins[sel]
        net_arc_net = csr_net[sel]
        net_arc_from = driver_pin[net_arc_net]

        # Cell arcs: grouped per master with vectorized index math, then
        # restored to instance order (stable sort), which reproduces the
        # historical per-instance walk exactly.
        froms: List[np.ndarray] = []
        tos: List[np.ndarray] = []
        owners: List[np.ndarray] = []
        intr: List[np.ndarray] = []
        slope: List[np.ndarray] = []
        type_ids: List[np.ndarray] = []
        spec_local: List[np.ndarray] = []
        for type_id, cell in enumerate(core.cell_types):
            arcs = cell.arcs
            if not arcs:
                continue
            insts_t = np.nonzero(
                (core.inst_cell_id == type_id) & ~core.inst_is_port
            )[0]
            if insts_t.size == 0:
                continue
            local = {pin_name: j for j, pin_name in enumerate(cell.pins)}
            local_from = np.array([local[a.from_pin] for a in arcs], dtype=np.int64)
            local_to = np.array([local[a.to_pin] for a in arcs], dtype=np.int64)
            base = core.inst_pin_offsets[insts_t]
            froms.append((base[:, None] + local_from[None, :]).ravel())
            tos.append((base[:, None] + local_to[None, :]).ravel())
            owners.append(np.repeat(insts_t, len(arcs)))
            intr.append(
                np.tile(np.array([a.intrinsic for a in arcs], dtype=np.float64), insts_t.size)
            )
            slope.append(
                np.tile(np.array([a.load_slope for a in arcs], dtype=np.float64), insts_t.size)
            )
            type_ids.append(np.full(insts_t.size * len(arcs), type_id, dtype=np.int64))
            spec_local.append(np.tile(np.arange(len(arcs), dtype=np.int64), insts_t.size))

        if froms:
            cell_from = np.concatenate(froms)
            cell_to = np.concatenate(tos)
            owner = np.concatenate(owners)
            cell_intrinsic = np.concatenate(intr)
            cell_slope = np.concatenate(slope)
            cell_type_id = np.concatenate(type_ids)
            cell_spec_local = np.concatenate(spec_local)
            order = np.argsort(owner, kind="stable")
            cell_from = cell_from[order]
            cell_to = cell_to[order]
            cell_intrinsic = cell_intrinsic[order]
            cell_slope = cell_slope[order]
            cell_type_id = cell_type_id[order]
            cell_spec_local = cell_spec_local[order]
        else:
            cell_from = cell_to = np.zeros(0, dtype=np.int64)
            cell_intrinsic = cell_slope = np.zeros(0, dtype=np.float64)
            cell_type_id = cell_spec_local = np.zeros(0, dtype=np.int64)

        num_net_arcs = int(net_arc_from.size)
        num_cell_arcs = int(cell_from.size)
        self.arc_from = np.concatenate([net_arc_from, cell_from]).astype(np.int64)
        self.arc_to = np.concatenate([net_arc_to, cell_to]).astype(np.int64)
        self.arc_kind = np.concatenate(
            [
                np.full(num_net_arcs, int(ArcKind.NET), dtype=np.int8),
                np.full(num_cell_arcs, int(ArcKind.CELL), dtype=np.int8),
            ]
        )
        self.arc_net = np.concatenate(
            [net_arc_net, np.full(num_cell_arcs, -1, dtype=np.int64)]
        ).astype(np.int64)

        # Per-cell-arc delay characterization (consumed by CellDelayModel).
        self.cell_arc_index = num_net_arcs + np.arange(num_cell_arcs, dtype=np.int64)
        self.cell_intrinsic = cell_intrinsic
        self.cell_slope = cell_slope
        self._cell_type_id = cell_type_id
        self._cell_spec_local = cell_spec_local
        # Lookup-table arcs (rare): (local cell-arc position, spec) pairs.
        self.cell_table_specs: List[Tuple[int, TimingArcSpec]] = []
        for type_id, cell in enumerate(core.cell_types):
            for j, spec in enumerate(cell.arcs):
                if spec.load_table:
                    positions = np.nonzero(
                        (cell_type_id == type_id) & (cell_spec_local == j)
                    )[0]
                    self.cell_table_specs.extend((int(p), spec) for p in positions)
        self.cell_table_specs.sort(key=lambda item: item[0])

    def arc_spec_of(self, arc_index: int) -> Optional[TimingArcSpec]:
        """The library spec behind a cell arc (``None`` for net arcs)."""
        if self.cell_arc_index.size == 0:
            return None
        local = arc_index - int(self.cell_arc_index[0])
        if local < 0 or local >= self.cell_arc_index.size:
            return None
        cell = self.design.core.cell_types[int(self._cell_type_id[local])]
        return cell.arcs[int(self._cell_spec_local[local])]

    @property
    def arcs(self) -> List[Arc]:
        """Arc objects, materialized lazily (reporting/debug convenience).

        Hot paths (delay evaluation, propagation, path search) work on the
        flat ``arc_from``/``arc_to``/``arc_kind``/``arc_net`` arrays instead.
        """
        if self._arcs_cache is None:
            num_net_arcs = int(np.sum(self.arc_kind == int(ArcKind.NET)))
            cell_types = self.design.core.cell_types
            arcs: List[Arc] = []
            for i in range(self.num_arcs):
                if i < num_net_arcs:
                    spec = None
                    kind = ArcKind.NET
                else:
                    local = i - num_net_arcs
                    cell = cell_types[int(self._cell_type_id[local])]
                    spec = cell.arcs[int(self._cell_spec_local[local])]
                    kind = ArcKind.CELL
                arcs.append(
                    Arc(
                        index=i,
                        from_pin=int(self.arc_from[i]),
                        to_pin=int(self.arc_to[i]),
                        kind=kind,
                        net_index=int(self.arc_net[i]),
                        spec=spec,
                    )
                )
            self._arcs_cache = arcs
        return self._arcs_cache

    def _build_adjacency(self) -> None:
        """CSR fanin/fanout adjacency: arc indices grouped by to/from pin."""
        num_arcs = int(self.arc_from.size)
        fanin_counts = np.bincount(self.arc_to, minlength=self.num_pins) if num_arcs else np.zeros(self.num_pins, dtype=np.int64)
        fanout_counts = np.bincount(self.arc_from, minlength=self.num_pins) if num_arcs else np.zeros(self.num_pins, dtype=np.int64)
        self.fanin_offsets = np.concatenate([[0], np.cumsum(fanin_counts)]).astype(np.int64)
        self.fanout_offsets = np.concatenate([[0], np.cumsum(fanout_counts)]).astype(np.int64)
        self.fanin_arcs = np.argsort(self.arc_to, kind="stable").astype(np.int64) if num_arcs else np.zeros(0, dtype=np.int64)
        self.fanout_arcs = np.argsort(self.arc_from, kind="stable").astype(np.int64) if num_arcs else np.zeros(0, dtype=np.int64)

    def fanin_of(self, pin: int) -> np.ndarray:
        """Indices of arcs whose sink is ``pin``."""
        return self.fanin_arcs[self.fanin_offsets[pin]: self.fanin_offsets[pin + 1]]

    def fanout_of(self, pin: int) -> np.ndarray:
        """Indices of arcs whose source is ``pin``."""
        return self.fanout_arcs[self.fanout_offsets[pin]: self.fanout_offsets[pin + 1]]

    def _levelize(self) -> np.ndarray:
        """Topological levels via wave-parallel Kahn's algorithm; raises on cycles.

        Each wave pops every pin whose indegree reached zero and relaxes all
        of their fanout arcs at once with array ops, so the cost is one numpy
        pass per logic level instead of one Python iteration per pin.
        """
        level = np.zeros(self.num_pins, dtype=np.int64)
        if self.arc_from.size == 0:
            return level
        indegree = np.bincount(self.arc_to, minlength=self.num_pins).astype(np.int64)
        frontier = np.nonzero(indegree == 0)[0]
        processed = int(frontier.size)
        while frontier.size:
            out_arcs, _ = csr_gather(self.fanout_offsets, self.fanout_arcs, frontier)
            if out_arcs.size == 0:
                break
            targets = self.arc_to[out_arcs]
            np.maximum.at(level, targets, level[self.arc_from[out_arcs]] + 1)
            decrement = np.bincount(targets, minlength=self.num_pins)
            indegree -= decrement
            frontier = np.nonzero((decrement > 0) & (indegree == 0))[0]
            processed += int(frontier.size)
        if processed != self.num_pins:
            remaining = int(self.num_pins - processed)
            raise ValueError(
                f"Timing graph contains combinational loops ({remaining} pins unresolved)"
            )
        return level

    def _find_startpoints(self) -> List[int]:
        """Primary-input driver pins and flip-flop clock pins."""
        core = self.design.core
        inst_of = core.pin_instance
        mask = (core.inst_is_port[inst_of] & core.pin_is_driver) | (
            core.pin_is_clock & core.inst_is_sequential[inst_of]
        )
        return np.nonzero(mask)[0].tolist()

    def _find_endpoints(self) -> List[int]:
        """Primary-output pins and flip-flop data (D) pins."""
        core = self.design.core
        inst_of = core.pin_instance
        mask = (core.inst_is_port[inst_of] & ~core.pin_is_driver) | (
            core.inst_is_sequential[inst_of]
            & core.pin_is_input
            & ~core.pin_is_clock
        )
        return np.nonzero(mask)[0].tolist()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_arcs(self) -> int:
        return int(self.arc_from.size)

    @property
    def num_net_arcs(self) -> int:
        return int(np.sum(self.arc_kind == int(ArcKind.NET))) if self.num_arcs else 0

    @property
    def num_cell_arcs(self) -> int:
        return int(np.sum(self.arc_kind == int(ArcKind.CELL))) if self.num_arcs else 0

    def pin_name(self, pin_index: int) -> str:
        return self.design.pins[pin_index].full_name

    def describe(self) -> Dict[str, int]:
        """Summary statistics used in logs and tests."""
        return {
            "num_pins": self.num_pins,
            "num_arcs": self.num_arcs,
            "num_net_arcs": self.num_net_arcs,
            "num_cell_arcs": self.num_cell_arcs,
            "num_startpoints": len(self.startpoints),
            "num_endpoints": len(self.endpoints),
            "num_clock_nets": len(self.clock_nets),
            "max_level": self.max_level,
        }
