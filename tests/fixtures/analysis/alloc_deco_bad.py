"""Fixture: @steady_state function breaking the allocation contract."""

import numpy as np


def steady_state(fn):
    return fn


@steady_state
def hot_loop_body(state, grad):
    scratch = np.zeros(grad.size, dtype=np.float64)
    scaled = np.multiply(grad, 0.5)
    total = state.work.copy()
    casted = grad.astype(np.int64)
    return scratch, scaled, total, casted
