"""The ``sb_mini`` benchmark suite (plus the congestion-stressed designs).

Eight synthetic designs standing in for the eight ICCAD-2015 superblue cases
the paper evaluates (superblue1/3/4/5/7/10/16/18).  The parameters vary size,
logic depth, fan-out skew, utilization, and clock tightness so the suite
spans the qualitative regimes of the contest set: some designs are
wire-delay dominated (deep logic, tight clock), some have many high-fan-out
shared nets, and some are mild.  Sizes are scaled to laptop-class runtimes;
results are compared across placers as ratios, exactly as the paper reports
"Average Ratio" rows.

:data:`CONGESTION_SUITE` holds the routability workload: designs built with
the stress knobs (wide die, shared hub nets, high utilization) so that their
RUDY maps actually overflow — the cross-method timing tables keep using the
classic eight, while the routability flow and its tests load these by the
same :func:`load_benchmark` interface.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.benchgen.synthetic import CircuitSpec, generate_circuit
from repro.netlist.compiled import CompiledDesign, compile_design
from repro.netlist.design import Design
from repro.netlist.library import Library

SB_MINI_SUITE: Dict[str, CircuitSpec] = {
    "sb_mini_1": CircuitSpec(
        name="sb_mini_1", num_cells=900, sequential_fraction=0.18, logic_depth=9,
        num_primary_inputs=24, num_primary_outputs=24, fanout_alpha=1.0,
        utilization=0.65, clock_tightness=0.80, seed=101,
    ),
    "sb_mini_3": CircuitSpec(
        name="sb_mini_3", num_cells=1200, sequential_fraction=0.15, logic_depth=11,
        num_primary_inputs=32, num_primary_outputs=32, fanout_alpha=1.1,
        utilization=0.68, clock_tightness=0.78, seed=103,
    ),
    "sb_mini_4": CircuitSpec(
        name="sb_mini_4", num_cells=800, sequential_fraction=0.22, logic_depth=8,
        num_primary_inputs=20, num_primary_outputs=20, fanout_alpha=0.9,
        utilization=0.62, clock_tightness=0.82, seed=104,
    ),
    "sb_mini_5": CircuitSpec(
        name="sb_mini_5", num_cells=1400, sequential_fraction=0.14, logic_depth=13,
        num_primary_inputs=28, num_primary_outputs=28, fanout_alpha=1.2,
        utilization=0.70, clock_tightness=0.75, seed=105,
    ),
    "sb_mini_7": CircuitSpec(
        name="sb_mini_7", num_cells=1600, sequential_fraction=0.16, logic_depth=10,
        num_primary_inputs=36, num_primary_outputs=36, fanout_alpha=1.0,
        utilization=0.66, clock_tightness=0.80, seed=107,
    ),
    "sb_mini_10": CircuitSpec(
        name="sb_mini_10", num_cells=2000, sequential_fraction=0.13, logic_depth=14,
        num_primary_inputs=40, num_primary_outputs=40, fanout_alpha=1.3,
        utilization=0.72, clock_tightness=0.74, seed=110,
    ),
    "sb_mini_16": CircuitSpec(
        name="sb_mini_16", num_cells=1100, sequential_fraction=0.20, logic_depth=9,
        num_primary_inputs=24, num_primary_outputs=24, fanout_alpha=0.85,
        utilization=0.64, clock_tightness=0.83, seed=116,
    ),
    "sb_mini_18": CircuitSpec(
        name="sb_mini_18", num_cells=700, sequential_fraction=0.24, logic_depth=7,
        num_primary_inputs=16, num_primary_outputs=16, fanout_alpha=0.95,
        utilization=0.60, clock_tightness=0.85, seed=118,
    ),
}


# Routability workload: congestion-stressed designs (see the stress knobs in
# :class:`repro.benchgen.synthetic.CircuitSpec`).  Kept out of SB_MINI_SUITE
# so the paper's cross-method tables stay on the classic eight designs.
CONGESTION_SUITE: Dict[str, CircuitSpec] = {
    "sb_cong_1": CircuitSpec(
        name="sb_cong_1", num_cells=1200, sequential_fraction=0.16, logic_depth=9,
        num_primary_inputs=32, num_primary_outputs=32, fanout_alpha=0.8,
        utilization=0.88, clock_tightness=0.85, seed=201,
        aspect_ratio=4.0, hub_fraction=0.35, hub_count=16,
    ),
}


def benchmark_names() -> List[str]:
    """Names of the sb_mini suite in the paper's table order."""
    return list(SB_MINI_SUITE.keys())


def congestion_benchmark_names() -> List[str]:
    """Names of the congestion-stressed (routability) designs."""
    return list(CONGESTION_SUITE.keys())


def available_design_names() -> List[str]:
    """Every design :func:`load_benchmark` accepts (sb_mini + congestion + XL)."""
    from repro.benchgen.xl import xl_benchmark_names

    return benchmark_names() + congestion_benchmark_names() + xl_benchmark_names()


def load_benchmark(
    name: str,
    *,
    library: Optional[Library] = None,
    scale: float = 1.0,
) -> Design:
    """Generate one sb_mini (or congestion-stressed) design.

    ``scale`` multiplies the cell count (and IO count) so tests can shrink a
    benchmark and ablations can grow one without redefining the spec.
    """
    from repro.benchgen.xl import XL_SUITE, generate_xl_circuit

    spec = SB_MINI_SUITE.get(name) or CONGESTION_SUITE.get(name) or XL_SUITE.get(name)
    if spec is None:
        raise KeyError(
            f"Unknown benchmark {name!r}; available: "
            f"{', '.join(available_design_names())}"
        )
    if scale != 1.0:
        spec = dataclasses.replace(
            spec,
            num_cells=max(10, int(spec.num_cells * scale)),
            num_primary_inputs=max(4, int(spec.num_primary_inputs * scale)),
            num_primary_outputs=max(4, int(spec.num_primary_outputs * scale)),
        )
    if name in XL_SUITE:
        # XL sizes need the O(pins) vectorized generator; the classic
        # per-gate preferential-attachment draw is O(n^2) past ~20k cells.
        return generate_xl_circuit(spec, library=library)
    return generate_circuit(spec, library=library)


def load_compiled(
    name: str,
    *,
    library: Optional[Library] = None,
    scale: float = 1.0,
) -> CompiledDesign:
    """Generate one sb_mini design and snapshot it for shipping/caching.

    The snapshot is array-only and cheaply picklable;
    ``load_compiled(name).to_design()`` is index-for-index identical to
    ``load_benchmark(name)``.
    """
    return compile_design(load_benchmark(name, library=library, scale=scale))
