"""Concrete flow stages and the timing-feedback strategies they host.

The four stages re-express the monolithic Efficient-TDP flow (Fig. 1 of the
paper) as composable steps:

* :class:`TimingWeightStage` — configures periodic timing feedback.  It runs
  *before* global placement in the stage list because timing feedback hooks
  into the placement loop: the stage builds its STA engine and objective and
  registers a placer hook; the hook attaches objective terms and the
  per-iteration callback when :class:`GlobalPlaceStage` constructs the
  placer.  The actual strategy (path extraction + pin pairs, momentum net
  weighting, smoothed pin weighting, or record-only) is pluggable.
* :class:`GlobalPlaceStage` — nonlinear wirelength/density placement.
* :class:`LegalizeStage` — Abacus with automatic greedy fallback.
* :class:`EvaluateStage` — shared HPWL/TNS/WNS scoring.

Every stage is registered in the stage registry, so flows can be assembled
by name (see :mod:`repro.flow.presets` and the ``repro`` CLI).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Type

import numpy as np

from repro.core.losses import LinearLoss, make_loss
from repro.core.path_extraction import CriticalPathExtractor, ExtractionConfig
from repro.core.pin_attraction import PinAttractionObjective, PinPairSet
from repro.evaluation.evaluator import Evaluator
from repro.feedback.base import FeedbackCadence, PlacementFeedback
from repro.feedback.composer import WeightComposer, WeightComposerConfig
from repro.feedback.timing import StrategyFeedback
from repro.flow.context import FlowContext
from repro.flow.stage import register_stage
from repro.placement.detailed import DetailedPlacer
from repro.placement.global_placer import GlobalPlacer, PlacementConfig
from repro.placement.legalization.abacus import AbacusLegalizer
from repro.placement.legalization.greedy import GreedyLegalizer
from repro.route.inflation import InflationConfig, run_inflation_loop
from repro.route.rudy import CongestionConfig, CongestionEstimator
from repro.timing.mcmm import CornersSpec, MultiCornerResult, MultiCornerSTA, resolve_corners
from repro.timing.sta import STAResult
from repro.utils.logging import get_logger
from repro.weighting.net_weighting import MomentumNetWeighting
from repro.weighting.pin_weighting import smooth_pin_pair_weights

logger = get_logger("flow.stages")


def calibrate_attraction_weight(
    placer: GlobalPlacer,
    attraction: PinAttractionObjective,
    num_pairs: int,
    ratio: float,
    x: np.ndarray,
    y: np.ndarray,
) -> bool:
    """Scale the attraction weight so the *average per-pair* force is
    ``ratio`` times the *average per-cell* wirelength force.

    The paper's absolute ``beta = 2.5e-5`` is tied to DREAMPlace's internal
    gradient scaling; reproducing the relative strength of the two forces is
    what transfers across engines.  Normalizing per pair / per cell keeps
    the calibration independent of how many pairs have been extracted so
    far.  Both the pin-pair and the smoothed strategies calibrate through
    this one helper so their comparison is about *which* pins are
    attracted, not about force magnitudes.  Returns True once calibrated.
    """
    wl = placer.wirelength.evaluate(x, y, net_weights=placer.net_weights)
    wl_norm = float(np.abs(wl.grad_x).sum() + np.abs(wl.grad_y).sum())
    num_movable = max(int(placer.design.arrays.movable_mask.sum()), 1)
    pp_norm = attraction.gradient_norm(x, y)
    num_pairs = max(num_pairs, 1)
    if pp_norm > 1e-12 and wl_norm > 1e-12:
        attraction.weight = ratio * (wl_norm / num_movable) / (pp_norm / num_pairs)
        logger.debug("calibrated attraction weight to %.3e", attraction.weight)
        return True
    return False


def merged_result(result: "STAResult | MultiCornerResult") -> STAResult:
    """Single-corner view of a timing result.

    Multi-corner results collapse to their pessimistic merge (per-pin worst
    slack over corners) — the quantity MCMM-aware timing feedback optimizes;
    single-corner results pass through unchanged.
    """
    return result.merged if isinstance(result, MultiCornerResult) else result


# ----------------------------------------------------------------------
# Timing-feedback strategies
# ----------------------------------------------------------------------
@dataclass
class TimingStrategyBase:
    """Common plumbing of all timing-feedback strategies.

    Subclasses implement :meth:`update`; the base class handles the shared
    post-update work (momentum reset after an objective change, TNS/WNS
    trajectory recording for Fig. 5).
    """

    # Use the engine's incremental mode between timing iterations.
    sta_incremental: bool = False
    sta_move_tolerance: float = 0.0

    resets_momentum = True
    records_history = True

    def prepare(self, ctx: FlowContext) -> None:  # pragma: no cover - default
        """Build engine/objective state before the placer exists."""

    def attach(self, placer: GlobalPlacer, ctx: FlowContext) -> None:
        """Attach objective terms to the freshly constructed placer."""

    def update(
        self,
        placer: GlobalPlacer,
        ctx: FlowContext,
        iteration: int,
        x: np.ndarray,
        y: np.ndarray,
    ) -> STAResult:
        raise NotImplementedError

    def on_timing_iteration(
        self,
        placer: GlobalPlacer,
        ctx: FlowContext,
        iteration: int,
        x: np.ndarray,
        y: np.ndarray,
    ) -> None:
        result = self.update(placer, ctx, iteration, x, y)
        ctx.sta_result = result
        if self.resets_momentum:
            # The objective just changed; momentum accumulated under the
            # previous objective is stale and can destabilize Nesterov.
            placer.reset_optimizer_momentum()
        if self.records_history:
            placer.history.record_extra("tns", iteration, result.tns)
            placer.history.record_extra("wns", iteration, result.wns)

    def _engine_kwargs(self) -> Dict[str, object]:
        return {
            "incremental": self.sta_incremental,
            "move_tolerance": self.sta_move_tolerance,
        }


@dataclass
class PinPairAttractionStrategy(TimingStrategyBase):
    """The paper's strategy: critical path extraction feeding pin pairs.

    Every timing iteration runs STA, extracts critical paths with
    ``report_timing_endpoint(n, k)``, applies the Eq. 9 pin-pair weight
    update, and (once, in ``beta_mode="auto"``) calibrates the attraction
    strength against the wirelength gradient.
    """

    extraction: ExtractionConfig = field(default_factory=ExtractionConfig)
    w0: float = 10.0
    w1: float = 0.2
    loss: str = "quadratic"
    beta: float = 2.5e-5
    beta_mode: str = "auto"
    beta_auto_ratio: float = 4.0
    verbose: bool = False

    def prepare(self, ctx: FlowContext) -> None:
        with ctx.profiler.section("io"):
            self.sta = ctx.require_sta(**self._engine_kwargs())
            # One extractor per corner: critical paths are corner-specific
            # (a path failing only at the slow corner must still attract its
            # pins), so MCMM extraction walks every corner's annotations and
            # pools the pin pairs.  Single-corner flows keep one extractor.
            if isinstance(self.sta, MultiCornerSTA):
                self.extractors = [
                    CriticalPathExtractor(self.sta.corner_view(index), self.extraction)
                    for index in range(self.sta.num_corners)
                ]
            else:
                self.extractors = [CriticalPathExtractor(self.sta, self.extraction)]
            self.extractor = self.extractors[0]
            self.pairs = PinPairSet(w0=self.w0, w1=self.w1)
            self.attraction = PinAttractionObjective(
                ctx.design,
                self.pairs,
                loss=make_loss(self.loss),
                beta=self.beta,
            )
        ctx.pin_pairs = self.pairs
        self.beta_calibrated = self.beta_mode != "auto"
        self.timing_rounds = 0

    def attach(self, placer: GlobalPlacer, ctx: FlowContext) -> None:
        placer.add_objective_term(self.attraction)

    def update(
        self,
        placer: GlobalPlacer,
        ctx: FlowContext,
        iteration: int,
        x: np.ndarray,
        y: np.ndarray,
    ) -> STAResult:
        with ctx.profiler.section("timing_analysis"):
            result = self.sta.update_timing(x, y)
            paths = []
            for index, extractor in enumerate(self.extractors):
                corner_result = (
                    result.corner_result(index)
                    if isinstance(result, MultiCornerResult)
                    else result
                )
                corner_paths, stats = extractor.extract(corner_result)
                paths.extend(corner_paths)
                ctx.extraction_stats.append(stats)
        with ctx.profiler.section("weighting"):
            self.pairs.update_from_paths(paths, self.sta.graph, result.wns)
            if not self.beta_calibrated and len(self.pairs) > 0:
                self.calibrate_beta(placer, x, y)
        self.timing_rounds += 1
        if self.verbose:
            logger.info(
                "timing iter %d: tns=%.1f wns=%.1f pairs=%d",
                iteration,
                result.tns,
                result.wns,
                len(self.pairs),
            )
        return result

    def calibrate_beta(self, placer: GlobalPlacer, x: np.ndarray, y: np.ndarray) -> None:
        if calibrate_attraction_weight(
            placer, self.attraction, len(self.pairs), self.beta_auto_ratio, x, y
        ):
            self.beta_calibrated = True


@dataclass
class MomentumNetWeightStrategy(TimingStrategyBase):
    """DREAMPlace 4.0-style momentum net weighting (Eq. 5)."""

    momentum_decay: float = 0.75
    max_boost: float = 0.75
    max_weight: float = 6.0

    def prepare(self, ctx: FlowContext) -> None:
        with ctx.profiler.section("io"):
            self.sta = ctx.require_sta(**self._engine_kwargs())
        self.weighting = MomentumNetWeighting(
            decay=self.momentum_decay,
            max_boost=self.max_boost,
            max_weight=self.max_weight,
        )

    def update(
        self,
        placer: GlobalPlacer,
        ctx: FlowContext,
        iteration: int,
        x: np.ndarray,
        y: np.ndarray,
    ) -> STAResult:
        with ctx.profiler.section("timing_analysis"):
            result = self.sta.update_timing(x, y)
        with ctx.profiler.section("weighting"):
            new_weights = self.weighting.update(
                ctx.design, merged_result(result), placer.net_weights
            )
            placer.set_net_weights(new_weights)
        return result


@dataclass
class SmoothPinPairStrategy(TimingStrategyBase):
    """Differentiable-TDP-style smoothed, path-free pin-pair attraction."""

    temperature: float = 0.25
    criticality_threshold: float = 0.05
    attraction_ratio: float = 0.15

    def prepare(self, ctx: FlowContext) -> None:
        with ctx.profiler.section("io"):
            self.sta = ctx.require_sta(**self._engine_kwargs())
        self.pairs = PinPairSet()
        self.attraction = PinAttractionObjective(
            ctx.design, self.pairs, loss=LinearLoss(), beta=1.0
        )
        self.calibrated = False
        ctx.pin_pairs = self.pairs

    def attach(self, placer: GlobalPlacer, ctx: FlowContext) -> None:
        placer.add_objective_term(self.attraction)

    def update(
        self,
        placer: GlobalPlacer,
        ctx: FlowContext,
        iteration: int,
        x: np.ndarray,
        y: np.ndarray,
    ) -> STAResult:
        with ctx.profiler.section("timing_analysis"):
            result = self.sta.update_timing(x, y)
        with ctx.profiler.section("weighting"):
            weights = smooth_pin_pair_weights(
                ctx.design,
                self.sta.graph,
                merged_result(result),
                temperature=self.temperature,
                threshold=self.criticality_threshold,
            )
            self.pairs.set_weights(weights)
            if not self.calibrated and weights:
                self.calibrated = calibrate_attraction_weight(
                    placer, self.attraction, len(self.pairs), self.attraction_ratio, x, y
                )
        return result


@dataclass
class RecordTimingStrategy(TimingStrategyBase):
    """Pure observation: run STA and record TNS/WNS, change nothing."""

    resets_momentum = False

    def prepare(self, ctx: FlowContext) -> None:
        self.sta = ctx.require_sta(**self._engine_kwargs())

    def update(
        self,
        placer: GlobalPlacer,
        ctx: FlowContext,
        iteration: int,
        x: np.ndarray,
        y: np.ndarray,
    ) -> STAResult:
        return self.sta.update_timing(x, y)


STRATEGIES: Dict[str, Type[TimingStrategyBase]] = {
    "pin_pair": PinPairAttractionStrategy,
    "net_weight": MomentumNetWeightStrategy,
    "smooth_pair": SmoothPinPairStrategy,
    "record": RecordTimingStrategy,
}


def make_strategy(name: str, **options: object) -> TimingStrategyBase:
    """Instantiate a timing strategy by registry name."""
    try:
        cls = STRATEGIES[name]
    except KeyError as exc:
        raise KeyError(
            f"Unknown timing strategy {name!r}; available: {', '.join(sorted(STRATEGIES))}"
        ) from exc
    return cls(**options)  # type: ignore[arg-type]


# ----------------------------------------------------------------------
# Stages
# ----------------------------------------------------------------------
@register_stage("timing_weight")
class TimingWeightStage:
    """Periodic timing feedback into the placement loop.

    ``strategy`` is a :class:`TimingStrategyBase` instance or a registry name
    (``pin_pair`` / ``net_weight`` / ``smooth_pair`` / ``record``).  The
    schedule follows the paper: feedback starts at ``start_iteration`` and
    repeats every ``interval`` placement iterations (``m``).
    """

    name = "timing_weight"

    def __init__(
        self,
        strategy: "TimingStrategyBase | str" = "pin_pair",
        *,
        start_iteration: int = 150,
        interval: int = 15,
        corners: CornersSpec = None,
        **strategy_options: object,
    ) -> None:
        if isinstance(strategy, str):
            strategy = make_strategy(strategy, **strategy_options)
        elif strategy_options:
            raise ValueError("strategy_options are only valid with a strategy name")
        self.strategy = strategy
        self.start_iteration = int(start_iteration)
        self.interval = int(interval)
        self.corners = corners

    def run(self, ctx: FlowContext) -> None:
        if ctx.placer is not None:
            raise ValueError(
                "timing_weight must come before global_place in the stage "
                "list: it hooks into the placement loop via placer hooks, "
                "so after placement has run it would be a silent no-op"
            )
        if self.corners is not None and ctx.corners is None:
            # Stage-level corners publish to the context so every later
            # timing consumer (shared engine, evaluation) sees the same set;
            # a runner-level ``corners=`` wins when both are given.
            ctx.corners = resolve_corners(self.corners)
        self.strategy.prepare(ctx)
        ctx.placer_hooks.append(self._attach)

    def _strategy_name(self) -> str:
        for name, cls in STRATEGIES.items():
            if type(self.strategy) is cls:
                return name
        return type(self.strategy).__name__

    def _attach(self, placer: GlobalPlacer, ctx: FlowContext) -> None:
        self.strategy.attach(placer, ctx)
        record = ctx.feedback_record()
        placer.feedback.bind(
            trajectory=record["trajectory"],
            seconds=record["seconds"],
            calls=record["calls"],
        )
        placer.add_feedback(
            StrategyFeedback(self.strategy, ctx, name=self._strategy_name()),
            FeedbackCadence(start=self.start_iteration, interval=self.interval),
        )


@register_stage("feedback_weight")
class FeedbackWeightStage:
    """Composable in-loop net weighting: scheduled feedbacks + one composer.

    ``slots`` is a list of ``(feedback, cadence)`` pairs (cadence ``None``
    fires every iteration).  The stage prepares every feedback against the
    flow context, builds a fresh :class:`WeightComposer` per run, and
    registers a placer hook that (a) binds the placer's scheduler to the
    run-wide composer/trajectory/runtime containers and (b) schedules the
    feedback slots.  Because the binding happens per constructed placer,
    warm-started refine placements (the routability-repair loop) continue
    the same composed weight state instead of restarting from ones.

    This stage is the composition seam: timing criticality, congestion
    penalty, and any future signal (density, IR drop, ECO deltas) ride the
    same scheduler and merge through the same composer.
    """

    name = "feedback_weight"

    def __init__(
        self,
        slots: "list[tuple[PlacementFeedback, FeedbackCadence | None]]",
        *,
        composer: Optional[WeightComposerConfig] = None,
    ) -> None:
        if not slots:
            raise ValueError("feedback_weight needs at least one feedback slot")
        self.slots = [
            (feedback, cadence if cadence is not None else FeedbackCadence())
            for feedback, cadence in slots
        ]
        self.composer_config = (
            composer if composer is not None else WeightComposerConfig()
        )
        self.composer: Optional[WeightComposer] = None

    def run(self, ctx: FlowContext) -> None:
        if ctx.placer is not None:
            raise ValueError(
                "feedback_weight must come before global_place in the stage "
                "list: it hooks into the placement loop via placer hooks"
            )
        for feedback, _ in self.slots:
            feedback.prepare(ctx)
        # Fresh composed-weight state per flow run; shared across every
        # placer the run constructs.
        self.composer = WeightComposer(config=self.composer_config)
        record = ctx.feedback_record()

        def hook(placer: GlobalPlacer, ctx: FlowContext) -> None:
            placer.feedback.bind(
                composer=self.composer,
                trajectory=record["trajectory"],
                seconds=record["seconds"],
                calls=record["calls"],
            )
            if self.composer.initialized:
                # Warm-started refine placements resume from the composed
                # weights instead of resetting every net to 1.
                placer.set_net_weights(self.composer.weights.copy())
            for feedback, cadence in self.slots:
                placer.add_feedback(feedback, cadence)

        ctx.placer_hooks.append(hook)


@register_stage("global_place")
class GlobalPlaceStage:
    """Nonlinear global placement (wirelength + density + extra terms)."""

    name = "global_place"

    def __init__(self, config: Optional[PlacementConfig] = None) -> None:
        self.config = config if config is not None else PlacementConfig()

    def run(self, ctx: FlowContext) -> None:
        with ctx.profiler.section("io"):
            placer = GlobalPlacer(ctx.design, self.config, profiler=ctx.profiler)
            for hook in ctx.placer_hooks:
                hook(placer, ctx)
        ctx.placer = placer
        placement = placer.run()
        ctx.placement = placement
        ctx.history = placement.history
        ctx.x = placement.x
        ctx.y = placement.y
        # Per-term gradient walls (wirelength/density/extra/scatter) for the
        # --profile report; accumulated across refine placements too.
        terms = ctx.metadata.setdefault("gradient_terms", {})
        for name, seconds in placer.gradient_seconds.items():
            terms[name] = terms.get(name, 0.0) + seconds


@register_stage("legalize")
class LegalizeStage:
    """Abacus legalization with automatic greedy fallback."""

    name = "legalize"

    def __init__(self, *, fallback: bool = True) -> None:
        self.fallback = fallback

    def run(self, ctx: FlowContext) -> None:
        x, y = ctx.positions()
        with ctx.profiler.section("legalization"):
            legal = AbacusLegalizer(
                ctx.design, workers=ctx.kernel_workers
            ).legalize(x, y)
            used_fallback = False
            if not legal.success and self.fallback:
                logger.warning(
                    "Abacus failed (%d unplaced cells, %d overfull rows); "
                    "falling back to greedy",
                    legal.num_failed,
                    legal.num_overfull_rows,
                )
                legal = GreedyLegalizer(ctx.design).legalize(x, y)
                used_fallback = True
            ctx.x, ctx.y = legal.x, legal.y
            ctx.design.set_positions(ctx.x, ctx.y)
        ctx.metadata["legalization"] = {
            "engine": "greedy" if used_fallback else "abacus",
            "fallback": used_fallback,
            "num_failed": int(legal.num_failed),
            "num_overfull_rows": int(legal.num_overfull_rows),
            "total_displacement": float(legal.total_displacement),
            "max_displacement": float(legal.max_displacement),
        }


@register_stage("detailed_place")
class DetailedPlaceStage:
    """Delta-HPWL adjacent-swap refinement of a legalized placement.

    Runs after :class:`LegalizeStage`; positions stay legal (swaps exchange
    abutting cells within a row).  Not part of the shipped presets — the
    paper's evaluation is about global placement — but available by name
    for flows that want the extra HPWL squeeze (see ``examples/``).
    """

    name = "detailed_place"

    def __init__(self, *, max_passes: int = 2) -> None:
        self.max_passes = max_passes

    def run(self, ctx: FlowContext) -> None:
        x, y = ctx.positions()
        with ctx.profiler.section("detailed_place"):
            placer = DetailedPlacer(ctx.design, max_passes=self.max_passes)
            rx, ry, accepted = placer.refine(x, y)
            ctx.x, ctx.y = rx, ry
            ctx.design.set_positions(rx, ry)
        ctx.metadata["detailed_place"] = {
            "accepted_swaps": int(accepted),
            "max_passes": int(self.max_passes),
        }


@register_stage("congestion")
class CongestionStage:
    """Estimate routing congestion (RUDY + pin density) of the placement.

    Publishes the :class:`~repro.route.rudy.CongestionResult` on
    ``ctx.congestion`` and a flat summary (peak/average overflow, hotspot
    count, ACE scores, top-k hotspots) in ``ctx.metadata["congestion"]``.
    Pure observation: positions are never modified.
    """

    name = "congestion"

    def __init__(self, config: "CongestionConfig | None" = None) -> None:
        self.config = config

    def run(self, ctx: FlowContext) -> None:
        with ctx.profiler.section("congestion"):
            estimator = CongestionEstimator(ctx.design, self.config)
            x, y = ctx.positions()
            result = estimator.estimate(x, y)
            ctx.congestion = result
            ctx.congestion_xy = (x, y)
            summary = result.summary()
            summary["hotspots"] = result.hotspots(estimator.config.top_k_hotspots)
            ctx.metadata["congestion"] = summary


@register_stage("routability_repair")
class RoutabilityRepairStage:
    """Congestion-driven cell-inflation loop (routability repair).

    Re-runs global placement with inflated cell areas until the RUDY peak
    overflow converges (see :mod:`repro.route.inflation`).  Must run after a
    global-placement stage and before legalization; the refine placements
    warm-start from the current positions with the placement stage's config
    (fewer iterations).  When the starting placement is already under the
    overflow target this stage is a no-op.
    """

    name = "routability_repair"

    def __init__(
        self,
        *,
        congestion: "CongestionConfig | None" = None,
        inflation: "InflationConfig | None" = None,
        refine_iterations: int = 150,
        refine_density_init_ratio: float = 1.0,
        placement_config: Optional[PlacementConfig] = None,
    ) -> None:
        self.congestion = congestion
        self.inflation = inflation if inflation is not None else InflationConfig()
        self.refine_iterations = int(refine_iterations)
        self.refine_density_init_ratio = float(refine_density_init_ratio)
        self.placement_config = placement_config

    def _refine_config(self, ctx: FlowContext) -> PlacementConfig:
        import copy

        base = self.placement_config
        if base is None and ctx.placer is not None:
            base = ctx.placer.config
        config = copy.deepcopy(base) if base is not None else PlacementConfig()
        config.max_iterations = self.refine_iterations
        # Warm starts begin spread out; a long mandatory tail would only
        # undo the wirelength the first placement earned.
        config.min_iterations = min(config.min_iterations, 20)
        # The first placement already spread the design, so the refine run
        # must keep the density force strong from its first iteration: with
        # the cold-start ratio (1e-3) wirelength would re-cluster the cells
        # long before the growth schedule catches up, and the warm start
        # would end *worse* than it began.
        config.density_weight_init_ratio = self.refine_density_init_ratio
        return config

    def run(self, ctx: FlowContext) -> None:
        if ctx.placement is None and ctx.x is None:
            raise ValueError(
                "routability_repair must come after global_place: the "
                "inflation loop refines an existing placement"
            )
        design = ctx.design
        estimator = CongestionEstimator(design, self.congestion)
        refine_config = self._refine_config(ctx)

        def place_fn(x0: np.ndarray, y0: np.ndarray, area_scale: np.ndarray):
            placer = GlobalPlacer(design, refine_config, profiler=ctx.profiler)
            placer.density.set_area_scale(area_scale)
            for hook in ctx.placer_hooks:
                hook(placer, ctx)
            result = placer.run(x0, y0)
            terms = ctx.metadata.setdefault("gradient_terms", {})
            for name, seconds in placer.gradient_seconds.items():
                terms[name] = terms.get(name, 0.0) + seconds
            return result.x, result.y

        def legalize_fn(lx: np.ndarray, ly: np.ndarray):
            # Same engine/fallback policy as LegalizeStage, so the loop
            # scores exactly what the flow will later commit to.
            legal = AbacusLegalizer(
                design, workers=ctx.kernel_workers
            ).legalize(lx, ly)
            if not legal.success:
                legal = GreedyLegalizer(design).legalize(lx, ly)
            return legal.x, legal.y

        x, y = ctx.positions()
        with ctx.profiler.section("routability"):
            outcome = run_inflation_loop(
                design,
                place_fn,
                x,
                y,
                estimator=estimator,
                config=self.inflation,
                legalize_fn=legalize_fn,
            )
        ctx.x, ctx.y = outcome.x, outcome.y
        design.set_positions(outcome.x, outcome.y)
        ctx.congestion = outcome.result
        # With legalized scoring the kept CongestionResult describes the
        # legalized copy, not these raw positions: leave congestion_xy unset
        # so downstream stages re-estimate instead of reusing a mismatch.
        ctx.congestion_xy = (
            None if self.inflation.score_legalized else (outcome.x, outcome.y)
        )
        ctx.metadata["routability_repair"] = outcome.as_dict()
        if len(outcome.rounds) > 1:
            logger.info(
                "routability repair: peak overflow %.4f -> %.4f in %d rounds",
                outcome.initial_peak_overflow,
                outcome.final_peak_overflow,
                len(outcome.rounds) - 1,
            )


@register_stage("evaluate")
class EvaluateStage:
    """Score the placement with the shared evaluator (HPWL/TNS/WNS/legality).

    With corners configured (on the stage or the context) the evaluation
    reports merged TNS/WNS as the headline metrics plus a per-corner
    breakdown.  With ``congestion`` set (``True`` for the default model or a
    :class:`~repro.route.rudy.CongestionConfig`), RUDY congestion metrics
    (peak/average overflow, hotspot count) are reported alongside.
    """

    name = "evaluate"

    def __init__(
        self,
        *,
        corners: CornersSpec = None,
        congestion: "bool | CongestionConfig" = False,
    ) -> None:
        self.corners = corners
        self.congestion = congestion

    def run(self, ctx: FlowContext) -> None:
        with ctx.profiler.section("io"):
            corners = ctx.corners
            if corners is None and self.corners is not None:
                corners = resolve_corners(self.corners)
            congestion = self.congestion
            if congestion is True:
                congestion = CongestionConfig()
            elif congestion is False:
                congestion = None
            x, y = ctx.positions()
            # Reuse the congestion stage's maps when they were estimated at
            # exactly these position arrays (stages rebind, never mutate, so
            # identity implies currency); otherwise the evaluator builds its
            # own estimate.
            precomputed = None
            if (
                congestion is not None
                and ctx.congestion is not None
                and ctx.congestion_xy is not None
                and ctx.congestion_xy[0] is x
                and ctx.congestion_xy[1] is y
            ):
                precomputed = ctx.congestion
            ctx.evaluation = Evaluator(
                ctx.design, ctx.constraints, corners=corners, congestion=congestion
            ).evaluate(x, y, congestion_result=precomputed)
            # Attach the run's feedback trajectory (per-update WNS / peak
            # overflow / weight-norm rows) so one report carries both the
            # final scores and how the feedback loop got there.
            record = ctx.metadata.get("feedback")
            if record and record.get("trajectory"):
                ctx.evaluation.feedback_trajectory = list(record["trajectory"])
