"""Fixture: engine-layer module importing the flow layer at module scope."""

from repro.flow.presets import build_flow


def run_everything(design):
    return build_flow("baseline").run(design)
