"""Static timing analysis engine.

Given a placed design, :class:`STAEngine` computes, for every pin, the worst
arrival time, the required arrival time, and the slack, plus the design-level
WNS and TNS metrics defined in the paper (Eqs. 2-4).  Propagation is
vectorized level-by-level so that re-running STA inside the placement loop
(every ``m`` iterations in the paper's flow) remains cheap without a C++
timer.

The engine deliberately mirrors OpenTimer's interface shape used by
DREAMPlace 4.0: ``update_timing()`` refreshes arrival/required/slack, and the
report functions in :mod:`repro.timing.report` extract critical paths from the
annotated graph.

Incremental mode
----------------

When constructed with ``incremental=True`` the engine keeps the previous
update's positions, delays, and arrival/required annotations.  On the next
``update_timing`` it detects which instances moved beyond ``move_tolerance``,
re-evaluates wire and cell delays only for the nets those instances touch,
and re-propagates arrival/required times only from the dirty frontier,
level by level.  With ``move_tolerance=0`` the incremental result is exactly
(bitwise) the full recompute; a positive tolerance trades bounded staleness
for fewer net re-evaluations.  ``update_timing(..., incremental=False)`` is
the exact fallback: it forces a full recompute and reseeds every cache, and
the engine falls back on its own whenever the dirty-net fraction exceeds
``incremental_rebuild_fraction``.

Cost model: the sparse re-propagation pays a fixed per-logic-level overhead
(a handful of small numpy calls per touched level), so it wins once designs
reach roughly 10k cells or when repeated queries move little or nothing;
below that the fully vectorized full pass is already faster.  Flows that
move every cell every iteration should keep the default full mode.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.netlist.design import Design
from repro.obs import span
from repro.timing.constraints import Corner, TimingConstraints
from repro.timing.delay_model import CellDelayModel, WireRCModel
from repro.timing.graph import ArcKind, TimingGraph, csr_gather as _csr_gather

_NEG_INF = -1.0e30
_POS_INF = 1.0e30


def boundary_conditions(
    design: Design, graph: TimingGraph, constraints: TimingConstraints
) -> tuple:
    """Source arrivals and endpoint required times for one set of constraints.

    Returns ``(source_pins, source_arrival, endpoint_pins, endpoint_required)``
    as numpy arrays.  The pin sets depend only on the graph, the values only
    on the constraints — multi-corner analysis calls this once per corner and
    stacks the values over identical pin sets.
    """
    source_pins: List[int] = []
    source_arrival: List[float] = []
    for pin_index in graph.startpoints:
        pin = design.pins[pin_index]
        if pin.instance.is_port:
            arrival = constraints.input_delay(pin.instance.name)
        else:
            arrival = 0.0  # ideal clock at flip-flop clock pins
        source_pins.append(pin_index)
        source_arrival.append(arrival)

    endpoint_pins: List[int] = []
    endpoint_required: List[float] = []
    period = constraints.clock_period
    for pin_index in graph.endpoints:
        pin = design.pins[pin_index]
        if pin.instance.is_port:
            required = period - constraints.output_delay(pin.instance.name)
        else:
            required = period - constraints.setup_time
        endpoint_pins.append(pin_index)
        endpoint_required.append(required)

    return (
        np.array(source_pins, dtype=np.int64),
        np.array(source_arrival, dtype=np.float64),
        np.array(endpoint_pins, dtype=np.int64),
        np.array(endpoint_required, dtype=np.float64),
    )


def level_buckets(graph: TimingGraph) -> tuple:
    """Arc indices grouped by sink level (forward) / source level (backward).

    One bucket list per propagation direction; shared by the single-corner
    and multi-corner engines so the grouping is computed once per graph.
    """
    if graph.num_arcs == 0:
        return [], []
    to_level = graph.level[graph.arc_to]
    from_level = graph.level[graph.arc_from]
    max_level = graph.max_level
    forward = [
        np.ascontiguousarray(np.nonzero(to_level == lvl)[0], dtype=np.int64)
        for lvl in range(1, max_level + 1)
    ]
    backward = [
        np.ascontiguousarray(np.nonzero(from_level == lvl)[0], dtype=np.int64)
        for lvl in range(max_level - 1, -1, -1)
    ]
    return forward, backward


class _LevelWorklist:
    """Dirty pins bucketed by level, deduplicated with a seen mask.

    Keeps the frontier sparse: clean levels cost one dict probe, and no
    per-level scan over the whole pin array is ever needed.
    """

    __slots__ = ("level", "seen", "pending")

    def __init__(self, level: np.ndarray, num_pins: int) -> None:
        self.level = level
        self.seen = np.zeros(num_pins, dtype=bool)
        self.pending: Dict[int, List[np.ndarray]] = {}

    def mark(self, pins: np.ndarray) -> None:
        fresh = pins[~self.seen[pins]]
        if fresh.size == 0:
            return
        # Single grouping pass: one stable sort on the composite
        # (level, pin) key dedupes and orders simultaneously, replacing the
        # ``np.unique`` + per-level boolean-mask loop (which rescanned the
        # whole fresh set once per distinct level).  Buckets come out
        # identical: levels ascending, pins sorted and unique within each.
        levels = self.level[fresh]
        key = levels * np.int64(self.seen.size) + fresh
        order = np.argsort(key, kind="stable")
        key = key[order]
        keep = np.empty(key.size, dtype=bool)
        keep[0] = True
        np.not_equal(key[1:], key[:-1], out=keep[1:])
        fresh = fresh[order[keep]]
        levels = levels[order[keep]]
        self.seen[fresh] = True
        boundary = np.empty(levels.size, dtype=bool)
        boundary[0] = True
        np.not_equal(levels[1:], levels[:-1], out=boundary[1:])
        starts = np.nonzero(boundary)[0]
        ends = np.append(starts[1:], levels.size)
        for s, e in zip(starts.tolist(), ends.tolist()):
            self.pending.setdefault(int(levels[s]), []).append(fresh[s:e])

    def pop(self, lvl: int) -> Optional[np.ndarray]:
        chunks = self.pending.pop(lvl, None)
        if not chunks:
            return None
        return chunks[0] if len(chunks) == 1 else np.concatenate(chunks)


@dataclass
class STAResult:
    """Snapshot of one timing update."""

    arrival: np.ndarray           # [num_pins] worst (latest) arrival time
    required: np.ndarray          # [num_pins] required arrival time
    slack: np.ndarray             # [num_pins] required - arrival
    arc_delay: np.ndarray         # [num_arcs] delay used for each arc
    net_load: np.ndarray          # [num_nets] driver load capacitance
    endpoint_pins: np.ndarray     # [num_endpoints] pin indices of endpoints
    endpoint_slack: np.ndarray    # [num_endpoints] slack per endpoint
    wns: float
    tns: float
    # Memoized views (endpoint lookups are hot inside path extraction).
    _failing_cache: Optional[np.ndarray] = field(
        default=None, init=False, repr=False, compare=False
    )
    _endpoint_pos: Optional[Dict[int, int]] = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def failing_endpoints(self) -> np.ndarray:
        """Endpoint pin indices with negative slack, worst first (memoized)."""
        if self._failing_cache is None:
            mask = self.endpoint_slack < 0
            failing = self.endpoint_pins[mask]
            order = np.argsort(self.endpoint_slack[mask])
            self._failing_cache = failing[order]
        return self._failing_cache

    @property
    def num_failing_endpoints(self) -> int:
        return int(np.sum(self.endpoint_slack < 0))

    def endpoint_slack_of(self, pin_index: int) -> float:
        """Slack of one endpoint pin, O(1) after the first lookup."""
        if self._endpoint_pos is None:
            # Keep the *first* position for any duplicate, matching the
            # linear scan this replaces (endpoints are unique in practice).
            pos_map: Dict[int, int] = {}
            for position, pin in enumerate(self.endpoint_pins):
                pos_map.setdefault(int(pin), position)
            self._endpoint_pos = pos_map
        position = self._endpoint_pos.get(int(pin_index))
        if position is None:
            raise KeyError(f"Pin {pin_index} is not an endpoint")
        return float(self.endpoint_slack[position])


@dataclass
class TimingUpdateStats:
    """Bookkeeping of one ``update_timing`` call (incremental diagnostics)."""

    mode: str                     # "full" or "incremental"
    num_moved_instances: int = 0
    num_dirty_nets: int = 0
    num_dirty_arcs: int = 0
    num_forward_pins: int = 0     # pins whose arrival was recomputed
    num_backward_pins: int = 0    # pins whose required was recomputed

    def as_dict(self) -> Dict[str, object]:
        return {
            "mode": self.mode,
            "moved_instances": self.num_moved_instances,
            "dirty_nets": self.num_dirty_nets,
            "dirty_arcs": self.num_dirty_arcs,
            "forward_pins": self.num_forward_pins,
            "backward_pins": self.num_backward_pins,
        }


class STAEngine:
    """Arrival/required/slack propagation over a :class:`TimingGraph`."""

    def __init__(
        self,
        design: Design,
        constraints: Optional[TimingConstraints] = None,
        *,
        corner: Optional[Corner] = None,
        graph: Optional[TimingGraph] = None,
        wire_model: Optional[WireRCModel] = None,
        incremental: bool = False,
        move_tolerance: float = 0.0,
        incremental_rebuild_fraction: float = 0.5,
        workers: int = 0,
        parallel_min_level_size: int = 2048,
        runner=None,
    ) -> None:
        self.design = design
        self.corner = corner
        if corner is not None:
            corner.validate()
            if constraints is None:
                constraints = corner.constraints
        self._rc_scale = 1.0 if corner is None else float(corner.wire_rc_scale)
        self._cell_derate = 1.0 if corner is None else float(corner.cell_derate)
        self._constraints = (
            constraints if constraints is not None else TimingConstraints.from_design(design)
        )
        self._constraints.validate()
        self.graph = graph if graph is not None else TimingGraph(design)
        self.wire_model = wire_model if wire_model is not None else WireRCModel(design)
        self.cell_model = CellDelayModel(self.graph)
        self.incremental = incremental
        self.move_tolerance = float(move_tolerance)
        self.incremental_rebuild_fraction = float(incremental_rebuild_fraction)
        # Parallel full-sweep sharding (see repro.parallel): with workers=0
        # and no injected runner the historical serial propagation runs
        # untouched.  Levels narrower than ``parallel_min_level_size`` are
        # swept inline — the per-level dispatch round trip only pays for
        # itself on wide levels.
        self.workers = int(workers)
        self.parallel_min_level_size = max(1, int(parallel_min_level_size))
        self._runner = runner
        self._runner_resolved = runner is not None
        self._pool_block = None
        self._level_pins: Optional[np.ndarray] = None
        self._level_pin_offsets: Optional[np.ndarray] = None
        self._prepare_boundary_conditions()
        self._prepare_level_buckets()
        self._prepare_propagation_bases()
        self.last_result: Optional[STAResult] = None
        self.last_update_stats: Optional[TimingUpdateStats] = None
        # Incremental caches (populated by the first full update).
        self._ref_x: Optional[np.ndarray] = None
        self._ref_y: Optional[np.ndarray] = None
        self._arc_delay: Optional[np.ndarray] = None
        self._net_load: Optional[np.ndarray] = None
        self._sink_delay: Optional[np.ndarray] = None
        self._arrival: Optional[np.ndarray] = None
        self._required: Optional[np.ndarray] = None

    @property
    def constraints(self) -> TimingConstraints:
        return self._constraints

    @constraints.setter
    def constraints(self, value: TimingConstraints) -> None:
        self.set_constraints(value)

    def set_constraints(self, constraints: TimingConstraints) -> None:
        """Swap the analysis constraints and invalidate everything they touch.

        Boundary conditions (source arrivals, endpoint required times, the
        propagation bases) are rebuilt immediately; the cached
        arrival/required annotations were computed under the old constraints
        and are dropped, which forces the next ``update_timing`` into a full
        pass.  Without this, an incremental update after a constraints swap
        would re-propagate only from moved cells and silently keep stale
        arrival/required times everywhere else.
        """
        constraints.validate()
        self._constraints = constraints
        self._prepare_boundary_conditions()
        self._prepare_propagation_bases()
        # Arc delays and net loads depend only on positions, but the
        # arrival/required annotations (and anything derived from them) are
        # stale under the new constraints.
        self._arrival = None
        self._required = None
        self._ref_x = None
        self._ref_y = None
        self._arc_delay = None
        self._net_load = None
        self._sink_delay = None
        self.last_result = None
        self.last_update_stats = None

    # ------------------------------------------------------------------
    # Precomputation
    # ------------------------------------------------------------------
    def _prepare_boundary_conditions(self) -> None:
        (
            self.source_pins,
            self.source_arrival,
            self.endpoint_pins,
            self.endpoint_required,
        ) = boundary_conditions(self.design, self.graph, self.constraints)

    def _prepare_level_buckets(self) -> None:
        """Group arcs by the level of their sink (forward) / source (backward)."""
        self._forward_buckets, self._backward_buckets = level_buckets(self.graph)

    def _prepare_propagation_bases(self) -> None:
        """Initial arrival/required values before any arc is applied.

        Full propagation computes ``arrival[p] = max(base[p], max over fanin
        candidates)`` and ``required[p] = min(base[p], min over fanout
        candidates)``; the incremental recompute of a single pin uses exactly
        the same formula, so both modes agree bit for bit.
        """
        graph = self.graph
        base_arrival = np.full(graph.num_pins, _NEG_INF, dtype=np.float64)
        no_fanin = np.diff(graph.fanin_offsets) == 0
        base_arrival[no_fanin] = 0.0
        if self.source_pins.size:
            base_arrival[self.source_pins] = self.source_arrival
        self._base_arrival = base_arrival

        base_required = np.full(graph.num_pins, _POS_INF, dtype=np.float64)
        if self.endpoint_pins.size:
            base_required[self.endpoint_pins] = self.endpoint_required
        self._base_required = base_required

    # ------------------------------------------------------------------
    # Timing update
    # ------------------------------------------------------------------
    def update_timing(
        self,
        x: Optional[np.ndarray] = None,
        y: Optional[np.ndarray] = None,
        *,
        incremental: Optional[bool] = None,
    ) -> STAResult:
        """Run an STA pass for instance positions ``(x, y)``.

        When positions are omitted the design's stored positions are used.
        ``incremental`` overrides the engine-level setting for this call;
        ``incremental=False`` is the exact fallback that forces a full
        recompute and refreshes every incremental cache.
        """
        design = self.design
        if x is None or y is None:
            x, y = design.positions()
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)

        use_incremental = self.incremental if incremental is None else incremental
        with span("sta.update_timing", incremental=bool(use_incremental)):
            if use_incremental and self._can_update_incrementally():
                result = self._update_incremental(x, y)
                if result is not None:
                    self.last_result = result
                    return result
            return self._update_full(x, y)

    def _can_update_incrementally(self) -> bool:
        return (
            self._arc_delay is not None
            and self._ref_x is not None
            and self._arrival is not None
            and self.graph.num_arcs > 0
        )

    def _update_full(self, x: np.ndarray, y: np.ndarray) -> STAResult:
        design = self.design
        graph = self.graph
        pin_x, pin_y = design.pin_positions(x, y)

        wire = self.wire_model.evaluate(pin_x, pin_y, rc_scale=self._rc_scale)
        arc_delay = self.cell_model.evaluate(wire.net_load, derate=self._cell_derate)
        # Net arcs: Elmore delay from driver to this arc's sink pin.
        net_arc_mask = graph.arc_kind == int(ArcKind.NET)
        arc_delay[net_arc_mask] = wire.sink_delay[graph.arc_to[net_arc_mask]]

        arrival = self._propagate_arrival(arc_delay)
        required = self._propagate_required(arc_delay, arrival)

        # Seed the incremental caches.
        self._ref_x = x.copy()
        self._ref_y = y.copy()
        self._arc_delay = arc_delay
        self._net_load = wire.net_load
        self._sink_delay = wire.sink_delay
        self._arrival = arrival
        self._required = required

        self.last_update_stats = TimingUpdateStats(
            mode="full",
            num_dirty_nets=int(self.wire_model.num_nets),
            num_dirty_arcs=int(graph.num_arcs),
            num_forward_pins=int(graph.num_pins),
            num_backward_pins=int(graph.num_pins),
        )
        result = self._assemble_result()
        self.last_result = result
        return result

    def _update_incremental(self, x: np.ndarray, y: np.ndarray) -> Optional[STAResult]:
        """Dirty-frontier update; returns ``None`` to request a full rebuild."""
        design = self.design
        graph = self.graph
        arrays = design.arrays
        tol = self.move_tolerance

        moved = (np.abs(x - self._ref_x) > tol) | (np.abs(y - self._ref_y) > tol)
        num_moved = int(moved.sum())
        if num_moved == 0:
            self.last_update_stats = TimingUpdateStats(
                mode="incremental", num_moved_instances=0
            )
            return self._assemble_result()

        # Nets touching any moved instance must have their RC re-evaluated.
        moved_pin_mask = moved[arrays.pin_instance]
        dirty_net_ids = arrays.pin_net[moved_pin_mask]
        dirty_net_ids = dirty_net_ids[dirty_net_ids >= 0]
        net_mask = np.zeros(self.wire_model.num_nets, dtype=bool)
        net_mask[dirty_net_ids] = True
        num_dirty_nets = int(net_mask.sum())
        if num_dirty_nets > self.incremental_rebuild_fraction * max(net_mask.size, 1):
            return None  # most of the design moved; a full pass is cheaper

        # Copy-on-write: results handed out by previous updates must never
        # change after the fact, so each mutating update works on fresh
        # copies of the caches (the no-motion path above stays copy-free).
        self._arrival = self._arrival.copy()
        self._required = self._required.copy()
        self._arc_delay = self._arc_delay.copy()
        self._net_load = self._net_load.copy()
        self._sink_delay = self._sink_delay.copy()

        pin_x, pin_y = design.pin_positions(x, y)
        wire = self.wire_model.evaluate(
            pin_x, pin_y, net_mask=net_mask, rc_scale=self._rc_scale
        )
        dirty_pins = self.wire_model.pins_of_nets(net_mask)
        self._net_load[net_mask] = wire.net_load[net_mask]
        self._sink_delay[dirty_pins] = wire.sink_delay[dirty_pins]

        # Refresh delays of every arc tied to a dirty net: net arcs inside
        # the net, and cell arcs whose output drives the net.
        net_arc_dirty = (graph.arc_kind == int(ArcKind.NET)) & net_mask[
            np.maximum(graph.arc_net, 0)
        ] & (graph.arc_net >= 0)
        self._arc_delay[net_arc_dirty] = self._sink_delay[graph.arc_to[net_arc_dirty]]
        cell_arc_dirty = self.cell_model.update_subset(
            self._arc_delay, self._net_load, net_mask, derate=self._cell_derate
        )
        dirty_arcs = np.concatenate([np.nonzero(net_arc_dirty)[0], cell_arc_dirty])

        forward_pins = self._incremental_forward(dirty_arcs)
        backward_pins = self._incremental_backward(dirty_arcs)

        # Only the reference positions of moved instances advance; instances
        # drifting below the tolerance keep accumulating against their last
        # evaluated position, which bounds the approximation error.
        self._ref_x[moved] = x[moved]
        self._ref_y[moved] = y[moved]

        self.last_update_stats = TimingUpdateStats(
            mode="incremental",
            num_moved_instances=num_moved,
            num_dirty_nets=num_dirty_nets,
            num_dirty_arcs=int(dirty_arcs.size),
            num_forward_pins=forward_pins,
            num_backward_pins=backward_pins,
        )
        return self._assemble_result()

    # Backwards-compatible alias: the worklist moved to module level so the
    # multi-corner engine can share it.
    _LevelWorklist = _LevelWorklist

    def _incremental_forward(self, dirty_arcs: np.ndarray) -> int:
        """Recompute arrival times downstream of the dirty arcs."""
        graph = self.graph
        arrival = self._arrival
        arc_delay = self._arc_delay
        worklist = self._LevelWorklist(graph.level, graph.num_pins)
        if dirty_arcs.size:
            worklist.mark(graph.arc_to[dirty_arcs])
        recomputed = 0
        for lvl in range(1, graph.max_level + 1):
            idx = worklist.pop(lvl)
            if idx is None:
                continue
            recomputed += int(idx.size)
            new = self._base_arrival[idx].copy()
            flat, lengths = _csr_gather(graph.fanin_offsets, graph.fanin_arcs, idx)
            if flat.size:
                nonzero = lengths > 0
                candidates = arrival[graph.arc_from[flat]] + arc_delay[flat]
                reduced = np.maximum.reduceat(
                    candidates, np.cumsum(lengths[nonzero]) - lengths[nonzero]
                )
                new[nonzero] = np.maximum(new[nonzero], reduced)
            changed = idx[new != arrival[idx]]
            arrival[idx] = new
            if changed.size:
                out, _ = _csr_gather(graph.fanout_offsets, graph.fanout_arcs, changed)
                if out.size:
                    worklist.mark(graph.arc_to[out])
        return recomputed

    def _incremental_backward(self, dirty_arcs: np.ndarray) -> int:
        """Recompute required times upstream of the dirty arcs."""
        graph = self.graph
        required = self._required
        arc_delay = self._arc_delay
        worklist = self._LevelWorklist(graph.level, graph.num_pins)
        if dirty_arcs.size:
            worklist.mark(graph.arc_from[dirty_arcs])
        recomputed = 0
        for lvl in range(graph.max_level - 1, -1, -1):
            idx = worklist.pop(lvl)
            if idx is None:
                continue
            recomputed += int(idx.size)
            new = self._base_required[idx].copy()
            flat, lengths = _csr_gather(graph.fanout_offsets, graph.fanout_arcs, idx)
            if flat.size:
                nonzero = lengths > 0
                candidates = required[graph.arc_to[flat]] - arc_delay[flat]
                reduced = np.minimum.reduceat(
                    candidates, np.cumsum(lengths[nonzero]) - lengths[nonzero]
                )
                new[nonzero] = np.minimum(new[nonzero], reduced)
            changed = idx[new != required[idx]]
            required[idx] = new
            if changed.size:
                inc, _ = _csr_gather(graph.fanin_offsets, graph.fanin_arcs, changed)
                if inc.size:
                    worklist.mark(graph.arc_from[inc])
        return recomputed

    def _assemble_result(self) -> STAResult:
        arrival = self._arrival
        required = self._required
        slack = required - arrival

        if self.endpoint_pins.size:
            endpoint_arrival = arrival[self.endpoint_pins]
            endpoint_slack = self.endpoint_required - endpoint_arrival
            # Endpoints never reached by any path are ignored (no constraint).
            reachable = endpoint_arrival > _NEG_INF / 2
            endpoint_slack = np.where(reachable, endpoint_slack, np.inf)
        else:
            endpoint_slack = np.zeros(0)

        negative = endpoint_slack[endpoint_slack < 0]
        wns = float(negative.min()) if negative.size else 0.0
        tns = float(negative.sum()) if negative.size else 0.0

        # Mutating updates always start from fresh cache copies (full
        # updates allocate, incremental ones copy-on-write), so the arrays
        # can be handed over directly: no later update rewrites them.
        return STAResult(
            arrival=arrival,
            required=required,
            slack=slack,
            arc_delay=self._arc_delay,
            net_load=self._net_load,
            endpoint_pins=self.endpoint_pins,
            endpoint_slack=endpoint_slack,
            wns=wns,
            tns=tns,
        )

    def _propagate_arrival(self, arc_delay: np.ndarray) -> np.ndarray:
        runner = self._get_runner()
        if runner is not None and self.graph.num_arcs:
            return self._propagate_parallel(runner, arc_delay, forward=True)
        graph = self.graph
        arrival = self._base_arrival.copy()
        for bucket in self._forward_buckets:
            if bucket.size == 0:
                continue
            candidate = arrival[graph.arc_from[bucket]] + arc_delay[bucket]
            np.maximum.at(arrival, graph.arc_to[bucket], candidate)
        return arrival

    def _propagate_required(self, arc_delay: np.ndarray, arrival: np.ndarray) -> np.ndarray:
        runner = self._get_runner()
        if runner is not None and self.graph.num_arcs:
            return self._propagate_parallel(runner, arc_delay, forward=False)
        graph = self.graph
        required = self._base_required.copy()
        for bucket in self._backward_buckets:
            if bucket.size == 0:
                continue
            candidate = required[graph.arc_to[bucket]] - arc_delay[bucket]
            np.minimum.at(required, graph.arc_from[bucket], candidate)
        return required

    # ------------------------------------------------------------------
    # Parallel full sweeps (repro.parallel)
    # ------------------------------------------------------------------
    def _get_runner(self):
        if not self._runner_resolved:
            self._runner_resolved = True
            if self.workers > 0:
                from repro.parallel import get_runner

                self._runner = get_runner(self.workers)
        return self._runner

    def _prepare_level_pins(self) -> None:
        """Pins grouped by logic level: one stable sort, CSR-style offsets."""
        level = self.graph.level
        self._level_pins = np.argsort(level, kind="stable").astype(np.int64)
        counts = np.bincount(level, minlength=self.graph.max_level + 1)
        self._level_pin_offsets = np.concatenate(([0], np.cumsum(counts))).astype(
            np.int64
        )

    def _ensure_pool_block(self, runner):
        if self._pool_block is not None:
            return self._pool_block
        if self._level_pins is None:
            self._prepare_level_pins()
        graph = self.graph
        self._pool_block = runner.register(
            {
                # Static graph structure.
                "level_pins": self._level_pins,
                "fanin_offsets": graph.fanin_offsets,
                "fanin_arcs": graph.fanin_arcs,
                "fanout_offsets": graph.fanout_offsets,
                "fanout_arcs": graph.fanout_arcs,
                "arc_from": graph.arc_from,
                "arc_to": graph.arc_to,
                # Per-sweep state, rewritten by the parent before dispatch
                # (bases change with constraints, delays with positions).
                "base_arrival": np.zeros(graph.num_pins, dtype=np.float64),
                "base_required": np.zeros(graph.num_pins, dtype=np.float64),
                "arc_delay": np.zeros(graph.num_arcs, dtype=np.float64),
                "arrival": np.zeros(graph.num_pins, dtype=np.float64),
                "required": np.zeros(graph.num_pins, dtype=np.float64),
            }
        )
        import weakref

        from repro.route.rudy import _release_block

        weakref.finalize(self, _release_block, runner, self._pool_block)
        return self._pool_block

    def _propagate_parallel(
        self, runner, arc_delay: np.ndarray, *, forward: bool
    ) -> np.ndarray:
        """Level-synchronous sharded sweep.

        Pins within a level are independent, so each level's pin bucket is
        split into contiguous shards whose pin-centric max/min reductions
        (``sta_forward``/``sta_backward`` kernels) write disjoint slices of
        the shared state — bitwise identical to the serial arc-centric
        ``np.maximum.at``/``np.minimum.at`` sweep for any shard count.
        """
        from repro.parallel import kernels as _parallel_kernels
        from repro.parallel.engine import split_ranges

        block = self._ensure_pool_block(runner)
        views = block.views
        views["arc_delay"][...] = arc_delay
        if forward:
            kernel = "sta_forward"
            views["base_arrival"][...] = self._base_arrival
            views["arrival"][...] = self._base_arrival
            state = views["arrival"]
            levels = range(1, self.graph.max_level + 1)
        else:
            kernel = "sta_backward"
            views["base_required"][...] = self._base_required
            views["required"][...] = self._base_required
            state = views["required"]
            levels = range(self.graph.max_level - 1, -1, -1)

        offsets = self._level_pin_offsets
        threshold = self.parallel_min_level_size
        for lvl in levels:
            start = int(offsets[lvl])
            end = int(offsets[lvl + 1])
            width = end - start
            if width == 0:
                continue
            if width < threshold or runner.workers <= 1:
                # Narrow level: sweep inline on the shared views (same
                # kernel, same arithmetic — only the transport differs).
                _parallel_kernels.run_kernel(kernel, views, (start, end))
            else:
                tasks = [
                    (start + a, start + b) for a, b in split_ranges(width, runner.workers)
                ]
                runner.run(kernel, [block], tasks)
        # Private copy: the shared view is rewritten by the next sweep.
        return state.copy()

    # ------------------------------------------------------------------
    # Convenience metrics
    # ------------------------------------------------------------------
    def wns(self) -> float:
        self._require_result()
        return self.last_result.wns  # type: ignore[union-attr]

    def tns(self) -> float:
        self._require_result()
        return self.last_result.tns  # type: ignore[union-attr]

    def _require_result(self) -> None:
        if self.last_result is None:
            raise RuntimeError("Call update_timing() before querying results")

    def summary(self) -> Dict[str, float]:
        self._require_result()
        result = self.last_result
        assert result is not None
        return {
            "wns": result.wns,
            "tns": result.tns,
            "failing_endpoints": result.num_failing_endpoints,
            "endpoints": int(self.endpoint_pins.size),
            "clock_period": self.constraints.clock_period,
        }
