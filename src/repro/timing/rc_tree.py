"""Explicit RC tree with Elmore delay evaluation.

The Elmore delay from the tree root (net driver) to a node ``t`` is

    delay(t) = sum over edges e on the root->t path of  R_e * C_down(e)

where ``C_down(e)`` is the total capacitance in the subtree hanging below
edge ``e`` (wire capacitance plus pin loads).  This is the delay model the
paper's quadratic distance loss is derived from (Sec. III-C, Eq. 7): with
wire resistance and capacitance both linear in length, the driver-to-sink
delay grows quadratically with the pin-to-pin distance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.timing.steiner import NetTopology


@dataclass
class _Edge:
    parent: int
    child: int
    resistance: float
    capacitance: float


class RCTree:
    """Distributed RC tree for one net.

    Wire segments use a pi-model: half the segment capacitance is lumped at
    each end.  Pin load capacitances are added at the pin nodes.
    """

    def __init__(
        self,
        topology: NetTopology,
        *,
        resistance_per_unit: float,
        capacitance_per_unit: float,
        pin_caps: Optional[Sequence[float]] = None,
    ) -> None:
        self.topology = topology
        self.resistance_per_unit = resistance_per_unit
        self.capacitance_per_unit = capacitance_per_unit
        num_nodes = topology.node_xy.shape[0]
        self.node_cap = np.zeros(num_nodes, dtype=np.float64)
        if pin_caps is not None:
            caps = np.asarray(pin_caps, dtype=np.float64)
            if caps.size != topology.num_pins:
                raise ValueError("pin_caps must have one entry per pin")
            self.node_cap[: topology.num_pins] += caps

        self._edges: List[_Edge] = []
        self._children: Dict[int, List[int]] = {}
        for parent, child, length in topology.edges:
            resistance = resistance_per_unit * length
            capacitance = capacitance_per_unit * length
            self._edges.append(_Edge(parent, child, resistance, capacitance))
            self.node_cap[parent] += 0.5 * capacitance
            self.node_cap[child] += 0.5 * capacitance
            self._children.setdefault(parent, []).append(len(self._edges) - 1)

        self.root = topology.root
        self._downstream_cap: Optional[np.ndarray] = None
        self._node_delay: Optional[np.ndarray] = None
        self._edge_topo: List[int] = []

    @property
    def total_capacitance(self) -> float:
        """Total capacitance the driver sees (wire + pin loads)."""
        return float(self.node_cap.sum())

    @property
    def total_wire_length(self) -> float:
        return self.topology.total_length

    def _compute_downstream(self) -> np.ndarray:
        """Capacitance of the subtree rooted at each node (including itself)."""
        if self._downstream_cap is not None:
            return self._downstream_cap
        num_nodes = self.node_cap.size
        downstream = self.node_cap.copy()
        # Process nodes bottom-up: children before parents. Obtain an order by
        # DFS from the root and reverse it.  The edge visit order (parent
        # always before child) is recorded for the root-to-node delay pass.
        order: List[int] = []
        edge_order: List[int] = []
        stack = [self.root]
        visited = set()
        while stack:
            node = stack.pop()
            if node in visited:
                continue
            visited.add(node)
            order.append(node)
            for edge_idx in self._children.get(node, []):
                edge_order.append(edge_idx)
                stack.append(self._edges[edge_idx].child)
        self._edge_topo = edge_order
        for node in reversed(order):
            for edge_idx in self._children.get(node, []):
                downstream[node] += downstream[self._edges[edge_idx].child]
        self._downstream_cap = downstream
        return downstream

    def _compute_node_delays(self) -> np.ndarray:
        """Elmore delay from the root to every node, one vectorized pass.

        ``delay(child) = delay(parent) + R_edge * C_down(child)``, evaluated
        breadth-first so each tree depth is a single array operation instead
        of one root-walk per node.
        """
        if self._node_delay is not None:
            return self._node_delay
        downstream = self._compute_downstream().tolist()
        delay: List[float] = [float("nan")] * self.node_cap.size
        delay[self.root] = 0.0
        edges = self._edges
        for edge_idx in self._edge_topo:
            edge = edges[edge_idx]
            delay[edge.child] = delay[edge.parent] + edge.resistance * downstream[edge.child]
        self._node_delay = np.asarray(delay, dtype=np.float64)
        return self._node_delay

    def elmore_delay(self, node: int) -> float:
        """Elmore delay from the root (driver) to ``node``."""
        delay = self._compute_node_delays()[node]
        if np.isnan(delay):
            raise ValueError(f"Node {node} is not reachable from the root")
        return float(delay)

    def elmore_delays_to_pins(self) -> np.ndarray:
        """Elmore delay from the root to every pin node (driver delay is 0)."""
        num_pins = self.topology.num_pins
        pin_delay = self._compute_node_delays()[:num_pins].copy()
        pin_delay[self.root] = 0.0
        bad = np.nonzero(np.isnan(pin_delay))[0]
        if bad.size:
            raise ValueError(f"Node {int(bad[0])} is not reachable from the root")
        return pin_delay
