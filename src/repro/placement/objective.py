"""Composable placement objective.

The paper's objective (Eq. 6) is a sum of three kinds of terms: wirelength,
density, and an optional timing term (net re-weighting folds into the
wirelength term; pin-to-pin attraction adds a new term).  To keep the
placement engine reusable by the baselines and by the proposed method, extra
terms implement the :class:`ObjectiveTerm` protocol and are simply appended
to the :class:`GlobalPlacer`'s objective.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Protocol, Tuple

import numpy as np


class ObjectiveTerm(Protocol):
    """A differentiable term added to the placement objective.

    ``weight`` is the multiplier applied by the engine (the paper's ``beta``
    for the pin-to-pin attraction term).  ``evaluate`` returns the raw value
    and its gradient with respect to every instance coordinate; the engine
    multiplies both by ``weight``.
    """

    weight: float

    def evaluate(self, x: np.ndarray, y: np.ndarray) -> Tuple[float, np.ndarray, np.ndarray]:
        """Return ``(value, grad_x, grad_y)`` for instance positions ``x, y``."""
        ...


@dataclass
class ObjectiveBreakdown:
    """Per-term values of one objective evaluation (for logging/tests)."""

    wirelength: float
    density: float
    extra: List[float]
    total: float


class PlacementObjective:
    """Weighted sum of wirelength, density, and extra terms.

    The engine owns the wirelength/density models; this class only combines
    already-computed pieces with the extra terms so gradients from all
    sources are accumulated consistently.
    """

    def __init__(self) -> None:
        self.extra_terms: List[ObjectiveTerm] = []

    def add_term(self, term: ObjectiveTerm) -> None:
        self.extra_terms.append(term)

    def remove_term(self, term: ObjectiveTerm) -> None:
        self.extra_terms.remove(term)

    def evaluate_extra(
        self,
        x: np.ndarray,
        y: np.ndarray,
        num_instances: int,
        *,
        out_x: np.ndarray = None,
        out_y: np.ndarray = None,
    ) -> Tuple[List[float], np.ndarray, np.ndarray]:
        """Evaluate all extra terms; returns values and summed weighted gradients.

        ``out_x``/``out_y`` may supply reused accumulator buffers (the
        placer's iteration arena); they are zero-filled before accumulation,
        so results are bitwise identical to the allocating form.
        """
        values: List[float] = []
        # contract: allow(alloc) reason=fallback accumulators when the caller supplies no arena buffers
        grad_x = np.zeros(num_instances, dtype=np.float64) if out_x is None else out_x
        # contract: allow(alloc) reason=fallback accumulators when the caller supplies no arena buffers
        grad_y = np.zeros(num_instances, dtype=np.float64) if out_y is None else out_y
        if out_x is not None:
            grad_x.fill(0.0)
        if out_y is not None:
            grad_y.fill(0.0)
        for term in self.extra_terms:
            value, gx, gy = term.evaluate(x, y)
            values.append(term.weight * value)
            grad_x += term.weight * gx
            grad_y += term.weight * gy
        return values, grad_x, grad_y
