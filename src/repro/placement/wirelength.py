"""Wirelength models: exact HPWL and the weighted-average (WA) smooth model.

The WA model (Hsu, Chang, Balabanov, DAC'11) approximates the max/min of the
pin coordinates of a net with log-sum-exp-style weighted averages controlled
by a smoothing parameter ``gamma``; it is the wirelength model used by
DREAMPlace and therefore by every placer in this library.  Values and
gradients are computed for all nets at once from the design core's CSR
net-to-pin arrays, then pin gradients are accumulated onto instances.

Scatter plans (PR 7)
--------------------

The hot path no longer walks full-size per-net arrays or re-derives the
valid-pin filter per call.  ``__init__`` builds a *scatter plan* once — the
filtered CSR pin list is net-contiguous (the CSR expansion is net-major), so
compact segment ids drive the per-net extrema (``np.maximum.at`` over the
valid-net-sized arrays), the per-net sums and the pin→instance accumulation
run through ``np.bincount``, and all per-pin intermediates stage through
reused arena buffers instead of fresh temporaries.

Bit-exactness: ``np.bincount`` with float weights is a sequential fold in
input order, exactly like ``np.add.at`` (property-tested against the
``_reference_*`` legacy paths kept below), and IEEE min/max is
order-independent for the NaN-free inputs here.  ``np.add.reduceat`` is
deliberately **not** used for the float sums — its blocked pairwise
summation does not reproduce the sequential ``np.add.at`` fold bit for bit.

With ``workers > 0`` (or an injected runner) the evaluation shards across
the :mod:`repro.parallel` kernel pool: workers own disjoint *whole-net*
ranges, compute per-pin gradients and per-net WA values locally, and the
parent replays the instance scatter and the value sum in canonical order —
bitwise identical to serial for any worker count (same contract as the
density splat).

Every entry point takes either a :class:`repro.netlist.Design` or a bare
:class:`repro.netlist.core.DesignCore` — the smooth model never touches the
object netlist.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.netlist.core import as_core


def hpwl_per_net(
    design,
    x: Optional[np.ndarray] = None,
    y: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Exact half-perimeter wirelength of every net (zeros for degenerate nets)."""
    return as_core(design).hpwl_per_net(x, y)


def total_hpwl(
    design,
    x: Optional[np.ndarray] = None,
    y: Optional[np.ndarray] = None,
    *,
    net_weights: Optional[np.ndarray] = None,
) -> float:
    """Total (optionally net-weighted) HPWL of the design."""
    return as_core(design).total_hpwl(x, y, net_weights=net_weights)


@dataclass
class WirelengthResult:
    """Value and per-instance gradient of the smooth wirelength."""

    value: float
    grad_x: np.ndarray
    grad_y: np.ndarray


class WeightedAverageWirelength:
    """Weighted-average smoothed wirelength with analytic gradients.

    ``gamma`` controls smoothness: smaller values track HPWL more closely but
    yield stiffer gradients.  DREAMPlace anneals gamma with overflow; the
    :class:`repro.placement.global_placer.GlobalPlacer` does the same through
    :meth:`set_gamma`.

    ``workers``/``runner`` select the kernel-pool sharded evaluation
    (``workers=0``, the default, keeps the serial plan path); ``arena`` may
    be set to an :class:`repro.placement.arena.IterationArena` to reuse the
    per-pin work buffers across evaluations.
    """

    def __init__(
        self,
        design,
        *,
        gamma: float = 5.0,
        workers: int = 0,
        runner=None,
    ) -> None:
        core = as_core(design)
        self.core = core
        self.gamma = float(gamma)
        counts = np.diff(core.net_pin_offsets)
        # Only nets with at least two pins contribute wirelength.  The pin
        # filter is the O(P) per-pin count lookup, not an O(P log N)
        # ``np.isin`` against the valid-net list (same mask, tested).
        self._valid_nets = np.nonzero(counts >= 2)[0]
        valid_mask = counts[core.csr_net] >= 2
        self._csr_pins = core.net_pin_index[valid_mask]
        self._csr_net = core.csr_net[valid_mask]
        self._pin_instance = core.pin_instance
        self._num_nets = core.num_nets
        self._num_instances = core.num_instances
        self._movable_mask = core.movable_mask
        self._fixed_mask = ~core.movable_mask

        # Scatter plan.  ``csr_net`` is net-major (nondecreasing), so the
        # filtered pins stay net-contiguous: per-net segments are described
        # by their start offsets, and every pin knows its (compact) segment.
        valid_counts = counts[self._valid_nets]
        self._seg_starts = np.zeros(self._valid_nets.size, dtype=np.int64)
        if self._valid_nets.size:
            np.cumsum(valid_counts[:-1], out=self._seg_starts[1:])
        self._seg_id = np.repeat(
            np.arange(self._valid_nets.size, dtype=np.int64), valid_counts
        )
        # Precomputed pin→instance targets for the bincount scatter, the
        # pooled path's segment bounds, and the default unit net weights
        # (shared read-only when the caller passes none).
        self._pin_inst = core.pin_instance[self._csr_pins]
        self._seg_bounds = np.append(self._seg_starts, np.int64(self._csr_pins.size))
        self._unit_weights = np.ones(self._num_nets, dtype=np.float64)

        # Optional buffer arena (set by the placer).
        self.arena = None

        # Kernel-pool sharding state (mirrors ElectrostaticDensity).
        self.workers = int(workers)
        self._runner = runner
        self._runner_resolved = runner is not None
        self._block = None

    def set_gamma(self, gamma: float) -> None:
        if gamma <= 0:
            raise ValueError("gamma must be positive")
        self.gamma = float(gamma)

    # ------------------------------------------------------------------
    # Plan-based serial path
    # ------------------------------------------------------------------
    def _buffer(self, name: str, size: int) -> np.ndarray:
        if self.arena is not None:
            return self.arena.array(name, size)
        # contract: allow(alloc) reason=fallback for standalone calls with no arena attached
        return np.empty(size, dtype=np.float64)

    def evaluate(
        self,
        x: np.ndarray,
        y: np.ndarray,
        *,
        net_weights: Optional[np.ndarray] = None,
        pin_x: Optional[np.ndarray] = None,
        pin_y: Optional[np.ndarray] = None,
    ) -> WirelengthResult:
        """Smoothed wirelength and its gradient w.r.t. instance positions.

        ``pin_x``/``pin_y`` may carry precomputed absolute pin coordinates
        (the placer's shared per-iteration gather); when omitted the model
        gathers them itself.
        """
        weights = (
            self._unit_weights
            if net_weights is None
            else np.asarray(net_weights, dtype=np.float64)
        )
        runner = self._get_runner()
        if runner is not None and self._csr_pins.size:
            return self._evaluate_pooled(runner, x, y, weights)
        if pin_x is None or pin_y is None:
            if self.arena is not None:
                pin_x, pin_y = self.arena.gather_pins(self.core, x, y)
            else:
                pin_x, pin_y = self.core.pin_positions(x, y)

        cx = self._buffer("wl_coord_x", self._csr_pins.size)
        cy = self._buffer("wl_coord_y", self._csr_pins.size)
        np.take(pin_x, self._csr_pins, out=cx)
        np.take(pin_y, self._csr_pins, out=cy)
        value_x, pin_grad_x = self._directional(cx, weights, axis="x")
        value_y, pin_grad_y = self._directional(cy, weights, axis="y")

        grad_x = np.bincount(
            self._pin_inst, weights=pin_grad_x, minlength=self._num_instances
        )
        grad_y = np.bincount(
            self._pin_inst, weights=pin_grad_y, minlength=self._num_instances
        )
        grad_x[self._fixed_mask] = 0.0
        grad_y[self._fixed_mask] = 0.0
        return WirelengthResult(value=value_x + value_y, grad_x=grad_x, grad_y=grad_y)

    def _directional(
        self, c: np.ndarray, net_weights: np.ndarray, *, axis: str = "x"
    ) -> Tuple[float, np.ndarray]:
        """WA wirelength and per-CSR-pin gradient along one axis.

        Plan path: per-net extrema and sums over *compact* valid-net arrays
        (``maximum.at``/``minimum.at`` and ``bincount`` keyed by segment id),
        with every per-pin intermediate staged through a reused buffer.
        Per-entry values are bitwise identical to the legacy full-size
        net-id formulation; the value is summed over a full-size per-net
        array so the pairwise summation tree matches the legacy expression
        exactly.
        """
        gamma = self.gamma
        seg = self._seg_id
        num_valid = self._valid_nets.size
        per_net = self._zeros_buffer(f"wl_per_net_{axis}", self._num_nets)
        if num_valid == 0:
            value = float(np.sum(per_net * net_weights))
            return value, c[:0]

        # Per-net extrema over the compact segment ids.  ``maximum.at`` /
        # ``minimum.at`` outrun ``reduceat`` for these folds, and IEEE
        # min/max are order-independent, so either formulation produces the
        # same bits (the pooled kernel keeps the reduceat form).
        cmax = self._buffer(f"wl_cmax_{axis}", num_valid)
        cmin = self._buffer(f"wl_cmin_{axis}", num_valid)
        cmax.fill(-np.inf)
        cmin.fill(np.inf)
        np.maximum.at(cmax, seg, c)
        np.minimum.at(cmin, seg, c)
        exp_pos = self._buffer(f"wl_exp_pos_{axis}", c.size)
        exp_neg = self._buffer(f"wl_exp_neg_{axis}", c.size)
        np.take(cmax, seg, out=exp_pos)
        np.subtract(c, exp_pos, out=exp_pos)
        exp_pos /= gamma
        np.exp(exp_pos, out=exp_pos)
        np.take(cmin, seg, out=exp_neg)
        exp_neg -= c
        exp_neg /= gamma
        np.exp(exp_neg, out=exp_neg)

        work = self._buffer(f"wl_work_{axis}", c.size)
        np.multiply(c, exp_pos, out=work)
        sum_pos = np.bincount(seg, weights=exp_pos, minlength=num_valid)
        sum_cpos = np.bincount(seg, weights=work, minlength=num_valid)
        np.multiply(c, exp_neg, out=work)
        sum_neg = np.bincount(seg, weights=exp_neg, minlength=num_valid)
        sum_cneg = np.bincount(seg, weights=work, minlength=num_valid)

        # max(sum, 1e-300) keeps the division finite everywhere, so staging
        # it (maximum → divide into reused buffers, then overwrite the
        # empty-mass entries with the literal 0.0) selects exactly the bits
        # the legacy np.where expression produced.
        wa_max = self._buffer(f"wl_wa_max_{axis}", num_valid)
        wa_min = self._buffer(f"wl_wa_min_{axis}", num_valid)
        den = self._buffer(f"wl_den_{axis}", num_valid)
        np.maximum(sum_pos, 1e-300, out=den)
        np.divide(sum_cpos, den, out=wa_max)
        wa_max[sum_pos <= 0.0] = 0.0
        np.maximum(sum_neg, 1e-300, out=den)
        np.divide(sum_cneg, den, out=wa_min)
        wa_min[sum_neg <= 0.0] = 0.0
        per_net[self._valid_nets] = wa_max - wa_min
        value = float(np.sum(per_net * net_weights))

        # Gradient of the WA max/min estimators w.r.t. each pin coordinate,
        # staged through reused buffers.  Every binary op keeps the operand
        # order of the legacy one-line expression (only the destination
        # changed), so the rounding — and therefore the bits — match the
        # ``_reference_directional`` formulation exactly.
        sums = self._buffer(f"wl_sums_{axis}", c.size)
        grad = self._buffer(f"wl_grad_{axis}", c.size)
        # grad_max = exp_pos * ((1 + c/gamma) * sp - scp/gamma) / max(sp*sp, eps)
        np.divide(c, gamma, out=grad)
        grad += 1.0
        np.take(sum_pos, seg, out=sums)
        grad *= sums
        np.take(sum_cpos, seg, out=work)
        work /= gamma
        grad -= work
        grad *= exp_pos
        sums *= sums
        np.maximum(sums, 1e-300, out=sums)
        grad /= sums
        # grad_min = exp_neg * ((1 - c/gamma) * sn + scn/gamma) / max(sn*sn, eps)
        pin_grad = self._buffer(f"wl_pin_grad_{axis}", c.size)
        np.divide(c, gamma, out=pin_grad)
        np.subtract(1.0, pin_grad, out=pin_grad)
        np.take(sum_neg, seg, out=sums)
        pin_grad *= sums
        np.take(sum_cneg, seg, out=work)
        work /= gamma
        pin_grad += work
        pin_grad *= exp_neg
        sums *= sums
        np.maximum(sums, 1e-300, out=sums)
        pin_grad /= sums
        # pin_grad = (grad_max - grad_min) * net_weights[csr_net]
        np.subtract(grad, pin_grad, out=pin_grad)
        np.take(net_weights, self._csr_net, out=work)
        pin_grad *= work
        return value, pin_grad

    def _zeros_buffer(self, name: str, size: int) -> np.ndarray:
        if self.arena is not None:
            return self.arena.zeros(name, size)
        # contract: allow(alloc) reason=fallback for standalone calls with no arena attached
        return np.zeros(size, dtype=np.float64)

    # ------------------------------------------------------------------
    # Kernel-pool sharded path
    # ------------------------------------------------------------------
    def _get_runner(self):
        if not self._runner_resolved:
            self._runner_resolved = True
            if self.workers > 0:
                from repro.parallel import get_runner

                self._runner = get_runner(self.workers)
        return self._runner

    def _ensure_block(self, runner):
        if self._block is not None:
            return self._block
        num_pins = self._csr_pins.size
        num_valid = self._valid_nets.size
        core = self.core
        self._block = runner.register(
            {
                # Static plan arrays.
                "pinst": self._pin_inst,
                "off_x": core.pin_offset_x[self._csr_pins],
                "off_y": core.pin_offset_y[self._csr_pins],
                "seg_id": self._seg_id,
                "seg_starts": self._seg_starts,
                # Mutable per-call inputs.
                "x": np.zeros(core.num_instances, dtype=np.float64),
                "y": np.zeros(core.num_instances, dtype=np.float64),
                "net_w": np.zeros(num_valid, dtype=np.float64),
                # Worker outputs.
                "pin_grad_x": np.zeros(num_pins, dtype=np.float64),
                "pin_grad_y": np.zeros(num_pins, dtype=np.float64),
                "per_net_x": np.zeros(num_valid, dtype=np.float64),
                "per_net_y": np.zeros(num_valid, dtype=np.float64),
            }
        )
        import weakref

        from repro.route.rudy import _release_block

        weakref.finalize(self, _release_block, runner, self._block)
        return self._block

    def _evaluate_pooled(
        self, runner, x: np.ndarray, y: np.ndarray, weights: np.ndarray
    ) -> WirelengthResult:
        """Sharded WA evaluation: workers own disjoint whole-net ranges and
        compute per-pin gradients + per-net WA values; the parent replays
        the value sum and the instance scatter in canonical order — bitwise
        identical to the serial plan path for any worker count."""
        from repro.parallel.engine import split_ranges

        block = self._ensure_block(runner)
        views = block.views
        views["x"][...] = x
        views["y"][...] = y
        views["net_w"][...] = weights[self._valid_nets]
        seg_bounds = self._seg_bounds
        tasks = [
            (s, e, int(seg_bounds[s]), int(seg_bounds[e]), self.gamma)
            for s, e in split_ranges(self._valid_nets.size, runner.workers)
        ]
        runner.run("wa_wirelength", [block], tasks)

        values = []
        for axis in ("x", "y"):
            per_net = self._zeros_buffer(f"wl_per_net_{axis}", self._num_nets)
            per_net[self._valid_nets] = views[f"per_net_{axis}"]
            values.append(float(np.sum(per_net * weights)))
        grad_x = np.bincount(
            self._pin_inst, weights=views["pin_grad_x"], minlength=self._num_instances
        )
        grad_y = np.bincount(
            self._pin_inst, weights=views["pin_grad_y"], minlength=self._num_instances
        )
        grad_x[self._fixed_mask] = 0.0
        grad_y[self._fixed_mask] = 0.0
        return WirelengthResult(
            value=values[0] + values[1], grad_x=grad_x, grad_y=grad_y
        )

    # ------------------------------------------------------------------
    # Legacy reference path (kept for the bitwise property tests)
    # ------------------------------------------------------------------
    def _reference_evaluate(
        self,
        x: np.ndarray,
        y: np.ndarray,
        *,
        net_weights: Optional[np.ndarray] = None,
        pin_x: Optional[np.ndarray] = None,
        pin_y: Optional[np.ndarray] = None,
    ) -> WirelengthResult:
        """Pre-plan evaluation via ``np.add.at``/``np.maximum.at`` (slow)."""
        if pin_x is None or pin_y is None:
            pin_x, pin_y = self.core.pin_positions(x, y)
        weights = (
            np.ones(self._num_nets, dtype=np.float64)
            if net_weights is None
            else np.asarray(net_weights, dtype=np.float64)
        )

        value_x, pin_grad_x = self._reference_directional(pin_x, weights)
        value_y, pin_grad_y = self._reference_directional(pin_y, weights)

        grad_x = np.zeros(self._num_instances, dtype=np.float64)
        grad_y = np.zeros(self._num_instances, dtype=np.float64)
        np.add.at(grad_x, self._pin_instance[self._csr_pins], pin_grad_x)
        np.add.at(grad_y, self._pin_instance[self._csr_pins], pin_grad_y)
        grad_x[~self._movable_mask] = 0.0
        grad_y[~self._movable_mask] = 0.0
        return WirelengthResult(value=value_x + value_y, grad_x=grad_x, grad_y=grad_y)

    def _reference_directional(
        self, coord: np.ndarray, net_weights: np.ndarray
    ) -> Tuple[float, np.ndarray]:
        """Legacy WA value/gradient along one axis (unbuffered scatters)."""
        gamma = self.gamma
        pins = self._csr_pins
        nets = self._csr_net
        num_nets = self._num_nets
        c = coord[pins]

        # Stabilize exponentials per net.
        cmax = np.full(num_nets, -np.inf)
        cmin = np.full(num_nets, np.inf)
        np.maximum.at(cmax, nets, c)
        np.minimum.at(cmin, nets, c)
        exp_pos = np.exp((c - cmax[nets]) / gamma)
        exp_neg = np.exp((cmin[nets] - c) / gamma)

        sum_pos = np.bincount(nets, weights=exp_pos, minlength=num_nets)
        sum_neg = np.bincount(nets, weights=exp_neg, minlength=num_nets)
        sum_cpos = np.bincount(nets, weights=c * exp_pos, minlength=num_nets)
        sum_cneg = np.bincount(nets, weights=c * exp_neg, minlength=num_nets)

        with np.errstate(invalid="ignore", divide="ignore"):
            wa_max = np.where(sum_pos > 0, sum_cpos / np.maximum(sum_pos, 1e-300), 0.0)
            wa_min = np.where(sum_neg > 0, sum_cneg / np.maximum(sum_neg, 1e-300), 0.0)
        per_net = wa_max - wa_min
        value = float(np.sum(per_net * net_weights))

        # Gradient of the WA max/min estimators w.r.t. each pin coordinate.
        sp = sum_pos[nets]
        sn = sum_neg[nets]
        scp = sum_cpos[nets]
        scn = sum_cneg[nets]
        grad_max = exp_pos * ((1.0 + c / gamma) * sp - scp / gamma) / np.maximum(sp * sp, 1e-300)
        grad_min = exp_neg * ((1.0 - c / gamma) * sn + scn / gamma) / np.maximum(sn * sn, 1e-300)
        pin_grad = (grad_max - grad_min) * net_weights[nets]
        return value, pin_grad
