"""Unit tests for repro.utils (rng, profiling, logging)."""

import logging
import time

import numpy as np
import pytest

from repro.utils.logging import get_logger, set_verbosity
from repro.utils.profiling import RuntimeProfiler, Timer
from repro.utils.rng import derive_seed, make_rng, spawn_rng


class TestRng:
    def test_same_seed_same_stream(self):
        a = make_rng(42).random(5)
        b = make_rng(42).random(5)
        assert np.allclose(a, b)

    def test_different_seed_different_stream(self):
        assert not np.allclose(make_rng(1).random(5), make_rng(2).random(5))

    def test_generator_passthrough(self):
        gen = np.random.default_rng(3)
        assert make_rng(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)

    def test_spawn_count(self):
        children = spawn_rng(make_rng(0), 4)
        assert len(children) == 4
        values = [c.random() for c in children]
        assert len(set(values)) == 4

    def test_spawn_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_rng(make_rng(0), -1)

    def test_derive_seed_range(self):
        seed = derive_seed(make_rng(5))
        assert 0 <= seed < 2**31


class TestTimer:
    def test_accumulates(self):
        timer = Timer("t")
        timer.start()
        time.sleep(0.01)
        elapsed = timer.stop()
        assert elapsed > 0
        assert timer.total >= elapsed
        assert timer.calls == 1

    def test_double_start_raises(self):
        timer = Timer("t")
        timer.start()
        with pytest.raises(RuntimeError):
            timer.start()

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer("t").stop()


class TestRuntimeProfiler:
    def test_section_records_time(self):
        profiler = RuntimeProfiler()
        with profiler.section("gradient"):
            time.sleep(0.01)
        assert profiler.total("gradient") > 0

    def test_breakdown_includes_others(self):
        profiler = RuntimeProfiler()
        with profiler.section("io"):
            pass
        breakdown = profiler.breakdown()
        assert "others" in breakdown
        assert breakdown["others"] >= 0

    def test_normalized_breakdown_sums_close_to_one(self):
        profiler = RuntimeProfiler()
        with profiler.section("io"):
            time.sleep(0.005)
        normalized = profiler.normalized_breakdown()
        assert 0.9 <= sum(normalized.values()) <= 1.1

    def test_normalized_breakdown_with_reference(self):
        profiler = RuntimeProfiler()
        profiler.add("io", 1.0)
        normalized = profiler.normalized_breakdown(reference_total=2.0)
        assert normalized["io"] == pytest.approx(0.5)

    def test_bad_reference_raises(self):
        with pytest.raises(ValueError):
            RuntimeProfiler().normalized_breakdown(reference_total=0.0)

    def test_merge(self):
        a = RuntimeProfiler()
        b = RuntimeProfiler()
        a.add("weighting", 1.0)
        b.add("weighting", 2.0)
        a.merge(b)
        assert a.total("weighting") == pytest.approx(3.0)

    def test_add_manual(self):
        profiler = RuntimeProfiler()
        profiler.add("legalization", 0.25)
        profiler.add("legalization", 0.25)
        assert profiler.total("legalization") == pytest.approx(0.5)


class TestLogging:
    def test_logger_namespace(self):
        assert get_logger("core").name == "repro.core"
        assert get_logger("repro.timing").name == "repro.timing"
        assert get_logger().name == "repro"

    def test_set_verbosity(self):
        set_verbosity(logging.DEBUG)
        assert get_logger().level == logging.DEBUG
        set_verbosity(logging.INFO)
