"""Wirelength-driven baseline (DREAMPlace without any timing feedback).

Composed from the flow pipeline: an optional record-only timing stage (for
trajectory plots), global placement, legalization, evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Optional

import numpy as np

from repro.evaluation.evaluator import EvaluationReport
from repro.flow.presets import build_stages
from repro.flow.runner import FlowRunner
from repro.netlist.design import Design
from repro.placement.global_placer import (
    PlacementConfig,
    PlacementHistory,
    PlacementResult,
)
from repro.timing.constraints import TimingConstraints
from repro.utils.profiling import RuntimeProfiler


@dataclass
class DreamPlaceConfig(PlacementConfig):
    """Placement config plus the optional TNS/WNS recording interval."""

    record_timing_every: Optional[int] = None
    # MCMM corners spec (None, "fast,typ,slow", or Corner objects); affects
    # timing recording and evaluation (placement itself is timing-free).
    corners: Optional[object] = None


@dataclass
class BaselineResult:
    """Common result type for all baseline flows."""

    x: np.ndarray
    y: np.ndarray
    evaluation: EvaluationReport
    placement: PlacementResult
    history: PlacementHistory
    profiler: RuntimeProfiler
    runtime_seconds: float

    def summary(self) -> dict:
        return {
            "design": self.evaluation.design_name,
            "hpwl": self.evaluation.hpwl,
            "tns": self.evaluation.tns,
            "wns": self.evaluation.wns,
            "runtime_sec": round(self.runtime_seconds, 2),
            "iterations": self.placement.iterations,
        }


def baseline_result_from_flow(result) -> BaselineResult:
    """Adapt a :class:`repro.flow.runner.FlowResult` to the legacy shape."""
    ctx = result.context
    return BaselineResult(
        x=result.x,
        y=result.y,
        evaluation=ctx.evaluation,
        placement=ctx.placement,
        history=ctx.history,
        profiler=ctx.profiler,
        runtime_seconds=result.runtime_seconds,
    )


class DreamPlaceBaseline:
    """Plain wirelength + density global placement, then legalization."""

    def __init__(
        self,
        design: Design,
        config: Optional[PlacementConfig] = None,
        *,
        constraints: Optional[TimingConstraints] = None,
        record_timing_every: Optional[int] = None,
    ) -> None:
        self.design = design
        self.config = config if config is not None else PlacementConfig()
        self.constraints = (
            constraints if constraints is not None else TimingConstraints.from_design(design)
        )
        # The flow owns the (span-backed) profiler; this attribute is bound
        # to it after run() so the Fig. 4 breakdown harness keeps reading
        # ``baseline.profiler`` while the accounting itself lives in the
        # unified tracing layer (repro.obs) like every other flow.
        self.profiler: Optional[RuntimeProfiler] = None
        # The explicit parameter wins when given: 0 disables recording even
        # if the config enables it; None (also the not-passed value) defers
        # to the config field.
        self.record_timing_every = (
            record_timing_every
            if record_timing_every is not None
            else getattr(self.config, "record_timing_every", None)
        )

    def run(self) -> BaselineResult:
        config = self.config
        if getattr(config, "record_timing_every", None) != self.record_timing_every:
            # Lift a plain PlacementConfig (or a disagreeing DreamPlaceConfig)
            # into one carrying the effective recording interval, so the
            # preset remains the single source of the stage composition.
            config = DreamPlaceConfig(
                **{f.name: getattr(config, f.name) for f in fields(PlacementConfig)},
                record_timing_every=self.record_timing_every,
            )
        runner = FlowRunner(build_stages("dreamplace", config), name="dreamplace")
        result = runner.run(
            self.design,
            constraints=self.constraints,
            seed=self.config.seed,
        )
        self.profiler = result.context.profiler
        return baseline_result_from_flow(result)
