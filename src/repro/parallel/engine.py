"""Persistent shared-memory worker pool for sharded array kernels.

The engine generalizes the ``SharedDesignPack`` transport from
:mod:`repro.netlist.compiled` into a reusable in-flow primitive:

* :class:`KernelPool` — a lazily-started set of long-lived worker processes.
  Array sets are registered once per consumer (estimator, STA engine,
  density model) into a single ``multiprocessing.shared_memory`` segment;
  workers attach each segment exactly once and every subsequent
  :meth:`KernelPool.run` ships only a kernel name and a handful of index
  ranges over a pipe.  Mutable arrays (positions, arc delays, sweep state)
  are rewritten in place by the parent between calls — zero-copy in both
  directions.
* :class:`SerialShardRunner` — the same interface executed inline on the
  caller's arrays.  It exists so the sharded code paths can be driven (and
  property-tested for bitwise equality) with arbitrary shard counts without
  paying process startup, and so ``workers=1`` semantics are well defined.
* :func:`split_ranges` — the canonical contiguous near-equal decomposition
  every call site uses, so tests and production shard identically.

Failure semantics: any worker exception or death poisons the pool — the
parent tears down every worker and unlinks every shared segment before
re-raising as :class:`KernelPoolError`.  No ``/dev/shm`` entry survives a
crash (the same guarantee the batch runner's pack ``ExitStack`` gives).

The serial fallback is structural: with ``workers=0`` (every default) none
of this module is imported by the hot paths and the original single-process
code runs unchanged.
"""

from __future__ import annotations

import atexit
import os
import traceback
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.obs import ChildSpanCollector, active_tracer, adopt_spans, span
from repro.parallel import kernels as _kernels

__all__ = [
    "KernelPool",
    "KernelPoolError",
    "SerialShardRunner",
    "ShardBlock",
    "get_kernel_pool",
    "get_runner",
    "resolve_worker_count",
    "shutdown_kernel_pools",
    "split_ranges",
]


class KernelPoolError(RuntimeError):
    """A worker failed or died; the pool has been torn down."""


def resolve_worker_count(requested: Optional[int] = None) -> int:
    """CPUs actually usable by this process (affinity-aware).

    Prefers ``os.process_cpu_count`` (Python 3.13+), falls back to the
    scheduler affinity mask, then ``os.cpu_count``.  A positive ``requested``
    short-circuits.  On shared/CI hosts the affinity mask is the honest
    number: ``os.cpu_count`` reports the machine, not the cgroup.
    """
    if requested is not None and int(requested) > 0:
        return int(requested)
    probe = getattr(os, "process_cpu_count", None)
    count: Optional[int] = None
    if probe is not None:
        count = probe()
    else:
        try:
            count = len(os.sched_getaffinity(0))
        except (AttributeError, OSError):  # pragma: no cover - non-Linux
            count = None
    return int(count or os.cpu_count() or 1)


def split_ranges(total: int, parts: int) -> List[Tuple[int, int]]:
    """Contiguous near-equal ``[start, end)`` ranges covering ``[0, total)``.

    Empty ranges are dropped, so the result has ``min(parts, total)``
    entries.  This is the single shard decomposition used everywhere —
    production dispatch and the bit-exactness property tests agree on it by
    construction.
    """
    total = int(total)
    parts = max(1, int(parts))
    if total <= 0:
        return []
    parts = min(parts, total)
    base, extra = divmod(total, parts)
    ranges: List[Tuple[int, int]] = []
    start = 0
    for i in range(parts):
        size = base + (1 if i < extra else 0)
        ranges.append((start, start + size))
        start += size
    return ranges


# ----------------------------------------------------------------------
# Shared blocks
# ----------------------------------------------------------------------
class ShardBlock:
    """One registered array namespace.

    ``views`` maps names to the arrays kernels see.  For a pool block these
    are writable views into one shared-memory segment (the parent mutates
    them between calls); for the serial runner they are the caller's arrays
    themselves.
    """

    __slots__ = ("block_id", "views", "_shm", "_specs")

    def __init__(self, block_id: int, views: Dict[str, np.ndarray], shm=None, specs=None):
        self.block_id = block_id
        self.views = views
        self._shm = shm
        self._specs = specs

    def _release_segment(self) -> None:
        """Drop views and close + unlink the backing segment (idempotent)."""
        if self._shm is None:
            return
        self.views = {}
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - a caller kept a view alive
            pass
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass
        self._shm = None


def _pack_block(block_id: int, arrays: Dict[str, np.ndarray]) -> ShardBlock:
    """Copy ``arrays`` into one fresh shared segment; exception-safe."""
    from multiprocessing import shared_memory

    specs: Dict[str, Tuple[str, Tuple[int, ...], int]] = {}
    offset = 0
    prepared: Dict[str, np.ndarray] = {}
    for name, arr in arrays.items():
        arr = np.ascontiguousarray(arr)
        prepared[name] = arr
        # 8-byte alignment so typed views stay aligned (same as the pack).
        offset = (offset + 7) & ~7
        specs[name] = (arr.dtype.str, tuple(arr.shape), offset)
        offset += arr.nbytes
    shm = shared_memory.SharedMemory(create=True, size=max(offset, 1))
    try:
        views: Dict[str, np.ndarray] = {}
        for name, arr in prepared.items():
            dtype, shape, off = specs[name]
            view = np.frombuffer(
                shm.buf, dtype=np.dtype(dtype), count=arr.size, offset=off
            ).reshape(shape)
            view[...] = arr
            views[name] = view
        return ShardBlock(block_id, views, shm=shm, specs=specs)
    except BaseException:
        shm.close()
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover
            pass
        raise


# ----------------------------------------------------------------------
# Serial runner (inline execution, pool-identical interface)
# ----------------------------------------------------------------------
class SerialShardRunner:
    """Run shard kernels inline on the caller's arrays.

    ``workers`` only controls how call sites *decompose* work (they ask the
    runner how many shards to cut); execution stays in-process and
    sequential, which makes this the reference the pool is tested against —
    and a cheap way to exercise 1–8-way sharding in property tests.
    """

    is_serial = True

    def __init__(self, workers: int = 1) -> None:
        self.workers = max(1, int(workers))
        self._next_id = 0

    @property
    def closed(self) -> bool:
        return False

    def register(self, arrays: Dict[str, np.ndarray]) -> ShardBlock:
        block = ShardBlock(self._next_id, dict(arrays))
        self._next_id += 1
        return block

    def release(self, block: ShardBlock) -> None:
        block.views = {}

    def run(
        self, kernel: str, blocks: Sequence[ShardBlock], tasks: Sequence[tuple]
    ) -> List[object]:
        merged: Dict[str, np.ndarray] = {}
        for block in blocks:
            merged.update(block.views)
        with span("kernel.dispatch", kernel=kernel, tasks=len(tasks), serial=True):
            return [_kernels.run_kernel(kernel, merged, args) for args in tasks]

    def close(self) -> None:
        pass


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------
def _worker_main(conn) -> None:  # pragma: no cover - runs in child processes
    """Worker loop: attach/detach shared blocks, run named kernels."""
    from multiprocessing import shared_memory

    from repro.obs import stop_tracing

    # A fork-started worker inherits the parent's active tracer global;
    # drop it so worker-side spans flow only through the explicit
    # ChildSpanCollector protocol (recorded locally, shipped with the
    # result, re-parented under the dispatch span by the parent).
    stop_tracing()

    def _close_quietly(shm) -> None:
        # Stray view references (loop locals, traceback frames) may pin the
        # buffer; the mapping dies with the process and the parent unlinks
        # the name, so a failed close is harmless.
        try:
            shm.close()
        except BufferError:
            pass

    blocks: Dict[int, tuple] = {}
    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break
            op = msg[0]
            merged = out = None
            try:
                if op == "attach":
                    # Note: attaching re-registers the name with the (fork-
                    # shared) resource tracker, a harmless duplicate; the
                    # parent's unlink unregisters it exactly once.
                    _, block_id, shm_name, specs = msg
                    shm = shared_memory.SharedMemory(name=shm_name)
                    views = {}
                    for name, (dtype, shape, off) in specs.items():
                        count = int(np.prod(shape)) if shape else 1
                        views[name] = np.frombuffer(
                            shm.buf, dtype=np.dtype(dtype), count=count, offset=off
                        ).reshape(shape)
                    blocks[block_id] = (shm, views)
                    conn.send(("ok", None))
                elif op == "detach":
                    _, block_id = msg
                    entry = blocks.pop(block_id, None)
                    if entry is not None:
                        shm, views = entry
                        views.clear()
                        del views, entry
                        _close_quietly(shm)
                    conn.send(("ok", None))
                elif op == "run":
                    _, kernel, block_ids, chunk, want_trace = msg
                    merged: Dict[str, np.ndarray] = {}
                    for bid in block_ids:
                        merged.update(blocks[bid][1])
                    if want_trace:
                        collector = ChildSpanCollector()
                        out = []
                        for index, args in chunk:
                            with collector.span(f"kernel.{kernel}", task=index):
                                out.append(
                                    (index, _kernels.run_kernel(kernel, merged, args))
                                )
                        conn.send(("ok", (out, collector.payload())))
                    else:
                        out = [
                            (index, _kernels.run_kernel(kernel, merged, args))
                            for index, args in chunk
                        ]
                        conn.send(("ok", (out, None)))
                    merged = None  # type: ignore[assignment]
                    out = None  # type: ignore[assignment]
                elif op == "exit":
                    conn.send(("ok", None))
                    break
                else:
                    conn.send(("err", f"unknown op {op!r}"))
            except Exception:
                merged = out = None
                conn.send(("err", traceback.format_exc()))
            msg = None
    finally:
        for shm, views in blocks.values():
            views.clear()
            _close_quietly(shm)
        blocks.clear()
        conn.close()


# ----------------------------------------------------------------------
# The pool
# ----------------------------------------------------------------------
class KernelPool:
    """Lazily-started persistent process pool running registered kernels.

    Interface-compatible with :class:`SerialShardRunner`; see the module
    docstring for the lifecycle and failure semantics.
    """

    is_serial = False

    def __init__(self, workers: int, *, start_method: Optional[str] = None) -> None:
        import multiprocessing as mp

        self.workers = max(1, int(workers))
        method = (
            start_method
            or os.environ.get("REPRO_KERNEL_START_METHOD")
            or ("fork" if "fork" in mp.get_all_start_methods() else "spawn")
        )
        self._ctx = mp.get_context(method)
        self.start_method = method
        self._procs: List = []
        self._conns: List = []
        self._blocks: Dict[int, ShardBlock] = {}
        self._next_id = 0
        self._started = False
        self._closed = False

    @property
    def closed(self) -> bool:
        return self._closed

    # -- block management ------------------------------------------------
    def register(self, arrays: Dict[str, np.ndarray]) -> ShardBlock:
        if self._closed:
            raise KernelPoolError("kernel pool is closed")
        block = _pack_block(self._next_id, arrays)
        self._next_id += 1
        self._blocks[block.block_id] = block
        if self._started:
            try:
                self._broadcast_attach(block)
            except BaseException:
                self._blocks.pop(block.block_id, None)
                block._release_segment()
                raise
        return block

    def release(self, block: ShardBlock) -> None:
        """Detach ``block`` from the workers and unlink its segment."""
        self._blocks.pop(block.block_id, None)
        if self._started and not self._closed:
            try:
                for conn in self._conns:
                    conn.send(("detach", block.block_id))
                for conn in self._conns:
                    self._expect_ok(conn)
            except KernelPoolError:
                pass  # the pool is already being torn down
        block._release_segment()

    def _broadcast_attach(self, block: ShardBlock) -> None:
        handle = (block.block_id, block._shm.name, block._specs)
        try:
            for conn in self._conns:
                conn.send(("attach", *handle))
            for conn in self._conns:
                self._expect_ok(conn)
        except (OSError, EOFError, BrokenPipeError):
            self._fail("a kernel worker died during attach")

    # -- lifecycle -------------------------------------------------------
    def _ensure_started(self) -> None:
        if self._started or self._closed:
            if self._closed:
                raise KernelPoolError("kernel pool is closed")
            return
        try:
            for _ in range(self.workers):
                parent_conn, child_conn = self._ctx.Pipe()
                proc = self._ctx.Process(
                    target=_worker_main, args=(child_conn,), daemon=True
                )
                proc.start()
                child_conn.close()
                self._procs.append(proc)
                self._conns.append(parent_conn)
            self._started = True
            for block in list(self._blocks.values()):
                self._broadcast_attach(block)
        except BaseException:
            if not self._closed:
                self.close()
            raise

    def _expect_ok(self, conn) -> object:
        try:
            status, payload = conn.recv()
        except (EOFError, OSError):
            self._fail("a kernel worker died unexpectedly")
        if status != "ok":
            self._fail(f"kernel worker failed:\n{payload}")
        return payload

    def _fail(self, message: str) -> None:
        self.close()
        raise KernelPoolError(message)

    # -- execution -------------------------------------------------------
    def run(
        self, kernel: str, blocks: Sequence[ShardBlock], tasks: Sequence[tuple]
    ) -> List[object]:
        """Run ``kernel`` once per task, round-robin over the workers.

        Returns results in task order.  One message round trip per worker
        per call, regardless of the number of tasks.
        """
        if self._closed:
            raise KernelPoolError("kernel pool is closed")
        if not tasks:
            return []
        self._ensure_started()
        block_ids = tuple(block.block_id for block in blocks)
        chunks: List[List[tuple]] = [[] for _ in self._conns]
        for index, args in enumerate(tasks):
            chunks[index % len(self._conns)].append((index, args))
        active = [
            (wid, conn, chunk)
            for wid, (conn, chunk) in enumerate(zip(self._conns, chunks))
            if chunk
        ]
        tracer = active_tracer()
        handle = None
        if tracer is not None:
            handle = tracer.begin(
                "kernel.dispatch",
                kernel=kernel,
                tasks=len(tasks),
                workers=len(self._conns),
            )
        try:
            try:
                for _wid, conn, chunk in active:
                    conn.send(("run", kernel, block_ids, chunk, handle is not None))
            except (OSError, EOFError, BrokenPipeError):
                self._fail("a kernel worker died while dispatching")
            results: List[object] = [None] * len(tasks)
            for wid, conn, _chunk in active:
                out, shipped = self._expect_ok(conn)
                if shipped is not None and tracer is not None:
                    adopt_spans(
                        tracer,
                        shipped,
                        parent_id=handle.span_id,
                        base=handle.start,
                        track=f"pool-worker-{wid}",
                    )
                for index, value in out:
                    results[index] = value
            return results
        finally:
            if tracer is not None:
                tracer.end(handle)

    def close(self) -> None:
        """Terminate workers and unlink every shared segment. Idempotent."""
        if self._closed:
            return
        self._closed = True
        if self._started:
            for conn in self._conns:
                try:
                    conn.send(("exit",))
                except (OSError, EOFError, BrokenPipeError):
                    pass
            for proc in self._procs:
                proc.join(timeout=2.0)
            for proc in self._procs:
                if proc.is_alive():  # pragma: no cover - stuck worker
                    proc.terminate()
                    proc.join(timeout=2.0)
            for conn in self._conns:
                try:
                    conn.close()
                except OSError:  # pragma: no cover
                    pass
        self._procs = []
        self._conns = []
        self._started = False
        for block in list(self._blocks.values()):
            block._release_segment()
        self._blocks.clear()

    def __enter__(self) -> "KernelPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass


# ----------------------------------------------------------------------
# Process-wide pool registry
# ----------------------------------------------------------------------
_POOLS: Dict[int, KernelPool] = {}


def get_kernel_pool(workers: int) -> KernelPool:
    """Shared pool with ``workers`` workers (one per distinct count).

    Pools are created lazily and survive across flow runs so repeated
    estimates reuse warm workers; a pool poisoned by a worker failure is
    transparently replaced on the next request.
    """
    workers = max(1, int(workers))
    pool = _POOLS.get(workers)
    if pool is None or pool.closed:
        pool = KernelPool(workers)
        _POOLS[workers] = pool
    return pool


def get_runner(workers: int, runner=None):
    """Resolve a ``workers`` knob to a runner (``None`` = pure serial path).

    ``runner`` overrides (tests inject a :class:`SerialShardRunner` here);
    otherwise ``workers >= 1`` maps to the shared :class:`KernelPool` and
    ``workers <= 0`` — the default everywhere — selects the untouched serial
    code path.
    """
    if runner is not None:
        return runner
    if workers and int(workers) > 0:
        return get_kernel_pool(int(workers))
    return None


def shutdown_kernel_pools() -> None:
    """Close every shared pool (atexit hook; also handy in tests)."""
    for pool in list(_POOLS.values()):
        pool.close()
    _POOLS.clear()


atexit.register(shutdown_kernel_pools)
