"""Flat gate-level design (netlist + floorplan + placement state).

The :class:`Design` is the central data structure shared by every other
subsystem:

* the placement engine reads cell sizes and pin offsets as flat NumPy arrays
  and writes cell locations back;
* the STA engine walks instances, their library timing arcs, and the nets
  connecting them to build the timing graph;
* parsers/writers translate between on-disk formats and this model.

A design is built incrementally (``add_instance`` / ``add_net`` / ``connect``)
and then :meth:`Design.finalize` freezes it, validating connectivity and
building the vectorized views.  Cell positions remain mutable after
finalization (placement would be pointless otherwise) but the netlist
topology does not.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.netlist.library import CellType, Library, LibraryPin, PinDirection
from repro.utils.geometry import Rect

# Cell masters used to model top-level IO ports as zero-area fixed instances.
_PORT_INPUT = CellType("__PORT_IN__", width=0.0, height=0.0)
_PORT_INPUT.add_pin(LibraryPin("o", PinDirection.OUTPUT, capacitance=0.0))
_PORT_OUTPUT = CellType("__PORT_OUT__", width=0.0, height=0.0)
_PORT_OUTPUT.add_pin(LibraryPin("i", PinDirection.INPUT, capacitance=0.01))


class Instance:
    """A placed occurrence of a library cell (or a top-level IO port)."""

    __slots__ = ("name", "cell", "x", "y", "fixed", "orientation", "index", "is_port")

    def __init__(
        self,
        name: str,
        cell: CellType,
        *,
        x: float = 0.0,
        y: float = 0.0,
        fixed: bool = False,
        orientation: str = "N",
        is_port: bool = False,
    ) -> None:
        self.name = name
        self.cell = cell
        self.x = float(x)
        self.y = float(y)
        self.fixed = bool(fixed)
        self.orientation = orientation
        self.index = -1
        self.is_port = is_port

    @property
    def width(self) -> float:
        return self.cell.width

    @property
    def height(self) -> float:
        return self.cell.height

    @property
    def area(self) -> float:
        return self.cell.area

    @property
    def is_sequential(self) -> bool:
        return self.cell.is_sequential

    @property
    def center(self) -> Tuple[float, float]:
        return (self.x + 0.5 * self.width, self.y + 0.5 * self.height)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "port" if self.is_port else self.cell.name
        return f"Instance({self.name}, {kind}, x={self.x:.1f}, y={self.y:.1f})"


class PinRef:
    """One physical pin of one instance (or port), possibly connected to a net."""

    __slots__ = ("index", "instance", "lib_pin", "net")

    def __init__(self, instance: Instance, lib_pin: LibraryPin) -> None:
        self.index = -1
        self.instance = instance
        self.lib_pin = lib_pin
        self.net: Optional["Net"] = None

    @property
    def name(self) -> str:
        return self.lib_pin.name

    @property
    def full_name(self) -> str:
        if self.instance.is_port:
            return self.instance.name
        return f"{self.instance.name}/{self.lib_pin.name}"

    @property
    def direction(self) -> PinDirection:
        return self.lib_pin.direction

    @property
    def is_driver(self) -> bool:
        """True when this pin drives its net (cell output or input port)."""
        return self.lib_pin.is_output

    @property
    def capacitance(self) -> float:
        return self.lib_pin.capacitance

    @property
    def offset(self) -> Tuple[float, float]:
        return (self.lib_pin.offset_x, self.lib_pin.offset_y)

    def position(self) -> Tuple[float, float]:
        """Current absolute location of the pin."""
        return (
            self.instance.x + self.lib_pin.offset_x,
            self.instance.y + self.lib_pin.offset_y,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PinRef({self.full_name})"


class Net:
    """A signal net connecting one driver pin to zero or more sink pins."""

    __slots__ = ("name", "index", "pins", "weight")

    def __init__(self, name: str) -> None:
        self.name = name
        self.index = -1
        self.pins: List[PinRef] = []
        self.weight = 1.0

    @property
    def driver(self) -> Optional[PinRef]:
        for pin in self.pins:
            if pin.is_driver:
                return pin
        return None

    @property
    def sinks(self) -> List[PinRef]:
        return [p for p in self.pins if not p.is_driver]

    @property
    def degree(self) -> int:
        return len(self.pins)

    def hpwl(self) -> float:
        """Half-perimeter wirelength of the net at current pin positions."""
        if len(self.pins) < 2:
            return 0.0
        xs, ys = zip(*(p.position() for p in self.pins))
        return (max(xs) - min(xs)) + (max(ys) - min(ys))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Net({self.name}, degree={self.degree})"


@dataclass(frozen=True)
class Row:
    """A placement row (used by row-based legalization)."""

    index: int
    y: float
    xl: float
    xh: float
    height: float
    site_width: float

    @property
    def width(self) -> float:
        return self.xh - self.xl

    @property
    def num_sites(self) -> int:
        return int(self.width // self.site_width)


class DesignArrays:
    """Vectorized, index-based view of a finalized design.

    All arrays are ordered consistently with ``Design.instances`` /
    ``Design.pins`` / ``Design.nets``.  ``net_pin_offsets``/``net_pin_index``
    form a CSR layout: the pins of net ``e`` are
    ``net_pin_index[net_pin_offsets[e]:net_pin_offsets[e+1]]``.
    """

    def __init__(self, design: "Design") -> None:
        insts = design.instances
        pins = design.pins
        nets = design.nets

        self.num_instances = len(insts)
        self.num_pins = len(pins)
        self.num_nets = len(nets)

        self.inst_width = np.array([i.width for i in insts], dtype=np.float64)
        self.inst_height = np.array([i.height for i in insts], dtype=np.float64)
        self.inst_fixed = np.array([i.fixed for i in insts], dtype=bool)
        self.inst_area = self.inst_width * self.inst_height

        self.pin_instance = np.array([p.instance.index for p in pins], dtype=np.int64)
        self.pin_offset_x = np.array([p.lib_pin.offset_x for p in pins], dtype=np.float64)
        self.pin_offset_y = np.array([p.lib_pin.offset_y for p in pins], dtype=np.float64)
        self.pin_net = np.array(
            [p.net.index if p.net is not None else -1 for p in pins], dtype=np.int64
        )
        self.pin_capacitance = np.array([p.capacitance for p in pins], dtype=np.float64)
        self.pin_is_driver = np.array([p.is_driver for p in pins], dtype=bool)

        offsets = np.zeros(self.num_nets + 1, dtype=np.int64)
        for net in nets:
            offsets[net.index + 1] = len(net.pins)
        np.cumsum(offsets, out=offsets)
        index = np.zeros(offsets[-1], dtype=np.int64)
        cursor = offsets[:-1].copy()
        for net in nets:
            for pin in net.pins:
                index[cursor[net.index]] = pin.index
                cursor[net.index] += 1
        self.net_pin_offsets = offsets
        self.net_pin_index = index
        self.net_weight = np.array([n.weight for n in nets], dtype=np.float64)

        self.movable_mask = ~self.inst_fixed
        self.movable_index = np.nonzero(self.movable_mask)[0]

    def net_pins(self, net_index: int) -> np.ndarray:
        start = self.net_pin_offsets[net_index]
        end = self.net_pin_offsets[net_index + 1]
        return self.net_pin_index[start:end]


class Design:
    """A gate-level design: floorplan, instances, nets, and connectivity."""

    def __init__(
        self,
        name: str,
        *,
        die: Rect | Tuple[float, float, float, float],
        library: Library,
        row_height: float = 12.0,
        site_width: float = 1.0,
    ) -> None:
        self.name = name
        self.die = die if isinstance(die, Rect) else Rect(*die)
        self.library = library
        self.row_height = float(row_height)
        self.site_width = float(site_width)

        self.instances: List[Instance] = []
        self.nets: List[Net] = []
        self.pins: List[PinRef] = []

        self._instance_by_name: Dict[str, Instance] = {}
        self._net_by_name: Dict[str, Net] = {}
        self._pins_by_instance: Dict[str, Dict[str, PinRef]] = {}
        self._finalized = False
        self._arrays: Optional[DesignArrays] = None

        # Timing constraints are attached by the SDC parser / benchmark
        # generator; kept here so a design file is self-contained.
        self.clock_period: Optional[float] = None
        self.clock_name: str = "clk"
        self.clock_port: Optional[str] = None
        self.input_delays: Dict[str, float] = {}
        self.output_delays: Dict[str, float] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _check_mutable(self) -> None:
        if self._finalized:
            raise RuntimeError("Design topology is frozen after finalize()")

    def add_instance(
        self,
        name: str,
        cell: CellType | str,
        *,
        x: float = 0.0,
        y: float = 0.0,
        fixed: bool = False,
        orientation: str = "N",
    ) -> Instance:
        """Create an instance of ``cell`` named ``name``."""
        self._check_mutable()
        if name in self._instance_by_name:
            raise ValueError(f"Duplicate instance name {name!r}")
        master = self.library.cell(cell) if isinstance(cell, str) else cell
        inst = Instance(name, master, x=x, y=y, fixed=fixed, orientation=orientation)
        self._register_instance(inst)
        return inst

    def add_port(
        self,
        name: str,
        direction: PinDirection | str,
        *,
        x: float = 0.0,
        y: float = 0.0,
    ) -> Instance:
        """Create a top-level IO port, modeled as a fixed zero-area instance."""
        self._check_mutable()
        if name in self._instance_by_name:
            raise ValueError(f"Duplicate instance/port name {name!r}")
        direction = (
            direction
            if isinstance(direction, PinDirection)
            else PinDirection.from_string(direction)
        )
        # From the netlist's point of view an *input* port drives a net, so
        # its single pin is an output pin (and vice versa).
        master = _PORT_INPUT if direction is PinDirection.INPUT else _PORT_OUTPUT
        inst = Instance(name, master, x=x, y=y, fixed=True, is_port=True)
        self._register_instance(inst)
        return inst

    def _register_instance(self, inst: Instance) -> None:
        inst.index = len(self.instances)
        self.instances.append(inst)
        self._instance_by_name[inst.name] = inst
        pin_map: Dict[str, PinRef] = {}
        for lib_pin in inst.cell.pins.values():
            pin = PinRef(inst, lib_pin)
            pin.index = len(self.pins)
            self.pins.append(pin)
            pin_map[lib_pin.name] = pin
        self._pins_by_instance[inst.name] = pin_map

    def add_net(self, name: str) -> Net:
        self._check_mutable()
        if name in self._net_by_name:
            raise ValueError(f"Duplicate net name {name!r}")
        net = Net(name)
        net.index = len(self.nets)
        self.nets.append(net)
        self._net_by_name[name] = net
        return net

    def connect(self, net: Net | str, instance: Instance | str, pin_name: str | None = None) -> PinRef:
        """Attach ``instance``'s pin ``pin_name`` to ``net``.

        For ports (single-pin instances) ``pin_name`` may be omitted.
        """
        self._check_mutable()
        net_obj = self._net_by_name[net] if isinstance(net, str) else net
        inst_obj = (
            self._instance_by_name[instance] if isinstance(instance, str) else instance
        )
        pin_map = self._pins_by_instance[inst_obj.name]
        if pin_name is None:
            if len(pin_map) != 1:
                raise ValueError(
                    f"pin_name required for multi-pin instance {inst_obj.name}"
                )
            pin = next(iter(pin_map.values()))
        else:
            try:
                pin = pin_map[pin_name]
            except KeyError as exc:
                raise KeyError(
                    f"Instance {inst_obj.name} ({inst_obj.cell.name}) has no pin {pin_name!r}"
                ) from exc
        if pin.net is not None:
            raise ValueError(f"Pin {pin.full_name} is already connected to {pin.net.name}")
        pin.net = net_obj
        net_obj.pins.append(pin)
        return pin

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def instance(self, name: str) -> Instance:
        try:
            return self._instance_by_name[name]
        except KeyError as exc:
            raise KeyError(f"Design {self.name} has no instance {name!r}") from exc

    def net(self, name: str) -> Net:
        try:
            return self._net_by_name[name]
        except KeyError as exc:
            raise KeyError(f"Design {self.name} has no net {name!r}") from exc

    def pin(self, instance_name: str, pin_name: str | None = None) -> PinRef:
        """Look up a pin by ``inst`` + ``pin`` names or by ``"inst/pin"``."""
        if pin_name is None:
            if "/" in instance_name:
                instance_name, pin_name = instance_name.rsplit("/", 1)
            else:
                pin_map = self._pins_by_instance[instance_name]
                if len(pin_map) != 1:
                    raise ValueError(f"Ambiguous pin reference {instance_name!r}")
                return next(iter(pin_map.values()))
        return self._pins_by_instance[instance_name][pin_name]

    def has_instance(self, name: str) -> bool:
        return name in self._instance_by_name

    def has_net(self, name: str) -> bool:
        return name in self._net_by_name

    @property
    def ports(self) -> List[Instance]:
        return [i for i in self.instances if i.is_port]

    @property
    def cells(self) -> List[Instance]:
        """All non-port instances."""
        return [i for i in self.instances if not i.is_port]

    @property
    def movable_instances(self) -> List[Instance]:
        return [i for i in self.instances if not i.fixed]

    @property
    def num_instances(self) -> int:
        return len(self.instances)

    @property
    def num_movable(self) -> int:
        return sum(1 for i in self.instances if not i.fixed)

    @property
    def num_nets(self) -> int:
        return len(self.nets)

    @property
    def num_pins(self) -> int:
        return len(self.pins)

    # ------------------------------------------------------------------
    # Finalization and vectorized views
    # ------------------------------------------------------------------
    def finalize(self) -> "Design":
        """Validate connectivity and freeze the netlist topology."""
        if self._finalized:
            return self
        for net in self.nets:
            drivers = [p for p in net.pins if p.is_driver]
            if len(drivers) > 1:
                names = ", ".join(p.full_name for p in drivers)
                raise ValueError(f"Net {net.name} has multiple drivers: {names}")
        self._finalized = True
        self._arrays = DesignArrays(self)
        return self

    @property
    def finalized(self) -> bool:
        return self._finalized

    @property
    def arrays(self) -> DesignArrays:
        if not self._finalized or self._arrays is None:
            raise RuntimeError("Design must be finalized before accessing arrays")
        return self._arrays

    def positions(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return instance lower-left coordinates as two float arrays."""
        x = np.array([i.x for i in self.instances], dtype=np.float64)
        y = np.array([i.y for i in self.instances], dtype=np.float64)
        return x, y

    def set_positions(self, x: Sequence[float], y: Sequence[float]) -> None:
        """Write instance positions back from flat arrays (fixed cells kept)."""
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if x.shape != (len(self.instances),) or y.shape != (len(self.instances),):
            raise ValueError("Position arrays must have one entry per instance")
        for inst, xi, yi in zip(self.instances, x, y):
            if not inst.fixed:
                inst.x = float(xi)
                inst.y = float(yi)

    def pin_positions(
        self,
        x: Optional[np.ndarray] = None,
        y: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Absolute pin coordinates for instance positions ``(x, y)``.

        When ``x``/``y`` are omitted the instances' stored positions are used.
        """
        arrays = self.arrays
        if x is None or y is None:
            x, y = self.positions()
        px = x[arrays.pin_instance] + arrays.pin_offset_x
        py = y[arrays.pin_instance] + arrays.pin_offset_y
        return px, py

    # ------------------------------------------------------------------
    # Floorplan helpers
    # ------------------------------------------------------------------
    def rows(self) -> List[Row]:
        """Placement rows filling the die from bottom to top."""
        rows: List[Row] = []
        y = self.die.yl
        index = 0
        while y + self.row_height <= self.die.yh + 1e-9:
            rows.append(
                Row(
                    index=index,
                    y=y,
                    xl=self.die.xl,
                    xh=self.die.xh,
                    height=self.row_height,
                    site_width=self.site_width,
                )
            )
            y += self.row_height
            index += 1
        return rows

    def utilization(self) -> float:
        """Total movable + fixed cell area divided by die area."""
        total_area = sum(i.area for i in self.instances if not i.is_port)
        return total_area / self.die.area if self.die.area > 0 else 0.0

    def total_hpwl(self) -> float:
        """Half-perimeter wirelength summed over all nets at current positions."""
        return sum(net.hpwl() for net in self.nets)

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, float]:
        """Compact description used in logs and experiment reports."""
        return {
            "name": self.name,
            "num_instances": self.num_instances,
            "num_cells": len(self.cells),
            "num_ports": len(self.ports),
            "num_nets": self.num_nets,
            "num_pins": self.num_pins,
            "num_sequential": sum(1 for i in self.cells if i.is_sequential),
            "die_width": self.die.width,
            "die_height": self.die.height,
            "utilization": round(self.utilization(), 4),
            "clock_period": self.clock_period,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Design({self.name}, cells={len(self.cells)}, nets={self.num_nets}, "
            f"pins={self.num_pins})"
        )
