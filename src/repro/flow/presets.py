"""Named flow presets: the paper's flow and its baselines as stage lists.

A preset couples a default config object with a function that expands the
config into stages.  Four presets mirror the Table II methods, plus one for
the routability workload:

* ``efficient_tdp``       — the paper's flow (path extraction + pin pairs);
* ``dreamplace``          — wirelength/density only;
* ``dreamplace4``         — momentum net weighting (DREAMPlace 4.0 style);
* ``differentiable_tdp``  — smoothed path-free pin attraction;
* ``routability``         — congestion-driven placement: RUDY congestion
  maps feeding a cell-inflation repair loop;
* ``routability-gp``      — congestion + timing net weighting composed
  *inside* the global-place loop (feedback scheduler + weight composer),
  with the inflation loop as post-place cleanup.

``build_flow("efficient_tdp", max_iterations=300, seed=7)`` returns a ready
:class:`FlowRunner`; unknown override keys raise immediately, which is what
makes the CLI's ``--set key=value`` safe.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Any, Callable, Dict, List

from repro.flow.runner import FlowRunner
from repro.flow.stage import FlowStage


@dataclass(frozen=True)
class FlowPreset:
    """A named, configurable stage composition."""

    name: str
    description: str
    config_factory: Callable[[], Any]
    stage_factory: Callable[[Any], List[FlowStage]]

    def default_config(self) -> Any:
        return self.config_factory()


_PRESETS: Dict[str, FlowPreset] = {}


def register_preset(preset: FlowPreset) -> FlowPreset:
    if preset.name in _PRESETS:
        raise ValueError(f"Preset {preset.name!r} is already registered")
    _PRESETS[preset.name] = preset
    return preset


def get_preset(name: str) -> FlowPreset:
    try:
        return _PRESETS[name]
    except KeyError as exc:
        raise KeyError(
            f"Unknown flow preset {name!r}; available: {', '.join(sorted(_PRESETS))}"
        ) from exc


def preset_names() -> List[str]:
    return sorted(_PRESETS)


def make_config(preset_name: str, config: Any = None, **overrides: Any) -> Any:
    """Build (or copy) a preset config and apply field overrides."""
    preset = get_preset(preset_name)
    cfg = preset.default_config() if config is None else copy.deepcopy(config)
    for key, value in overrides.items():
        if not hasattr(cfg, key):
            raise AttributeError(
                f"{type(cfg).__name__} has no field {key!r} (preset {preset_name!r})"
            )
        setattr(cfg, key, value)
    return cfg


def build_stages(preset_name: str, config: Any = None, **overrides: Any) -> List[FlowStage]:
    """Expand a preset into its stage list."""
    preset = get_preset(preset_name)
    cfg = make_config(preset_name, config, **overrides)
    return preset.stage_factory(cfg)


def build_flow(preset_name: str, config: Any = None, **overrides: Any) -> FlowRunner:
    """Build a ready-to-run :class:`FlowRunner` from a preset."""
    preset = get_preset(preset_name)
    cfg = make_config(preset_name, config, **overrides)
    return FlowRunner(
        preset.stage_factory(cfg),
        name=preset_name,
        kernel_workers=int(getattr(cfg, "kernel_workers", 0) or 0),
    )


# ----------------------------------------------------------------------
# Shipped presets.  Config classes live next to their legacy flow classes
# and are imported lazily to keep the package import graph acyclic.
# ----------------------------------------------------------------------
def _efficient_tdp_config() -> Any:
    from repro.core.placer import EfficientTDPConfig

    return EfficientTDPConfig()


def _efficient_tdp_stages(config: Any) -> List[FlowStage]:
    from repro.flow.stages import (
        EvaluateStage,
        GlobalPlaceStage,
        LegalizeStage,
        PinPairAttractionStrategy,
        TimingWeightStage,
    )

    stages: List[FlowStage] = [
        TimingWeightStage(
            PinPairAttractionStrategy(
                extraction=config.extraction,
                w0=config.w0,
                w1=config.w1,
                loss=config.loss,
                beta=config.beta,
                beta_mode=config.beta_mode,
                beta_auto_ratio=config.beta_auto_ratio,
                verbose=config.verbose,
                sta_incremental=config.incremental_sta,
                sta_move_tolerance=config.sta_move_tolerance,
            ),
            start_iteration=config.timing_start_iteration,
            interval=config.timing_update_interval,
            corners=config.corners,
        ),
        GlobalPlaceStage(config.placement_config()),
    ]
    if config.legalize:
        stages.append(LegalizeStage())
    stages.append(EvaluateStage(corners=config.corners))
    return stages


def _dreamplace_config() -> Any:
    from repro.baselines.dreamplace import DreamPlaceConfig

    return DreamPlaceConfig()


def _dreamplace_stages(config: Any) -> List[FlowStage]:
    from repro.flow.stages import (
        EvaluateStage,
        GlobalPlaceStage,
        LegalizeStage,
        RecordTimingStrategy,
        TimingWeightStage,
    )

    stages: List[FlowStage] = []
    if getattr(config, "record_timing_every", None):
        stages.append(
            TimingWeightStage(
                RecordTimingStrategy(),
                start_iteration=0,
                interval=config.record_timing_every,
                corners=getattr(config, "corners", None),
            )
        )
    stages.extend(
        [
            GlobalPlaceStage(config),
            LegalizeStage(),
            EvaluateStage(corners=getattr(config, "corners", None)),
        ]
    )
    return stages


def _dreamplace4_config() -> Any:
    from repro.baselines.dreamplace4 import DreamPlace4Config

    return DreamPlace4Config()


def _dreamplace4_stages(config: Any) -> List[FlowStage]:
    from repro.flow.stages import (
        EvaluateStage,
        GlobalPlaceStage,
        LegalizeStage,
        MomentumNetWeightStrategy,
        TimingWeightStage,
    )

    return [
        TimingWeightStage(
            MomentumNetWeightStrategy(
                momentum_decay=config.momentum_decay,
                max_boost=config.max_boost,
                max_weight=config.max_weight,
            ),
            start_iteration=config.timing_start_iteration,
            interval=config.timing_update_interval,
            corners=config.corners,
        ),
        GlobalPlaceStage(config.placement_config()),
        LegalizeStage(),
        EvaluateStage(corners=config.corners),
    ]


def _routability_config() -> Any:
    from repro.route.flow import RoutabilityConfig

    return RoutabilityConfig()


def _routability_stages(config: Any) -> List[FlowStage]:
    from repro.flow.stages import (
        CongestionStage,
        EvaluateStage,
        GlobalPlaceStage,
        LegalizeStage,
        RoutabilityRepairStage,
    )

    placement_config = config.placement_config()
    stages: List[FlowStage] = [GlobalPlaceStage(placement_config)]
    if config.inflate:
        stages.append(
            RoutabilityRepairStage(
                congestion=config.congestion_config(),
                inflation=config.inflation_config(),
                refine_iterations=config.refine_iterations,
                placement_config=placement_config,
            )
        )
    if config.legalize:
        stages.append(LegalizeStage())
    stages.append(CongestionStage(config=config.congestion_config()))
    stages.append(EvaluateStage(corners=config.corners, congestion=config.congestion_config()))
    return stages


def _routability_gp_config() -> Any:
    from repro.route.flow import RoutabilityGPConfig

    return RoutabilityGPConfig()


def _routability_gp_stages(config: Any) -> List[FlowStage]:
    from repro.flow.stages import (
        CongestionStage,
        EvaluateStage,
        FeedbackWeightStage,
        GlobalPlaceStage,
        LegalizeStage,
        RoutabilityRepairStage,
    )

    placement_config = config.placement_config()
    stages: List[FlowStage] = [
        FeedbackWeightStage(
            config.feedback_slots(), composer=config.composer_config()
        ),
        GlobalPlaceStage(placement_config),
    ]
    if config.inflate:
        stages.append(
            RoutabilityRepairStage(
                congestion=config.congestion_config(),
                inflation=config.inflation_config(),
                refine_iterations=config.refine_iterations,
                placement_config=placement_config,
            )
        )
    if config.legalize:
        stages.append(LegalizeStage())
    stages.append(CongestionStage(config=config.congestion_config()))
    stages.append(EvaluateStage(corners=config.corners, congestion=config.congestion_config()))
    return stages


def _differentiable_tdp_config() -> Any:
    from repro.baselines.differentiable_tdp import DifferentiableTDPConfig

    return DifferentiableTDPConfig()


def _differentiable_tdp_stages(config: Any) -> List[FlowStage]:
    from repro.flow.stages import (
        EvaluateStage,
        GlobalPlaceStage,
        LegalizeStage,
        SmoothPinPairStrategy,
        TimingWeightStage,
    )

    return [
        TimingWeightStage(
            SmoothPinPairStrategy(
                temperature=config.temperature,
                criticality_threshold=config.criticality_threshold,
                attraction_ratio=config.attraction_ratio,
            ),
            start_iteration=config.timing_start_iteration,
            interval=config.timing_update_interval,
            corners=config.corners,
        ),
        GlobalPlaceStage(config.placement_config()),
        LegalizeStage(),
        EvaluateStage(corners=config.corners),
    ]


register_preset(
    FlowPreset(
        name="efficient_tdp",
        description="Efficient-TDP (ours): critical path extraction + pin-pair attraction",
        config_factory=_efficient_tdp_config,
        stage_factory=_efficient_tdp_stages,
    )
)
register_preset(
    FlowPreset(
        name="dreamplace",
        description="DREAMPlace-style wirelength/density placement (no timing feedback)",
        config_factory=_dreamplace_config,
        stage_factory=_dreamplace_stages,
    )
)
register_preset(
    FlowPreset(
        name="dreamplace4",
        description="DREAMPlace 4.0-style momentum net weighting",
        config_factory=_dreamplace4_config,
        stage_factory=_dreamplace4_stages,
    )
)
register_preset(
    FlowPreset(
        name="differentiable_tdp",
        description="Differentiable-TDP-style smoothed pin attraction",
        config_factory=_differentiable_tdp_config,
        stage_factory=_differentiable_tdp_stages,
    )
)
register_preset(
    FlowPreset(
        name="routability",
        description=(
            "Routability-driven placement: RUDY congestion maps feeding a "
            "congestion-driven cell-inflation loop"
        ),
        config_factory=_routability_config,
        stage_factory=_routability_stages,
    )
)
register_preset(
    FlowPreset(
        name="routability-gp",
        description=(
            "Routability-driven global placement: congestion + timing net "
            "weighting composed inside the placement loop, inflation as "
            "post-place cleanup"
        ),
        config_factory=_routability_gp_config,
        stage_factory=_routability_gp_stages,
    )
)
