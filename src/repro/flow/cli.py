"""The ``repro`` command-line interface.

Five subcommands over the flow pipeline:

* ``repro run DESIGN``      — run one preset on one benchmark
  (``--profile`` writes a per-stage runtime breakdown JSON next to the
  result; ``--routability`` adds the congestion-driven inflation loop and
  congestion metrics to any preset);
* ``repro batch D1 D2 ...`` — run many designs concurrently (``--all`` for
  the whole sb_mini suite, ``--seeds N`` for seed replicates,
  ``--ship compiled|shared`` to build each design once and ship array
  snapshots to the workers);
* ``repro compare DESIGN``  — run every preset on one design, side by side;
* ``repro sweep DESIGN --param loss --values quadratic,linear`` — sweep one
  config field of a preset;
* ``repro congestion DESIGN`` — run a preset and report the RUDY / pin
  density congestion of the resulting placement (peak/average overflow,
  ACE scores, top hotspot bins);
* ``repro trace DESIGN -o trace.json`` — run a preset with tracing enabled
  and export a Chrome trace-event / Perfetto JSON timeline (``run`` and
  ``batch`` accept the same via ``--trace [PATH]``).

Config fields are overridden with repeated ``--set key=value`` flags (values
are parsed as int/float/bool when they look like one).  Every subcommand
accepts ``--corners fast,typ,slow`` to run multi-corner (MCMM) timing:
feedback and evaluation then use the merged worst-over-corner slack and the
reports carry a per-corner breakdown.  Every subcommand can emit
machine-readable JSON with ``--json PATH``.

Examples::

    repro run sb_mini_18 --preset efficient_tdp --set max_iterations=300
    repro run sb_cong_1 --preset routability
    repro batch --all --preset dreamplace4 --jobs 4 --json batch.json
    repro compare sb_mini_1 --scale 0.5
    repro sweep sb_mini_4 --param w0 --values 5,10,20
    repro congestion sb_cong_1 --preset dreamplace --routability
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, Optional, Sequence

from repro.benchgen.suite import available_design_names, benchmark_names
from repro.flow.batch import SHIP_MODES, BatchJob, run_batch
from repro.flow.presets import preset_names
from repro.obs import start_tracing, stop_tracing, write_chrome_trace


def _parse_value(text: str) -> Any:
    lowered = text.lower()
    if lowered in {"true", "false"}:
        return lowered == "true"
    for caster in (int, float):
        try:
            return caster(text)
        except ValueError:
            continue
    return text


def _parse_overrides(pairs: Optional[Sequence[str]]) -> Dict[str, Any]:
    overrides: Dict[str, Any] = {}
    for pair in pairs or []:
        if "=" not in pair:
            raise SystemExit(f"--set expects key=value, got {pair!r}")
        key, _, value = pair.partition("=")
        overrides[key.strip()] = _parse_value(value.strip())
    if "seed" in overrides:
        raise SystemExit("use --seed (and --seeds for replicates) instead of --set seed=...")
    return overrides


def _apply_corners(args: argparse.Namespace, overrides: Dict[str, Any]) -> Dict[str, Any]:
    """Fold a validated ``--corners`` spec into the config overrides."""
    spec = getattr(args, "corners", None)
    if spec is None:
        return overrides
    from repro.timing.mcmm import resolve_corners

    try:
        resolve_corners(spec)
    except (KeyError, ValueError) as exc:
        raise SystemExit(f"--corners: {exc}") from exc
    if "corners" in overrides:
        raise SystemExit("use --corners instead of --set corners=...")
    overrides["corners"] = spec
    return overrides


def _check_designs(names: Sequence[str]) -> None:
    known = set(available_design_names())
    unknown = [name for name in names if name not in known]
    if unknown:
        raise SystemExit(
            f"unknown benchmark(s) {', '.join(unknown)}; "
            f"available: {', '.join(available_design_names())}"
        )


def _emit_json(payload: Any, path: Optional[str]) -> None:
    """Write a JSON report to ``path`` (``-`` streams it to stdout)."""
    if not path:
        return
    if path == "-":
        print(json.dumps(payload, indent=2))
        return
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
    print(f"wrote {path}")


def _add_trace_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        nargs="?",
        const="auto",
        default=None,
        metavar="PATH",
        help="record a hierarchical span trace of the run and export it as "
        "Chrome trace-event / Perfetto JSON (default path: next to the "
        "--json report, or DESIGN_PRESET.trace.json); placement results "
        "are bitwise identical with tracing on or off",
    )


def _trace_destination(args: argparse.Namespace, default_stem: str) -> Optional[str]:
    """Resolve ``--trace [PATH]`` to a file path (None = tracing off)."""
    spec = getattr(args, "trace", None)
    if spec is None:
        return None
    if spec != "auto":
        return spec
    if args.json_path and args.json_path != "-":
        base = args.json_path
        if base.endswith(".json"):
            base = base[: -len(".json")]
        return base + ".trace.json"
    return f"{default_stem}.trace.json"


def _add_common(parser: argparse.ArgumentParser, *, preset: bool = True) -> None:
    if preset:
        parser.add_argument(
            "--preset",
            default="efficient_tdp",
            choices=preset_names(),
            help="flow preset (default: efficient_tdp)",
        )
    parser.add_argument("--seed", type=int, default=0, help="base RNG seed")
    parser.add_argument(
        "--scale", type=float, default=1.0, help="benchmark size multiplier"
    )
    parser.add_argument(
        "--corners",
        default=None,
        metavar="SPEC",
        help="MCMM analysis corners as comma-separated presets "
        "(e.g. fast,typ,slow); timing feedback and evaluation then use "
        "merged worst-over-corner slack",
    )
    parser.add_argument(
        "--kernel-workers",
        type=int,
        default=None,
        metavar="N",
        help="shared-memory kernel-pool workers for the congestion / STA / "
        "density hot paths (0 = serial, the default; results are "
        "bit-identical either way)",
    )
    parser.add_argument(
        "--set",
        dest="overrides",
        action="append",
        metavar="KEY=VALUE",
        help="override a preset config field (repeatable)",
    )
    parser.add_argument(
        "--json",
        dest="json_path",
        metavar="PATH",
        help="write a JSON report here ('-' prints it to stdout)",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Efficient-TDP reproduction: composable placement flows",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run one flow preset on one benchmark")
    run_p.add_argument("design", help="benchmark name (see `repro batch --all`)")
    run_p.add_argument(
        "--profile",
        action="store_true",
        help="write a per-stage runtime breakdown JSON next to the result",
    )
    run_p.add_argument(
        "--routability",
        action="store_true",
        help="add the congestion-driven inflation loop and congestion "
        "metrics to the chosen preset",
    )
    run_p.add_argument(
        "--congestion-weighting",
        action="store_true",
        help="add in-loop congestion net weighting to the chosen preset "
        "(RUDY overflow under each net's bbox boosts its wirelength "
        "weight during global placement)",
    )
    _add_trace_flag(run_p)
    _add_common(run_p)

    batch_p = sub.add_parser("batch", help="run many designs concurrently")
    batch_p.add_argument("designs", nargs="*", help="benchmark names")
    batch_p.add_argument("--all", action="store_true", help="use the full sb_mini suite")
    batch_p.add_argument("--jobs", type=int, default=4, help="worker count (default 4)")
    batch_p.add_argument(
        "--executor",
        default="thread",
        choices=["thread", "process"],
        help="concurrency backend (default: thread)",
    )
    batch_p.add_argument(
        "--seeds",
        type=int,
        default=1,
        help="seed replicates per design (seeds seed..seed+N-1)",
    )
    batch_p.add_argument(
        "--ship",
        default="generate",
        choices=list(SHIP_MODES),
        help="how designs reach workers: regenerate per worker (default), "
        "ship a compiled array snapshot, or share snapshot arrays via "
        "shared memory",
    )
    _add_trace_flag(batch_p)
    _add_common(batch_p)

    trace_p = sub.add_parser(
        "trace",
        help="run a preset with tracing enabled and export a Perfetto/Chrome "
        "trace of the whole flow (stages, GP iterations, kernel dispatches)",
    )
    trace_p.add_argument("design", help="benchmark name")
    trace_p.add_argument(
        "-o",
        "--output",
        default=None,
        metavar="PATH",
        help="trace JSON destination (default: DESIGN_PRESET.trace.json)",
    )
    trace_p.add_argument(
        "--profile",
        action="store_true",
        help="also write the per-stage runtime breakdown JSON",
    )
    _add_common(trace_p)

    cmp_p = sub.add_parser("compare", help="run every preset on one benchmark")
    cmp_p.add_argument("design", help="benchmark name")
    cmp_p.add_argument("--jobs", type=int, default=4, help="worker count (default 4)")
    _add_common(cmp_p, preset=False)

    sweep_p = sub.add_parser("sweep", help="sweep one config field of a preset")
    sweep_p.add_argument("design", help="benchmark name")
    sweep_p.add_argument("--param", required=True, help="config field to sweep")
    sweep_p.add_argument(
        "--values", required=True, help="comma-separated values for --param"
    )
    sweep_p.add_argument("--jobs", type=int, default=4, help="worker count (default 4)")
    _add_common(sweep_p)

    cong_p = sub.add_parser(
        "congestion",
        help="run a preset and report routing congestion of the placement",
    )
    cong_p.add_argument("design", help="benchmark name")
    cong_p.add_argument(
        "--routability",
        action="store_true",
        help="also run the congestion-driven inflation loop before reporting",
    )
    cong_p.add_argument(
        "--congestion-weighting",
        action="store_true",
        help="also run in-loop congestion net weighting during placement",
    )
    cong_p.add_argument(
        "--top", type=int, default=10, help="number of hotspot bins to list"
    )
    _add_common(cong_p)

    lint_p = sub.add_parser(
        "lint-contracts",
        help="run the contract linter (kernel purity, alloc discipline, "
        "shm lifecycle, ref parity, layering)",
    )
    lint_p.add_argument(
        "paths", nargs="*", default=["src"], help="files/directories to lint"
    )
    lint_p.add_argument(
        "--tests-dir",
        default="tests",
        help="tests directory for the ref-parity coverage check ('' to skip)",
    )
    lint_p.add_argument(
        "--rule", action="append", dest="rules", help="run only this rule (repeatable)"
    )
    lint_p.add_argument(
        "--json", default=None, help="write findings JSON to PATH ('-' for stdout)"
    )
    lint_p.add_argument(
        "--list-rules", action="store_true", help="list rule ids and exit"
    )
    lint_p.add_argument(
        "--quiet", action="store_true", help="suppress per-finding text output"
    )
    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.benchgen.suite import load_benchmark
    from repro.flow.presets import build_flow
    from repro.flow.runner import FlowRunner

    _check_designs([args.design])
    overrides = _apply_corners(args, _parse_overrides(args.overrides))
    overrides.setdefault("seed", args.seed)
    if getattr(args, "kernel_workers", None) is not None:
        overrides.setdefault("kernel_workers", args.kernel_workers)
    design = load_benchmark(args.design, scale=args.scale)
    try:
        runner = build_flow(args.preset, **overrides)
    except AttributeError as exc:
        raise SystemExit(f"repro run: {exc}") from exc
    from repro.flow.stages import FeedbackWeightStage, RoutabilityRepairStage

    # Guard on what the flow already contains, not on preset names, so the
    # flags are no-ops (instead of duplicating stages) on presets that ship
    # the behavior — e.g. --routability on routability-gp.
    if getattr(args, "routability", False) and not any(
        isinstance(stage, RoutabilityRepairStage) for stage in runner.stages
    ):
        from repro.route.flow import add_routability

        try:
            runner = FlowRunner(
                add_routability(runner.stages),
                name=runner.name,
                kernel_workers=runner.kernel_workers,
            )
        except ValueError as exc:
            raise SystemExit(f"repro run: {exc}") from exc
    if getattr(args, "congestion_weighting", False) and not any(
        isinstance(stage, FeedbackWeightStage) for stage in runner.stages
    ):
        from repro.route.flow import add_congestion_weighting

        try:
            runner = FlowRunner(
                add_congestion_weighting(runner.stages),
                name=runner.name,
                kernel_workers=runner.kernel_workers,
            )
        except ValueError as exc:
            raise SystemExit(f"repro run: {exc}") from exc
    trace_path = _trace_destination(args, f"{args.design}_{args.preset}")
    tracer = start_tracing() if trace_path else None
    try:
        result = runner.run(design, seed=int(overrides["seed"]))
    finally:
        if tracer is not None:
            stop_tracing()
    summary = result.summary()
    width = max(len(key) for key in summary)
    for key, value in summary.items():
        print(f"{key:<{width}}  {value}")
    if tracer is not None:
        write_chrome_trace(trace_path, tracer)
        print(f"wrote {trace_path}")
    _emit_json(summary, args.json_path)
    if args.profile:
        profile_path = _profile_path(args)
        _emit_json(_profile_payload(args, result, summary), profile_path)
    return 0


def _profile_path(args: argparse.Namespace) -> str:
    """Place the profile next to the result JSON (or name it after the run)."""
    if args.json_path and args.json_path != "-":
        base = args.json_path
        if base.endswith(".json"):
            base = base[: -len(".json")]
        return base + ".profile.json"
    # No file path to sit next to (no --json, or --json - streamed the
    # report to stdout): name the profile after the run instead.
    return f"{args.design}_{args.preset}.profile.json"


def _profile_payload(
    args: argparse.Namespace, result, summary: Dict[str, Any]
) -> Dict[str, Any]:
    """Per-stage wall-clock plus the profiler's component breakdown."""
    payload = {
        "design": args.design,
        "flow": summary.get("flow"),
        "seed": summary.get("seed"),
        "runtime_sec": summary.get("runtime_sec"),
        "stage_seconds": {
            name: round(seconds, 6) for name, seconds in result.stage_seconds.items()
        },
        "components": {
            name: round(seconds, 6)
            for name, seconds in result.profiler.breakdown(
                total_elapsed=result.runtime_seconds
            ).items()
        },
    }
    feedback = result.context.metadata.get("feedback")
    if feedback and feedback.get("calls"):
        # Per-feedback breakdown: wall seconds and firings of every
        # scheduled placement feedback (timing strategies, congestion
        # weighting, raw callbacks), accumulated across the main placement
        # and any refine placements.
        payload["feedback"] = {
            "seconds": {
                name: round(seconds, 6)
                for name, seconds in feedback["seconds"].items()
            },
            "calls": dict(feedback["calls"]),
            "updates": len(feedback.get("trajectory", [])),
        }
    gradient = result.context.metadata.get("gradient_terms")
    if gradient:
        # Per-term gradient breakdown (wirelength/density/extra/scatter
        # seconds inside the placer's gradient evaluations) so regressions
        # in any one term stay attributable.
        payload["gradient_terms"] = {
            name: round(seconds, 6) for name, seconds in gradient.items()
        }
    trace_metrics = result.context.metadata.get("trace_metrics")
    if trace_metrics:
        # Aggregate span metrics (per-span seconds/counts, counters,
        # gauges) from the unified tracing layer when the run was traced.
        payload["trace"] = trace_metrics
    return payload


def _cmd_batch(args: argparse.Namespace) -> int:
    designs = benchmark_names() if args.all else list(args.designs)
    if not designs:
        raise SystemExit("repro batch: name at least one design or pass --all")
    _check_designs(designs)
    overrides = _apply_corners(args, _parse_overrides(args.overrides))
    jobs = [
        BatchJob(
            design=design,
            preset=args.preset,
            seed=args.seed + replicate,
            scale=args.scale,
            overrides=dict(overrides),
        )
        for design in designs
        for replicate in range(max(1, args.seeds))
    ]
    trace_path = _trace_destination(args, f"batch_{args.preset}")
    tracer = start_tracing() if trace_path else None
    try:
        report = run_batch(
            jobs, max_workers=args.jobs, executor=args.executor, ship=args.ship
        )
    finally:
        if tracer is not None:
            stop_tracing()
    print(report.format_table())
    if tracer is not None:
        write_chrome_trace(trace_path, tracer)
        print(f"wrote {trace_path}")
    _emit_json(report.as_dict(), args.json_path)
    return 0 if report.num_failed == 0 else 1


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.flow.presets import get_preset

    _check_designs([args.design])
    overrides = _apply_corners(args, _parse_overrides(args.overrides))
    jobs = []
    applied_keys = set()
    for preset in preset_names():
        # Preset configs are heterogeneous; apply each override only where
        # the field exists (e.g. the timing schedule is meaningless for the
        # wirelength-only baseline).
        default_config = get_preset(preset).default_config()
        applicable = {
            key: value for key, value in overrides.items() if hasattr(default_config, key)
        }
        applied_keys.update(applicable)
        jobs.append(
            BatchJob(
                design=args.design,
                preset=preset,
                seed=args.seed,
                scale=args.scale,
                overrides=applicable,
                label=preset,
            )
        )
    unused = set(overrides) - applied_keys
    if unused:
        raise SystemExit(
            f"repro compare: --set key(s) {', '.join(sorted(unused))} match no "
            "preset config field (typo?)"
        )
    report = run_batch(jobs, max_workers=args.jobs)
    print(report.format_table())
    _emit_json(report.as_dict(), args.json_path)
    return 0 if report.num_failed == 0 else 1


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.flow.presets import get_preset

    _check_designs([args.design])
    overrides = _apply_corners(args, _parse_overrides(args.overrides))
    default_config = get_preset(args.preset).default_config()
    if args.param != "seed" and not hasattr(default_config, args.param):
        raise SystemExit(
            f"repro sweep: {type(default_config).__name__} has no field "
            f"{args.param!r} (preset {args.preset!r})"
        )
    values = [_parse_value(value.strip()) for value in args.values.split(",") if value.strip()]
    if not values:
        raise SystemExit("repro sweep: --values produced an empty list")
    jobs = []
    for value in values:
        point = dict(overrides)
        point[args.param] = value
        if args.param == "seed":
            # Seeds are swept through BatchJob.seed so labels and the report
            # stay in sync (overrides carrying a different seed are rejected
            # by the batch runner).
            if not isinstance(value, int):
                raise SystemExit(
                    f"repro sweep: seed values must be integers, got {value!r}"
                )
            jobs.append(
                BatchJob(
                    design=args.design,
                    preset=args.preset,
                    seed=value,
                    scale=args.scale,
                    overrides=dict(overrides),
                    label=f"seed={value}",
                )
            )
            continue
        jobs.append(
            BatchJob(
                design=args.design,
                preset=args.preset,
                seed=args.seed,
                scale=args.scale,
                overrides=point,
                label=f"{args.param}={value}",
            )
        )
    report = run_batch(jobs, max_workers=args.jobs)
    print(report.format_table())
    _emit_json(report.as_dict(), args.json_path)
    return 0 if report.num_failed == 0 else 1


def _cmd_congestion(args: argparse.Namespace) -> int:
    from repro.benchgen.suite import load_benchmark
    from repro.flow.presets import build_flow
    from repro.flow.runner import FlowRunner
    from repro.flow.stages import CongestionStage, EvaluateStage
    from repro.route.flow import add_routability

    _check_designs([args.design])
    overrides = _apply_corners(args, _parse_overrides(args.overrides))
    overrides.setdefault("seed", args.seed)
    if getattr(args, "kernel_workers", None) is not None:
        overrides.setdefault("kernel_workers", args.kernel_workers)
    design = load_benchmark(args.design, scale=args.scale)
    try:
        runner = build_flow(args.preset, **overrides)
    except AttributeError as exc:
        raise SystemExit(f"repro congestion: {exc}") from exc
    from repro.flow.stages import FeedbackWeightStage, RoutabilityRepairStage

    stages = list(runner.stages)
    if args.routability and not any(
        isinstance(stage, RoutabilityRepairStage) for stage in stages
    ):
        try:
            stages = add_routability(stages)
        except ValueError as exc:
            raise SystemExit(f"repro congestion: {exc}") from exc
    if args.congestion_weighting and not any(
        isinstance(stage, FeedbackWeightStage) for stage in stages
    ):
        from repro.route.flow import add_congestion_weighting

        try:
            stages = add_congestion_weighting(stages)
        except ValueError as exc:
            raise SystemExit(f"repro congestion: {exc}") from exc
    if not any(isinstance(stage, CongestionStage) for stage in stages):
        stages.append(CongestionStage())
        for stage in stages:
            if isinstance(stage, EvaluateStage):
                stage.congestion = True
    runner = FlowRunner(stages, name=runner.name)
    result = runner.run(design, seed=int(overrides["seed"]))

    congestion = dict(result.context.metadata.get("congestion", {}))
    congestion.pop("hotspots", None)
    # Recompute hotspots from the full map so --top is not capped by the
    # stage's default top-k.
    hotspots = (
        result.context.congestion.hotspots(max(args.top, 0))
        if result.context.congestion is not None
        else []
    )
    summary = result.summary()
    payload = {"run": summary, "congestion": congestion, "hotspots": hotspots}
    width = max(len(key) for key in congestion) if congestion else 1
    print(f"design: {args.design}  preset: {args.preset}")
    for key, value in congestion.items():
        print(f"{key:<{width}}  {value}")
    if hotspots:
        print(f"\ntop {len(hotspots)} hotspot bins (worst first):")
        print(f"{'bin':>9} {'x':>9} {'y':>9} {'ratio':>8} {'overflow':>9} {'pins':>6}")
        for spot in hotspots:
            print(
                f"({spot['bin_x']:>3},{spot['bin_y']:>3}) {spot['x']:>9.1f} "
                f"{spot['y']:>9.1f} {spot['ratio']:>8.3f} "
                f"{spot['overflow']:>9.3f} {spot['pins']:>6d}"
            )
    _emit_json(payload, args.json_path)
    return 0


def _cmd_lint_contracts(args: argparse.Namespace) -> int:
    # Lazy import: the analysis package is pure stdlib but there is no
    # reason to parse rule modules for flow commands.
    from repro.analysis import engine as analysis_engine

    if args.list_rules:
        from repro.analysis.rules import RULE_DESCRIPTIONS, rule_ids

        for rule_id in rule_ids():
            print(f"{rule_id}: {RULE_DESCRIPTIONS[rule_id]}")
        return 0
    tests_dir = args.tests_dir if args.tests_dir else None
    try:
        report = analysis_engine.run_lint(
            args.paths, tests_dir=tests_dir, rules=args.rules
        )
    except (FileNotFoundError, ValueError, KeyError) as exc:
        message = exc.args[0] if exc.args else str(exc)
        print(f"repro lint-contracts: error: {message}", file=sys.stderr)
        return 2
    analysis_engine._emit_report(report, args)
    return 1 if report.unsuppressed else 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """``repro trace`` = ``repro run --trace [-o PATH]``."""
    args.trace = args.output if args.output else "auto"
    return _cmd_run(args)


_COMMANDS = {
    "run": _cmd_run,
    "batch": _cmd_batch,
    "trace": _cmd_trace,
    "compare": _cmd_compare,
    "sweep": _cmd_sweep,
    "congestion": _cmd_congestion,
    "lint-contracts": _cmd_lint_contracts,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
