"""Fixture: SharedMemory(create=True) with no provable unlink path."""

from multiprocessing import shared_memory


def leaky_create(size):
    shm = shared_memory.SharedMemory(create=True, size=size)
    buf = shm.buf
    return shm, buf


def leaky_under_if(size, flag):
    if flag:
        shm = shared_memory.SharedMemory(create=True, size=size)
        return shm
    return None
