#!/usr/bin/env python3
"""Critical path extraction study (the Table I / Sec. III-B experiment).

Places a design with the wirelength-only engine, then compares the coverage
and cost of OpenTimer-style ``report_timing(n)`` against the paper's
``report_timing_endpoint(n, k)`` on the resulting timing graph, and shows the
worst extracted path.

Run:  python examples/path_extraction_study.py [benchmark_name]
"""

import sys

from repro.baselines import DreamPlaceBaseline
from repro.benchgen import benchmark_names, load_benchmark
from repro.evaluation import format_table
from repro.placement import PlacementConfig
from repro.timing import STAEngine, report_timing, report_timing_endpoint


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "sb_mini_1"
    if name not in benchmark_names():
        raise SystemExit(f"unknown benchmark {name!r}; choose from {benchmark_names()}")

    design = load_benchmark(name)
    DreamPlaceBaseline(design, PlacementConfig(max_iterations=450, seed=1)).run()

    engine = STAEngine(design)
    result = engine.update_timing()
    n = result.num_failing_endpoints
    print(f"{name}: {n} failing endpoints, WNS {result.wns:.1f} ps, TNS {result.tns:.1f} ps\n")

    rows = []
    for label, (_paths, stats) in {
        "report_timing(n)": report_timing(engine, n, failing_only=True,
                                          max_paths_per_endpoint=16),
        "report_timing_endpoint(n,1)": report_timing_endpoint(engine, n, 1, failing_only=True),
        "report_timing_endpoint(n,10)": report_timing_endpoint(engine, n, 10, failing_only=True),
    }.items():
        row = stats.as_row()
        rows.append([label, row["complexity"], row["num_paths"], row["num_endpoints"],
                     row["num_pin_pairs"], row["time_sec"]])

    print(format_table(
        ["Command", "Complexity", "#Paths", "#Endpoints", "#PinPairs", "Time(s)"],
        rows,
        title="Critical path extraction coverage",
        float_format="{:.4f}",
    ))

    worst, _ = report_timing(engine, 1)
    print("\nWorst path:")
    print(" ", worst[0].describe(engine.graph))


if __name__ == "__main__":
    main()
