"""Merging several per-net weight proposals into one weight vector.

Every weighting feedback proposes a multiplicative per-net boost (``>= 1``):
timing criticality proposes ``1 + boost * criticality``, congestion proposes
``1 + boost * overflow_score``.  The composer owns what used to be private
to each strategy — momentum, clamping, normalization — so the signals share
one dynamic range instead of fighting over ``placer.set_net_weights``:

* proposals are combined **multiplicatively** (log-additively), so a net
  that is both timing-critical and congested gets compounded emphasis while
  a signal with nothing to say (all-ones proposal) leaves the other
  signal's weights exactly unchanged;
* one **shared momentum** state smooths the composed target over updates:
  ``w <- decay*w + (1-decay)*target`` where ``target`` is the proposal
  product itself.  The target is *absolute*, not compounded onto the
  current weights (the legacy DREAMPlace-4.0 strategy compounds; measured
  on the congestion-stressed design, compounding a congestion signal
  ratchets every hot net to the clamp within a few updates and wrecks the
  post-legalization placement).  Tracking the absolute target keeps the
  weights bounded by what the signals currently claim, and lets a signal
  *release* — a net whose congestion clears glides back to its timing-only
  weight;
* a **log-proportional cap** (``max_target_boost``) normalizes oversized
  combined targets by scaling each signal's *log* contribution by the same
  factor — the ratio between the signals is preserved, so neither starves
  the other at the clamp;
* the final weights are clamped to ``[min_weight, max_weight]``.

With a single proposing feedback the composer reduces exactly to that
feedback's own momentum weighting — the property the hypothesis test in
``tests/test_feedback.py`` pins down (zero congestion overflow => pure
timing weights).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

import numpy as np

__all__ = ["WeightComposerConfig", "WeightComposer"]


@dataclass
class WeightComposerConfig:
    """Shared dynamics of the composed net-weight state."""

    # Momentum: fraction of the previous weight kept per update.
    momentum_decay: float = 0.75
    # Clamp of the composed weights.
    min_weight: float = 1.0
    max_weight: float = 6.0
    # Cap on the combined per-update target multiplier.  ``None`` disables
    # the cap; otherwise oversized combined targets are scaled down in log
    # space, preserving the ratio between the contributing signals.
    max_target_boost: Optional[float] = 4.0

    def validate(self) -> None:
        if not 0.0 <= self.momentum_decay <= 1.0:
            raise ValueError("momentum_decay must be within [0, 1]")
        if self.min_weight < 0.0:
            raise ValueError("min_weight must be non-negative")
        if self.max_weight < self.min_weight:
            raise ValueError("max_weight must be at least min_weight")
        if self.max_target_boost is not None and self.max_target_boost < 1.0:
            raise ValueError("max_target_boost must be at least 1")


class WeightComposer:
    """Stateful merge of per-net weight proposals (see module docstring)."""

    def __init__(
        self,
        num_nets: Optional[int] = None,
        config: Optional[WeightComposerConfig] = None,
    ) -> None:
        self.config = config if config is not None else WeightComposerConfig()
        self.config.validate()
        self.weights: Optional[np.ndarray] = None
        if num_nets is not None:
            self.weights = np.full(int(num_nets), self.config.min_weight)
        self.num_updates = 0

    @property
    def initialized(self) -> bool:
        return self.weights is not None

    def _target(self, proposals: Mapping[str, np.ndarray], num_nets: int) -> np.ndarray:
        cfg = self.config
        log_target = np.zeros(num_nets, dtype=np.float64)
        for name, proposal in proposals.items():
            arr = np.asarray(proposal, dtype=np.float64)
            if arr.shape != (num_nets,):
                raise ValueError(
                    f"proposal {name!r} has shape {arr.shape}, expected ({num_nets},)"
                )
            if np.any(arr < 1.0) or not np.all(np.isfinite(arr)):
                raise ValueError(
                    f"proposal {name!r} must be a finite multiplier >= 1 everywhere"
                )
            log_target += np.log(arr)
        if cfg.max_target_boost is not None:
            # Log-proportional normalization: where the combined boost
            # exceeds the cap, shrink every signal's log share by the same
            # factor so the signals keep their relative emphasis.
            log_cap = np.log(cfg.max_target_boost)
            over = log_target > log_cap
            if np.any(over):
                log_target[over] = log_cap
        return np.exp(log_target)

    def compose(self, proposals: Mapping[str, np.ndarray]) -> np.ndarray:
        """Fold the proposals into the momentum state; return the new weights.

        The returned array is a copy; the internal state is never aliased to
        the placer's weight vector.
        """
        if not proposals:
            raise ValueError("compose() needs at least one proposal")
        num_nets = int(np.asarray(next(iter(proposals.values()))).shape[0])
        cfg = self.config
        if self.weights is None:
            self.weights = np.full(num_nets, cfg.min_weight)
        target = self._target(proposals, self.weights.shape[0])
        updated = cfg.momentum_decay * self.weights + (1.0 - cfg.momentum_decay) * target
        np.clip(updated, cfg.min_weight, cfg.max_weight, out=updated)
        self.weights = updated
        self.num_updates += 1
        return updated.copy()

    def summary(self) -> Dict[str, float]:
        """Scalar snapshot of the composed weight state (trajectory rows)."""
        if self.weights is None:
            return {"weight_mean": 1.0, "weight_max": 1.0}
        return {
            "weight_mean": float(self.weights.mean()),
            "weight_max": float(self.weights.max()),
        }
