"""Multi-corner/multi-mode STA: corner resolution, single-corner bitwise
parity, merged-metric semantics, incremental-mode exactness, flow threading,
and the hypothesis property that merged slack equals the element-wise min
over independently-run single-corner engines."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.benchgen import CircuitSpec, generate_circuit, load_benchmark
from repro.flow.presets import build_flow, preset_names
from repro.timing import (
    CORNER_PRESETS,
    Corner,
    MultiCornerResult,
    MultiCornerSTA,
    STAEngine,
    TimingConstraints,
    corner_preset,
    resolve_corners,
)

_RESULT_FIELDS = ("arrival", "required", "slack", "arc_delay", "net_load", "endpoint_slack")


def _assert_corner_matches_engine(mc_result, index, engine_result):
    view = mc_result.corner_result(index)
    for name in _RESULT_FIELDS:
        np.testing.assert_array_equal(
            getattr(view, name), getattr(engine_result, name), err_msg=name
        )
    assert view.wns == engine_result.wns
    assert view.tns == engine_result.tns


def _perturb(design, rng, x, y, max_cells=40, sigma=25.0):
    movable = design.arrays.movable_index
    k = int(rng.integers(1, min(max_cells, movable.size)))
    idx = rng.choice(movable, size=k, replace=False)
    x[idx] += rng.normal(0.0, sigma, size=k)
    y[idx] += rng.normal(0.0, sigma, size=k)


class TestCornerResolution:
    def test_presets_validate(self):
        for name, corner in CORNER_PRESETS.items():
            corner.validate()
            assert corner.name == name

    def test_string_spec(self):
        corners = resolve_corners("fast,typ,slow")
        assert [c.name for c in corners] == ["fast", "typ", "slow"]
        assert resolve_corners("slow") == (CORNER_PRESETS["slow"],)

    def test_none_is_single_identity_corner(self):
        (corner,) = resolve_corners(None)
        assert corner.is_identity

    def test_mixed_sequence(self):
        custom = Corner("hot", wire_rc_scale=1.3, cell_derate=1.2)
        corners = resolve_corners(["typ", custom])
        assert corners == (CORNER_PRESETS["typ"], custom)

    def test_unknown_preset_raises(self):
        with pytest.raises(KeyError, match="bogus"):
            resolve_corners("bogus")
        with pytest.raises(KeyError, match="available"):
            corner_preset("nope")

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="Duplicate"):
            resolve_corners("typ,typ")

    def test_invalid_corner_rejected(self):
        with pytest.raises(ValueError, match="wire_rc_scale"):
            resolve_corners(Corner("bad", wire_rc_scale=0.0))


class TestSingleCornerBitwiseParity:
    """A single identity corner must reproduce STAEngine bit for bit."""

    def test_identity_corner_full(self, fresh_small_design):
        design = fresh_small_design
        reference = STAEngine(design).update_timing()
        result = MultiCornerSTA(design).update_timing()
        assert result.num_corners == 1
        _assert_corner_matches_engine(result, 0, reference)
        assert result.wns == reference.wns
        assert result.tns == reference.tns
        # The merged view of one corner is that corner.
        np.testing.assert_array_equal(result.merged.slack, reference.slack)

    def test_identity_corner_incremental(self, fresh_small_design):
        design = fresh_small_design
        reference = STAEngine(design, incremental=True, move_tolerance=0.0)
        engine = MultiCornerSTA(design, incremental=True, move_tolerance=0.0)
        rng = np.random.default_rng(5)
        x, y = design.positions()
        x, y = x.copy(), y.copy()
        for _ in range(4):
            _perturb(design, rng, x, y)
            r_ref = reference.update_timing(x, y)
            r_mc = engine.update_timing(x, y)
            _assert_corner_matches_engine(r_mc, 0, r_ref)
        assert engine.last_update_stats.mode == "incremental"

    def test_derated_corner_matches_corner_engine(self, fresh_small_design):
        """STAEngine(corner=...) is the single-corner reference for each
        stacked lane, including physical derates."""
        design = fresh_small_design
        corner = Corner("hot", wire_rc_scale=1.2, cell_derate=1.15)
        reference = STAEngine(design, corner=corner).update_timing()
        result = MultiCornerSTA(design, corner).update_timing()
        _assert_corner_matches_engine(result, 0, reference)


class TestMultiCornerSemantics:
    @pytest.fixture(scope="class")
    def design(self):
        return load_benchmark("sb_mini_18", scale=0.3)

    @pytest.fixture(scope="class")
    def corners(self):
        return resolve_corners("fast,typ,slow")

    @pytest.fixture(scope="class")
    def result(self, design, corners):
        return MultiCornerSTA(design, corners).update_timing()

    def test_stacked_shapes(self, design, corners, result):
        num_pins = design.num_pins
        assert result.arrival.shape == (len(corners), num_pins)
        assert result.slack.shape == (len(corners), num_pins)
        assert result.endpoint_slack.shape[0] == len(corners)

    def test_every_corner_matches_standalone_engine(self, design, corners, result):
        for index, corner in enumerate(corners):
            reference = STAEngine(design, corner=corner).update_timing()
            _assert_corner_matches_engine(result, index, reference)

    def test_merged_slack_is_elementwise_min(self, result):
        np.testing.assert_array_equal(result.merged_slack, result.slack.min(axis=0))
        np.testing.assert_array_equal(
            result.merged_endpoint_slack, result.endpoint_slack.min(axis=0)
        )

    def test_merged_wns_tns_from_merged_endpoint_slack(self, result):
        merged = result.merged_endpoint_slack
        negative = merged[merged < 0]
        expected_wns = float(negative.min()) if negative.size else 0.0
        expected_tns = float(negative.sum()) if negative.size else 0.0
        assert result.wns == expected_wns
        assert result.tns == expected_tns
        # Merged WNS is the worst corner's WNS.
        assert result.wns == float(result.corner_wns.min())

    def test_per_corner_summary_keys(self, corners, result):
        summary = result.per_corner_summary()
        assert list(summary) == [c.name for c in corners]
        for row in summary.values():
            assert set(row) == {"wns", "tns", "failing_endpoints"}

    def test_corner_view_supports_path_extraction(self, design, corners):
        from repro.timing import report_timing_endpoint

        engine = MultiCornerSTA(design, corners)
        result = engine.update_timing()
        slow = next(i for i, c in enumerate(corners) if c.name == "slow")
        view = engine.corner_view(slow)
        paths, stats = report_timing_endpoint(
            view, 4, 1, result=result.corner_result(slow)
        )
        reference_engine = STAEngine(design, corner=corners[slow])
        ref_paths, _ = report_timing_endpoint(
            reference_engine, 4, 1, result=reference_engine.update_timing()
        )
        assert [p.pins for p in paths] == [p.pins for p in ref_paths]
        assert [p.slack for p in paths] == [p.slack for p in ref_paths]

    def test_mode_specific_constraints(self, design):
        tight = TimingConstraints.from_design(design)
        tight.clock_period *= 0.5
        corners = (
            Corner("func", constraints=None),
            Corner("scan", constraints=tight),
        )
        result = MultiCornerSTA(design, corners).update_timing()
        reference = STAEngine(design, tight).update_timing()
        _assert_corner_matches_engine(result, 1, reference)
        # The tighter mode can only be equal or worse.
        assert result.corner_wns[1] <= result.corner_wns[0]


class TestCornerSwap:
    def test_set_corners_matches_fresh_engine(self, fresh_small_design):
        """Swapping corners mid-session must reseed everything: results after
        the swap are bitwise those of a fresh engine (mirrors the STAEngine
        set_constraints contract)."""
        design = fresh_small_design
        engine = MultiCornerSTA(design, "typ", incremental=True, move_tolerance=0.0)
        rng = np.random.default_rng(31)
        x, y = design.positions()
        x, y = x.copy(), y.copy()
        engine.update_timing(x, y)
        _perturb(design, rng, x, y)
        engine.update_timing(x, y)

        engine.set_corners("fast,slow")
        assert [c.name for c in engine.corners] == ["fast", "slow"]
        result = engine.update_timing(x, y)
        assert engine.last_update_stats.mode == "full"
        fresh = MultiCornerSTA(
            design, "fast,slow", incremental=True, move_tolerance=0.0
        ).update_timing(x, y)
        for name in _RESULT_FIELDS:
            np.testing.assert_array_equal(
                getattr(result, name), getattr(fresh, name), err_msg=name
            )

    def test_corners_and_constraints_are_read_only(self, fresh_small_design):
        """Direct rebinding would leave the stacked caches silently stale, so
        both attributes reject assignment (use set_corners)."""
        engine = MultiCornerSTA(fresh_small_design, "typ")
        with pytest.raises(AttributeError):
            engine.corners = resolve_corners("fast,slow")
        with pytest.raises(AttributeError):
            engine.constraints = ()


class TestIncrementalMultiCorner:
    def test_incremental_matches_standalone_engines(self, fresh_small_design):
        design = fresh_small_design
        corners = resolve_corners("fast,typ,slow")
        engine = MultiCornerSTA(design, corners, incremental=True, move_tolerance=0.0)
        references = [
            STAEngine(design, corner=c, incremental=True, move_tolerance=0.0)
            for c in corners
        ]
        rng = np.random.default_rng(17)
        x, y = design.positions()
        x, y = x.copy(), y.copy()
        saw_incremental = False
        for _ in range(5):
            _perturb(design, rng, x, y, max_cells=25)
            result = engine.update_timing(x, y)
            saw_incremental |= engine.last_update_stats.mode == "incremental"
            for index, reference in enumerate(references):
                _assert_corner_matches_engine(result, index, reference.update_timing(x, y))
        assert saw_incremental

    def test_incremental_equals_full_stacked(self, fresh_small_design):
        design = fresh_small_design
        corners = resolve_corners("fast,slow")
        inc = MultiCornerSTA(design, corners, incremental=True, move_tolerance=0.0)
        full = MultiCornerSTA(design, corners)
        rng = np.random.default_rng(23)
        x, y = design.positions()
        x, y = x.copy(), y.copy()
        for _ in range(4):
            _perturb(design, rng, x, y)
            r_inc = inc.update_timing(x, y)
            r_full = full.update_timing(x, y)
            for name in _RESULT_FIELDS:
                np.testing.assert_array_equal(
                    getattr(r_inc, name), getattr(r_full, name), err_msg=name
                )

    def test_dirty_detection_shared_across_corners(self, fresh_small_design):
        """The dirty frontier is position-driven, so a 3-corner update must
        report the same dirty-net count as a single-corner one."""
        design = fresh_small_design
        mc = MultiCornerSTA(design, resolve_corners("fast,typ,slow"), incremental=True)
        single = STAEngine(design, incremental=True)
        x, y = design.positions()
        x, y = x.copy(), y.copy()
        mc.update_timing(x, y)
        single.update_timing(x, y)
        x[design.arrays.movable_index[:3]] += 6.0
        mc.update_timing(x, y)
        single.update_timing(x, y)
        assert mc.last_update_stats.mode == "incremental"
        assert mc.last_update_stats.num_dirty_nets == single.last_update_stats.num_dirty_nets
        assert mc.last_update_stats.num_dirty_arcs == single.last_update_stats.num_dirty_arcs


# ----------------------------------------------------------------------
# Property-based: merged slack == min over independent single-corner runs
# ----------------------------------------------------------------------
_PROPERTY_DESIGN = None


def _property_design():
    """One small design shared by all hypothesis examples (read-only use)."""
    global _PROPERTY_DESIGN
    if _PROPERTY_DESIGN is None:
        _PROPERTY_DESIGN = generate_circuit(
            CircuitSpec(
                name="mcmm_prop",
                num_cells=160,
                sequential_fraction=0.25,
                logic_depth=5,
                num_primary_inputs=6,
                num_primary_outputs=6,
                utilization=0.6,
                clock_tightness=0.85,
                seed=29,
            )
        )
    return _PROPERTY_DESIGN


@st.composite
def _corner_list(draw):
    derates = st.floats(min_value=0.6, max_value=1.5, allow_nan=False, allow_infinity=False)
    count = draw(st.integers(min_value=1, max_value=3))
    return [
        Corner(f"c{i}", wire_rc_scale=draw(derates), cell_derate=draw(derates))
        for i in range(count)
    ]


@settings(max_examples=12, deadline=None)
@given(
    corners=_corner_list(),
    seed=st.integers(min_value=0, max_value=2**16),
    incremental=st.booleans(),
)
def test_merged_slack_equals_min_over_single_corner_engines(corners, seed, incremental):
    """Across random corner derates and both full/incremental modes, the
    stacked engine's merged slack must equal the element-wise minimum over
    independently-run single-corner engines (bitwise — every corner lane is
    exact, and min is order-insensitive)."""
    design = _property_design()
    engine = MultiCornerSTA(
        design, tuple(corners), incremental=incremental, move_tolerance=0.0
    )
    singles = [
        STAEngine(design, corner=c, incremental=incremental, move_tolerance=0.0)
        for c in corners
    ]
    rng = np.random.default_rng(seed)
    x, y = design.positions()
    x, y = x.copy(), y.copy()
    for _ in range(2):
        _perturb(design, rng, x, y, max_cells=20)
        stacked = engine.update_timing(x, y)
        independent = [s.update_timing(x, y) for s in singles]
        expected_min = np.stack([r.slack for r in independent]).min(axis=0)
        np.testing.assert_array_equal(stacked.merged_slack, expected_min)
        expected_endpoint = np.stack([r.endpoint_slack for r in independent]).min(axis=0)
        np.testing.assert_array_equal(stacked.merged_endpoint_slack, expected_endpoint)
        for index, r in enumerate(independent):
            np.testing.assert_array_equal(stacked.corner_result(index).slack, r.slack)


# ----------------------------------------------------------------------
# Flow threading
# ----------------------------------------------------------------------
_FAST = dict(
    max_iterations=50,
    timing_start_iteration=20,
    min_timing_iterations=10,
    timing_update_interval=10,
)


def _fast_overrides(preset):
    if preset == "dreamplace":
        return {"max_iterations": 50}
    if preset == "routability":
        return {"max_iterations": 50, "refine_iterations": 30}
    if preset == "routability-gp":
        # Shrunk feedback cadences so both weightings fire within 50 iters.
        return {
            "max_iterations": 50, "refine_iterations": 30,
            "congestion_start": 20, "congestion_interval": 10,
            "timing_start": 25, "timing_interval": 10,
        }
    return dict(_FAST)


class TestFlowThreading:
    @pytest.mark.parametrize("preset", preset_names())
    def test_typ_corner_bit_identical_to_single_corner(self, preset):
        """Acceptance: corners='typ' must not change any preset's output."""
        base_design = load_benchmark("sb_mini_18", scale=0.25)
        base = build_flow(preset, **_fast_overrides(preset)).run(base_design)
        typ_design = load_benchmark("sb_mini_18", scale=0.25)
        typ = build_flow(preset, corners="typ", **_fast_overrides(preset)).run(typ_design)
        np.testing.assert_array_equal(base.x, typ.x)
        np.testing.assert_array_equal(base.y, typ.y)
        assert base.evaluation.tns == typ.evaluation.tns
        assert base.evaluation.wns == typ.evaluation.wns
        assert typ.evaluation.per_corner is not None

    def test_three_corner_flow_reports_per_corner(self):
        design = load_benchmark("sb_mini_18", scale=0.25)
        result = build_flow(
            "efficient_tdp", corners="fast,typ,slow", **_FAST
        ).run(design)
        ctx = result.context
        assert isinstance(ctx.sta, MultiCornerSTA)
        assert isinstance(ctx.sta_result, MultiCornerResult)
        report = result.evaluation
        assert set(report.per_corner) == {"fast", "typ", "slow"}
        # Headline metrics are the merged (worst-over-corner) values.
        assert report.wns == pytest.approx(
            min(row["wns"] for row in report.per_corner.values())
        )
        summary = result.summary()
        assert summary["corners"] == ["fast", "typ", "slow"]

    def test_runner_corners_argument_overrides(self):
        design = load_benchmark("sb_mini_18", scale=0.25)
        runner = build_flow("dreamplace", max_iterations=40)
        result = runner.run(design, corners="fast,slow")
        assert set(result.evaluation.per_corner) == {"fast", "slow"}

    def test_design_carried_corners_are_picked_up(self):
        design = load_benchmark("sb_mini_18", scale=0.25)
        design.corners = "fast,slow"
        result = build_flow("dreamplace", max_iterations=40).run(design)
        assert set(result.evaluation.per_corner) == {"fast", "slow"}

    def test_evaluator_merged_metrics_match_engines(self):
        from repro.evaluation.evaluator import evaluate_placement

        design = load_benchmark("sb_mini_18", scale=0.3)
        corners = resolve_corners("fast,typ,slow")
        report = evaluate_placement(design, corners=corners)
        single_reports = [
            STAEngine(design, corner=c).update_timing() for c in corners
        ]
        merged_endpoint = np.stack(
            [r.endpoint_slack for r in single_reports]
        ).min(axis=0)
        negative = merged_endpoint[merged_endpoint < 0]
        assert report.wns == (float(negative.min()) if negative.size else 0.0)
        assert report.tns == (float(negative.sum()) if negative.size else 0.0)
