"""Efficient-TDP: timing-driven global placement by efficient critical path
extraction (reproduction of Shi et al., DATE 2025).

The top-level package re-exports the most commonly used entry points; see
the subpackages for the full API:

* :mod:`repro.netlist` — circuit data model and file I/O.
* :mod:`repro.timing` — static timing analysis and critical path reporting.
* :mod:`repro.placement` — analytical global placement and legalization.
* :mod:`repro.core` — the paper's pin-to-pin attraction flow.
* :mod:`repro.baselines` — DREAMPlace / DREAMPlace 4.0 / Differentiable-TDP
  style comparison flows.
* :mod:`repro.benchgen` — synthetic ICCAD-2015-like benchmark generation.
* :mod:`repro.evaluation` — shared HPWL/TNS/WNS scoring.
* :mod:`repro.route` — routability: RUDY congestion estimation and the
  congestion-driven cell-inflation repair loop.
* :mod:`repro.flow` — the composable flow pipeline (stages, presets,
  concurrent batch runner, and the ``repro`` CLI).
"""

from repro.benchgen import CircuitSpec, generate_circuit, load_benchmark, benchmark_names
from repro.core import (
    EfficientTDPConfig,
    EfficientTDPlacer,
    ExtractionConfig,
    PinAttractionObjective,
    PinPairSet,
    QuadraticLoss,
)
from repro.evaluation import Evaluator, evaluate_placement
from repro.flow import (
    BatchJob,
    BatchReport,
    FlowContext,
    FlowResult,
    FlowRunner,
    available_stages,
    build_flow,
    create_stage,
    preset_names,
    run_batch,
)
from repro.netlist import CompiledDesign, Design, DesignCore, Library, compile_design, make_generic_library
from repro.placement import GlobalPlacer, PlacementConfig, AbacusLegalizer
from repro.route import (
    CongestionConfig,
    CongestionEstimator,
    CongestionResult,
    InflationConfig,
    estimate_congestion,
    run_inflation_loop,
)
from repro.timing import STAEngine, TimingConstraints, report_timing, report_timing_endpoint

__version__ = "1.1.0"

__all__ = [
    "CircuitSpec",
    "generate_circuit",
    "load_benchmark",
    "benchmark_names",
    "EfficientTDPConfig",
    "EfficientTDPlacer",
    "ExtractionConfig",
    "PinAttractionObjective",
    "PinPairSet",
    "QuadraticLoss",
    "Evaluator",
    "evaluate_placement",
    "BatchJob",
    "BatchReport",
    "FlowContext",
    "FlowResult",
    "FlowRunner",
    "available_stages",
    "build_flow",
    "create_stage",
    "preset_names",
    "run_batch",
    "Design",
    "DesignCore",
    "CompiledDesign",
    "compile_design",
    "Library",
    "make_generic_library",
    "GlobalPlacer",
    "PlacementConfig",
    "AbacusLegalizer",
    "CongestionConfig",
    "CongestionEstimator",
    "CongestionResult",
    "InflationConfig",
    "estimate_congestion",
    "run_inflation_loop",
    "STAEngine",
    "TimingConstraints",
    "report_timing",
    "report_timing_endpoint",
    "__version__",
]
