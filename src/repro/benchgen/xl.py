"""XL-scale synthetic benchmarks (100k–1M cells), vectorized generation.

The classic :func:`repro.benchgen.synthetic.generate_circuit` picks every
gate's drivers with a per-gate weighted draw over all earlier signals —
faithful preferential attachment, but O(n^2) and minutes-slow past ~20k
cells.  :func:`generate_xl_circuit` builds the same pipelined-random-logic
shape (level-0 PIs and register outputs feeding a leveled combinational
cloud captured by FF data pins and POs) with per-level vectorized draws:

* source *level* per gate input: the same exp(-0.9 * (gap - 1)) preference
  for the immediately preceding level;
* source *signal* within a level: a power-law draw ``floor(count * u**q)``
  with ``q = 1 + 1/alpha`` — low indices are picked superlinearly often, so
  early signals accumulate fan-out (the vectorized stand-in for the classic
  generator's preferential attachment), with ``fanout_alpha`` keeping its
  meaning: smaller alpha, heavier fan-out tail;
* hub rerouting (``hub_fraction``) identical in spirit to the classic
  stress knob: a fixed pool of level-0 signals absorbs a fraction of all
  gate inputs.

Everything is drawn in a fixed per-level order from one seeded generator,
so the same spec always yields the same design.  Generation is O(pins):
~2 s for 100k cells, ~6 s for 250k.

The XL designs exist for the kernel-pool benchmarks (congestion / STA /
density walls at sizes where sharding pays); they are deliberately kept out
of the sb_mini table suite.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

import numpy as np

from repro.benchgen.synthetic import (
    _GATE_CHOICES,
    CircuitSpec,
    _boundary_positions,
    _estimate_clock_period,
)
from repro.netlist.design import Design
from repro.netlist.library import Library, make_generic_library
from repro.utils.rng import make_rng

__all__ = ["XL_SUITE", "generate_xl_circuit", "xl_benchmark_names"]


XL_SUITE: Dict[str, CircuitSpec] = {
    "sb_xl_1": CircuitSpec(
        name="sb_xl_1", num_cells=100_000, sequential_fraction=0.12, logic_depth=18,
        num_primary_inputs=256, num_primary_outputs=256, fanout_alpha=1.1,
        utilization=0.68, clock_tightness=0.78, seed=301,
    ),
    "sb_xl_2": CircuitSpec(
        name="sb_xl_2", num_cells=250_000, sequential_fraction=0.10, logic_depth=22,
        num_primary_inputs=384, num_primary_outputs=384, fanout_alpha=1.0,
        utilization=0.70, clock_tightness=0.76, seed=302,
    ),
}


def xl_benchmark_names() -> List[str]:
    """Names of the XL (kernel-benchmark) designs."""
    return list(XL_SUITE.keys())


def generate_xl_circuit(
    spec: CircuitSpec,
    *,
    library: Optional[Library] = None,
) -> Design:
    """Generate a finalized XL design from ``spec`` in O(pins) time."""
    rng = make_rng(spec.seed)
    lib = library if library is not None else make_generic_library()

    num_ff = max(2, int(round(spec.num_cells * spec.sequential_fraction)))
    num_comb = max(4, spec.num_cells - num_ff)

    gate_names = [name for name, _ in _GATE_CHOICES]
    gate_probs = np.array([w for _, w in _GATE_CHOICES], dtype=np.float64)
    gate_probs /= gate_probs.sum()
    comb_cell_ids = rng.choice(len(gate_names), size=num_comb, p=gate_probs)

    gate_areas = np.array([lib.cell(g).area for g in gate_names], dtype=np.float64)
    gate_num_inputs = np.array(
        [len(lib.cell(g).input_pins) for g in gate_names], dtype=np.int64
    )
    input_pin_names: List[List[str]] = [
        [p.name for p in lib.cell(g).input_pins] for g in gate_names
    ]

    # ------------------------------------------------------------------
    # Floorplan (same sizing rule as the classic generator).
    # ------------------------------------------------------------------
    total_area = float(
        gate_areas[comb_cell_ids].sum() + num_ff * lib.cell("DFF_X1").area
    )
    row_height = lib.cell("DFF_X1").height
    die_side = math.sqrt(total_area / spec.utilization)
    aspect = math.sqrt(spec.aspect_ratio)
    die_height = math.ceil(die_side / aspect / row_height) * row_height
    die_width = math.ceil(die_side * aspect)
    design = Design(
        spec.name,
        die=(0.0, 0.0, float(die_width), float(die_height)),
        library=lib,
        row_height=row_height,
        site_width=1.0,
    )

    # ------------------------------------------------------------------
    # Ports and instances.
    # ------------------------------------------------------------------
    boundary = _boundary_positions(
        die_width, die_height, spec.num_primary_inputs + spec.num_primary_outputs + 1
    )
    cursor = 0
    design.add_port("clk", "input", x=boundary[cursor][0], y=boundary[cursor][1])
    cursor += 1
    pi_names: List[str] = []
    for i in range(spec.num_primary_inputs):
        name = f"in{i}"
        design.add_port(name, "input", x=boundary[cursor][0], y=boundary[cursor][1])
        pi_names.append(name)
        cursor += 1
    po_names: List[str] = []
    for i in range(spec.num_primary_outputs):
        name = f"out{i}"
        design.add_port(name, "output", x=boundary[cursor][0], y=boundary[cursor][1])
        po_names.append(name)
        cursor += 1

    center_x, center_y = die_width * 0.5, die_height * 0.5
    ff_names = [f"ff{i}" for i in range(num_ff)]
    dff = lib.cell("DFF_X1")
    for name in ff_names:
        design.add_instance(name, dff, x=center_x, y=center_y)
    comb_names = [f"g{i}" for i in range(num_comb)]
    gate_cells = [lib.cell(g) for g in gate_names]
    for name, cid in zip(comb_names, comb_cell_ids):
        design.add_instance(name, gate_cells[cid], x=center_x, y=center_y)

    clock_net = design.add_net("clknet")
    design.connect(clock_net, "clk")
    for name in ff_names:
        design.connect(clock_net, name, "ck")

    # ------------------------------------------------------------------
    # Level structure.  Signals are indexed by creation order:
    # [PIs, FF outputs, then gate outputs grouped by level 1..depth].
    # ------------------------------------------------------------------
    depth = spec.logic_depth
    level_weights = np.linspace(1.0, 0.6, depth)
    level_weights /= level_weights.sum()
    comb_levels = rng.choice(np.arange(1, depth + 1), size=num_comb, p=level_weights)
    order = np.argsort(comb_levels, kind="stable")

    num_level0 = spec.num_primary_inputs + num_ff
    level0_nets = [design.add_net(f"n_{n}") for n in pi_names] + [
        design.add_net(f"n_{n}_q") for n in ff_names
    ]
    for name, net in zip(pi_names, level0_nets):
        design.connect(net, name)
    for name, net in zip(ff_names, level0_nets[len(pi_names):]):
        design.connect(net, name, "q")

    # Per-level signal tables: net objects in creation order, so a
    # (level, index-within-level) pair addresses one driver.
    nets_by_level: List[List] = [level0_nets]
    counts = np.zeros(depth + 1, dtype=np.int64)
    counts[0] = num_level0

    # Hub pool (congestion stress): evenly sampled level-0 signal indices.
    hub_pool: Optional[np.ndarray] = None
    if spec.hub_fraction > 0.0:
        count = min(spec.hub_count, num_level0)
        hub_pool = np.unique(np.linspace(0, num_level0 - 1, count).astype(np.int64))

    # Power-law exponent: density of picks over within-level index i falls
    # as i^(1/q - 1); q > 1 concentrates fan-out on early signals.
    q = 1.0 + 1.0 / max(spec.fanout_alpha, 0.1)

    gap_decay = np.exp(-0.9 * np.arange(depth, dtype=np.float64))

    for level in range(1, depth + 1):
        members = order[np.searchsorted(comb_levels[order], level, side="left"):
                        np.searchsorted(comb_levels[order], level, side="right")]
        # Register this level's output nets first so the tables stay aligned
        # even when a level has no gates.
        level_nets = []
        for idx in members:
            gate = comb_names[int(idx)]
            net = design.add_net(f"n_{gate}")
            design.connect(net, gate, "o")
            level_nets.append(net)
        nets_by_level.append(level_nets)

        if members.size == 0:
            continue
        fanins = gate_num_inputs[comb_cell_ids[members]]
        total_inputs = int(fanins.sum())

        # Source level per input: exp-decayed preference for level - 1,
        # restricted to levels that actually have signals.
        cand = np.nonzero(counts[:level] > 0)[0]
        gaps = level - cand
        probs = gap_decay[gaps - 1]
        probs = probs / probs.sum()
        src_level = rng.choice(cand, size=total_inputs, p=probs)

        # Source signal within the level: power-law toward low indices.
        u = rng.random(total_inputs)
        src_idx = np.floor(counts[src_level] * u**q).astype(np.int64)
        np.minimum(src_idx, counts[src_level] - 1, out=src_idx)

        if hub_pool is not None:
            take_hub = rng.random(total_inputs) < spec.hub_fraction
            if np.any(take_hub):
                hubs = rng.choice(hub_pool, size=int(take_hub.sum()))
                src_level[take_hub] = 0
                src_idx[take_hub] = hubs

        # Connect: tight loop over precomputed picks (O(pins)).
        pos = 0
        sl = src_level.tolist()
        si = src_idx.tolist()
        for idx in members:
            cid = int(comb_cell_ids[idx])
            gate = comb_names[int(idx)]
            for pin_name in input_pin_names[cid]:
                design.connect(nets_by_level[sl[pos]][si[pos]], gate, pin_name)
                pos += 1

        counts[level] = len(level_nets)

    # ------------------------------------------------------------------
    # Capture: FF data pins and POs take deep signals.
    # ------------------------------------------------------------------
    deep_levels = [
        lvl for lvl in range(max(1, depth - 2), depth + 1) if counts[lvl] > 0
    ]
    if not deep_levels:
        deep_levels = [lvl for lvl in range(depth + 1) if counts[lvl] > 0]
    deep_nets = [net for lvl in deep_levels for net in nets_by_level[lvl]]
    picks = rng.integers(0, len(deep_nets), size=num_ff + spec.num_primary_outputs)
    for name, pick in zip(ff_names, picks[:num_ff]):
        design.connect(deep_nets[int(pick)], name, "d")
    for name, pick in zip(po_names, picks[num_ff:]):
        design.connect(deep_nets[int(pick)], name)

    design.finalize()

    period = _estimate_clock_period(design, lib, spec)
    design.clock_period = period
    design.clock_name = "clk"
    design.clock_port = "clk"
    io_delay = spec.io_delay_fraction * period
    design.input_delays = {name: io_delay for name in pi_names}
    design.output_delays = {name: io_delay for name in po_names}
    return design
