"""Circuit data model and file I/O.

Public API:

* :class:`Library`, :class:`CellType`, :class:`LibraryPin`, :class:`PinDirection`,
  :class:`TimingArcSpec` — standard-cell library model.
* :class:`Design`, :class:`Instance`, :class:`Net`, :class:`PinRef`, :class:`Row` —
  flat gate-level design with floorplan and placement state.
* :func:`make_generic_library` — small generic library used by the synthetic
  benchmarks and tests.
* Parsers/writers for simplified LEF/DEF/Verilog/Liberty/SDC/Bookshelf views
  live in :mod:`repro.netlist.parsers` and :mod:`repro.netlist.writers`.
"""

from repro.netlist.library import (
    CellType,
    Library,
    LibraryPin,
    PinDirection,
    TimingArcSpec,
    make_generic_library,
)
from repro.netlist.design import Design, DesignArrays, Instance, Net, PinRef, Row

__all__ = [
    "CellType",
    "Library",
    "LibraryPin",
    "PinDirection",
    "TimingArcSpec",
    "make_generic_library",
    "Design",
    "DesignArrays",
    "Instance",
    "Net",
    "PinRef",
    "Row",
]
