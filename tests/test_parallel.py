"""Kernel-pool engine tests: bit-exactness, lifecycle, and crash safety.

The engine's contract (see ``repro.parallel``) is that sharded hot paths are
*bitwise* identical to the serial code for any shard count — workers compute
only order-independent pieces (min/max reductions, integer bincounts,
per-level STA sweeps) and the parent replays float scatter-adds in canonical
order.  The hypothesis properties here drive random designs through random
shard counts and assert exact equality; the pool tests exercise the real
process workers, including teardown on worker crash (no /dev/shm leak).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.benchgen.suite import load_benchmark
from repro.parallel import (
    KernelPool,
    KernelPoolError,
    SerialShardRunner,
    resolve_worker_count,
    split_ranges,
)
from repro.placement.density import ElectrostaticDensity, auto_bin_count
from repro.placement.initial import initial_placement
from repro.route.rudy import CongestionConfig, CongestionEstimator
from repro.timing.constraints import TimingConstraints
from repro.timing.sta import STAEngine, _LevelWorklist


def _shm_entries():
    """Names currently present under /dev/shm (empty set if unsupported)."""
    root = Path("/dev/shm")
    if not root.exists():  # pragma: no cover - non-Linux
        return set()
    return {entry.name for entry in root.iterdir()}


def _design(name="sb_mini_18", scale=0.5):
    return load_benchmark(name, scale=scale)


# ----------------------------------------------------------------------
# split_ranges
# ----------------------------------------------------------------------
@given(total=st.integers(0, 10_000), parts=st.integers(1, 64))
def test_split_ranges_partitions_exactly(total, parts):
    ranges = split_ranges(total, parts)
    # Contiguous, non-empty, covering [0, total).
    cursor = 0
    for start, end in ranges:
        assert start == cursor
        assert end > start
        cursor = end
    assert cursor == total
    assert len(ranges) <= parts
    if total:
        sizes = [end - start for start, end in ranges]
        assert max(sizes) - min(sizes) <= 1


def test_resolve_worker_count_positive():
    assert resolve_worker_count() >= 1
    assert resolve_worker_count(3) == 3


# ----------------------------------------------------------------------
# Sharded kernels == serial, property-tested over shard counts and designs
# ----------------------------------------------------------------------
_DESIGN_NAMES = ["sb_mini_18", "sb_mini_4", "sb_cong_1"]


@settings(max_examples=12, deadline=None)
@given(
    name=st.sampled_from(_DESIGN_NAMES),
    scale=st.sampled_from([0.3, 0.5, 0.8]),
    shards=st.integers(1, 8),
    seed=st.integers(0, 5),
)
def test_sharded_rudy_map_bitwise_equals_serial(name, scale, shards, seed):
    design = _design(name, scale)
    x, y = initial_placement(design, seed=seed)
    serial = CongestionEstimator(design).estimate(x, y)
    sharded = CongestionEstimator(
        design,
        CongestionConfig(workers=shards),
        runner=SerialShardRunner(shards),
    ).estimate(x, y)
    assert np.array_equal(serial.demand_h, sharded.demand_h)
    assert np.array_equal(serial.demand_v, sharded.demand_v)
    assert np.array_equal(serial.pin_density, sharded.pin_density)
    for a, b in zip(serial.net_bboxes, sharded.net_bboxes):
        assert np.array_equal(a, b)


@settings(max_examples=12, deadline=None)
@given(
    name=st.sampled_from(_DESIGN_NAMES),
    scale=st.sampled_from([0.3, 0.5]),
    shards=st.integers(1, 8),
    seed=st.integers(0, 5),
)
def test_sharded_sta_bitwise_equals_serial(name, scale, shards, seed):
    design = _design(name, scale)
    x, y = initial_placement(design, seed=seed)
    design.set_positions(x, y)
    constraints = TimingConstraints.from_design(design)
    serial = STAEngine(design, constraints).update_timing()
    sharded = STAEngine(
        design,
        constraints,
        workers=shards,
        runner=SerialShardRunner(shards),
        # Force every level through the sharded path.
        parallel_min_level_size=1,
    ).update_timing()
    assert np.array_equal(serial.arrival, sharded.arrival)
    assert np.array_equal(serial.required, sharded.required)
    assert np.array_equal(serial.slack, sharded.slack)
    assert serial.wns == sharded.wns
    assert serial.tns == sharded.tns


@settings(max_examples=12, deadline=None)
@given(
    name=st.sampled_from(_DESIGN_NAMES),
    scale=st.sampled_from([0.3, 0.5, 0.8]),
    shards=st.integers(1, 8),
    seed=st.integers(0, 5),
)
def test_sharded_density_grid_bitwise_equals_serial(name, scale, shards, seed):
    design = _design(name, scale)
    x, y = initial_placement(design, seed=seed)
    serial = ElectrostaticDensity(design)
    sharded = ElectrostaticDensity(
        design, workers=shards, runner=SerialShardRunner(shards)
    )
    assert np.array_equal(serial._splat(x, y), sharded._splat(x, y))
    # The full evaluation (FFT solve on top of the splat) must also match.
    se = serial.evaluate(x, y)
    pe = sharded.evaluate(x, y)
    assert np.array_equal(se.energy, pe.energy)
    assert np.array_equal(se.grad_x, pe.grad_x)
    assert np.array_equal(se.grad_y, pe.grad_y)


def test_density_area_inflation_keeps_sharded_parity():
    """set_area_scale invalidates the worker-side term arrays."""
    design = _design()
    x, y = initial_placement(design, seed=0)
    serial = ElectrostaticDensity(design)
    sharded = ElectrostaticDensity(design, workers=3, runner=SerialShardRunner(3))
    scale = np.ones(design.num_instances)
    scale[::2] = 1.3
    serial.set_area_scale(scale)
    sharded.set_area_scale(scale)
    assert np.array_equal(serial._splat(x, y), sharded._splat(x, y))


# ----------------------------------------------------------------------
# Real process pool
# ----------------------------------------------------------------------
class TestKernelPool:
    def test_pool_rudy_and_sta_match_serial(self):
        design = _design("sb_mini_1", 0.5)
        x, y = initial_placement(design, seed=1)
        design.set_positions(x, y)
        constraints = TimingConstraints.from_design(design)
        before = _shm_entries()
        with KernelPool(2) as pool:
            serial_map = CongestionEstimator(design).estimate(x, y)
            pooled_map = CongestionEstimator(
                design, CongestionConfig(workers=2), runner=pool
            ).estimate(x, y)
            assert np.array_equal(serial_map.demand_h, pooled_map.demand_h)
            assert np.array_equal(serial_map.demand_v, pooled_map.demand_v)
            assert np.array_equal(serial_map.pin_density, pooled_map.pin_density)

            serial_sta = STAEngine(design, constraints).update_timing()
            pooled_sta = STAEngine(
                design,
                constraints,
                workers=2,
                runner=pool,
                parallel_min_level_size=1,
            ).update_timing()
            assert np.array_equal(serial_sta.arrival, pooled_sta.arrival)
            assert np.array_equal(serial_sta.required, pooled_sta.required)
        assert _shm_entries() == before

    def test_pool_reuse_across_calls_sees_mutations(self):
        """The parent rewrites positions between calls; workers must see them."""
        design = _design()
        constraints = TimingConstraints.from_design(design)
        with KernelPool(2) as pool:
            engine = STAEngine(
                design,
                constraints,
                workers=2,
                runner=pool,
                parallel_min_level_size=1,
            )
            for seed in (0, 1):
                x, y = initial_placement(design, seed=seed)
                pooled = engine.update_timing(x, y)
                serial = STAEngine(design, constraints).update_timing(x, y)
                assert np.array_equal(serial.arrival, pooled.arrival)
                assert serial.wns == pooled.wns

    def test_worker_exception_tears_down_and_unlinks(self):
        """A kernel raising in a worker poisons the pool and frees /dev/shm."""
        before = _shm_entries()
        pool = KernelPool(2)
        block = pool.register({"data": np.arange(8, dtype=np.float64)})
        # Sanity: the good kernel runs.
        out = pool.run("_selftest_sum", [block], [(0, 8)])
        assert out == [28.0]
        with pytest.raises(KernelPoolError):
            pool.run("_selftest_fail", [block], [(0, 8)])
        assert pool.closed
        assert _shm_entries() == before
        # A poisoned pool refuses further work instead of hanging.
        with pytest.raises(KernelPoolError):
            pool.run("_selftest_sum", [block], [(0, 8)])

    def test_close_is_idempotent_and_unlinks(self):
        before = _shm_entries()
        pool = KernelPool(2)
        pool.register({"data": np.zeros(16)})
        created = _shm_entries() - before
        assert created  # segment exists while the pool holds it
        pool.close()
        pool.close()
        assert _shm_entries() == before


# ----------------------------------------------------------------------
# Worklist satellite: argsort grouping == the old per-level masking
# ----------------------------------------------------------------------
def _mark_reference(level, num_pins, seen, pins):
    """The pre-refactor mark(): np.unique + per-level boolean masks."""
    fresh = pins[~seen[pins]]
    if fresh.size == 0:
        return {}, seen
    seen = seen.copy()
    seen[fresh] = True
    out = {}
    for lvl in np.unique(level[fresh]):
        out[int(lvl)] = fresh[level[fresh] == lvl]
    return out, seen


@settings(max_examples=50, deadline=None)
@given(st.data())
def test_worklist_mark_matches_reference_grouping(data):
    num_pins = data.draw(st.integers(2, 200))
    max_level = data.draw(st.integers(1, 12))
    rng = np.random.default_rng(data.draw(st.integers(0, 1000)))
    level = rng.integers(0, max_level + 1, size=num_pins).astype(np.int64)
    worklist = _LevelWorklist(level, num_pins)
    ref_seen = np.zeros(num_pins, dtype=bool)
    for _ in range(data.draw(st.integers(1, 4))):
        pins = rng.integers(0, num_pins, size=data.draw(st.integers(0, 60)))
        pins = pins.astype(np.int64)
        _, ref_seen = _mark_reference(level, num_pins, ref_seen, pins)
        worklist.mark(pins)
        assert np.array_equal(worklist.seen, ref_seen)
    # Popping each level yields exactly the reference's unique pins per level.
    for lvl in range(max_level + 1):
        popped = worklist.pop(lvl)
        marked = np.nonzero(ref_seen & (level == lvl))[0]
        if popped is None:
            assert marked.size == 0
        else:
            assert np.array_equal(np.sort(popped), marked)


# ----------------------------------------------------------------------
# auto_bin_count satellite: existing tiers pinned, XL unclamped
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "cells,expected",
    [
        (700, 16),  # sb_mini_18
        (900, 16),  # sb_mini_1
        (2000, 16),  # sb_mini_10
        (4000, 32),
        (100_000, 128),  # sb_xl_1
        (250_000, 256),  # sb_xl_2
        (1_000_000, 512),  # 1M tier: the old clamp froze this at 256
    ],
)
def test_auto_bin_count_tiers(cells, expected):
    assert auto_bin_count(cells) == expected


# ----------------------------------------------------------------------
# Config threading: the one knob reaches every consumer
# ----------------------------------------------------------------------
def test_kernel_workers_threads_through_presets():
    from repro.flow.presets import build_flow

    for preset in (
        "efficient_tdp",
        "dreamplace",
        "dreamplace4",
        "differentiable_tdp",
        "routability",
        "routability-gp",
    ):
        flow = build_flow(preset, kernel_workers=3)
        assert flow.kernel_workers == 3
        # The placement stage's config carries the knob (pure construction:
        # no pool is started until a hot path actually runs with workers>0).
        gp_stages = [
            s for s in flow.stages if getattr(s, "config", None) is not None
            and hasattr(s.config, "kernel_workers")
        ]
        assert gp_stages, f"{preset}: no stage carries kernel_workers"
        assert all(s.config.kernel_workers == 3 for s in gp_stages)


def test_kernel_workers_reaches_congestion_config():
    from repro.route.flow import RoutabilityConfig, RoutabilityGPConfig

    for cls in (RoutabilityConfig, RoutabilityGPConfig):
        cfg = cls(kernel_workers=4)
        assert cfg.congestion_config().workers == 4
        assert cfg.placement_config().kernel_workers == 4
        # An explicit congestion.workers wins over the flat knob.
        cfg = cls(kernel_workers=4)
        cfg.congestion.workers = 2
        assert cfg.congestion_config().workers == 2


def test_flow_context_threads_workers_into_sta():
    from repro.flow.context import FlowContext
    from repro.utils.profiling import RuntimeProfiler

    design = _design()
    ctx = FlowContext(
        design=design,
        constraints=TimingConstraints.from_design(design),
        profiler=RuntimeProfiler(),
        kernel_workers=5,
    )
    engine = ctx.require_sta()
    assert engine.workers == 5


def test_congestion_config_rejects_negative_workers():
    with pytest.raises(ValueError):
        CongestionConfig(workers=-1).validate()


# ----------------------------------------------------------------------
# Batch satellite: affinity-aware default + metadata
# ----------------------------------------------------------------------
def test_batch_reports_worker_resolution():
    from repro.flow.batch import BatchJob, run_batch

    job = BatchJob(
        design="sb_mini_18",
        preset="dreamplace",
        scale=0.2,
        overrides={"max_iterations": 5},
    )
    auto = run_batch([job])
    assert auto.as_dict()["workers_source"] == "auto"
    assert 1 <= auto.max_workers <= resolve_worker_count()
    explicit = run_batch([job], max_workers=2)
    assert explicit.as_dict()["workers_source"] == "explicit"
    assert explicit.max_workers == 2
