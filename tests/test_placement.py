"""Tests for the placement substrate: wirelength, density, optimizer, placer, legalization."""

import numpy as np
import pytest

from repro.placement import (
    AbacusLegalizer,
    DetailedPlacer,
    ElectrostaticDensity,
    GlobalPlacer,
    GreedyLegalizer,
    NesterovOptimizer,
    PlacementConfig,
    WeightedAverageWirelength,
    hpwl_per_net,
    initial_placement,
    total_hpwl,
)
from repro.placement.initial import clamp_to_die


class TestHPWL:
    def test_matches_design_total(self, tiny_design):
        assert total_hpwl(tiny_design) == pytest.approx(tiny_design.total_hpwl(), rel=1e-9)

    def test_per_net_matches_object_model(self, small_design):
        per_net = hpwl_per_net(small_design)
        for net in small_design.nets[:50]:
            assert per_net[net.index] == pytest.approx(net.hpwl(), rel=1e-9)

    def test_net_weights_scale_total(self, tiny_design):
        weights = np.full(tiny_design.num_nets, 2.0)
        assert total_hpwl(tiny_design, net_weights=weights) == pytest.approx(
            2.0 * total_hpwl(tiny_design), rel=1e-9
        )

    def test_translation_invariance(self, small_design):
        x, y = small_design.positions()
        base = total_hpwl(small_design, x, y)
        assert total_hpwl(small_design, x + 7.0, y - 3.0) == pytest.approx(base, rel=1e-9)


class TestWeightedAverageWirelength:
    def test_upper_bounds_hpwl(self, small_design):
        x, y = small_design.positions()
        wa = WeightedAverageWirelength(small_design, gamma=5.0)
        result = wa.evaluate(x, y)
        # The WA model converges to HPWL from below as gamma -> 0; with a
        # finite gamma it underestimates but must stay within a few gammas
        # per net.
        hpwl = total_hpwl(small_design, x, y)
        assert result.value <= hpwl + 1e-6
        assert result.value >= hpwl - 4 * 5.0 * small_design.num_nets

    def test_smaller_gamma_is_tighter(self, fresh_small_design):
        design = fresh_small_design
        x, y = initial_placement(design, seed=3)
        loose = WeightedAverageWirelength(design, gamma=20.0).evaluate(x, y).value
        tight = WeightedAverageWirelength(design, gamma=1.0).evaluate(x, y).value
        hpwl = total_hpwl(design, x, y)
        assert abs(hpwl - tight) < abs(hpwl - loose)

    def test_gradient_matches_finite_difference(self, tiny_design):
        wa = WeightedAverageWirelength(tiny_design, gamma=2.0)
        x, y = tiny_design.positions()
        result = wa.evaluate(x, y)
        inst = tiny_design.instance("u1").index
        eps = 1e-4
        for grad, arr, which in [(result.grad_x, x, "x"), (result.grad_y, y, "y")]:
            plus = arr.copy()
            minus = arr.copy()
            plus[inst] += eps
            minus[inst] -= eps
            if which == "x":
                f_plus = wa.evaluate(plus, y).value
                f_minus = wa.evaluate(minus, y).value
            else:
                f_plus = wa.evaluate(x, plus).value
                f_minus = wa.evaluate(x, minus).value
            numeric = (f_plus - f_minus) / (2 * eps)
            assert grad[inst] == pytest.approx(numeric, rel=1e-3, abs=1e-6)

    def test_fixed_instances_have_zero_gradient(self, tiny_design):
        wa = WeightedAverageWirelength(tiny_design)
        x, y = tiny_design.positions()
        result = wa.evaluate(x, y)
        for port in tiny_design.ports:
            assert result.grad_x[port.index] == 0.0
            assert result.grad_y[port.index] == 0.0

    def test_invalid_gamma_rejected(self, tiny_design):
        wa = WeightedAverageWirelength(tiny_design)
        with pytest.raises(ValueError):
            wa.set_gamma(0.0)

    def test_net_weight_scales_gradient(self, tiny_design):
        wa = WeightedAverageWirelength(tiny_design, gamma=2.0)
        x, y = tiny_design.positions()
        weights = np.ones(tiny_design.num_nets)
        weights[tiny_design.net("n1").index] = 3.0
        base = wa.evaluate(x, y)
        weighted = wa.evaluate(x, y, net_weights=weights)
        # The weighted gradient on cells of net n1 grows; others unchanged.
        u1 = tiny_design.instance("u1").index
        assert abs(weighted.grad_x[u1]) > abs(base.grad_x[u1]) - 1e-12


class TestDensity:
    def test_overflow_drops_when_spreading(self, fresh_small_design):
        design = fresh_small_design
        density = ElectrostaticDensity(design, target_density=1.0)
        x0, y0 = initial_placement(design, spread=0.02, seed=0)
        clustered = density.evaluate(x0, y0)
        x1, y1 = initial_placement(design, spread=0.5, seed=0)
        x1, y1 = clamp_to_die(design, x1, y1)
        spread = density.evaluate(x1, y1)
        assert spread.overflow < clustered.overflow

    def test_gradient_pushes_away_from_cluster(self, fresh_small_design):
        design = fresh_small_design
        density = ElectrostaticDensity(design)
        x, y = initial_placement(design, spread=0.02, seed=1)
        result = density.evaluate(x, y)
        movable = design.arrays.movable_index
        # The density force must be nonzero for a clustered placement.
        assert np.abs(result.grad_x[movable]).max() > 0

    def test_fixed_cells_have_zero_gradient(self, fresh_small_design):
        design = fresh_small_design
        density = ElectrostaticDensity(design)
        x, y = initial_placement(design, seed=1)
        result = density.evaluate(x, y)
        fixed = np.nonzero(design.arrays.inst_fixed)[0]
        assert np.all(result.grad_x[fixed] == 0.0)

    def test_overflow_nonnegative(self, fresh_small_design):
        design = fresh_small_design
        density = ElectrostaticDensity(design)
        x, y = initial_placement(design, seed=2)
        assert density.overflow(x, y) >= 0.0

    def test_uniform_placement_has_low_overflow(self, fresh_small_design):
        design = fresh_small_design
        density = ElectrostaticDensity(design, target_density=1.0)
        arrays = design.arrays
        die = design.die
        movable = arrays.movable_index
        rng = np.random.default_rng(0)
        x, y = design.positions()
        x[movable] = rng.uniform(die.xl, die.xh - arrays.inst_width[movable])
        y[movable] = rng.uniform(die.yl, die.yh - arrays.inst_height[movable])
        assert density.overflow(x, y) < 0.35


class TestNesterov:
    def test_minimizes_quadratic(self):
        target = np.array([3.0, -2.0, 5.0])
        x0 = np.zeros(3)
        optimizer = NesterovOptimizer(
            x0, np.zeros(3), movable_mask=np.ones(3, dtype=bool),
            min_step=1e-3, max_step=1.0,
        )

        def grad(x, y):
            return 2 * (x - target), np.zeros_like(y)

        for _ in range(200):
            x, _ = optimizer.step_once(grad)
        assert np.allclose(x, target, atol=1e-2)

    def test_fixed_mask_not_moved(self):
        mask = np.array([True, False])
        optimizer = NesterovOptimizer(
            np.zeros(2), np.zeros(2), movable_mask=mask, min_step=0.01, max_step=0.5
        )

        def grad(x, y):
            return np.ones_like(x), np.ones_like(y)

        x, y = optimizer.step_once(grad)
        assert x[1] == 0.0 and y[1] == 0.0
        assert x[0] != 0.0

    def test_invalid_steps_rejected(self):
        with pytest.raises(ValueError):
            NesterovOptimizer(np.zeros(1), np.zeros(1), movable_mask=np.ones(1, bool),
                              min_step=1.0, max_step=0.5)

    def test_reset_momentum(self):
        optimizer = NesterovOptimizer(np.zeros(2), np.zeros(2),
                                      movable_mask=np.ones(2, bool),
                                      min_step=0.01, max_step=0.5)
        optimizer.step_once(lambda x, y: (np.ones_like(x), np.ones_like(y)))
        optimizer.reset_momentum()
        assert optimizer.state.momentum == 1.0


class TestInitialPlacement:
    def test_inside_die(self, fresh_small_design):
        design = fresh_small_design
        x, y = initial_placement(design, seed=0)
        arrays = design.arrays
        movable = arrays.movable_index
        die = design.die
        assert np.all(x[movable] >= die.xl - 1e-9)
        assert np.all(x[movable] + arrays.inst_width[movable] <= die.xh + 1e-9)
        assert np.all(y[movable] + arrays.inst_height[movable] <= die.yh + 1e-9)

    def test_deterministic(self, fresh_small_design):
        x1, y1 = initial_placement(fresh_small_design, seed=4)
        x2, y2 = initial_placement(fresh_small_design, seed=4)
        assert np.allclose(x1, x2) and np.allclose(y1, y2)

    def test_fixed_cells_untouched(self, fresh_small_design):
        design = fresh_small_design
        before = {p.name: (p.x, p.y) for p in design.ports}
        x, y = initial_placement(design, seed=0)
        for port in design.ports:
            assert (x[port.index], y[port.index]) == before[port.name]


class TestLegalization:
    @pytest.fixture()
    def globally_placed(self, fresh_small_design):
        design = fresh_small_design
        placer = GlobalPlacer(design, PlacementConfig(max_iterations=200, seed=0))
        result = placer.run()
        return design, result

    def test_abacus_no_overlaps(self, globally_placed):
        design, result = globally_placed
        legal = AbacusLegalizer(design).legalize(result.x, result.y)
        assert legal.success
        from repro.evaluation.evaluator import _row_overlap_area

        assert _row_overlap_area(design, legal.x, legal.y) == pytest.approx(0.0, abs=1e-6)

    def test_abacus_rows_and_sites(self, globally_placed):
        design, result = globally_placed
        legal = AbacusLegalizer(design).legalize(result.x, result.y)
        rows_y = {row.y for row in design.rows()}
        movable = design.arrays.movable_index
        for idx in movable:
            assert float(legal.y[idx]) in rows_y
            offset = (legal.x[idx] - design.die.xl) / design.site_width
            assert abs(offset - round(offset)) < 1e-6

    def test_abacus_stays_inside_die(self, globally_placed):
        design, result = globally_placed
        legal = AbacusLegalizer(design).legalize(result.x, result.y)
        arrays = design.arrays
        movable = arrays.movable_index
        assert np.all(legal.x[movable] + arrays.inst_width[movable] <= design.die.xh + 1e-6)
        assert np.all(legal.x[movable] >= design.die.xl - 1e-6)

    def test_greedy_no_overlaps(self, globally_placed):
        design, result = globally_placed
        legal = GreedyLegalizer(design).legalize(result.x, result.y)
        assert legal.success
        from repro.evaluation.evaluator import _row_overlap_area

        assert _row_overlap_area(design, legal.x, legal.y) == pytest.approx(0.0, abs=1e-6)

    def test_abacus_displacement_not_worse_than_greedy(self, globally_placed):
        design, result = globally_placed
        abacus = AbacusLegalizer(design).legalize(result.x, result.y)
        greedy = GreedyLegalizer(design).legalize(result.x, result.y)
        assert abacus.total_displacement <= greedy.total_displacement * 1.5

    def test_apply_writes_positions(self, globally_placed):
        design, result = globally_placed
        legalizer = AbacusLegalizer(design)
        legal = legalizer.legalize(result.x, result.y)
        legalizer.apply(legal)
        x, y = design.positions()
        assert np.allclose(x, legal.x)

    def test_detailed_placement_does_not_increase_hpwl(self, globally_placed):
        design, result = globally_placed
        legal = AbacusLegalizer(design).legalize(result.x, result.y)
        design.set_positions(legal.x, legal.y)
        before = total_hpwl(design)
        detailed = DetailedPlacer(design, max_passes=1)
        x, y, swaps = detailed.refine()
        after = total_hpwl(design, x, y)
        assert after <= before + 1e-6


class TestGlobalPlacer:
    def test_converges_and_reduces_overflow(self, fresh_small_design):
        design = fresh_small_design
        placer = GlobalPlacer(design, PlacementConfig(max_iterations=250, seed=0))
        result = placer.run()
        assert result.overflow <= 0.15
        assert result.iterations <= 250
        assert len(result.history.hpwl) == result.iterations

    def test_history_records_metrics(self, fresh_small_design):
        placer = GlobalPlacer(fresh_small_design, PlacementConfig(max_iterations=60, seed=0))
        result = placer.run()
        assert len(result.history.overflow) == 60
        assert all(v >= 0 for v in result.history.overflow)

    def test_callback_invoked(self, fresh_small_design):
        placer = GlobalPlacer(fresh_small_design, PlacementConfig(max_iterations=30, seed=0))
        seen = []
        placer.add_callback(lambda p, i, x, y: seen.append(i))
        placer.run()
        assert seen == list(range(1, 31))

    def test_positions_written_back(self, fresh_small_design):
        design = fresh_small_design
        placer = GlobalPlacer(design, PlacementConfig(max_iterations=50, seed=0))
        result = placer.run()
        x, y = design.positions()
        assert np.allclose(x, result.x)

    def test_net_weight_validation(self, fresh_small_design):
        placer = GlobalPlacer(fresh_small_design)
        with pytest.raises(ValueError):
            placer.set_net_weights(np.ones(3))
