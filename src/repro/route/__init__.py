"""Routability subsystem: congestion estimation and congestion-driven repair.

* :mod:`repro.route.rudy` — vectorized RUDY / pin-density congestion maps
  over the design core arrays, with per-layer capacity from the floorplan
  and ACE-style congestion scores;
* :mod:`repro.route.inflation` — congestion-driven cell inflation: hot
  cells grow (as seen by the density model), placement re-runs, overflow
  converges;
* :mod:`repro.route.flow` — the ``routability`` flow preset configuration
  and helpers to retrofit congestion awareness onto any existing preset.
"""

from repro.route.inflation import (
    CellInflation,
    InflationConfig,
    InflationOutcome,
    InflationRound,
    run_inflation_loop,
)
from repro.route.rudy import (
    CongestionConfig,
    CongestionEstimator,
    CongestionResult,
    estimate_congestion,
)

__all__ = [
    "CellInflation",
    "CongestionConfig",
    "CongestionEstimator",
    "CongestionResult",
    "InflationConfig",
    "InflationOutcome",
    "InflationRound",
    "estimate_congestion",
    "run_inflation_loop",
]
