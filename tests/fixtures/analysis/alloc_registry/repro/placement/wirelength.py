"""Fixture: registry-covered steady-state method allocating (path-keyed).

The file lives under a fake ``repro/placement/`` tree so the linter's
path-suffix registry applies exactly as it does to the production module.
"""

import numpy as np


class WeightedAverageWirelength:
    def evaluate(self, x, y):
        grad = np.zeros(x.size, dtype=np.float64)
        return grad

    def cold_rebuild(self, x):
        # Not in the registry: free to allocate.
        return np.zeros(x.size, dtype=np.float64)
