"""Congestion-driven cell inflation (routability repair).

The classic routability-driven placement move (used by RePlAce, DREAMPlace,
and the NTUplace line): cells sitting in congested bins are virtually
*inflated* — their area, as seen by the density model, is scaled up — and
global placement is re-run.  The density force then spreads the hot region,
trading a little wirelength for routing headroom.  The loop is::

    place -> estimate congestion -> inflate hot cells -> re-place -> ...

until the peak overflow drops below target, stops improving, or the
wirelength budget is exhausted.  Inflation factors grow multiplicatively
with clamped per-round steps and decay back toward 1 where congestion has
cleared, so repeated rounds converge instead of ratcheting every cell up.

:class:`CellInflation` owns the per-instance factors; :func:`run_inflation_
loop` drives the iteration against any placement callback, which keeps this
module independent of the placement engine (the flow stage supplies a
callback that re-runs :class:`~repro.placement.global_placer.GlobalPlacer`
with the inflated areas).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.netlist.core import as_core
from repro.route.rudy import CongestionEstimator, CongestionResult
from repro.utils.logging import get_logger

logger = get_logger("route.inflation")

__all__ = [
    "InflationConfig",
    "CellInflation",
    "InflationRound",
    "InflationOutcome",
    "run_inflation_loop",
]

# A placement callback: (x0, y0, area_scale) -> final (x, y).  The scale is
# per-instance (1.0 = no inflation) and only meaningful for movable cells.
PlaceFn = Callable[[np.ndarray, np.ndarray, np.ndarray], Tuple[np.ndarray, np.ndarray]]

# A legalization callback: (x, y) -> legalized (x, y), used to *score*
# candidate placements on what they will actually look like after
# legalization (see InflationConfig.score_legalized).
LegalizeFn = Callable[[np.ndarray, np.ndarray], Tuple[np.ndarray, np.ndarray]]


@dataclass
class InflationConfig:
    """Knobs of the congestion-driven inflation loop."""

    # Loop control.
    max_rounds: int = 3
    overflow_target: float = 0.05     # stop once peak overflow is below this
    min_improvement: float = 0.01     # stop when a round improves less than this
    # HPWL budget on the *raw* (pre-legalization) wirelength.  Legalization
    # typically refunds most of it on congested designs — the inflated
    # placement spreads better, so it legalizes with less displacement —
    # which is why the raw budget is looser than a final-HPWL budget.
    max_hpwl_growth: float = 0.04     # reject rounds costing more wirelength
    # Per-cell factor dynamics.
    gamma: float = 1.0                # inflation = ratio ** gamma in hot bins
    max_step: float = 1.6             # per-round growth clamp
    max_total: float = 2.5            # accumulated growth clamp
    decay: float = 0.85               # relaxation toward 1 in cool bins
    # Score rounds on *legalized* copies of each candidate placement (when
    # the loop is given a legalizer).  Global placements overlap cells, and
    # overlap hides RUDY demand: a hot region can look clean unlegalized and
    # blow up once cells snap to rows.  Scoring the legalized copy makes the
    # accept/reject decision optimize the overflow that survives to the
    # final report instead of a mirage.  The loop still iterates (inflates /
    # warm-starts) from the raw placements.
    score_legalized: bool = True

    def validate(self) -> None:
        if self.max_rounds < 0:
            raise ValueError("max_rounds must be non-negative")
        if self.max_step < 1.0:
            # A cap below 1 would clip every hot cell's growth to <1 and the
            # [1, max_total] clamp would then silently erase it — rounds
            # would re-run placement with zero inflation applied.
            raise ValueError("max_step must be at least 1")
        if self.max_total < 1.0:
            raise ValueError("max_total must be at least 1")
        if not 0.0 <= self.decay <= 1.0:
            raise ValueError("decay must be in [0, 1]")
        if self.max_hpwl_growth < 0.0:
            raise ValueError("max_hpwl_growth must be non-negative")


class CellInflation:
    """Per-instance area inflation factors driven by a congestion map."""

    def __init__(self, design, config: Optional[InflationConfig] = None) -> None:
        self.core = as_core(design)
        self.config = config if config is not None else InflationConfig()
        self.config.validate()
        self.scale = np.ones(self.core.num_instances, dtype=np.float64)

    def reset(self) -> None:
        self.scale[:] = 1.0

    @property
    def num_inflated(self) -> int:
        return int(np.count_nonzero(self.scale > 1.0 + 1e-12))

    @property
    def inflated_area_ratio(self) -> float:
        """Total inflated movable area over the original movable area."""
        movable = self.core.movable_index
        area = self.core.inst_area[movable]
        total = float(area.sum())
        if total <= 0:
            return 1.0
        return float((area * self.scale[movable]).sum()) / total

    def update(
        self,
        estimator: CongestionEstimator,
        result: CongestionResult,
        x: np.ndarray,
        y: np.ndarray,
    ) -> int:
        """Grow factors of cells in overflowing bins, decay the rest.

        Returns the number of instances whose factor grew this round.
        """
        cfg = self.config
        bx, by = estimator.cell_bins(x, y)
        ratio = result.ratio[bx, by]
        movable = self.core.movable_mask
        hot = movable & (ratio > 1.0)

        grown = np.clip(ratio[hot] ** cfg.gamma, 1.0, cfg.max_step)
        self.scale[hot] *= grown
        cool = movable & ~hot
        # Decay multiplicatively toward 1 so factors release once the
        # congestion that caused them has dissolved.
        self.scale[cool] = 1.0 + (self.scale[cool] - 1.0) * cfg.decay
        np.clip(self.scale, 1.0, cfg.max_total, out=self.scale)
        self.scale[~movable] = 1.0
        return int(np.count_nonzero(hot))


@dataclass
class InflationRound:
    """Diagnostics of one estimate→inflate→place round."""

    round: int
    peak_overflow: float
    average_overflow: float
    hotspot_bins: int
    hpwl: float
    num_inflated: int
    inflated_area_ratio: float
    accepted: bool = True

    def as_dict(self) -> Dict[str, float]:
        return {
            "round": self.round,
            "peak_overflow": round(self.peak_overflow, 6),
            "average_overflow": round(self.average_overflow, 6),
            "hotspot_bins": self.hotspot_bins,
            "hpwl": round(self.hpwl, 3),
            "num_inflated": self.num_inflated,
            "inflated_area_ratio": round(self.inflated_area_ratio, 4),
            "accepted": self.accepted,
        }


@dataclass
class InflationOutcome:
    """Final state of one inflation loop."""

    x: np.ndarray
    y: np.ndarray
    result: CongestionResult
    rounds: List[InflationRound] = field(default_factory=list)
    converged: bool = False
    accepted_round: int = 0

    @property
    def initial_peak_overflow(self) -> float:
        return self.rounds[0].peak_overflow if self.rounds else 0.0

    @property
    def final_peak_overflow(self) -> float:
        return self.result.peak_overflow

    def as_dict(self) -> Dict[str, object]:
        return {
            "rounds": [r.as_dict() for r in self.rounds],
            "converged": self.converged,
            "accepted_round": self.accepted_round,
            "initial_peak_overflow": round(self.initial_peak_overflow, 6),
            "final_peak_overflow": round(self.final_peak_overflow, 6),
        }


def run_inflation_loop(
    design,
    place_fn: PlaceFn,
    x0: np.ndarray,
    y0: np.ndarray,
    *,
    estimator: Optional[CongestionEstimator] = None,
    config: Optional[InflationConfig] = None,
    legalize_fn: Optional[LegalizeFn] = None,
) -> InflationOutcome:
    """Iterate place → estimate → inflate until overflow converges.

    ``place_fn(x, y, area_scale)`` re-runs global placement warm-started at
    ``(x, y)`` with the density model seeing ``area * area_scale`` per
    instance, and returns the new positions.  The loop keeps the best
    placement seen: lowest peak overflow among rounds whose HPWL stays
    within ``config.max_hpwl_growth`` of the starting placement (the
    starting placement itself is always admissible, so a fruitless loop
    degrades nothing).

    With ``legalize_fn`` and ``config.score_legalized`` (the default), every
    candidate — including the starting placement — is *scored* (congestion +
    HPWL) on a legalized copy, while inflation and warm starts keep using
    the raw placements; the returned positions stay unlegalized.
    """
    core = as_core(design)
    config = config if config is not None else InflationConfig()
    config.validate()
    estimator = estimator if estimator is not None else CongestionEstimator(core)
    inflation = CellInflation(core, config)

    def score(
        raw_x: np.ndarray, raw_y: np.ndarray
    ) -> Tuple[CongestionResult, float, np.ndarray, np.ndarray]:
        sx, sy = raw_x, raw_y
        if legalize_fn is not None and config.score_legalized:
            sx, sy = legalize_fn(raw_x, raw_y)
        return estimator.estimate(sx, sy), core.total_hpwl(sx, sy), sx, sy

    x = np.asarray(x0, dtype=np.float64).copy()
    y = np.asarray(y0, dtype=np.float64).copy()
    result, base_hpwl, sx, sy = score(x, y)
    hpwl_budget = base_hpwl * (1.0 + config.max_hpwl_growth)

    rounds = [
        InflationRound(
            round=0,
            peak_overflow=result.peak_overflow,
            average_overflow=result.average_overflow,
            hotspot_bins=result.num_hotspots,
            hpwl=base_hpwl,
            num_inflated=0,
            inflated_area_ratio=1.0,
        )
    ]
    best = (x, y, result)
    best_peak = result.peak_overflow
    accepted_round = 0
    converged = best_peak <= config.overflow_target

    for round_index in range(1, config.max_rounds + 1):
        if converged:
            break
        # Inflate against the scored (possibly legalized) geometry so the
        # factors target the congestion that survives legalization.
        num_inflated = inflation.update(estimator, result, sx, sy)
        if num_inflated == 0:
            break
        x, y = place_fn(x, y, inflation.scale)
        result, hpwl, sx, sy = score(x, y)
        within_budget = hpwl <= hpwl_budget
        improved = result.peak_overflow < best_peak - config.min_improvement
        accepted = within_budget and result.peak_overflow < best_peak
        rounds.append(
            InflationRound(
                round=round_index,
                peak_overflow=result.peak_overflow,
                average_overflow=result.average_overflow,
                hotspot_bins=result.num_hotspots,
                hpwl=hpwl,
                num_inflated=num_inflated,
                inflated_area_ratio=inflation.inflated_area_ratio,
                accepted=accepted,
            )
        )
        if accepted:
            best = (x, y, result)
            best_peak = result.peak_overflow
            accepted_round = round_index
        logger.debug(
            "inflation round %d: peak overflow %.4f (best %.4f), hpwl %.4g, "
            "%d cells inflated",
            round_index,
            result.peak_overflow,
            best_peak,
            hpwl,
            num_inflated,
        )
        if best_peak <= config.overflow_target:
            converged = True
        elif not improved and round_index >= 2:
            # Two rounds without meaningful progress: the congestion left is
            # structural (capacity, not placement) — stop burning runtime.
            break

    x, y, result = best
    return InflationOutcome(
        x=x,
        y=y,
        result=result,
        rounds=rounds,
        converged=converged or best_peak <= config.overflow_target,
        accepted_round=accepted_round,
    )
