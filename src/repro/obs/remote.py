"""Cross-process span collection: record locally, ship, re-parent.

KernelPool workers and process-executor batch jobs cannot write into the
dispatching process's tracer, and their ``perf_counter`` epochs are
unrelated to the parent's.  The protocol here keeps the hot path simple:

* the child records spans into its own collector/tracer (absolute local
  clock values);
* :func:`serialize_trace` / :meth:`ChildSpanCollector.payload` flatten
  them to plain tuples with *relative* start times (child epoch
  subtracted) so the payload is picklable over the existing Pipe/result
  channel;
* :func:`adopt_spans` replays the payload into the parent tracer with
  fresh span ids, roots re-parented under the dispatching span, and start
  times rebased onto the dispatch span's start.

Durations are exact; absolute alignment of child spans inside the
dispatch window is approximate (child epoch ≈ dispatch start), which is
the right trade for a deterministic, spawn-safe protocol with no clock
handshake.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Union

from .tracer import SpanRecord, Tracer

__all__ = ["ChildSpanCollector", "serialize_trace", "adopt_spans"]

#: Payload schema version, bumped if the tuple layout changes.
PAYLOAD_VERSION = 1


def serialize_trace(tracer: Tracer) -> Dict[str, Any]:
    """Flatten ``tracer`` into a picklable payload for :func:`adopt_spans`."""
    epoch = tracer.epoch
    metrics_snapshot = tracer.metrics()
    spans = [
        (
            record.span_id,
            record.parent_id,
            record.name,
            record.start - epoch,
            record.dur,
            record.attrs,
        )
        for record in tracer.records()
    ]
    return {
        "version": PAYLOAD_VERSION,
        "spans": spans,
        "counters": metrics_snapshot["counters"],
        "gauges": metrics_snapshot["gauges"],
        "dropped": metrics_snapshot["dropped"],
    }


class ChildSpanCollector:
    """Worker-side recorder: a private tracer plus payload serialization.

    KernelPool workers build one per "run" message when the parent asked
    for tracing, wrap each kernel task in :meth:`span`, and send
    :meth:`payload` back piggybacked on the result tuple.
    """

    def __init__(self, capacity: int = 65_536) -> None:
        self.tracer = Tracer(capacity=capacity)

    def span(self, name: str, **attrs: Any):
        return self.tracer.span(name, **attrs)

    def counter(self, name: str, value: float = 1.0) -> None:
        self.tracer.counter(name, value)

    def gauge(self, name: str, value: float) -> None:
        self.tracer.gauge(name, value)

    def payload(self) -> Dict[str, Any]:
        return serialize_trace(self.tracer)


def adopt_spans(
    tracer: Tracer,
    payload: Optional[Dict[str, Any]],
    *,
    parent_id: Optional[int],
    base: float,
    track: Union[int, str],
) -> int:
    """Replay a shipped payload into ``tracer``; returns spans adopted.

    ``parent_id`` is the dispatching span's id (shipped roots hang under
    it); ``base`` is the absolute clock value child-relative times are
    rebased onto (normally the dispatch span's ``start``); ``track`` names
    the lane the adopted spans render on ("pool-worker-0", "batch-job-2").
    """
    if not payload:
        return 0
    # Spans ship in finalize order (innermost first), so a child can appear
    # before its parent; assign every fresh id up front so internal parent
    # links survive the replay regardless of order.
    id_map: Dict[int, int] = {
        entry[0]: tracer.new_id() for entry in payload["spans"]
    }
    adopted = 0
    for child_id, child_parent, name, rel_start, dur, attrs in payload["spans"]:
        new_parent = id_map.get(child_parent, parent_id)
        tracer.adopt(
            SpanRecord(
                id_map[child_id], new_parent, name, base + rel_start, dur, track, attrs
            )
        )
        adopted += 1
    tracer.merge_metrics(
        counters=payload.get("counters"),
        gauges=payload.get("gauges"),
        dropped=payload.get("dropped", 0),
    )
    return adopted
