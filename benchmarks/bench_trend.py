"""Perf-trajectory trend check: fresh BENCH_core rows vs the committed baseline.

CI uploads each run's freshly measured ``BENCH_core.fresh.json`` as an
artifact (the perf trajectory); this script closes the loop by *diffing* a
fresh measurement against the committed ``benchmarks/results/BENCH_core.json``
baseline and failing when any gated row regresses by more than the
tolerance (default 10%).

Gated rows are the wall-clock numbers the perf gates care about:

* ``sta_full_ms`` / ``sta_incremental_1pct_ms`` — STA inner-loop cost;
* ``congestion_map_ms`` — RUDY map build (routability inner loop);
* ``gp_plain_ms`` / ``gp_congestion_weighted_ms`` — fixed-length global
  placement without / with in-loop congestion weighting;
* ``snapshot_rebuild_ms`` — worker-side CompiledDesign rebuild;
* ``legalize_ms`` / ``detailed_ms`` — back-end walls: array-backed Abacus
  legalization and the delta-HPWL detailed-placement pass (capped at the
  XL tier; see ``bench_core.DETAILED_XL_CANDIDATES``).

On top of the baseline diff, every fresh row carrying both ``gp_plain_ms``
and ``gp_traced_ms`` is checked *pairwise*: the traced run may not exceed
the untraced run by more than the tracing budget (3% plus a 5ms jitter
floor).  Both walls come from the same bench invocation, so this gate is
enforced even when the baseline was recorded on a different host.

Absolute wall-clock numbers do not transfer across hosts, so when the
baseline was recorded on a different machine/interpreter the comparison is
reported but not enforced (same policy as ``bench_core.py --check``).
Rows whose baseline is under 0.5ms are likewise reported but not enforced:
at that magnitude scheduler jitter dominates even best-of-N timings and a
relative gate flakes (``bench_core.py --check`` gates those same rows with
its own absolute floor).

Usage::

    PYTHONPATH=src python benchmarks/bench_core.py --check \
        --fresh-out benchmarks/results/BENCH_core.fresh.json
    python benchmarks/bench_trend.py \
        --baseline benchmarks/results/BENCH_core.json \
        --fresh benchmarks/results/BENCH_core.fresh.json
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

GATED_FIELDS = (
    "sta_full_ms",
    "sta_incremental_1pct_ms",
    "congestion_map_ms",
    "gp_plain_ms",
    "gp_congestion_weighted_ms",
    "snapshot_rebuild_ms",
    "legalize_ms",
    "detailed_ms",
)
# XL tier (payload key "xl_designs"): only the *serial* hot-path walls are
# gated.  The kernel-pool speedup fields (congestion_map_speedup_w4, ...)
# depend on the host's core count, so they are reported but never enforced.
XL_GATED_FIELDS = (
    "congestion_map_ms",
    "sta_full_ms",
    "gp_iter_ms",
    "legalize_ms",
    "detailed_ms",
)
XL_INFO_FIELDS = (
    "congestion_map_speedup_w4",
    "sta_full_speedup_w4",
    "density_splat_speedup_w4",
    "gp_plan_speedup",
    "gp_iter_speedup_w4",
    "legalize_speedup",
    "detailed_speedup",
)
# Below this, best-of-N timings are scheduler noise and a relative gate flakes.
ABS_FLOOR_MS = 0.5
# Tracing budget on the paired same-run gp_plain_ms/gp_traced_ms walls
# (mirrors bench_core.py --max-tracing-overhead and its jitter floor).
TRACING_OVERHEAD_LIMIT = 0.03
TRACING_FLOOR_MS = 5.0


def load_rows(path: Path) -> dict:
    payload = json.loads(path.read_text(encoding="utf-8"))
    return {
        "host": (payload.get("machine"), payload.get("python")),
        "rows": {row["design"]: row for row in payload.get("designs", [])},
        "xl_rows": {row["design"]: row for row in payload.get("xl_designs", [])},
    }


def diff(baseline: dict, fresh: dict, *, tolerance: float, enforce: bool) -> int:
    """Print the per-design/per-field trend table; return the exit status."""
    failures = []
    header = f"{'design':<12} {'field':<26} {'baseline':>10} {'fresh':>10} {'delta':>8}"
    print(header)
    print("-" * len(header))
    def diff_row(design, base_row, fresh_row, fields):
        for field in fields:
            if field not in fresh_row or field not in base_row:
                continue
            recorded = float(base_row[field])
            measured = float(fresh_row[field])
            delta = measured / recorded - 1.0 if recorded > 0 else 0.0
            flag = ""
            regressed = measured > recorded * (1.0 + tolerance)
            # Sub-floor rows are jitter-dominated: report, never enforce
            # (an additive floor here would instead let a 3x regression of
            # a 0.3ms row pass as within "10%").
            enforceable = enforce and recorded >= ABS_FLOOR_MS
            if regressed:
                flag = (
                    " REGRESSION" if enforceable else " (regressed; not enforced)"
                )
                if enforceable:
                    failures.append(
                        f"{design}.{field}: {measured:.3f}ms vs recorded "
                        f"{recorded:.3f}ms ({delta:+.1%} > {tolerance:.0%})"
                    )
            print(
                f"{design:<12} {field:<26} {recorded:>9.3f}m {measured:>9.3f}m "
                f"{delta:>+7.1%}{flag}"
            )

    for design, fresh_row in fresh["rows"].items():
        # Paired same-run tracing gate: both walls are from the fresh bench
        # invocation, so it holds regardless of the baseline's host profile.
        plain_ms = float(fresh_row.get("gp_plain_ms", 0.0))
        traced_ms = float(fresh_row.get("gp_traced_ms", 0.0))
        if plain_ms and traced_ms:
            overhead = traced_ms / plain_ms - 1.0
            limit = plain_ms * (1.0 + TRACING_OVERHEAD_LIMIT) + TRACING_FLOOR_MS
            flag = " TRACING REGRESSION" if traced_ms > limit else ""
            print(
                f"{design:<12} {'gp_traced_ms (paired)':<26} {plain_ms:>9.3f}m "
                f"{traced_ms:>9.3f}m {overhead:>+7.1%}{flag}"
            )
            if traced_ms > limit:
                failures.append(
                    f"{design}.gp_traced_ms: {traced_ms:.3f}ms vs paired "
                    f"untraced {plain_ms:.3f}ms "
                    f"(> {TRACING_OVERHEAD_LIMIT:.0%} tracing budget)"
                )
        base_row = baseline["rows"].get(design)
        if base_row is None:
            print(f"{design:<12} (no baseline row; skipped)")
            continue
        diff_row(design, base_row, fresh_row, GATED_FIELDS)
    for design, fresh_row in fresh.get("xl_rows", {}).items():
        base_row = baseline.get("xl_rows", {}).get(design)
        if base_row is None:
            print(f"{design:<12} (no XL baseline row; skipped)")
            continue
        if base_row.get("scale") != fresh_row.get("scale"):
            # A reduced-scale smoke run (CI's --xl-scale 0.1) measures a
            # different workload than the committed full-scale rows; an
            # absolute-time diff would be meaningless.
            print(
                f"{design:<12} (scale mismatch: baseline "
                f"{base_row.get('scale')} vs fresh {fresh_row.get('scale')}; "
                "skipped)"
            )
            continue
        diff_row(design, base_row, fresh_row, XL_GATED_FIELDS)
        for field in XL_INFO_FIELDS:
            if field in fresh_row:
                print(
                    f"{design:<12} {field:<26} {'':>10} "
                    f"{fresh_row[field]:>8.2f}x  (informational)"
                )
    if failures:
        print()
        for failure in failures:
            print(f"TREND FAILED: {failure}")
        return 1
    print()
    if enforce:
        print(f"trend OK: no gated row regressed more than {tolerance:.0%}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        default=str(Path(__file__).parent / "results" / "BENCH_core.json"),
        help="committed baseline JSON",
    )
    parser.add_argument(
        "--fresh",
        default=str(Path(__file__).parent / "results" / "BENCH_core.fresh.json"),
        help="freshly measured JSON (the uploaded CI artifact)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.10,
        help="allowed regression per gated row (default 0.10 = 10%%)",
    )
    args = parser.parse_args(argv)

    baseline_path, fresh_path = Path(args.baseline), Path(args.fresh)
    if not baseline_path.exists():
        print(f"trend: no baseline at {baseline_path}; nothing to diff")
        return 0
    if not fresh_path.exists():
        print(f"trend: no fresh measurement at {fresh_path}; run bench_core first")
        return 1
    baseline = load_rows(baseline_path)
    fresh = load_rows(fresh_path)

    # Enforcement needs both measurements from the same host profile; where
    # the diff itself runs does not matter (the comparison stays
    # apples-to-apples as long as the two files agree).
    enforce = baseline["host"] == fresh["host"]
    if not enforce:
        print(
            f"trend: baseline recorded on {baseline['host']}, fresh measured "
            f"on {fresh['host']}; reporting only (absolute times do not "
            "transfer across hosts)"
        )
    return diff(baseline, fresh, tolerance=args.tolerance, enforce=enforce)


if __name__ == "__main__":
    raise SystemExit(main())
