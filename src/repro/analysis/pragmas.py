"""``# contract: allow(...)`` pragma parsing and suppression matching.

Pragma syntax (one per line, usually trailing the flagged statement)::

    some_call()  # contract: allow(alloc) reason=fallback when no arena is attached
    # contract: allow(alloc, kernel-purity) reason=shared justification

Rules are comma-separated rule ids; ``reason=`` is **mandatory** — a pragma
without a reason never suppresses anything and instead produces its own
``bad-pragma`` finding, so every waiver in the tree is self-documenting.

A finding is suppressed when a matching pragma sits on the finding's line or
on the line directly above it (for statements too long to share a line with
their justification).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

PRAGMA_RE = re.compile(
    r"#\s*contract:\s*allow\(\s*(?P<rules>[a-zA-Z0-9_\-]+(?:\s*,\s*[a-zA-Z0-9_\-]+)*)\s*\)"
    r"(?:\s+reason=(?P<reason>.*?))?\s*$"
)

BAD_PRAGMA_RULE = "bad-pragma"


@dataclass
class Pragma:
    """One parsed ``allow`` pragma."""

    line: int
    rules: Tuple[str, ...]
    reason: Optional[str]

    @property
    def valid(self) -> bool:
        return bool(self.reason and self.reason.strip())


def scan_pragmas(source_lines: List[str]) -> Dict[int, Pragma]:
    """Map 1-based line numbers to the pragma found on that line (if any)."""
    pragmas: Dict[int, Pragma] = {}
    for lineno, text in enumerate(source_lines, start=1):
        if "contract:" not in text:
            continue
        match = PRAGMA_RE.search(text)
        if match is None:
            continue
        rules = tuple(part.strip() for part in match.group("rules").split(","))
        reason = match.group("reason")
        pragmas[lineno] = Pragma(
            line=lineno, rules=rules, reason=reason.strip() if reason else None
        )
    return pragmas


def matching_pragma(
    pragmas: Dict[int, Pragma], line: int, rule: str
) -> Optional[Pragma]:
    """The pragma suppressing ``rule`` at ``line`` (same line or line above)."""
    for candidate_line in (line, line - 1):
        pragma = pragmas.get(candidate_line)
        if pragma is not None and rule in pragma.rules:
            return pragma
    return None
