"""Tests for the timing substrate: topologies, RC trees, delay models, graph, STA."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.timing import (
    RCTree,
    STAEngine,
    TimingConstraints,
    TimingGraph,
    mst_topology,
    star_topology,
)
from repro.timing.delay_model import WireRCModel
from repro.timing.steiner import half_perimeter

coords = st.floats(0, 1000, allow_nan=False)


class TestTopologies:
    def test_two_pin_star_is_direct_edge(self):
        topo = star_topology([0, 10], [0, 0], driver_index=0)
        assert len(topo.edges) == 1
        assert topo.total_length == pytest.approx(10.0)

    def test_star_center_is_centroid(self):
        topo = star_topology([0, 10, 20], [0, 0, 0], driver_index=0)
        assert topo.node_xy[-1][0] == pytest.approx(10.0)
        assert len(topo.edges) == 3

    def test_single_pin_net(self):
        topo = star_topology([5], [5])
        assert topo.edges == []

    def test_mst_is_a_tree(self):
        xs = [0, 10, 20, 10]
        ys = [0, 0, 0, 10]
        topo = mst_topology(xs, ys, driver_index=0)
        assert len(topo.edges) == 3

    def test_mst_reaches_all_pins(self):
        rng = np.random.default_rng(0)
        xs = rng.uniform(0, 100, 12)
        ys = rng.uniform(0, 100, 12)
        topo = mst_topology(xs, ys, driver_index=3)
        children = {c for _, c, _ in topo.edges}
        assert children | {3} == set(range(12))

    def test_mst_fallback_to_star_for_large_nets(self):
        xs = list(range(100))
        ys = [0] * 100
        topo = mst_topology(xs, ys, max_pins_exact=50)
        # Star adds a virtual center node.
        assert topo.node_xy.shape[0] == 101

    @given(st.lists(st.tuples(coords, coords), min_size=2, max_size=12))
    @settings(max_examples=40, deadline=None)
    def test_mst_length_at_least_half_perimeter(self, points):
        xs = [p[0] for p in points]
        ys = [p[1] for p in points]
        topo = mst_topology(xs, ys)
        # The rectilinear MST is never shorter than the HPWL lower bound.
        assert topo.total_length >= half_perimeter(xs, ys) - 1e-6

    @given(st.lists(st.tuples(coords, coords), min_size=2, max_size=12))
    @settings(max_examples=40, deadline=None)
    def test_star_length_at_least_half_perimeter(self, points):
        # Sum of centroid distances covers the full x and y spans, so the star
        # length is also lower-bounded by the HPWL (the star center may act as
        # a Steiner point, so it is NOT necessarily longer than the MST).
        xs = [p[0] for p in points]
        ys = [p[1] for p in points]
        star = star_topology(xs, ys)
        assert star.total_length >= half_perimeter(xs, ys) - 1e-6


class TestRCTree:
    def test_two_pin_elmore_formula(self):
        r, c = 0.002, 0.00016
        length = 100.0
        pin_cap = 0.005
        topo = star_topology([0, length], [0, 0], driver_index=0)
        tree = RCTree(topo, resistance_per_unit=r, capacitance_per_unit=c,
                      pin_caps=[0.0, pin_cap])
        expected = r * length * (c * length / 2 + pin_cap)
        assert tree.elmore_delay(1) == pytest.approx(expected, rel=1e-9)

    def test_delay_is_quadratic_in_length(self):
        r, c = 0.002, 0.00016

        def delay(length):
            topo = star_topology([0, length], [0, 0], driver_index=0)
            return RCTree(topo, resistance_per_unit=r, capacitance_per_unit=c,
                          pin_caps=[0.0, 0.0]).elmore_delay(1)

        # With no pin load the delay is purely r*c*L^2/2: doubling the length
        # quadruples the delay.
        assert delay(200.0) == pytest.approx(4.0 * delay(100.0), rel=1e-9)

    def test_root_delay_zero(self):
        topo = star_topology([0, 50, 80], [0, 10, -5], driver_index=0)
        tree = RCTree(topo, resistance_per_unit=1e-3, capacitance_per_unit=1e-4)
        assert tree.elmore_delays_to_pins()[0] == 0.0

    def test_farther_sink_has_larger_delay(self):
        topo = star_topology([0, 50, 300], [0, 0, 0], driver_index=0)
        tree = RCTree(topo, resistance_per_unit=1e-3, capacitance_per_unit=1e-4,
                      pin_caps=[0.0, 0.01, 0.01])
        delays = tree.elmore_delays_to_pins()
        assert delays[2] > delays[1] > 0

    def test_total_capacitance_increases_with_length(self):
        short = RCTree(star_topology([0, 10], [0, 0]), resistance_per_unit=1e-3,
                       capacitance_per_unit=1e-4)
        long = RCTree(star_topology([0, 100], [0, 0]), resistance_per_unit=1e-3,
                      capacitance_per_unit=1e-4)
        assert long.total_capacitance > short.total_capacitance


class TestWireRCModel:
    def test_matches_rc_tree_for_two_pin_net(self, tiny_design):
        model = WireRCModel(tiny_design)
        px, py = tiny_design.pin_positions()
        result = model.evaluate(px, py)
        net = tiny_design.net("n1")  # ff1/q -> u1/a
        driver = net.driver
        sink = net.sinks[0]
        lib = tiny_design.library
        length = abs(px[driver.index] - px[sink.index]) + abs(py[driver.index] - py[sink.index])
        expected = lib.wire_resistance_per_unit * length * (
            lib.wire_capacitance_per_unit * length / 2 + sink.capacitance
        )
        assert result.sink_delay[sink.index] == pytest.approx(expected, rel=1e-6)

    def test_driver_pins_have_zero_delay(self, tiny_design):
        model = WireRCModel(tiny_design)
        result = model.evaluate(*tiny_design.pin_positions())
        for net in tiny_design.nets:
            if net.driver is not None:
                assert result.sink_delay[net.driver.index] == 0.0

    def test_net_load_includes_sink_caps(self, tiny_design):
        model = WireRCModel(tiny_design)
        result = model.evaluate(*tiny_design.pin_positions())
        net = tiny_design.net("n1")
        assert result.net_load[net.index] >= net.sinks[0].capacitance

    def test_loads_shrink_when_cells_move_closer(self, tiny_design):
        model = WireRCModel(tiny_design)
        x, y = tiny_design.positions()
        far = model.evaluate(*tiny_design.pin_positions(x, y))
        x_close = x.copy()
        x_close[tiny_design.instance("u1").index] = tiny_design.instance("ff1").x + 5
        close = model.evaluate(*tiny_design.pin_positions(x_close, y))
        net = tiny_design.net("n1").index
        assert close.net_load[net] < far.net_load[net]


class TestTimingGraph:
    def test_clock_net_excluded(self, tiny_design):
        graph = TimingGraph(tiny_design)
        clk_net = tiny_design.net("nclk")
        assert clk_net.index in graph.clock_nets
        for arc in graph.arcs:
            assert arc.net_index != clk_net.index

    def test_arc_counts(self, tiny_design):
        graph = TimingGraph(tiny_design)
        # Net arcs: nin, n1, n2, n3, nq2 (clock net excluded) = 5.
        assert graph.num_net_arcs == 5
        # Cell arcs: 2 DFF ck->q + INV a->o + BUF a->o = 4.
        assert graph.num_cell_arcs == 4

    def test_startpoints_and_endpoints(self, tiny_design):
        graph = TimingGraph(tiny_design)
        start_names = {graph.pin_name(p) for p in graph.startpoints}
        end_names = {graph.pin_name(p) for p in graph.endpoints}
        assert start_names == {"in0", "clk", "ff1/ck", "ff2/ck"}
        assert end_names == {"out0", "ff1/d", "ff2/d"}

    def test_levelization_monotonic(self, small_design):
        graph = TimingGraph(small_design)
        for arc in graph.arcs:
            assert graph.level[arc.from_pin] < graph.level[arc.to_pin]

    def test_fanin_fanout_consistency(self, small_design):
        graph = TimingGraph(small_design)
        total_fanin = sum(graph.fanin_of(p).size for p in range(graph.num_pins))
        total_fanout = sum(graph.fanout_of(p).size for p in range(graph.num_pins))
        assert total_fanin == graph.num_arcs
        assert total_fanout == graph.num_arcs

    def test_describe_keys(self, small_design):
        info = TimingGraph(small_design).describe()
        assert info["num_endpoints"] > 0
        assert info["num_startpoints"] > 0
        assert info["max_level"] > 1

    def test_combinational_loop_detection(self, library):
        from repro.netlist import Design

        design = Design("loop", die=(0, 0, 100, 96), library=library)
        design.add_instance("u1", "INV_X1")
        design.add_instance("u2", "INV_X1")
        design.add_net("a")
        design.add_net("b")
        design.connect("a", "u1", "o")
        design.connect("a", "u2", "a")
        design.connect("b", "u2", "o")
        design.connect("b", "u1", "a")
        design.finalize()
        with pytest.raises(ValueError, match="loop"):
            TimingGraph(design)


class TestSTA:
    def test_register_path_is_critical(self, tiny_design, tiny_constraints):
        engine = STAEngine(tiny_design, tiny_constraints)
        result = engine.update_timing()
        assert result.wns < 0
        assert result.tns <= result.wns
        slack_ff2_d = result.slack[tiny_design.pin("ff2/d").index]
        assert slack_ff2_d == pytest.approx(result.wns)

    def test_tns_sums_negative_endpoint_slacks(self, tiny_design, tiny_constraints):
        engine = STAEngine(tiny_design, tiny_constraints)
        result = engine.update_timing()
        negative = result.endpoint_slack[result.endpoint_slack < 0]
        assert result.tns == pytest.approx(float(negative.sum()))

    def test_relaxed_clock_meets_timing(self, tiny_design):
        engine = STAEngine(tiny_design, TimingConstraints(clock_period=5000.0, clock_port="clk"))
        result = engine.update_timing()
        assert result.wns == 0.0
        assert result.tns == 0.0
        assert result.num_failing_endpoints == 0

    def test_slack_is_required_minus_arrival(self, tiny_design, tiny_constraints):
        engine = STAEngine(tiny_design, tiny_constraints)
        result = engine.update_timing()
        assert np.allclose(result.slack, result.required - result.arrival)

    def test_input_delay_shifts_arrival(self, tiny_design):
        base = STAEngine(tiny_design, TimingConstraints(clock_period=100.0, clock_port="clk"))
        shifted = STAEngine(
            tiny_design,
            TimingConstraints(clock_period=100.0, clock_port="clk", input_delays={"in0": 30.0}),
        )
        pin = tiny_design.pin("ff1/d").index
        assert shifted.update_timing().arrival[pin] == pytest.approx(
            base.update_timing().arrival[pin] + 30.0
        )

    def test_moving_cells_apart_degrades_timing(self, tiny_design, tiny_constraints):
        engine = STAEngine(tiny_design, tiny_constraints)
        x, y = tiny_design.positions()
        base = engine.update_timing(x, y).tns
        x_far = x.copy()
        x_far[tiny_design.instance("u1").index] = 0.0
        x_far[tiny_design.instance("u2").index] = 190.0
        worse = engine.update_timing(x_far, y).tns
        assert worse < base

    def test_failing_endpoints_sorted_worst_first(self, small_design):
        engine = STAEngine(small_design)
        result = engine.update_timing()
        failing = result.failing_endpoints
        slacks = [result.endpoint_slack_of(int(p)) for p in failing]
        assert slacks == sorted(slacks)

    def test_wns_is_min_endpoint_slack(self, small_design):
        engine = STAEngine(small_design)
        result = engine.update_timing()
        if result.num_failing_endpoints:
            assert result.wns == pytest.approx(float(result.endpoint_slack.min()))

    def test_summary_requires_update(self, tiny_design, tiny_constraints):
        engine = STAEngine(tiny_design, tiny_constraints)
        with pytest.raises(RuntimeError):
            engine.summary()
        engine.update_timing()
        assert "wns" in engine.summary()

    def test_bad_constraints_rejected(self, tiny_design):
        with pytest.raises(ValueError):
            STAEngine(tiny_design, TimingConstraints(clock_period=-5.0))
