"""Observability subsystem tests.

Covers the span core (nesting, parent links, ring-buffer loss accounting),
the Chrome-trace exporter and its validator, the cross-process shipping
protocol (KernelPool workers and process-executor batch jobs re-parented
under their dispatch spans), failure cleanup (a traced stage raising must
not leak /dev/shm segments or a stuck global tracer), bitwise invariance
of placement under tracing, and the CLI ``--trace`` / ``trace`` wiring.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.benchgen.suite import load_benchmark
from repro.flow.batch import BatchJob, run_batch
from repro.flow.cli import main as cli_main
from repro.flow.presets import build_flow
from repro.flow.runner import FlowRunner
from repro.obs import (
    ChildSpanCollector,
    Tracer,
    active_tracer,
    adopt_spans,
    chrome_trace,
    clock,
    span,
    start_tracing,
    stop_tracing,
    tracing_enabled,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.tracer import _NOOP_SPAN
from repro.parallel import KernelPool, KernelPoolError
from repro.placement.initial import initial_placement
from repro.route.rudy import CongestionConfig, CongestionEstimator


def _shm_entries():
    """Names currently present under /dev/shm (empty set if unsupported)."""
    root = Path("/dev/shm")
    if not root.exists():  # pragma: no cover - non-Linux
        return set()
    return {entry.name for entry in root.iterdir()}


@pytest.fixture(autouse=True)
def _no_global_tracer_leak():
    """Every test starts and ends with tracing disabled."""
    stop_tracing()
    yield
    stop_tracing()


def _by_name(tracer):
    out = {}
    for record in tracer.records():
        out.setdefault(record.name, []).append(record)
    return out


# ----------------------------------------------------------------------
# Span core
# ----------------------------------------------------------------------
class TestTracerCore:
    def test_nesting_parent_links_and_attrs(self):
        tracer = Tracer()
        with tracer.span("outer", stage="gp") as outer:
            with tracer.span("inner", i=3) as inner:
                pass
        records = tracer.records()
        assert [r.name for r in records] == ["inner", "outer"]
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert inner.attrs == {"i": 3}
        assert outer.attrs == {"stage": "gp"}
        assert inner.dur >= 0.0 and outer.dur >= inner.dur

    def test_explicit_parent_and_record_complete(self):
        tracer = Tracer()
        root = tracer.begin("dispatch")
        t0 = clock()
        record = tracer.record_complete(
            "kernel.sum", t0, 0.25, parent=root, track="pool-worker-1"
        )
        tracer.end(root)
        assert record.parent_id == root.span_id
        assert record.track == "pool-worker-1"
        assert record.dur == 0.25

    def test_out_of_order_end_finalizes_both(self):
        tracer = Tracer()
        a = tracer.begin("a")
        b = tracer.begin("b")
        tracer.end(a)  # b is still open: a and everything above leave the stack
        tracer.end(b)
        names = sorted(r.name for r in tracer.records())
        assert names == ["a", "b"]
        assert all(r.dur >= 0.0 for r in tracer.records())

    def test_ring_buffer_drops_newest_but_keeps_aggregates(self):
        tracer = Tracer(capacity=2)
        for i in range(5):
            tracer.record_complete("tick", float(i), 1.0, parent=None)
        assert len(tracer.records()) == 2
        assert tracer.dropped == 3
        metrics = tracer.metrics()
        assert metrics["spans"]["tick"]["count"] == 5
        assert metrics["spans"]["tick"]["seconds"] == pytest.approx(5.0)
        assert metrics["events"] == 2
        assert metrics["dropped"] == 3

    def test_counters_gauges_and_merge(self):
        tracer = Tracer()
        tracer.counter("dispatches")
        tracer.counter("dispatches", 2.0)
        tracer.gauge("gp.overflow", 0.5)
        tracer.gauge("gp.overflow", 0.25)  # gauges keep the last value
        tracer.merge_metrics(
            counters={"dispatches": 1.0}, gauges={"remote": 9.0}, dropped=4
        )
        metrics = tracer.metrics()
        assert metrics["counters"] == {"dispatches": 4.0}
        assert metrics["gauges"] == {"gp.overflow": 0.25, "remote": 9.0}
        assert metrics["dropped"] == 4

    def test_listener_streams_completed_spans(self):
        tracer = Tracer()
        seen = []
        tracer.add_listener(lambda record: seen.append(record.name))
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        assert seen == ["b", "a"]  # completion order, inner first
        tracer.remove_listener(tracer._listeners[0])
        with tracer.span("c"):
            pass
        assert seen == ["b", "a"]

    def test_module_level_lifecycle(self):
        assert not tracing_enabled()
        # Disabled means free: the same shared no-op CM, no allocation.
        assert span("gp.iteration", i=1) is _NOOP_SPAN
        tracer = start_tracing()
        assert active_tracer() is tracer
        with pytest.raises(RuntimeError):
            start_tracing()
        with span("work"):
            pass
        stopped = stop_tracing()
        assert stopped is tracer
        assert [r.name for r in stopped.records()] == ["work"]
        assert not tracing_enabled()
        assert stop_tracing() is None


# ----------------------------------------------------------------------
# Chrome trace export + validation
# ----------------------------------------------------------------------
class TestChromeExport:
    def _traced(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner", i=1):
                pass
        root = tracer.begin("dispatch")
        tracer.record_complete(
            "kernel.sum", root.start, 0.001, parent=root, track="pool-worker-0"
        )
        tracer.end(root)
        return tracer

    def test_export_is_valid_and_nested(self, tmp_path):
        tracer = self._traced()
        payload = chrome_trace(tracer)
        assert validate_chrome_trace(payload) == []
        assert payload["displayTimeUnit"] == "ms"
        events = {
            e["name"]: e for e in payload["traceEvents"] if e["ph"] == "X"
        }
        outer, inner = events["outer"], events["inner"]
        assert outer["ts"] <= inner["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"] + 1e-6
        assert inner["args"]["i"] == 1
        assert inner["args"]["parent_id"] == outer["args"]["span_id"]
        # Adopted lane gets its own tid with a thread_name metadata event.
        lanes = {
            e["args"]["name"]: e["tid"]
            for e in payload["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert lanes["main"] == 0
        assert "pool-worker-0" in lanes
        assert events["kernel.sum"]["tid"] == lanes["pool-worker-0"]
        # Aggregate metrics travel in otherData.
        assert payload["otherData"]["spans"]["outer"]["count"] == 1
        out = tmp_path / "trace.json"
        write_chrome_trace(out, tracer)
        assert validate_chrome_trace(json.loads(out.read_text())) == []

    def test_validator_rejects_malformed_payloads(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({"traceEvents": []}) != []
        bad_event = {"traceEvents": [{"name": 7, "ph": "X", "pid": 1, "tid": 0}]}
        assert validate_chrome_trace(bad_event) != []
        negative = {
            "traceEvents": [
                {"name": "x", "ph": "X", "pid": 1, "tid": 0, "ts": -1, "dur": 1}
            ]
        }
        assert validate_chrome_trace(negative) != []


# ----------------------------------------------------------------------
# Cross-process shipping protocol
# ----------------------------------------------------------------------
class TestSpanAdoption:
    def test_collector_payload_reparents_under_dispatch(self):
        collector = ChildSpanCollector()
        with collector.span("kernel.outer", task=0):
            with collector.span("kernel.step"):
                pass
        collector.counter("worker.tasks")
        payload = collector.payload()

        parent = Tracer()
        dispatch = parent.begin("kernel.dispatch")
        adopted = adopt_spans(
            parent,
            payload,
            parent_id=dispatch.span_id,
            base=dispatch.start,
            track="pool-worker-3",
        )
        parent.end(dispatch)
        assert adopted == 2
        spans = _by_name(parent)
        outer = spans["kernel.outer"][0]
        step = spans["kernel.step"][0]
        # Root re-parented under the dispatch span; internal links remapped.
        assert outer.parent_id == dispatch.span_id
        assert step.parent_id == outer.span_id
        assert outer.track == "pool-worker-3"
        assert outer.start >= dispatch.start
        # Fresh ids: no collision with the parent's own id space.
        ids = [r.span_id for r in parent.records()]
        assert len(ids) == len(set(ids))
        assert parent.metrics()["counters"] == {"worker.tasks": 1.0}

    def test_empty_payload_is_noop(self):
        parent = Tracer()
        assert adopt_spans(parent, None, parent_id=1, base=0.0, track="x") == 0
        assert parent.records() == []


# ----------------------------------------------------------------------
# KernelPool: traced pooled run == untraced serial run, spans re-parented
# ----------------------------------------------------------------------
class TestKernelPoolTracing:
    def test_traced_pool_bitwise_and_reparented(self):
        design = load_benchmark("sb_mini_1", scale=0.5)
        x, y = initial_placement(design, seed=1)
        serial_map = CongestionEstimator(design).estimate(x, y)
        before = _shm_entries()
        tracer = start_tracing()
        try:
            with KernelPool(2) as pool:
                pooled_map = CongestionEstimator(
                    design, CongestionConfig(workers=2), runner=pool
                ).estimate(x, y)
        finally:
            stop_tracing()
        assert _shm_entries() == before
        assert np.array_equal(serial_map.demand_h, pooled_map.demand_h)
        assert np.array_equal(serial_map.demand_v, pooled_map.demand_v)
        assert np.array_equal(serial_map.pin_density, pooled_map.pin_density)

        spans = _by_name(tracer)
        dispatch_ids = {r.span_id for r in spans["kernel.dispatch"]}
        worker_spans = [
            r
            for r in tracer.records()
            if r.name.startswith("kernel.") and r.name != "kernel.dispatch"
        ]
        assert worker_spans, "expected worker-side kernel spans"
        assert all(r.parent_id in dispatch_ids for r in worker_spans)
        tracks = {r.track for r in worker_spans}
        assert tracks <= {"pool-worker-0", "pool-worker-1"}

    def test_traced_worker_failure_closes_dispatch_span_and_unlinks(self):
        before = _shm_entries()
        tracer = start_tracing()
        try:
            pool = KernelPool(2)
            block = pool.register({"data": np.arange(8, dtype=np.float64)})
            with pytest.raises(KernelPoolError):
                pool.run("_selftest_fail", [block], [(0, 8)])
        finally:
            stop_tracing()
        assert pool.closed
        assert _shm_entries() == before
        dispatches = _by_name(tracer).get("kernel.dispatch", [])
        assert dispatches and all(r.dur >= 0.0 for r in dispatches)


# ----------------------------------------------------------------------
# Batch: thread jobs share the tracer; process jobs ship their spans
# ----------------------------------------------------------------------
def _tiny_jobs():
    return [
        BatchJob(
            design="sb_mini_18",
            preset="dreamplace",
            scale=0.2,
            overrides={"max_iterations": 5},
            label=f"job{i}",
        )
        for i in range(2)
    ]


class TestBatchTracing:
    def test_thread_executor_jobs_parent_under_batch_run(self):
        tracer = start_tracing()
        try:
            result = run_batch(_tiny_jobs(), max_workers=2)
        finally:
            stop_tracing()
        spans = _by_name(tracer)
        batch_run = spans["batch.run"][0]
        jobs = spans["batch.job"]
        assert len(jobs) == 2
        assert all(r.parent_id == batch_run.span_id for r in jobs)
        # The shipping field never leaks into the JSON artifact.
        for item in result.items:
            assert item.trace is None
            assert "trace" not in item.as_dict()

    def test_process_executor_ships_and_adopts_onto_job_lanes(self):
        tracer = start_tracing()
        try:
            result = run_batch(
                _tiny_jobs(), max_workers=2, executor="process", ship="compiled"
            )
        finally:
            stop_tracing()
        spans = _by_name(tracer)
        batch_run = spans["batch.run"][0]
        jobs = spans["batch.job"]
        assert len(jobs) == 2
        assert all(r.parent_id == batch_run.span_id for r in jobs)
        assert {r.track for r in jobs} == {"batch-job-0", "batch-job-1"}
        # The whole child flow shipped back: flow + GP spans on the lanes,
        # with the child's internal nesting intact after id remapping.
        flow_runs = spans["flow.run"]
        assert {r.track for r in flow_runs} == {"batch-job-0", "batch-job-1"}
        job_ids = {r.span_id for r in jobs}
        assert all(r.parent_id in job_ids for r in flow_runs)
        stage_ids = {r.span_id for r in spans["stage.global_place"]}
        assert all(r.parent_id in stage_ids for r in spans["gp.iteration"])
        for item in result.items:
            assert item.trace is None
            assert "trace" not in item.as_dict()
        assert all(item.error is None for item in result.items)


# ----------------------------------------------------------------------
# Failure path: a traced stage raising leaks neither shm nor the tracer
# ----------------------------------------------------------------------
class _BoomStage:
    name = "boom"

    def run(self, ctx):
        raise RuntimeError("boom")


class TestTracedFailureCleanup:
    def test_stage_exception_finalizes_spans_and_keeps_shm_clean(self):
        design = load_benchmark("sb_mini_18", scale=0.2)
        flow = build_flow("dreamplace", max_iterations=5, kernel_workers=2)
        runner = FlowRunner(
            list(flow.stages[:1]) + [_BoomStage()],
            name="boom-flow",
            kernel_workers=2,
        )
        before = _shm_entries()
        tracer = start_tracing()
        try:
            with pytest.raises(RuntimeError, match="boom"):
                runner.run(design, seed=0)
        finally:
            stop_tracing()
        assert _shm_entries() == before
        spans = _by_name(tracer)
        # The span CMs unwound with the exception: everything is finalized.
        assert all(r.dur >= 0.0 for r in tracer.records())
        assert "stage.boom" in spans
        assert "flow.run" in spans


# ----------------------------------------------------------------------
# Bitwise invariance: tracing must not perturb placement
# ----------------------------------------------------------------------
class TestBitwiseInvariance:
    def test_traced_flow_positions_bitwise_equal_untraced(self):
        design_a = load_benchmark("sb_mini_18", scale=0.3)
        plain = build_flow("dreamplace", max_iterations=15).run(design_a, seed=0)
        design_b = load_benchmark("sb_mini_18", scale=0.3)
        start_tracing()
        try:
            traced = build_flow("dreamplace", max_iterations=15).run(
                design_b, seed=0
            )
        finally:
            stop_tracing()
        assert np.array_equal(plain.x, traced.x)
        assert np.array_equal(plain.y, traced.y)
        assert plain.evaluation.hpwl == traced.evaluation.hpwl
        # The traced run carries the aggregate snapshot; the plain one doesn't.
        assert plain.evaluation.trace_metrics is None
        snapshot = traced.evaluation.trace_metrics
        assert snapshot is not None
        assert "gp.iteration" in snapshot["spans"]
        assert snapshot["spans"]["gp.iteration"]["count"] == 15
        assert "gp.hpwl" in snapshot["gauges"]
        assert "trace_metrics" in traced.context.metadata
        assert "trace_metrics" in traced.evaluation.as_dict()


# ----------------------------------------------------------------------
# CLI wiring
# ----------------------------------------------------------------------
class TestCliTracing:
    _COMMON = [
        "sb_mini_18",
        "--preset",
        "dreamplace",
        "--scale",
        "0.15",
        "--set",
        "max_iterations=5",
    ]

    def test_run_trace_writes_valid_trace(self, tmp_path, capsys):
        out = tmp_path / "run.trace.json"
        code = cli_main(["run", *self._COMMON, "--trace", str(out)])
        assert code == 0
        assert f"wrote {out}" in capsys.readouterr().out
        payload = json.loads(out.read_text())
        assert validate_chrome_trace(payload) == []
        names = {e["name"] for e in payload["traceEvents"]}
        assert {"flow.run", "stage.global_place", "gp.iteration"} <= names
        # The CLI tore its tracer down again.
        assert not tracing_enabled()

    def test_trace_subcommand_defaults_and_output(self, tmp_path, capsys):
        out = tmp_path / "sub.trace.json"
        code = cli_main(["trace", *self._COMMON, "-o", str(out)])
        assert code == 0
        assert validate_chrome_trace(json.loads(out.read_text())) == []
        assert not tracing_enabled()

    def test_batch_trace_writes_valid_trace(self, tmp_path, capsys):
        out = tmp_path / "batch.trace.json"
        code = cli_main(
            [
                "batch",
                "sb_mini_18",
                "sb_mini_4",
                "--preset",
                "dreamplace",
                "--scale",
                "0.15",
                "--set",
                "max_iterations=5",
                "--jobs",
                "2",
                "--trace",
                str(out),
            ]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        assert validate_chrome_trace(payload) == []
        names = {e["name"] for e in payload["traceEvents"]}
        assert {"batch.run", "batch.job", "flow.run"} <= names
        assert not tracing_enabled()
