"""Simplified DEF (Design Exchange Format) parser.

Supported subset (matching :func:`repro.netlist.writers.write_def`)::

    VERSION 5.8 ;
    DESIGN <name> ;
    UNITS DISTANCE MICRONS 1000 ;
    DIEAREA ( xl yl ) ( xh yh ) ;
    ROW <name> <site> x y N DO n BY 1 STEP sw 0 ;
    COMPONENTS n ;
      - <inst> <cell> + PLACED ( x y ) N ;
      - <inst> <cell> + FIXED ( x y ) N ;
    END COMPONENTS
    PINS n ;
      - <port> + NET <net> + DIRECTION INPUT|OUTPUT + PLACED ( x y ) N ;
    END PINS
    NETS n ;
      - <net> ( <inst> <pin> ) ( PIN <port> ) ... ;
    END NETS
    END DESIGN

The parser needs a :class:`Library` that declares every referenced cell.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.netlist.design import Design
from repro.netlist.library import Library
from repro.utils.geometry import Rect


def parse_def_file(path: str, library: Library) -> Design:
    with open(path, "r", encoding="utf-8") as handle:
        return parse_def(handle.read(), library)


def parse_def(text: str, library: Library) -> Design:
    """Parse DEF text into a finalized :class:`Design`."""
    statements = _split_statements(text)
    name = "design"
    die: Optional[Rect] = None
    row_height = 12.0
    site_width = 1.0
    components: List[Tuple[str, str, float, float, bool]] = []
    pins: List[Tuple[str, str, str, float, float]] = []
    nets: List[Tuple[str, List[Tuple[str, Optional[str]]]]] = []

    section: Optional[str] = None
    for stmt in statements:
        tokens = stmt.split()
        if not tokens:
            continue
        head = tokens[0].upper()
        if head == "DESIGN" and len(tokens) >= 2 and section is None:
            name = tokens[1]
        elif head == "DIEAREA":
            coords = _extract_numbers(stmt)
            if len(coords) >= 4:
                die = Rect(coords[0], coords[1], coords[2], coords[3])
        elif head == "ROW":
            numbers = _extract_numbers(stmt)
            # ROW name site x y orient DO n BY 1 STEP sw sh
            if len(numbers) >= 2:
                row_height_candidate = None
                if "STEP" in stmt.upper():
                    step_numbers = numbers[-2:]
                    if step_numbers[0] > 0:
                        site_width = step_numbers[0]
                if row_height_candidate:
                    row_height = row_height_candidate
        elif head == "COMPONENTS":
            section = "COMPONENTS"
        elif head == "PINS":
            section = "PINS"
        elif head == "NETS":
            section = "NETS"
        elif head == "END":
            if len(tokens) >= 2 and tokens[1].upper() in {"COMPONENTS", "PINS", "NETS", "DESIGN"}:
                section = None
        elif head == "-" or stmt.startswith("-"):
            body = stmt[1:].strip()
            if section == "COMPONENTS":
                components.append(_parse_component(body))
            elif section == "PINS":
                pins.append(_parse_pin(body))
            elif section == "NETS":
                nets.append(_parse_net(body))

    if die is None:
        die = Rect(0.0, 0.0, 1000.0, 1000.0)

    # Derive the row height from the library's tallest core cell when rows
    # were not explicit; keeps legalization consistent with the masters.
    core_heights = [c.height for c in library if c.height > 0]
    if core_heights:
        row_height = max(set(core_heights), key=core_heights.count)

    design = Design(name, die=die, library=library, row_height=row_height, site_width=site_width)
    for inst_name, cell_name, x, y, fixed in components:
        design.add_instance(inst_name, cell_name, x=x, y=y, fixed=fixed)
    for port_name, _net_name, direction, x, y in pins:
        design.add_port(port_name, direction, x=x, y=y)
    for net_name, connections in nets:
        net = design.add_net(net_name)
        for inst_name, pin_name in connections:
            design.connect(net, inst_name, pin_name)
    return design.finalize()


def _split_statements(text: str) -> List[str]:
    # DEF statements terminate with ';'. Remove comments first.  Section
    # terminators ("END COMPONENTS" etc.) carry no semicolon in DEF, so give
    # them one to keep the statement split uniform.
    text = re.sub(r"#[^\n]*", " ", text)
    text = re.sub(r"\bEND\s+(COMPONENTS|PINS|NETS|DESIGN)\b", r" ; END \1 ; ", text)
    parts = [p.strip() for p in text.split(";")]
    return [p for p in parts if p]


def _extract_numbers(stmt: str) -> List[float]:
    return [float(v) for v in re.findall(r"-?\d+\.?\d*", stmt)]


def _parse_component(body: str) -> Tuple[str, str, float, float, bool]:
    tokens = body.replace("(", " ").replace(")", " ").split()
    inst_name, cell_name = tokens[0], tokens[1]
    fixed = "FIXED" in (t.upper() for t in tokens)
    # The location is the "( x y )" group; instance/cell names may themselves
    # contain digits, so only numbers inside the parentheses count.
    location = re.search(r"\(\s*(-?\d+\.?\d*)\s+(-?\d+\.?\d*)\s*\)", body)
    x, y = (float(location.group(1)), float(location.group(2))) if location else (0.0, 0.0)
    return inst_name, cell_name, x, y, fixed


def _parse_pin(body: str) -> Tuple[str, str, str, float, float]:
    tokens = body.replace("(", " ").replace(")", " ").split()
    port_name = tokens[0]
    net_name = port_name
    direction = "input"
    upper = [t.upper() for t in tokens]
    if "NET" in upper:
        net_name = tokens[upper.index("NET") + 1]
    if "DIRECTION" in upper:
        direction = tokens[upper.index("DIRECTION") + 1].lower()
    numbers = _extract_numbers(body)
    x, y = (numbers[-2], numbers[-1]) if len(numbers) >= 2 else (0.0, 0.0)
    return port_name, net_name, direction, x, y


def _parse_net(body: str) -> Tuple[str, List[Tuple[str, Optional[str]]]]:
    tokens = body.split()
    net_name = tokens[0]
    connections: List[Tuple[str, Optional[str]]] = []
    for group in re.findall(r"\(([^)]*)\)", body):
        parts = group.split()
        if not parts:
            continue
        if parts[0].upper() == "PIN":
            connections.append((parts[1], None))
        elif len(parts) >= 2:
            connections.append((parts[0], parts[1]))
    return net_name, connections
