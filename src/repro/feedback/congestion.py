"""Congestion-aware net weighting inside the global-place loop.

The PR-4 routability subsystem reacts to congestion *after* placement (the
inflation loop); this feedback closes ROADMAP's top open item by feeding the
RUDY ratio map back into per-net wirelength weights *during* placement:
nets whose bounding boxes sit on overflowing routing bins get their
wirelength pull boosted, so the optimizer shrinks exactly the spans that
create routing demand where there is no capacity left.

Scoring is fully vectorized and ``O(nets + bins)`` per update, reusing the
:mod:`repro.route.rudy` machinery:

1. estimate the RUDY maps at the current positions (the estimator's CSR
   min/max reduction gives every active net's bbox as a by-product);
2. build a 2-D summed-area table over the per-bin *overflow* grid
   (``max(ratio - 1, 0)``);
3. one four-corner SAT lookup per net yields the mean overflow of the bins
   its bbox covers — no per-net Python loop, no per-net bin walk;
4. the proposal is ``1 + max_boost * min(mean_overflow / saturation, 1)``:
   nets entirely inside routable regions propose exactly 1 (so, composed
   with timing weighting, a zero-overflow map reduces to pure timing
   weights), and the boost saturates so one pathological hotspot cannot
   run a net's weight away.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

import numpy as np

from repro.feedback.base import FeedbackUpdate, PlacementFeedback
from repro.route.rudy import CongestionConfig, CongestionEstimator, CongestionResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.placement.global_placer import GlobalPlacer

__all__ = ["CongestionNetWeighting"]


class CongestionNetWeighting(PlacementFeedback):
    """Propose per-net weight boosts from the RUDY overflow map."""

    name = "congestion"

    def __init__(
        self,
        config: Optional[CongestionConfig] = None,
        *,
        max_boost: float = 1.0,
        saturation_overflow: float = 0.5,
    ) -> None:
        if max_boost < 0.0:
            raise ValueError("max_boost must be non-negative")
        if saturation_overflow <= 0.0:
            raise ValueError("saturation_overflow must be positive")
        self.config = config
        self.max_boost = float(max_boost)
        self.saturation_overflow = float(saturation_overflow)
        self.estimator: Optional[CongestionEstimator] = None
        self.last_result: Optional[CongestionResult] = None
        self.num_updates = 0

    # ------------------------------------------------------------------
    def _build(self, design: Any) -> None:
        self.estimator = CongestionEstimator(design, self.config)

    def prepare(self, ctx: Any) -> None:
        self._build(ctx.design)

    def attach(self, placer: "GlobalPlacer") -> None:
        # Direct placer use (no flow context): build from the placer's design.
        if self.estimator is None:
            self._build(placer.design)

    # ------------------------------------------------------------------
    def net_overflow_scores(
        self, result: CongestionResult, x: np.ndarray, y: np.ndarray
    ) -> np.ndarray:
        """Mean overflow ratio under each net's bbox (0 for inactive nets).

        One summed-area table over the overflow grid plus a four-corner
        lookup per net: ``O(nets + bins)``.
        """
        est = self.estimator
        assert est is not None
        # Reuse the bbox reduction the map build already did at these
        # positions; fall back to recomputing for hand-built results.
        ix0, ix1, iy0, iy1 = est.net_bin_spans(x, y, bboxes=result.net_bboxes)
        overflow = result.overflow
        sat = np.zeros(
            (overflow.shape[0] + 1, overflow.shape[1] + 1), dtype=np.float64
        )
        sat[1:, 1:] = overflow
        np.cumsum(sat, axis=0, out=sat)
        np.cumsum(sat, axis=1, out=sat)
        total = (
            sat[ix1 + 1, iy1 + 1]
            - sat[ix0, iy1 + 1]
            - sat[ix1 + 1, iy0]
            + sat[ix0, iy0]
        )
        ncov = ((ix1 - ix0 + 1) * (iy1 - iy0 + 1)).astype(np.float64)
        scores = np.zeros(est.core.num_nets, dtype=np.float64)
        scores[est.active_net_ids] = total / ncov
        return scores

    def update(
        self,
        placer: "GlobalPlacer",
        iteration: int,
        x: np.ndarray,
        y: np.ndarray,
    ) -> Optional[FeedbackUpdate]:
        if self.estimator is None:
            self._build(placer.design)
        result = self.estimator.estimate(x, y)
        self.last_result = result
        self.num_updates += 1
        scores = self.net_overflow_scores(result, x, y)
        saturated = np.clip(scores / self.saturation_overflow, 0.0, 1.0)
        proposal = 1.0 + self.max_boost * saturated
        placer.history.record_extra(
            "peak_overflow", iteration, result.peak_overflow
        )
        return FeedbackUpdate(
            proposal=proposal,
            metrics={
                "peak_overflow": float(result.peak_overflow),
                "average_overflow": float(result.average_overflow),
                "congested_nets": int(np.count_nonzero(scores > 0.0)),
            },
        )
