"""Tests for critical path reporting (report_timing / report_timing_endpoint)."""

import pytest

from repro.timing import STAEngine, report_timing, report_timing_endpoint
from repro.timing.graph import ArcKind


@pytest.fixture()
def engine(tiny_design, tiny_constraints):
    eng = STAEngine(tiny_design, tiny_constraints)
    eng.update_timing()
    return eng


@pytest.fixture()
def small_engine(fresh_small_design):
    eng = STAEngine(fresh_small_design)
    eng.update_timing()
    return eng


class TestPathStructure:
    def test_worst_path_traverses_pipeline(self, engine, tiny_design):
        paths, _ = report_timing(engine, 1)
        assert len(paths) == 1
        path = paths[0]
        names = [engine.graph.pin_name(p) for p in path.pins]
        assert names[0] == "ff1/ck"
        assert names[-1] == "ff2/d"
        assert path.slack == pytest.approx(engine.last_result.wns, rel=1e-6)

    def test_path_arrival_equals_sum_of_arc_delays(self, engine):
        paths, _ = report_timing(engine, 1)
        path = paths[0]
        result = engine.last_result
        total = float(result.arrival[path.startpoint]) + float(
            sum(result.arc_delay[a] for a in path.arcs)
        )
        assert path.arrival == pytest.approx(total, rel=1e-9)

    def test_pin_pairs_are_net_arcs_only(self, engine):
        paths, _ = report_timing(engine, 1)
        pairs = paths[0].pin_pairs(engine.graph)
        graph = engine.graph
        arcs_by_pins = {(a.from_pin, a.to_pin): a for a in graph.arcs}
        for pair in pairs:
            assert arcs_by_pins[pair].kind is ArcKind.NET

    def test_describe_contains_slack(self, engine):
        paths, _ = report_timing(engine, 1)
        assert "slack=" in paths[0].describe(engine.graph)

    def test_path_pins_consistent_with_arcs(self, small_engine):
        paths, _ = report_timing_endpoint(small_engine, 5, 1)
        for path in paths:
            assert len(path.pins) == len(path.arcs) + 1
            for pin, arc_index in zip(path.pins[1:], path.arcs):
                assert small_engine.graph.arcs[arc_index].to_pin == pin


class TestReportTimingEndpoint:
    def test_covers_requested_endpoints(self, small_engine):
        result = small_engine.last_result
        n = min(10, result.num_failing_endpoints)
        paths, stats = report_timing_endpoint(small_engine, n, 1, failing_only=True)
        assert stats.num_endpoints == n
        assert stats.num_paths == n

    def test_k_paths_per_endpoint(self, small_engine):
        paths, stats = report_timing_endpoint(small_engine, 5, 3)
        counts = {}
        for path in paths:
            counts[path.endpoint] = counts.get(path.endpoint, 0) + 1
        assert all(c <= 3 for c in counts.values())
        assert stats.num_endpoints == len(counts)

    def test_paths_per_endpoint_sorted_by_arrival(self, small_engine):
        paths, _ = report_timing_endpoint(small_engine, 3, 4)
        by_endpoint = {}
        for path in paths:
            by_endpoint.setdefault(path.endpoint, []).append(path.arrival)
        for arrivals in by_endpoint.values():
            assert arrivals == sorted(arrivals, reverse=True)

    def test_worst_path_per_endpoint_matches_arrival(self, small_engine):
        result = small_engine.last_result
        paths, _ = report_timing_endpoint(small_engine, 5, 1, failing_only=True)
        for path in paths:
            assert path.arrival == pytest.approx(float(result.arrival[path.endpoint]), rel=1e-6)

    def test_zero_endpoints(self, small_engine):
        paths, stats = report_timing_endpoint(small_engine, 0, 1)
        assert paths == []
        assert stats.num_paths == 0

    def test_stats_row_keys(self, small_engine):
        _, stats = report_timing_endpoint(small_engine, 5, 1)
        row = stats.as_row()
        assert set(row) == {
            "command", "complexity", "num_paths", "num_endpoints", "num_pin_pairs", "time_sec",
        }
        assert row["complexity"] == "O(n*k)"


class TestReportTiming:
    def test_returns_n_worst_paths(self, small_engine):
        paths, stats = report_timing(small_engine, 8)
        assert len(paths) <= 8
        slacks = [p.slack for p in paths]
        assert slacks == sorted(slacks)

    def test_endpoint_concentration(self, small_engine):
        """report_timing(n) covers far fewer endpoints than endpoint extraction."""
        result = small_engine.last_result
        n = min(20, result.num_failing_endpoints)
        if n < 4:
            pytest.skip("design too easy for this comparison")
        _, stats_rt = report_timing(small_engine, n, failing_only=True)
        _, stats_ep = report_timing_endpoint(small_engine, n, 1, failing_only=True)
        assert stats_ep.num_endpoints == n
        assert stats_rt.num_endpoints <= stats_ep.num_endpoints

    def test_worst_path_agrees_with_endpoint_variant(self, small_engine):
        rt, _ = report_timing(small_engine, 1)
        ep, _ = report_timing_endpoint(small_engine, 1, 1)
        assert rt[0].endpoint == ep[0].endpoint
        assert rt[0].arrival == pytest.approx(ep[0].arrival)

    def test_complexity_label(self, small_engine):
        _, stats = report_timing(small_engine, 3)
        assert stats.complexity == "O(n^2)"

    def test_analyzed_at_least_selected(self, small_engine):
        _, stats = report_timing(small_engine, 5)
        assert stats.num_paths_analyzed >= stats.num_paths
