"""Simplified SDC (Synopsys Design Constraints) parser.

Supported commands::

    create_clock -name clk -period 800 [get_ports clk]
    set_input_delay  50 -clock clk [get_ports in0]
    set_output_delay 50 -clock clk [get_ports out0]
    set_input_delay  50 -clock clk [all_inputs]
    set_output_delay 50 -clock clk [all_outputs]

The parsed constraints can be applied to a :class:`repro.netlist.Design` with
:func:`apply_sdc`, which fills ``design.clock_period`` and the per-port
``input_delays`` / ``output_delays`` maps consumed by the STA engine.
"""

from __future__ import annotations

import re
import shlex
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.netlist.design import Design


@dataclass
class SDCConstraints:
    """Parsed timing constraints."""

    clock_name: str = "clk"
    clock_period: Optional[float] = None
    clock_port: Optional[str] = None
    input_delays: Dict[str, float] = field(default_factory=dict)
    output_delays: Dict[str, float] = field(default_factory=dict)
    default_input_delay: Optional[float] = None
    default_output_delay: Optional[float] = None


def parse_sdc_file(path: str) -> SDCConstraints:
    with open(path, "r", encoding="utf-8") as handle:
        return parse_sdc(handle.read())


def parse_sdc(text: str) -> SDCConstraints:
    """Parse SDC text into an :class:`SDCConstraints` object."""
    constraints = SDCConstraints()
    for raw_line in text.splitlines():
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        tokens = _tokenize(line)
        if not tokens:
            continue
        command = tokens[0]
        if command == "create_clock":
            _parse_create_clock(tokens[1:], constraints)
        elif command == "set_input_delay":
            _parse_io_delay(tokens[1:], constraints, is_input=True)
        elif command == "set_output_delay":
            _parse_io_delay(tokens[1:], constraints, is_input=False)
        # Other commands are silently ignored.
    return constraints


def apply_sdc(design: Design, constraints: SDCConstraints) -> Design:
    """Copy parsed constraints onto ``design`` (returns it for chaining)."""
    design.clock_name = constraints.clock_name
    design.clock_period = constraints.clock_period
    design.clock_port = constraints.clock_port
    input_ports = [
        p.name
        for p in design.ports
        if p.cell.pins and next(iter(p.cell.pins.values())).is_output
    ]
    output_ports = [
        p.name
        for p in design.ports
        if p.cell.pins and next(iter(p.cell.pins.values())).is_input
    ]
    design.input_delays = dict(constraints.input_delays)
    design.output_delays = dict(constraints.output_delays)
    if constraints.default_input_delay is not None:
        for port in input_ports:
            design.input_delays.setdefault(port, constraints.default_input_delay)
    if constraints.default_output_delay is not None:
        for port in output_ports:
            design.output_delays.setdefault(port, constraints.default_output_delay)
    return design


def _tokenize(line: str) -> List[str]:
    # Keep [...] groups as single tokens: "[get_ports clk]" etc.
    line = re.sub(r"\[\s*", "[", line)
    line = re.sub(r"\s*\]", "]", line)
    merged: List[str] = []
    for token in shlex.split(line):
        if merged and merged[-1].startswith("[") and not merged[-1].endswith("]"):
            merged[-1] = merged[-1] + " " + token
        else:
            merged.append(token)
    return merged


def _target_ports(token: str) -> Optional[List[str]]:
    """Extract port names from a ``[get_ports ...]`` style token."""
    if not token.startswith("["):
        return [token]
    inner = token.strip("[]").strip()
    if inner in {"all_inputs", "all_outputs"}:
        return None  # caller interprets as "all"
    match = re.match(r"get_ports\s+\{?([^}]*)\}?", inner)
    if match is None:
        return None
    return [p for p in match.group(1).split() if p]


def _parse_create_clock(tokens: List[str], constraints: SDCConstraints) -> None:
    i = 0
    while i < len(tokens):
        token = tokens[i]
        if token == "-name":
            constraints.clock_name = tokens[i + 1]
            i += 2
        elif token == "-period":
            constraints.clock_period = float(tokens[i + 1])
            i += 2
        elif token.startswith("["):
            ports = _target_ports(token)
            if ports:
                constraints.clock_port = ports[0]
            i += 1
        else:
            i += 1


def _parse_io_delay(tokens: List[str], constraints: SDCConstraints, *, is_input: bool) -> None:
    delay: Optional[float] = None
    targets: Optional[List[str]] = None
    apply_to_all = False
    i = 0
    while i < len(tokens):
        token = tokens[i]
        if token == "-clock":
            i += 2
        elif token in {"-max", "-min"}:
            i += 1
        elif token.startswith("["):
            inner = token.strip("[]").strip()
            if inner in {"all_inputs", "all_outputs"}:
                apply_to_all = True
            else:
                targets = _target_ports(token)
            i += 1
        else:
            try:
                delay = float(token)
            except ValueError:
                pass
            i += 1
    if delay is None:
        return
    if apply_to_all or targets is None:
        if is_input:
            constraints.default_input_delay = delay
        else:
            constraints.default_output_delay = delay
        return
    table = constraints.input_delays if is_input else constraints.output_delays
    for port in targets:
        table[port] = delay
