"""Tests for the LEF/Liberty/DEF/Verilog/SDC/Bookshelf parsers and writers."""

import pytest

from repro.netlist.parsers import (
    apply_sdc,
    parse_def,
    parse_lef,
    parse_liberty,
    parse_sdc,
    parse_verilog,
    parse_bookshelf_pl,
    parse_bookshelf_nodes,
)
from repro.netlist.parsers.bookshelf import apply_bookshelf_pl
from repro.netlist.writers import (
    write_bookshelf_nodes,
    write_bookshelf_pl,
    write_def,
    write_lef,
    write_sdc,
    write_verilog,
)

LEF_SAMPLE = """
VERSION 5.8 ;
SITE core
  SIZE 1.0 BY 12.0 ;
END core
MACRO INV_X1
  CLASS CORE ;
  SIZE 2.0 BY 12.0 ;
  PIN a
    DIRECTION INPUT ;
    CAPACITANCE 0.0015 ;
    PORT RECT 0.5 3.0 0.5 3.0 END
  END a
  PIN o
    DIRECTION OUTPUT ;
    PORT RECT 1.5 9.0 1.5 9.0 END
  END o
END INV_X1
"""

LIBERTY_SAMPLE = """
library (demo) {
  wire_resistance : 0.002 ;
  wire_capacitance : 0.00016 ;
  cell (INV_X1) {
    area : 2.0 ;
    pin (a) { direction : input ; capacitance : 0.0015 ; }
    pin (o) {
      direction : output ;
      timing () {
        related_pin : "a" ;
        intrinsic : 10.0 ;
        load_slope : 350.0 ;
      }
    }
  }
  cell (DFF_X1) {
    area : 10.0 ;
    ff (IQ, IQN) { }
    pin (d)  { direction : input ; capacitance : 0.0018 ; }
    pin (ck) { direction : input ; capacitance : 0.0012 ; clock : true ; }
    pin (q)  {
      direction : output ;
      timing () {
        related_pin : "ck" ;
        cell_delay (lut) {
          index_1 ("0.001, 0.01, 0.1");
          values  ("55.0, 60.0, 95.0");
        }
      }
    }
  }
}
"""

VERILOG_SAMPLE = """
// simple two-gate netlist
module top (a, b, y);
  input a, b;
  output y;
  wire n1;

  NAND2_X1 u1 (.a(a), .b(b), .o(n1));
  INV_X1   u2 (.a(n1), .o(y));
endmodule
"""

SDC_SAMPLE = """
# constraints
create_clock -name clk -period 800 [get_ports clk]
set_input_delay 50 -clock clk [get_ports in0]
set_output_delay 40 -clock clk [all_outputs]
"""


class TestLefParser:
    def test_macro_size_and_pins(self):
        lib = parse_lef(LEF_SAMPLE)
        cell = lib.cell("INV_X1")
        assert cell.width == 2.0
        assert cell.height == 12.0
        assert cell.pin("a").capacitance == pytest.approx(0.0015)
        assert cell.pin("a").offset_x == pytest.approx(0.5)
        assert cell.pin("o").is_output

    def test_site_captured(self):
        lib = parse_lef(LEF_SAMPLE)
        assert getattr(lib, "default_site_width") == 1.0

    def test_lef_writer_roundtrip(self, library):
        text = write_lef(library)
        parsed = parse_lef(text)
        assert set(parsed.cell_names) == {
            c.name for c in library if not c.name.startswith("__PORT")
        }
        assert parsed.cell("INV_X1").width == library.cell("INV_X1").width


class TestLibertyParser:
    def test_cells_and_pins(self):
        lib = parse_liberty(LIBERTY_SAMPLE)
        assert "INV_X1" in lib and "DFF_X1" in lib
        assert lib.cell("DFF_X1").is_sequential
        assert lib.cell("DFF_X1").pin("ck").is_clock

    def test_linear_arc(self):
        lib = parse_liberty(LIBERTY_SAMPLE)
        arc = lib.cell("INV_X1").arcs[0]
        assert arc.delay(0.01) == pytest.approx(10.0 + 3.5)

    def test_lut_arc(self):
        lib = parse_liberty(LIBERTY_SAMPLE)
        arc = lib.cell("DFF_X1").arcs[0]
        assert arc.delay(0.001) == pytest.approx(55.0)
        assert 60.0 < arc.delay(0.05) < 95.0

    def test_wire_rc(self):
        lib = parse_liberty(LIBERTY_SAMPLE)
        assert lib.wire_resistance_per_unit == pytest.approx(0.002)
        assert lib.wire_capacitance_per_unit == pytest.approx(0.00016)


class TestVerilogParser:
    def test_structure(self, library):
        design = parse_verilog(VERILOG_SAMPLE, library)
        assert design.name == "top"
        assert design.has_instance("u1") and design.has_instance("u2")
        assert len(design.ports) == 3
        assert design.net("n1").driver.full_name == "u1/o"
        assert {p.full_name for p in design.net("n1").sinks} == {"u2/a"}

    def test_verilog_writer_roundtrip(self, tiny_design, library):
        text = write_verilog(tiny_design)
        parsed = parse_verilog(text, library)
        assert parsed.has_instance("u1")
        assert parsed.num_nets == tiny_design.num_nets
        assert len(parsed.cells) == len(tiny_design.cells)


class TestDefRoundtrip:
    def test_roundtrip_preserves_structure(self, tiny_design, library):
        text = write_def(tiny_design)
        parsed = parse_def(text, library)
        assert parsed.name == "tiny"
        assert len(parsed.cells) == len(tiny_design.cells)
        assert len(parsed.ports) == len(tiny_design.ports)
        assert parsed.num_nets == tiny_design.num_nets
        assert parsed.die.width == tiny_design.die.width

    def test_roundtrip_preserves_positions(self, tiny_design, library):
        tiny_design.instance("u1").x = 123.0
        text = write_def(tiny_design)
        parsed = parse_def(text, library)
        assert parsed.instance("u1").x == pytest.approx(123.0)

    def test_fixed_flag_preserved(self, tiny_design, library):
        parsed = parse_def(write_def(tiny_design), library)
        assert parsed.instance("in0").fixed

    def test_connectivity_preserved(self, tiny_design, library):
        parsed = parse_def(write_def(tiny_design), library)
        net = parsed.net("n1")
        assert net.driver.full_name == "ff1/q"


class TestSdc:
    def test_parse_clock(self):
        constraints = parse_sdc(SDC_SAMPLE)
        assert constraints.clock_period == 800.0
        assert constraints.clock_name == "clk"
        assert constraints.clock_port == "clk"

    def test_parse_io_delays(self):
        constraints = parse_sdc(SDC_SAMPLE)
        assert constraints.input_delays["in0"] == 50.0
        assert constraints.default_output_delay == 40.0

    def test_apply_sdc(self, tiny_design):
        constraints = parse_sdc(SDC_SAMPLE)
        apply_sdc(tiny_design, constraints)
        assert tiny_design.clock_period == 800.0
        assert tiny_design.input_delays["in0"] == 50.0
        assert tiny_design.output_delays["out0"] == 40.0

    def test_sdc_writer_roundtrip(self, tiny_design):
        tiny_design.input_delays = {"in0": 25.0}
        tiny_design.output_delays = {"out0": 30.0}
        parsed = parse_sdc(write_sdc(tiny_design))
        assert parsed.clock_period == tiny_design.clock_period
        assert parsed.input_delays["in0"] == 25.0
        assert parsed.output_delays["out0"] == 30.0


class TestBookshelf:
    def test_pl_roundtrip(self, tiny_design):
        placements = parse_bookshelf_pl(write_bookshelf_pl(tiny_design))
        assert placements["u1"][0] == pytest.approx(tiny_design.instance("u1").x)
        assert placements["in0"][2] is True  # fixed

    def test_nodes_roundtrip(self, tiny_design):
        rows = parse_bookshelf_nodes(write_bookshelf_nodes(tiny_design))
        names = {r[0] for r in rows}
        assert "u1" in names and "ff1" in names

    def test_apply_pl(self, tiny_design):
        placements = {"u1": (42.0, 48.0, False), "missing": (0, 0, False)}
        applied = apply_bookshelf_pl(tiny_design, placements)
        assert applied == 1
        assert tiny_design.instance("u1").x == 42.0
