"""Vectorized RUDY / pin-density congestion estimation.

RUDY (Rectangular Uniform wire DensitY, Spindler & Johannes, DATE 2007) is
the classic placement-time routing-demand model: every net is assumed to
consume its bounding-box wirelength, spread uniformly over the bounding box.
It is crude compared to a global router but captures exactly the hotspots a
router will struggle with, it is differentiable in aggregate (cells moving
out of a hot bin reduce its demand), and — crucially for an inner-loop
estimator — it is O(nets + bins).

This implementation is fully array-based over :class:`~repro.netlist.core.
DesignCore`:

* per-net bounding boxes come from one ``min/max`` reduction over the
  net-major CSR pin arrays;
* each net's demand is deposited on the bins its (bin-snapped) bbox covers
  with the four-corner 2D difference trick — ``np.add.at`` on the corner
  bins followed by a double cumulative sum reconstructs the uniform fill —
  so the map build never loops over nets or bins in Python;
* demand is split into horizontal and vertical components (``x``-extent
  feeds the horizontal layer, ``y``-extent the vertical layer), matching
  the per-layer capacity model real H/V-layered metal stacks have;
* a separate pin-density map counts pins per bin (``np.bincount``); pins
  consume track segments to escape the cell, so a configurable per-pin
  wirelength is added half to each layer's demand.

Capacity comes from the floorplan: ``tracks_per_row`` horizontal tracks fit
in one row height (and the same pitch is used vertically unless overridden),
so a bin of size ``bw x bh`` offers ``bw * bh / pitch`` units of wirelength
per layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.netlist.core import DesignCore, as_core
from repro.obs import span

__all__ = [
    "CongestionConfig",
    "CongestionResult",
    "CongestionEstimator",
    "estimate_congestion",
]


def _release_block(runner, block) -> None:
    """weakref.finalize hook: free a consumer's shared block when it dies."""
    try:
        runner.release(block)
    except Exception:  # pragma: no cover - pool already torn down
        pass


@dataclass
class CongestionConfig:
    """Knobs of the RUDY congestion model.

    The defaults are chosen so a mildly utilized sb_mini design is
    comfortably routable (ratios well below 1) while the congestion-stressed
    generator overflows — mirroring how real designs sit against real track
    capacities.
    """

    # Grid resolution; ``None`` picks a power-of-two grid with roughly 4
    # movable cells per bin (same heuristic as the density model).
    num_bins_x: Optional[int] = None
    num_bins_y: Optional[int] = None
    # Capacity model: horizontal routing tracks per row height.  The track
    # pitch is ``row_height / tracks_per_row`` for the horizontal layer and
    # the same pitch for the vertical layer unless ``v_track_pitch`` is set.
    tracks_per_row: float = 8.0
    v_track_pitch: Optional[float] = None
    # Wirelength (in layout units) each pin adds for escape routing, split
    # evenly between the two layers.  0 disables the pin term.
    pin_wire_length: float = 0.5
    # Nets with more pins than this are skipped (clock / reset meshes are
    # routed on dedicated resources, and their full-die bbox would only add
    # a uniform pedestal to the map).
    max_net_degree: int = 64
    # Reporting.
    top_k_hotspots: int = 10
    ace_fractions: Tuple[float, ...] = (0.005, 0.01, 0.02, 0.05)
    # Kernel-pool workers for the map build; 0 (the default) keeps the
    # serial path.  Sharded results are bitwise-identical to serial — see
    # :mod:`repro.parallel.kernels` for the exactness contract.
    workers: int = 0

    def validate(self) -> None:
        if self.tracks_per_row <= 0:
            raise ValueError("tracks_per_row must be positive")
        if self.v_track_pitch is not None and self.v_track_pitch <= 0:
            raise ValueError("v_track_pitch must be positive")
        if self.pin_wire_length < 0:
            raise ValueError("pin_wire_length must be non-negative")
        if self.max_net_degree < 2:
            raise ValueError("max_net_degree must be at least 2")
        if self.workers < 0:
            raise ValueError("workers must be non-negative")


@dataclass
class CongestionResult:
    """Demand / capacity / overflow grids plus summary congestion scores.

    All grids are indexed ``[bin_x, bin_y]``.  ``ratio`` is the worst of the
    two layers' demand/capacity ratios per bin — the quantity routers and
    the inflation loop react to.  ``overflow`` is ``max(ratio - 1, 0)``.
    """

    demand_h: np.ndarray
    demand_v: np.ndarray
    capacity_h: float
    capacity_v: float
    pin_density: np.ndarray
    bin_w: float
    bin_h: float
    die_xl: float
    die_yl: float
    # Active-net bounding boxes (xmin, xmax, ymin, ymax) the map build
    # already reduced from the CSR pin arrays; per-net consumers (e.g.
    # congestion net weighting) reuse them instead of repeating the O(pins)
    # reduction on the same positions.
    net_bboxes: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = field(
        default=None, repr=False
    )
    _ratio: Optional[np.ndarray] = field(default=None, init=False, repr=False)

    @property
    def num_bins_x(self) -> int:
        return int(self.demand_h.shape[0])

    @property
    def num_bins_y(self) -> int:
        return int(self.demand_h.shape[1])

    @property
    def ratio(self) -> np.ndarray:
        """Per-bin congestion ratio: worst layer demand over capacity."""
        if self._ratio is None:
            self._ratio = np.maximum(
                self.demand_h / self.capacity_h, self.demand_v / self.capacity_v
            )
        return self._ratio

    @property
    def overflow(self) -> np.ndarray:
        """Per-bin overflow: congestion ratio beyond capacity (>= 0)."""
        return np.maximum(self.ratio - 1.0, 0.0)

    @property
    def peak_ratio(self) -> float:
        return float(self.ratio.max()) if self.ratio.size else 0.0

    @property
    def peak_overflow(self) -> float:
        return float(max(self.peak_ratio - 1.0, 0.0))

    @property
    def average_overflow(self) -> float:
        return float(self.overflow.mean()) if self.ratio.size else 0.0

    @property
    def num_hotspots(self) -> int:
        """Number of bins whose demand exceeds capacity."""
        return int(np.count_nonzero(self.ratio > 1.0))

    def hotspots(self, k: int = 10) -> List[Dict[str, float]]:
        """The ``k`` most congested bins, worst first, with coordinates."""
        ratio = self.ratio
        if ratio.size == 0 or k <= 0:
            return []
        flat = ratio.ravel()
        k = min(k, flat.size)
        top = np.argpartition(flat, -k)[-k:]
        top = top[np.argsort(flat[top])[::-1]]
        ix, iy = np.unravel_index(top, ratio.shape)
        return [
            {
                "bin_x": int(i),
                "bin_y": int(j),
                "x": float(self.die_xl + (i + 0.5) * self.bin_w),
                "y": float(self.die_yl + (j + 0.5) * self.bin_h),
                "ratio": float(ratio[i, j]),
                "overflow": float(max(ratio[i, j] - 1.0, 0.0)),
                "pins": int(self.pin_density[i, j]),
            }
            for i, j in zip(ix, iy)
        ]

    def ace(self, fraction: float) -> float:
        """Average Congestion of Edges: mean ratio of the worst ``fraction``
        of bins (the ISPD-2011 contest metric, computed on bins here)."""
        ratio = self.ratio
        if ratio.size == 0:
            return 0.0
        count = max(1, int(round(fraction * ratio.size)))
        flat = ratio.ravel()
        worst = np.partition(flat, flat.size - count)[flat.size - count:]
        return float(worst.mean())

    def ace_scores(self, fractions: Tuple[float, ...] = (0.005, 0.01, 0.02, 0.05)) -> Dict[str, float]:
        return {f"ace_{100 * f:g}pct": self.ace(f) for f in fractions}

    def weighted_congestion(
        self, fractions: Tuple[float, ...] = (0.005, 0.01, 0.02, 0.05)
    ) -> float:
        """Peak-weighted ACE score: mean of the ACE values over ``fractions``
        (each emphasizing the peak more strongly as the fraction shrinks)."""
        if not fractions:
            return 0.0
        return float(np.mean([self.ace(f) for f in fractions]))

    def summary(self) -> Dict[str, float]:
        """Flat JSON-friendly summary of the headline congestion metrics."""
        out = {
            "grid": [self.num_bins_x, self.num_bins_y],
            "peak_ratio": round(self.peak_ratio, 6),
            "peak_overflow": round(self.peak_overflow, 6),
            "average_overflow": round(self.average_overflow, 6),
            "hotspot_bins": self.num_hotspots,
            "weighted_congestion": round(self.weighted_congestion(), 6),
            "max_pin_density": int(self.pin_density.max()) if self.pin_density.size else 0,
        }
        out.update({k: round(v, 6) for k, v in self.ace_scores().items()})
        return out


class CongestionEstimator:
    """Builds RUDY + pin-density maps for one design's positions.

    Construction precomputes everything position-independent (grid geometry,
    the net filter, per-layer capacities); :meth:`estimate` is then a pure
    array pipeline over the positions handed in.
    """

    def __init__(
        self,
        design,
        config: Optional[CongestionConfig] = None,
        *,
        runner=None,
    ) -> None:
        core = as_core(design)
        self.core: DesignCore = core
        self.config = config if config is not None else CongestionConfig()
        self.config.validate()
        # Parallel sharding: a runner override (tests) or the shared kernel
        # pool once ``config.workers > 0``; both resolved lazily so plain
        # serial construction never touches the pool machinery.
        self._runner_override = runner
        self._runner = None
        self._runner_resolved = runner is not None
        if runner is not None:
            self._runner = runner
        self._block = None
        die = core.die
        nbx, nby = self.config.num_bins_x, self.config.num_bins_y
        if nbx is None or nby is None:
            # Same auto-grid heuristic as the density model, shared so the
            # density and congestion grids stay in correspondence.
            from repro.placement.density import auto_bin_count

            bins = auto_bin_count(int(core.movable_mask.sum()))
            nbx = nbx or bins
            nby = nby or bins
        self.num_bins_x = int(nbx)
        self.num_bins_y = int(nby)
        self.bin_w = die.width / self.num_bins_x
        self.bin_h = die.height / self.num_bins_y

        # Per-layer capacity of one bin, in wirelength units: the number of
        # tracks crossing the bin times the bin extent along the track
        # direction, i.e. bin_area / pitch for both layers.
        h_pitch = core.row_height / self.config.tracks_per_row
        v_pitch = (
            float(self.config.v_track_pitch)
            if self.config.v_track_pitch is not None
            else h_pitch
        )
        bin_area = self.bin_w * self.bin_h
        self.capacity_h = bin_area / h_pitch
        self.capacity_v = bin_area / v_pitch

        # Net filter: nets small enough to be routed as ordinary signal nets.
        counts = np.diff(core.net_pin_offsets)
        self._net_active = (counts >= 2) & (counts <= self.config.max_net_degree)
        # CSR rows of the active nets only (bbox reduction never sees the
        # skipped clock-class nets).
        active_csr_mask = self._net_active[core.csr_net]
        self._csr_pins = core.net_pin_index[active_csr_mask]
        self._csr_net = core.csr_net[active_csr_mask]
        self._active_ids = np.nonzero(self._net_active)[0]
        # Active nets are contiguous segments of ``_csr_pins``; these offsets
        # (one row per active net) drive the segmented min/max reductions.
        active_counts = counts[self._active_ids]
        self._active_csr_offsets = np.concatenate(
            ([0], np.cumsum(active_counts))
        ).astype(np.int64)

    @property
    def active_net_ids(self) -> np.ndarray:
        """Net ids the estimator models (degree within ``[2, max_net_degree]``)."""
        return self._active_ids

    # ------------------------------------------------------------------
    # Parallel sharding support
    # ------------------------------------------------------------------
    def _get_runner(self):
        if not self._runner_resolved:
            self._runner_resolved = True
            if self.config.workers > 0:
                from repro.parallel import get_runner

                self._runner = get_runner(self.config.workers)
        return self._runner

    def _ensure_block(self, runner):
        """Register the estimator's shared array namespace (once per runner)."""
        if self._block is not None:
            return self._block
        core = self.core
        num_active = self._active_ids.size
        self._block = runner.register(
            {
                # Mutable per-call inputs (rewritten before each dispatch).
                "x": np.zeros(core.num_instances, dtype=np.float64),
                "y": np.zeros(core.num_instances, dtype=np.float64),
                # Static connectivity.
                "pin_instance": core.pin_instance,
                "pin_offset_x": core.pin_offset_x,
                "pin_offset_y": core.pin_offset_y,
                "csr_pins": self._csr_pins,
                "active_csr_offsets": self._active_csr_offsets,
                # Worker outputs.
                "bbox_xmin": np.zeros(num_active, dtype=np.float64),
                "bbox_xmax": np.zeros(num_active, dtype=np.float64),
                "bbox_ymin": np.zeros(num_active, dtype=np.float64),
                "bbox_ymax": np.zeros(num_active, dtype=np.float64),
            }
        )
        import weakref

        weakref.finalize(self, _release_block, runner, self._block)
        return self._block

    def _estimate_parallel(self, runner, x: np.ndarray, y: np.ndarray) -> CongestionResult:
        """Sharded map build: workers reduce bboxes and count pins, the
        parent replays the (order-sensitive) RUDY splat in serial net order —
        bitwise identical to :meth:`estimate`'s serial pipeline."""
        from repro.parallel.engine import split_ranges

        core = self.core
        die = core.die
        shape = (self.num_bins_x, self.num_bins_y)
        block = self._ensure_block(runner)
        views = block.views
        views["x"][...] = x
        views["y"][...] = y

        bbox_tasks = split_ranges(self._active_ids.size, runner.workers)
        runner.run("rudy_bbox", [block], bbox_tasks)
        pin_args = (
            self.num_bins_x,
            self.num_bins_y,
            die.xl,
            die.yl,
            self.bin_w,
            self.bin_h,
        )
        pin_tasks = [
            (s, e, *pin_args) for s, e in split_ranges(core.num_pins, runner.workers)
        ]
        pin_counts = runner.run("pin_bins", [block], pin_tasks)

        # Private copies: the shared views are rewritten by the next call.
        xmin = views["bbox_xmin"].copy()
        xmax = views["bbox_xmax"].copy()
        ymin = views["bbox_ymin"].copy()
        ymax = views["bbox_ymax"].copy()

        ix0, ix1 = self._bin_range(xmin, xmax, die.xl, self.bin_w, self.num_bins_x)
        iy0, iy1 = self._bin_range(ymin, ymax, die.yl, self.bin_h, self.num_bins_y)
        ncov = ((ix1 - ix0 + 1) * (iy1 - iy0 + 1)).astype(np.float64)
        weight = core.net_weight[self._active_ids]
        demand_h = self._splat(shape, ix0, ix1, iy0, iy1, weight * (xmax - xmin) / ncov)
        demand_v = self._splat(shape, ix0, ix1, iy0, iy1, weight * (ymax - ymin) / ncov)

        # Integer partials sum exactly in any order.
        flat_pins = np.zeros(self.num_bins_x * self.num_bins_y, dtype=np.int64)
        for partial in pin_counts:
            flat_pins += partial
        pin_density = flat_pins.reshape(shape).astype(np.float64)

        if self.config.pin_wire_length > 0:
            pin_demand = 0.5 * self.config.pin_wire_length * pin_density
            demand_h = demand_h + pin_demand
            demand_v = demand_v + pin_demand

        return CongestionResult(
            demand_h=demand_h,
            demand_v=demand_v,
            capacity_h=self.capacity_h,
            capacity_v=self.capacity_v,
            pin_density=pin_density,
            bin_w=self.bin_w,
            bin_h=self.bin_h,
            die_xl=die.xl,
            die_yl=die.yl,
            net_bboxes=(xmin, xmax, ymin, ymax),
        )

    # ------------------------------------------------------------------
    def net_bboxes(
        self,
        x: np.ndarray,
        y: np.ndarray,
        *,
        pin_xy: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Bounding boxes (xmin, xmax, ymin, ymax) of the active nets.

        ``pin_xy`` lets a caller that already materialized the absolute pin
        coordinates (``estimate`` needs them for the pin-density map too)
        avoid a second O(pins) gather.
        """
        core = self.core
        pin_x, pin_y = pin_xy if pin_xy is not None else core.pin_positions(x, y)
        if self._active_ids.size == 0:
            empty = np.zeros(0, dtype=np.float64)
            return empty, empty.copy(), empty.copy(), empty.copy()
        px = pin_x[self._csr_pins]
        py = pin_y[self._csr_pins]
        # Segmented reduction over the per-net CSR rows.  min/max are exact
        # (order-independent), so this matches the historical
        # ``np.minimum.at`` scatter reduction bit for bit while skipping the
        # slow element-at-a-time ufunc.at path.
        starts = self._active_csr_offsets[:-1]
        xmin = np.minimum.reduceat(px, starts)
        xmax = np.maximum.reduceat(px, starts)
        ymin = np.minimum.reduceat(py, starts)
        ymax = np.maximum.reduceat(py, starts)
        return xmin, xmax, ymin, ymax

    def _bin_range(
        self, lo: np.ndarray, hi: np.ndarray, origin: float, width: float, count: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Inclusive bin index range covered by the interval [lo, hi]."""
        i0 = np.clip(np.floor((lo - origin) / width).astype(np.int64), 0, count - 1)
        i1 = np.clip(np.floor((hi - origin) / width).astype(np.int64), 0, count - 1)
        return i0, np.maximum(i1, i0)

    def net_bin_spans(
        self,
        x: np.ndarray,
        y: np.ndarray,
        *,
        bboxes: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = None,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Inclusive bin-index spans ``(ix0, ix1, iy0, iy1)`` of the active
        nets' bounding boxes — the grid footprint each net's RUDY demand
        covers.  ``bboxes`` lets a caller reuse boxes from :meth:`net_bboxes`.
        """
        die = self.core.die
        xmin, xmax, ymin, ymax = (
            bboxes if bboxes is not None else self.net_bboxes(x, y)
        )
        ix0, ix1 = self._bin_range(xmin, xmax, die.xl, self.bin_w, self.num_bins_x)
        iy0, iy1 = self._bin_range(ymin, ymax, die.yl, self.bin_h, self.num_bins_y)
        return ix0, ix1, iy0, iy1

    @staticmethod
    def _splat(
        shape: Tuple[int, int],
        ix0: np.ndarray,
        ix1: np.ndarray,
        iy0: np.ndarray,
        iy1: np.ndarray,
        value: np.ndarray,
    ) -> np.ndarray:
        """Deposit ``value[e]`` uniformly on bins ``[ix0..ix1] x [iy0..iy1]``.

        Four-corner difference + double cumsum: exact, O(nets + bins), no
        Python loop.  ``value`` is the *per-bin* contribution of each net.
        """
        nbx, nby = shape
        grid = np.zeros((nbx + 1) * (nby + 1), dtype=np.float64)
        stride = nby + 1
        np.add.at(grid, ix0 * stride + iy0, value)
        np.add.at(grid, ix0 * stride + (iy1 + 1), -value)
        np.add.at(grid, (ix1 + 1) * stride + iy0, -value)
        np.add.at(grid, (ix1 + 1) * stride + (iy1 + 1), value)
        grid = grid.reshape(nbx + 1, nby + 1)
        np.cumsum(grid, axis=0, out=grid)
        np.cumsum(grid, axis=1, out=grid)
        return np.ascontiguousarray(grid[:nbx, :nby])

    # ------------------------------------------------------------------
    def estimate(
        self,
        x: Optional[np.ndarray] = None,
        y: Optional[np.ndarray] = None,
    ) -> CongestionResult:
        """Build the congestion maps for instance positions ``(x, y)``."""
        core = self.core
        if x is None or y is None:
            x, y = core.x, core.y
        runner = self._get_runner()
        if runner is not None:
            with span("congestion.estimate", parallel=True):
                return self._estimate_parallel(runner, x, y)
        with span("congestion.estimate"):
            return self._estimate_serial(x, y)

    def _estimate_serial(self, x: np.ndarray, y: np.ndarray) -> CongestionResult:
        core = self.core
        die = core.die
        shape = (self.num_bins_x, self.num_bins_y)

        pin_x, pin_y = core.pin_positions(x, y)
        xmin, xmax, ymin, ymax = self.net_bboxes(x, y, pin_xy=(pin_x, pin_y))
        ix0, ix1 = self._bin_range(xmin, xmax, die.xl, self.bin_w, self.num_bins_x)
        iy0, iy1 = self._bin_range(ymin, ymax, die.yl, self.bin_h, self.num_bins_y)
        ncov = ((ix1 - ix0 + 1) * (iy1 - iy0 + 1)).astype(np.float64)
        weight = core.net_weight[self._active_ids]
        demand_h = self._splat(shape, ix0, ix1, iy0, iy1, weight * (xmax - xmin) / ncov)
        demand_v = self._splat(shape, ix0, ix1, iy0, iy1, weight * (ymax - ymin) / ncov)

        # Pin-density map: every pin lands in exactly one bin.
        pu = np.clip(
            np.floor((pin_x - die.xl) / self.bin_w).astype(np.int64),
            0,
            self.num_bins_x - 1,
        )
        pv = np.clip(
            np.floor((pin_y - die.yl) / self.bin_h).astype(np.int64),
            0,
            self.num_bins_y - 1,
        )
        pin_density = (
            np.bincount(
                pu * self.num_bins_y + pv, minlength=self.num_bins_x * self.num_bins_y
            )
            .reshape(shape)
            .astype(np.float64)
        )

        if self.config.pin_wire_length > 0:
            pin_demand = 0.5 * self.config.pin_wire_length * pin_density
            demand_h = demand_h + pin_demand
            demand_v = demand_v + pin_demand

        return CongestionResult(
            demand_h=demand_h,
            demand_v=demand_v,
            capacity_h=self.capacity_h,
            capacity_v=self.capacity_v,
            pin_density=pin_density,
            bin_w=self.bin_w,
            bin_h=self.bin_h,
            die_xl=die.xl,
            die_yl=die.yl,
            net_bboxes=(xmin, xmax, ymin, ymax),
        )

    # ------------------------------------------------------------------
    def cell_bins(
        self, x: np.ndarray, y: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Bin index of every instance's center (used by the inflation map)."""
        core = self.core
        die = core.die
        cx = x + 0.5 * core.inst_width
        cy = y + 0.5 * core.inst_height
        bx = np.clip(
            np.floor((cx - die.xl) / self.bin_w).astype(np.int64),
            0,
            self.num_bins_x - 1,
        )
        by = np.clip(
            np.floor((cy - die.yl) / self.bin_h).astype(np.int64),
            0,
            self.num_bins_y - 1,
        )
        return bx, by


def estimate_congestion(
    design,
    x: Optional[np.ndarray] = None,
    y: Optional[np.ndarray] = None,
    *,
    config: Optional[CongestionConfig] = None,
) -> CongestionResult:
    """One-shot convenience wrapper around :class:`CongestionEstimator`."""
    return CongestionEstimator(design, config).estimate(x, y)
