"""Structural (gate-level) Verilog parser.

Supported subset::

    module top (a, b, y);
      input a, b;
      output y;
      wire n1, n2;

      NAND2_X1 u1 (.a(a), .b(b), .o(n1));
      INV_X1   u2 (.a(n1), .o(y));
    endmodule

Only named port connections are supported for instances (the style the
library's own Verilog writer produces).  The parser returns an *unplaced*
:class:`Design`: ports are placed on the die boundary evenly and instances at
the die center; run a placer to obtain real locations.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.netlist.design import Design
from repro.netlist.library import Library
from repro.utils.geometry import Rect

_MODULE_RE = re.compile(r"module\s+(\w+)\s*\(([^)]*)\)\s*;", re.DOTALL)
_DECL_RE = re.compile(r"(input|output|inout|wire)\s+([^;]+);")
_INSTANCE_RE = re.compile(r"(\w+)\s+(\w+)\s*\(([^;]*)\)\s*;", re.DOTALL)
_CONNECTION_RE = re.compile(r"\.(\w+)\s*\(\s*([\w\[\]]+)\s*\)")


def parse_verilog_file(
    path: str,
    library: Library,
    *,
    die: Optional[Tuple[float, float, float, float]] = None,
) -> Design:
    with open(path, "r", encoding="utf-8") as handle:
        return parse_verilog(handle.read(), library, die=die)


def parse_verilog(
    text: str,
    library: Library,
    *,
    die: Optional[Tuple[float, float, float, float]] = None,
) -> Design:
    """Parse structural Verilog into an unplaced, finalized :class:`Design`."""
    text = _strip_comments(text)
    module = _MODULE_RE.search(text)
    if module is None:
        raise ValueError("No module definition found in Verilog source")
    name = module.group(1)
    port_order = [p.strip() for p in module.group(2).split(",") if p.strip()]

    directions: Dict[str, str] = {}
    wires: List[str] = []
    for decl_match in _DECL_RE.finditer(text):
        kind = decl_match.group(1)
        names = [n.strip() for n in decl_match.group(2).split(",") if n.strip()]
        for signal in names:
            if kind == "wire":
                wires.append(signal)
            else:
                directions[signal] = kind

    instances: List[Tuple[str, str, List[Tuple[str, str]]]] = []
    body = text[module.end():]
    for inst_match in _INSTANCE_RE.finditer(body):
        cell_name, inst_name, conn_text = inst_match.groups()
        if cell_name in {"module", "endmodule", "input", "output", "wire", "assign"}:
            continue
        if cell_name not in library:
            continue
        connections = _CONNECTION_RE.findall(conn_text)
        instances.append((inst_name, cell_name, connections))

    if die is None:
        # Size the die for ~70% utilization of the parsed cells.
        total_area = sum(library.cell(c).area for _, c, _ in instances) or 100.0
        side = max(100.0, (total_area / 0.7) ** 0.5)
        die = (0.0, 0.0, side, side)
    die_rect = Rect(*die)

    row_height = max((c.height for c in library if c.height > 0), default=12.0)
    design = Design(name, die=die_rect, library=library, row_height=row_height)

    # Ports spread along the die boundary.
    ports = [p for p in port_order if p in directions]
    for i, port in enumerate(ports):
        x, y = _boundary_position(die_rect, i, max(len(ports), 1))
        design.add_port(port, directions[port], x=x, y=y)

    center_x = die_rect.xl + 0.5 * die_rect.width
    center_y = die_rect.yl + 0.5 * die_rect.height
    for inst_name, cell_name, _ in instances:
        design.add_instance(inst_name, cell_name, x=center_x, y=center_y)

    # Signals become nets; the port of the same name joins its net.
    signals = set(wires) | set(directions)
    for _, _, connections in instances:
        signals.update(sig for _, sig in connections)
    for signal in sorted(signals):
        net = design.add_net(signal)
        if signal in directions:
            design.connect(net, signal)
    for inst_name, _, connections in instances:
        for pin_name, signal in connections:
            design.connect(signal, inst_name, pin_name)
    return design.finalize()


def _strip_comments(text: str) -> str:
    text = re.sub(r"/\*.*?\*/", " ", text, flags=re.DOTALL)
    text = re.sub(r"//[^\n]*", " ", text)
    return text


def _boundary_position(die: Rect, index: int, count: int) -> Tuple[float, float]:
    """Evenly distribute ``count`` points around the die boundary."""
    perimeter = 2.0 * (die.width + die.height)
    distance = (index + 0.5) * perimeter / count
    if distance < die.width:
        return (die.xl + distance, die.yl)
    distance -= die.width
    if distance < die.height:
        return (die.xh, die.yl + distance)
    distance -= die.height
    if distance < die.width:
        return (die.xh - distance, die.yh)
    distance -= die.width
    return (die.xl, die.yh - distance)
