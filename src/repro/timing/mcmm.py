"""Multi-corner/multi-mode static timing analysis (MCMM).

Production timing-driven placement never signs off against a single PVT
corner: setup is checked across several corners (and constraint modes)
simultaneously, and the optimizer works on the *merged* worst slack.  This
module grows the single-corner :class:`repro.timing.sta.STAEngine` along that
axis while reusing the array-first core, so the corner dimension is just one
more vectorized axis:

* :class:`repro.timing.constraints.Corner` — one analysis scenario: a wire-RC
  scale, a cell-delay derate, and (optionally) a mode-specific
  :class:`~repro.timing.constraints.TimingConstraints`.
* :class:`MultiCornerSTA` — stacks arrival/required/slack as
  ``[num_corners, num_pins]`` arrays and propagates all corners in one
  level-by-level pass over a **single shared** :class:`TimingGraph`.  The
  expensive, corner-independent work (graph build, levelization, the wire
  model's bincount geometry pass, dirty-net detection in incremental mode) is
  done once; only the cheap RC/derate combine and the per-level reductions
  pay per corner.
* :class:`MultiCornerResult` — per-corner WNS/TNS plus the merged
  (worst-over-corners) slack the flow optimizes against.

Exactness contract: corner ``i`` of a multi-corner run is **bitwise
identical** to a standalone ``STAEngine(design, corner=corners[i])`` in both
full and incremental mode — the stacked pass executes the same arithmetic per
corner row (max/min reductions are order-insensitive, and every
rounding-sensitive product/sum is shared or replayed identically).  With the
single identity corner the result is bitwise identical to the plain
``STAEngine``, which keeps every existing single-corner flow unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.netlist.design import Design
from repro.timing.constraints import Corner, TimingConstraints
from repro.timing.delay_model import CellDelayModel, WireRCModel
from repro.timing.graph import ArcKind, TimingGraph, csr_gather as _csr_gather
from repro.timing.sta import (
    _LevelWorklist,
    _NEG_INF,
    _POS_INF,
    STAResult,
    TimingUpdateStats,
    boundary_conditions,
    level_buckets,
)

# ----------------------------------------------------------------------
# Named corner presets (CLI ``--corners fast,typ,slow``)
# ----------------------------------------------------------------------
CORNER_PRESETS: Dict[str, Corner] = {
    # Typical: the identity corner — bitwise the single-corner engine.
    "typ": Corner("typ", wire_rc_scale=1.0, cell_derate=1.0),
    # Fast (best-case) silicon and wires: everything a little quicker.
    "fast": Corner("fast", wire_rc_scale=0.85, cell_derate=0.90),
    # Slow (worst-case) silicon and wires: the setup-critical corner.
    "slow": Corner("slow", wire_rc_scale=1.15, cell_derate=1.10),
}

CornersSpec = Union[None, str, Corner, Sequence[Union[str, Corner]]]


def corner_preset(name: str) -> Corner:
    """Look up one named corner preset."""
    try:
        return CORNER_PRESETS[name.strip().lower()]
    except KeyError as exc:
        raise KeyError(
            f"Unknown corner preset {name!r}; available: "
            f"{', '.join(sorted(CORNER_PRESETS))}"
        ) from exc


def resolve_corners(spec: CornersSpec) -> Tuple[Corner, ...]:
    """Normalize a corners spec into a tuple of :class:`Corner` objects.

    Accepts ``None`` (single identity corner), a comma-separated preset
    string (``"fast,typ,slow"``), a single :class:`Corner`, or a sequence
    mixing preset names and corner objects.  Duplicate corner names are
    rejected: per-corner reports key on the name.
    """
    if spec is None:
        corners: Tuple[Corner, ...] = (CORNER_PRESETS["typ"],)
    elif isinstance(spec, Corner):
        corners = (spec,)
    elif isinstance(spec, str):
        names = [part for part in spec.replace("+", ",").split(",") if part.strip()]
        if not names:
            raise ValueError(f"Empty corners spec {spec!r}")
        corners = tuple(corner_preset(name) for name in names)
    else:
        resolved: List[Corner] = []
        for item in spec:
            resolved.append(item if isinstance(item, Corner) else corner_preset(item))
        if not resolved:
            raise ValueError("corners sequence must not be empty")
        corners = tuple(resolved)
    seen = set()
    for corner in corners:
        corner.validate()
        if corner.name in seen:
            raise ValueError(f"Duplicate corner name {corner.name!r}")
        seen.add(corner.name)
    return corners


# ----------------------------------------------------------------------
# Result
# ----------------------------------------------------------------------
@dataclass
class MultiCornerResult:
    """Snapshot of one multi-corner timing update.

    All stacked arrays carry the corner axis first.  ``wns``/``tns`` are the
    *merged* metrics (worst slack over corners per endpoint); per-corner
    values live in ``corner_wns``/``corner_tns`` and :meth:`corner_result`.
    """

    corners: Tuple[Corner, ...]
    arrival: np.ndarray            # [num_corners, num_pins]
    required: np.ndarray           # [num_corners, num_pins]
    slack: np.ndarray              # [num_corners, num_pins]
    arc_delay: np.ndarray          # [num_corners, num_arcs]
    net_load: np.ndarray           # [num_corners, num_nets]
    endpoint_pins: np.ndarray      # [num_endpoints]
    endpoint_slack: np.ndarray     # [num_corners, num_endpoints]
    corner_wns: np.ndarray         # [num_corners]
    corner_tns: np.ndarray         # [num_corners]
    wns: float                     # merged over corners
    tns: float                     # merged over corners
    _corner_results: Dict[int, STAResult] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )
    _merged: Optional[STAResult] = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def num_corners(self) -> int:
        return len(self.corners)

    @property
    def merged_slack(self) -> np.ndarray:
        """Per-pin worst slack over all corners."""
        return self.slack.min(axis=0)

    @property
    def merged_endpoint_slack(self) -> np.ndarray:
        """Per-endpoint worst slack over all corners."""
        if self.endpoint_slack.size == 0:
            return np.zeros(self.endpoint_slack.shape[1])
        return self.endpoint_slack.min(axis=0)

    @property
    def num_failing_endpoints(self) -> int:
        return int(np.sum(self.merged_endpoint_slack < 0))

    def corner_result(self, index: int) -> STAResult:
        """One corner's annotations as a plain :class:`STAResult` view.

        The arrays are views into the stacked result (no copy); WNS/TNS are
        that corner's own metrics.  Usable anywhere a single-corner result
        is, including path extraction.
        """
        cached = self._corner_results.get(index)
        if cached is None:
            cached = STAResult(
                arrival=self.arrival[index],
                required=self.required[index],
                slack=self.slack[index],
                arc_delay=self.arc_delay[index],
                net_load=self.net_load[index],
                endpoint_pins=self.endpoint_pins,
                endpoint_slack=self.endpoint_slack[index],
                wns=float(self.corner_wns[index]),
                tns=float(self.corner_tns[index]),
            )
            self._corner_results[index] = cached
        return cached

    @property
    def merged(self) -> STAResult:
        """Pessimistic single-corner view: worst value over corners per entry.

        ``slack`` is the exact per-pin merged slack (min over corners);
        ``arrival``/``required``/``arc_delay``/``net_load`` are the
        element-wise pessimistic bounds, so ``slack`` here is *not* the
        difference ``required - arrival`` — it is the true per-corner minimum,
        which is what net weighting should optimize against.
        """
        if self._merged is None:
            self._merged = STAResult(
                arrival=self.arrival.max(axis=0),
                required=self.required.min(axis=0),
                slack=self.merged_slack,
                arc_delay=self.arc_delay.max(axis=0),
                net_load=self.net_load.max(axis=0),
                endpoint_pins=self.endpoint_pins,
                endpoint_slack=self.merged_endpoint_slack,
                wns=self.wns,
                tns=self.tns,
            )
        return self._merged

    def per_corner_summary(self) -> Dict[str, Dict[str, float]]:
        """Per-corner WNS/TNS/failing-endpoint report, keyed by corner name."""
        out: Dict[str, Dict[str, float]] = {}
        for index, corner in enumerate(self.corners):
            slack = self.endpoint_slack[index]
            out[corner.name] = {
                "wns": float(self.corner_wns[index]),
                "tns": float(self.corner_tns[index]),
                "failing_endpoints": int(np.sum(slack < 0)),
            }
        return out


class _CornerEngineView:
    """Adapter exposing one corner of a :class:`MultiCornerSTA` with the
    single-corner engine interface (graph / constraints / last_result),
    so reporting and path extraction work per corner unchanged."""

    def __init__(self, parent: "MultiCornerSTA", index: int) -> None:
        self._parent = parent
        self.index = index
        self.design = parent.design
        self.graph = parent.graph
        self.corner = parent.corners[index]
        self.constraints = parent.constraints[index]
        self.endpoint_pins = parent.endpoint_pins

    @property
    def last_result(self) -> Optional[STAResult]:
        result = self._parent.last_result
        return None if result is None else result.corner_result(self.index)

    def update_timing(self, *args, **kwargs) -> STAResult:
        """Run a full multi-corner update and return this corner's slice."""
        return self._parent.update_timing(*args, **kwargs).corner_result(self.index)


# ----------------------------------------------------------------------
# Engine
# ----------------------------------------------------------------------
class MultiCornerSTA:
    """Corner-stacked arrival/required/slack propagation on a shared graph.

    Mirrors the :class:`STAEngine` interface (``update_timing``, ``wns``,
    ``tns``, ``summary``, incremental mode with ``move_tolerance``) but every
    annotation carries a leading corner axis.  See the module docstring for
    the exactness contract.
    """

    def __init__(
        self,
        design: Design,
        corners: CornersSpec = None,
        *,
        default_constraints: Optional[TimingConstraints] = None,
        graph: Optional[TimingGraph] = None,
        wire_model: Optional[WireRCModel] = None,
        incremental: bool = False,
        move_tolerance: float = 0.0,
        incremental_rebuild_fraction: float = 0.5,
    ) -> None:
        self.design = design
        self.graph = graph if graph is not None else TimingGraph(design)
        self.wire_model = wire_model if wire_model is not None else WireRCModel(design)
        self.cell_model = CellDelayModel(self.graph)
        self.incremental = incremental
        self.move_tolerance = float(move_tolerance)
        self.incremental_rebuild_fraction = float(incremental_rebuild_fraction)
        self._forward_buckets, self._backward_buckets = level_buckets(self.graph)
        self.set_corners(corners, default_constraints=default_constraints)

    def set_corners(
        self,
        corners: CornersSpec,
        *,
        default_constraints: Optional[TimingConstraints] = None,
    ) -> None:
        """Swap the analysis corners/modes and invalidate everything they touch.

        The corner-swap analogue of :meth:`STAEngine.set_constraints`:
        boundary conditions and propagation bases are rebuilt for the new
        corner set, and every cached annotation is dropped so the next
        ``update_timing`` runs a full pass.  ``corners`` and ``constraints``
        are read-only properties for the same reason — rebinding them
        directly would leave the stacked caches silently stale.
        """
        self._corners = resolve_corners(corners)
        # Mode resolution per corner: its own pinned constraints, then the
        # engine-level default (e.g. the flow's constraints), then the
        # design's SDC-derived fields.
        self._constraints: Tuple[TimingConstraints, ...] = tuple(
            corner.constraints_for(self.design, default_constraints)
            for corner in self._corners
        )
        for constraints in self._constraints:
            constraints.validate()
        self._rc_scales = tuple(corner.wire_rc_scale for corner in self._corners)
        self._derates = tuple(corner.cell_derate for corner in self._corners)

        self._prepare_boundary_conditions()
        self._prepare_propagation_bases()
        self._corner_rows = np.arange(len(self._corners), dtype=np.int64)[:, None]

        self.last_result: Optional[MultiCornerResult] = None
        self.last_update_stats: Optional[TimingUpdateStats] = None
        # Incremental caches (populated by the first full update).
        self._ref_x: Optional[np.ndarray] = None
        self._ref_y: Optional[np.ndarray] = None
        self._arc_delay: Optional[np.ndarray] = None
        self._net_load: Optional[np.ndarray] = None
        self._sink_delay: Optional[np.ndarray] = None
        self._arrival: Optional[np.ndarray] = None
        self._required: Optional[np.ndarray] = None
        self._views: Dict[int, _CornerEngineView] = {}

    # ------------------------------------------------------------------
    # Precomputation
    # ------------------------------------------------------------------
    @property
    def corners(self) -> Tuple[Corner, ...]:
        """The analysis corners (swap via :meth:`set_corners`)."""
        return self._corners

    @property
    def constraints(self) -> Tuple[TimingConstraints, ...]:
        """Per-corner mode constraints (swap via :meth:`set_corners`)."""
        return self._constraints

    @property
    def num_corners(self) -> int:
        return len(self._corners)

    def corner_view(self, index: int) -> _CornerEngineView:
        """A single-corner engine adapter for reporting/path extraction."""
        view = self._views.get(index)
        if view is None:
            view = _CornerEngineView(self, index)
            self._views[index] = view
        return view

    def _prepare_boundary_conditions(self) -> None:
        """Per-corner boundary values over the (shared) graph pin sets."""
        source_arrivals: List[np.ndarray] = []
        endpoint_requireds: List[np.ndarray] = []
        source_pins = endpoint_pins = None
        for constraints in self.constraints:
            pins, arrival, ep_pins, ep_required = boundary_conditions(
                self.design, self.graph, constraints
            )
            source_pins, endpoint_pins = pins, ep_pins
            source_arrivals.append(arrival)
            endpoint_requireds.append(ep_required)
        self.source_pins = source_pins
        self.endpoint_pins = endpoint_pins
        self.source_arrival = np.stack(source_arrivals)        # [C, S]
        self.endpoint_required = np.stack(endpoint_requireds)  # [C, E]

    def _prepare_propagation_bases(self) -> None:
        graph = self.graph
        num_corners = len(self.corners)
        base_arrival = np.full((num_corners, graph.num_pins), _NEG_INF, dtype=np.float64)
        no_fanin = np.diff(graph.fanin_offsets) == 0
        base_arrival[:, no_fanin] = 0.0
        if self.source_pins.size:
            base_arrival[:, self.source_pins] = self.source_arrival
        self._base_arrival = base_arrival

        base_required = np.full((num_corners, graph.num_pins), _POS_INF, dtype=np.float64)
        if self.endpoint_pins.size:
            base_required[:, self.endpoint_pins] = self.endpoint_required
        self._base_required = base_required

    # ------------------------------------------------------------------
    # Timing update
    # ------------------------------------------------------------------
    def update_timing(
        self,
        x: Optional[np.ndarray] = None,
        y: Optional[np.ndarray] = None,
        *,
        incremental: Optional[bool] = None,
    ) -> MultiCornerResult:
        """Run one stacked STA pass over every corner at positions ``(x, y)``."""
        design = self.design
        if x is None or y is None:
            x, y = design.positions()
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)

        use_incremental = self.incremental if incremental is None else incremental
        if use_incremental and self._can_update_incrementally():
            result = self._update_incremental(x, y)
            if result is not None:
                self.last_result = result
                return result
        return self._update_full(x, y)

    def _can_update_incrementally(self) -> bool:
        return (
            self._arc_delay is not None
            and self._ref_x is not None
            and self._arrival is not None
            and self.graph.num_arcs > 0
        )

    def _stacked_arc_delays(self, net_load: np.ndarray, sink_delay: np.ndarray) -> np.ndarray:
        """Cell-arc + net-arc delays for every corner, ``[C, num_arcs]``."""
        graph = self.graph
        arc_delay = np.stack(
            [
                self.cell_model.evaluate(net_load[index], derate=self._derates[index])
                for index in range(self.num_corners)
            ]
        )
        net_arc_mask = graph.arc_kind == int(ArcKind.NET)
        arc_delay[:, net_arc_mask] = sink_delay[:, graph.arc_to[net_arc_mask]]
        return arc_delay

    def _update_full(self, x: np.ndarray, y: np.ndarray) -> MultiCornerResult:
        graph = self.graph
        pin_x, pin_y = self.design.pin_positions(x, y)

        wire = self.wire_model.evaluate_stacked(pin_x, pin_y, self._rc_scales)
        arc_delay = self._stacked_arc_delays(wire.net_load, wire.sink_delay)

        arrival = self._propagate_arrival(arc_delay)
        required = self._propagate_required(arc_delay)

        # Seed the incremental caches.
        self._ref_x = x.copy()
        self._ref_y = y.copy()
        self._arc_delay = arc_delay
        self._net_load = wire.net_load
        self._sink_delay = wire.sink_delay
        self._arrival = arrival
        self._required = required

        self.last_update_stats = TimingUpdateStats(
            mode="full",
            num_dirty_nets=int(self.wire_model.num_nets),
            num_dirty_arcs=int(graph.num_arcs),
            num_forward_pins=int(graph.num_pins),
            num_backward_pins=int(graph.num_pins),
        )
        result = self._assemble_result()
        self.last_result = result
        return result

    def _update_incremental(
        self, x: np.ndarray, y: np.ndarray
    ) -> Optional[MultiCornerResult]:
        """Shared dirty-net detection, corner-batched re-propagation.

        Movement detection and the dirty-net frontier are computed **once**
        (they depend only on positions); the wire geometry pass runs once on
        the masked nets; only the RC combine and the frontier re-propagation
        are per-corner — and the latter is batched over the corner axis.
        Returns ``None`` to request a full rebuild.
        """
        design = self.design
        graph = self.graph
        arrays = design.arrays
        tol = self.move_tolerance

        moved = (np.abs(x - self._ref_x) > tol) | (np.abs(y - self._ref_y) > tol)
        num_moved = int(moved.sum())
        if num_moved == 0:
            self.last_update_stats = TimingUpdateStats(
                mode="incremental", num_moved_instances=0
            )
            return self._assemble_result()

        moved_pin_mask = moved[arrays.pin_instance]
        dirty_net_ids = arrays.pin_net[moved_pin_mask]
        dirty_net_ids = dirty_net_ids[dirty_net_ids >= 0]
        net_mask = np.zeros(self.wire_model.num_nets, dtype=bool)
        net_mask[dirty_net_ids] = True
        num_dirty_nets = int(net_mask.sum())
        if num_dirty_nets > self.incremental_rebuild_fraction * max(net_mask.size, 1):
            return None  # most of the design moved; a full pass is cheaper

        # Copy-on-write, as in the single-corner engine: results handed out
        # by previous updates must never change after the fact.
        self._arrival = self._arrival.copy()
        self._required = self._required.copy()
        self._arc_delay = self._arc_delay.copy()
        self._net_load = self._net_load.copy()
        self._sink_delay = self._sink_delay.copy()

        pin_x, pin_y = design.pin_positions(x, y)
        wire = self.wire_model.evaluate_stacked(
            pin_x, pin_y, self._rc_scales, net_mask=net_mask
        )
        dirty_pins = self.wire_model.pins_of_nets(net_mask)
        self._net_load[:, net_mask] = wire.net_load[:, net_mask]
        self._sink_delay[:, dirty_pins] = wire.sink_delay[:, dirty_pins]

        # Refresh delays of every arc tied to a dirty net, for all corners.
        net_arc_dirty = (graph.arc_kind == int(ArcKind.NET)) & net_mask[
            np.maximum(graph.arc_net, 0)
        ] & (graph.arc_net >= 0)
        self._arc_delay[:, net_arc_dirty] = self._sink_delay[
            :, graph.arc_to[net_arc_dirty]
        ]
        cell_arc_dirty = np.zeros(0, dtype=np.int64)
        for index in range(self.num_corners):
            # The dirty cell-arc set depends only on the net mask, so every
            # corner returns the same indices; values differ per corner.
            cell_arc_dirty = self.cell_model.update_subset(
                self._arc_delay[index],
                self._net_load[index],
                net_mask,
                derate=self._derates[index],
            )
        dirty_arcs = np.concatenate([np.nonzero(net_arc_dirty)[0], cell_arc_dirty])

        forward_pins = self._incremental_forward(dirty_arcs)
        backward_pins = self._incremental_backward(dirty_arcs)

        self._ref_x[moved] = x[moved]
        self._ref_y[moved] = y[moved]

        self.last_update_stats = TimingUpdateStats(
            mode="incremental",
            num_moved_instances=num_moved,
            num_dirty_nets=num_dirty_nets,
            num_dirty_arcs=int(dirty_arcs.size),
            num_forward_pins=forward_pins,
            num_backward_pins=backward_pins,
        )
        return self._assemble_result()

    def _incremental_forward(self, dirty_arcs: np.ndarray) -> int:
        """Recompute arrivals downstream of dirty arcs, all corners batched.

        The frontier is the union over corners: a pin whose arrival changed
        in *any* corner re-enters the worklist for all of them.  Recomputing
        a corner whose value did not change replays the full-fanin formula
        and reproduces the same bits, so the union costs nothing in
        exactness (and keeps the worklist bookkeeping single-track).
        """
        graph = self.graph
        arrival = self._arrival
        arc_delay = self._arc_delay
        worklist = _LevelWorklist(graph.level, graph.num_pins)
        if dirty_arcs.size:
            worklist.mark(graph.arc_to[dirty_arcs])
        recomputed = 0
        for lvl in range(1, graph.max_level + 1):
            idx = worklist.pop(lvl)
            if idx is None:
                continue
            recomputed += int(idx.size)
            new = self._base_arrival[:, idx].copy()
            flat, lengths = _csr_gather(graph.fanin_offsets, graph.fanin_arcs, idx)
            if flat.size:
                nonzero = lengths > 0
                candidates = arrival[:, graph.arc_from[flat]] + arc_delay[:, flat]
                reduced = np.maximum.reduceat(
                    candidates, np.cumsum(lengths[nonzero]) - lengths[nonzero], axis=1
                )
                new[:, nonzero] = np.maximum(new[:, nonzero], reduced)
            changed = idx[np.any(new != arrival[:, idx], axis=0)]
            arrival[:, idx] = new
            if changed.size:
                out, _ = _csr_gather(graph.fanout_offsets, graph.fanout_arcs, changed)
                if out.size:
                    worklist.mark(graph.arc_to[out])
        return recomputed

    def _incremental_backward(self, dirty_arcs: np.ndarray) -> int:
        """Recompute required times upstream of dirty arcs, corners batched."""
        graph = self.graph
        required = self._required
        arc_delay = self._arc_delay
        worklist = _LevelWorklist(graph.level, graph.num_pins)
        if dirty_arcs.size:
            worklist.mark(graph.arc_from[dirty_arcs])
        recomputed = 0
        for lvl in range(graph.max_level - 1, -1, -1):
            idx = worklist.pop(lvl)
            if idx is None:
                continue
            recomputed += int(idx.size)
            new = self._base_required[:, idx].copy()
            flat, lengths = _csr_gather(graph.fanout_offsets, graph.fanout_arcs, idx)
            if flat.size:
                nonzero = lengths > 0
                candidates = required[:, graph.arc_to[flat]] - arc_delay[:, flat]
                reduced = np.minimum.reduceat(
                    candidates, np.cumsum(lengths[nonzero]) - lengths[nonzero], axis=1
                )
                new[:, nonzero] = np.minimum(new[:, nonzero], reduced)
            changed = idx[np.any(new != required[:, idx], axis=0)]
            required[:, idx] = new
            if changed.size:
                inc, _ = _csr_gather(graph.fanin_offsets, graph.fanin_arcs, changed)
                if inc.size:
                    worklist.mark(graph.arc_from[inc])
        return recomputed

    # ------------------------------------------------------------------
    # Stacked level-by-level propagation
    # ------------------------------------------------------------------
    def _propagate_arrival(self, arc_delay: np.ndarray) -> np.ndarray:
        graph = self.graph
        arrival = self._base_arrival.copy()
        rows = self._corner_rows
        for bucket in self._forward_buckets:
            if bucket.size == 0:
                continue
            candidate = arrival[:, graph.arc_from[bucket]] + arc_delay[:, bucket]
            np.maximum.at(arrival, (rows, graph.arc_to[bucket][None, :]), candidate)
        return arrival

    def _propagate_required(self, arc_delay: np.ndarray) -> np.ndarray:
        graph = self.graph
        required = self._base_required.copy()
        rows = self._corner_rows
        for bucket in self._backward_buckets:
            if bucket.size == 0:
                continue
            candidate = required[:, graph.arc_to[bucket]] - arc_delay[:, bucket]
            np.minimum.at(required, (rows, graph.arc_from[bucket][None, :]), candidate)
        return required

    # ------------------------------------------------------------------
    # Assembly and metrics
    # ------------------------------------------------------------------
    def _assemble_result(self) -> MultiCornerResult:
        arrival = self._arrival
        required = self._required
        slack = required - arrival
        num_corners = self.num_corners

        if self.endpoint_pins.size:
            endpoint_arrival = arrival[:, self.endpoint_pins]
            endpoint_slack = self.endpoint_required - endpoint_arrival
            # Endpoints never reached by any path are ignored (no constraint).
            reachable = endpoint_arrival > _NEG_INF / 2
            endpoint_slack = np.where(reachable, endpoint_slack, np.inf)
        else:
            endpoint_slack = np.zeros((num_corners, 0))

        corner_wns = np.zeros(num_corners, dtype=np.float64)
        corner_tns = np.zeros(num_corners, dtype=np.float64)
        for index in range(num_corners):
            negative = endpoint_slack[index][endpoint_slack[index] < 0]
            corner_wns[index] = float(negative.min()) if negative.size else 0.0
            corner_tns[index] = float(negative.sum()) if negative.size else 0.0

        if endpoint_slack.shape[1]:
            merged = endpoint_slack.min(axis=0)
            merged_negative = merged[merged < 0]
        else:
            merged_negative = np.zeros(0)
        wns = float(merged_negative.min()) if merged_negative.size else 0.0
        tns = float(merged_negative.sum()) if merged_negative.size else 0.0

        return MultiCornerResult(
            corners=self.corners,
            arrival=arrival,
            required=required,
            slack=slack,
            arc_delay=self._arc_delay,
            net_load=self._net_load,
            endpoint_pins=self.endpoint_pins,
            endpoint_slack=endpoint_slack,
            corner_wns=corner_wns,
            corner_tns=corner_tns,
            wns=wns,
            tns=tns,
        )

    # ------------------------------------------------------------------
    # Convenience metrics
    # ------------------------------------------------------------------
    def wns(self) -> float:
        self._require_result()
        return self.last_result.wns  # type: ignore[union-attr]

    def tns(self) -> float:
        self._require_result()
        return self.last_result.tns  # type: ignore[union-attr]

    def _require_result(self) -> None:
        if self.last_result is None:
            raise RuntimeError("Call update_timing() before querying results")

    def summary(self) -> Dict[str, object]:
        """Merged headline metrics plus the per-corner breakdown."""
        self._require_result()
        result = self.last_result
        assert result is not None
        return {
            "wns": result.wns,
            "tns": result.tns,
            "failing_endpoints": result.num_failing_endpoints,
            "endpoints": int(self.endpoint_pins.size),
            "corners": [corner.name for corner in self.corners],
            "per_corner": result.per_corner_summary(),
        }
