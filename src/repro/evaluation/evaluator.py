"""Uniform placement scoring: HPWL, TNS, WNS, legality checks.

The evaluator plays the role of the ICCAD-2015 contest evaluation kit: every
competing placement of the same design is scored with one STA configuration
(same constraints, same wire RC, same Elmore model) so differences come from
the placement alone.

With ``corners`` the evaluator scores against a multi-corner analysis: the
headline ``tns``/``wns`` become the *merged* (worst-over-corners) metrics and
the report additionally carries the per-corner breakdown.  A single identity
corner reproduces the single-corner numbers bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

import numpy as np

from repro.netlist.core import as_core
from repro.netlist.design import Design
from repro.placement.wirelength import total_hpwl
from repro.timing.constraints import TimingConstraints
from repro.timing.mcmm import CornersSpec, MultiCornerResult, MultiCornerSTA
from repro.timing.sta import STAEngine


@dataclass
class EvaluationReport:
    """Scores of one placement.

    ``tns``/``wns`` are merged over corners when the evaluation was
    multi-corner (``per_corner`` is then populated, keyed by corner name).
    """

    design_name: str
    hpwl: float
    tns: float
    wns: float
    num_failing_endpoints: int
    num_endpoints: int
    overlap_area: float
    out_of_die_cells: int
    per_corner: Optional[Dict[str, Dict[str, float]]] = field(default=None)

    def as_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "design": self.design_name,
            "hpwl": self.hpwl,
            "tns": self.tns,
            "wns": self.wns,
            "failing_endpoints": self.num_failing_endpoints,
            "endpoints": self.num_endpoints,
            "overlap_area": self.overlap_area,
            "out_of_die_cells": self.out_of_die_cells,
        }
        if self.per_corner is not None:
            out["per_corner"] = self.per_corner
        return out


class Evaluator:
    """Score placements of one design with a fixed STA configuration."""

    def __init__(
        self,
        design: Design,
        constraints: Optional[TimingConstraints] = None,
        *,
        corners: CornersSpec = None,
    ) -> None:
        self.design = design
        self.constraints = (
            constraints if constraints is not None else TimingConstraints.from_design(design)
        )
        if corners is not None:
            self._engine: "STAEngine | MultiCornerSTA" = MultiCornerSTA(
                design, corners, default_constraints=self.constraints
            )
        else:
            self._engine = STAEngine(design, self.constraints)

    def evaluate(
        self,
        x: Optional[np.ndarray] = None,
        y: Optional[np.ndarray] = None,
    ) -> EvaluationReport:
        """Evaluate positions ``(x, y)`` (design's stored positions if omitted)."""
        design = self.design
        if x is None or y is None:
            x, y = design.positions()
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)

        core = design.core
        hpwl = total_hpwl(core, x, y)
        result = self._engine.update_timing(x, y)
        per_corner = (
            result.per_corner_summary() if isinstance(result, MultiCornerResult) else None
        )
        overlap = _row_overlap_area(core, x, y)
        outside = _out_of_die_count(core, x, y)
        return EvaluationReport(
            design_name=design.name,
            hpwl=hpwl,
            tns=result.tns,
            wns=result.wns,
            num_failing_endpoints=result.num_failing_endpoints,
            num_endpoints=int(result.endpoint_pins.size),
            overlap_area=overlap,
            out_of_die_cells=outside,
            per_corner=per_corner,
        )

    @property
    def engine(self) -> "STAEngine | MultiCornerSTA":
        """The underlying STA engine (shared with reporting utilities)."""
        return self._engine


def evaluate_placement(
    design: Design,
    x: Optional[np.ndarray] = None,
    y: Optional[np.ndarray] = None,
    *,
    constraints: Optional[TimingConstraints] = None,
    corners: CornersSpec = None,
) -> EvaluationReport:
    """One-shot convenience wrapper around :class:`Evaluator`."""
    return Evaluator(design, constraints, corners=corners).evaluate(x, y)


def _row_overlap_area(design, x: np.ndarray, y: np.ndarray) -> float:
    """Total pairwise overlap area between movable cells sharing a row."""
    arrays = as_core(design)
    movable = arrays.movable_index
    if movable.size == 0:
        return 0.0
    overlap = 0.0
    # Group by y coordinate (legal placements put cells exactly on rows).
    ys = y[movable]
    for row_y in np.unique(ys):
        in_row = movable[ys == row_y]
        if in_row.size < 2:
            continue
        order = in_row[np.argsort(x[in_row], kind="stable")]
        right_edge = x[order] + arrays.inst_width[order]
        gaps = x[order][1:] - right_edge[:-1]
        heights = np.minimum(arrays.inst_height[order][1:], arrays.inst_height[order][:-1])
        overlap += float(np.sum(np.maximum(-gaps, 0.0) * heights))
    return overlap


def _out_of_die_count(design, x: np.ndarray, y: np.ndarray) -> int:
    """Number of movable cells whose footprint leaves the die area."""
    arrays = as_core(design)
    die = arrays.die
    movable = arrays.movable_index
    if movable.size == 0:
        return 0
    xl = x[movable]
    yl = y[movable]
    xh = xl + arrays.inst_width[movable]
    yh = yl + arrays.inst_height[movable]
    bad = (
        (xl < die.xl - 1e-6)
        | (yl < die.yl - 1e-6)
        | (xh > die.xh + 1e-6)
        | (yh > die.yh + 1e-6)
    )
    return int(np.sum(bad))
