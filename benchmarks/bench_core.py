"""Micro-benchmark of the array-first design core (perf trajectory anchor).

Measures, for a few sb_mini designs:

* design build time (synthetic generation + finalize);
* ``CompiledDesign`` snapshot: compile time, pickle size/time versus pickling
  the full object graph, and worker-side rebuild (``to_design``) time;
* STA update cost: full pass versus incremental pass after a small
  perturbation (1% of movable cells moved).

Writes ``benchmarks/results/BENCH_core.json`` (override with ``--out``) so
successive PRs can track the numbers.

Usage::

    PYTHONPATH=src python benchmarks/bench_core.py [--designs sb_mini_18,...]
"""

from __future__ import annotations

import argparse
import json
import pickle
import platform
import time
from pathlib import Path

import numpy as np

from repro.benchgen.suite import load_benchmark
from repro.netlist.compiled import compile_design
from repro.timing.sta import STAEngine

DEFAULT_DESIGNS = ["sb_mini_18", "sb_mini_1", "sb_mini_10"]


def _time(fn, repeat: int = 3):
    """Best-of-N wall time and the last return value."""
    best = float("inf")
    value = None
    for _ in range(repeat):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def bench_design(name: str) -> dict:
    build_seconds, design = _time(lambda: load_benchmark(name))

    compile_seconds, compiled = _time(lambda: compile_design(design))
    snapshot_pickle_seconds, snapshot_blob = _time(lambda: pickle.dumps(compiled))
    design_pickle_seconds, design_blob = _time(lambda: pickle.dumps(design))
    rebuild_seconds, _ = _time(lambda: pickle.loads(snapshot_blob).to_design())

    engine = STAEngine(design, incremental=True)
    full_seconds, _ = _time(lambda: engine.update_timing(incremental=False))

    # Perturb 1% of movable cells and measure the incremental re-propagation.
    core = design.core
    rng = np.random.default_rng(0)
    movable = core.movable_index
    num_moved = max(1, movable.size // 100)
    moved = rng.choice(movable, size=num_moved, replace=False)

    def incremental_pass():
        x, y = core.positions()
        x[moved] += rng.uniform(-5.0, 5.0, size=moved.size)
        y[moved] += rng.uniform(-5.0, 5.0, size=moved.size)
        return engine.update_timing(x, y)

    incremental_seconds, _ = _time(incremental_pass)

    return {
        "design": name,
        "num_instances": design.num_instances,
        "num_nets": design.num_nets,
        "num_pins": design.num_pins,
        "build_ms": round(build_seconds * 1e3, 3),
        "compile_ms": round(compile_seconds * 1e3, 3),
        "snapshot_pickle_ms": round(snapshot_pickle_seconds * 1e3, 3),
        "snapshot_pickle_bytes": len(snapshot_blob),
        "design_pickle_ms": round(design_pickle_seconds * 1e3, 3),
        "design_pickle_bytes": len(design_blob),
        "pickle_size_ratio": round(len(design_blob) / len(snapshot_blob), 2),
        "snapshot_rebuild_ms": round(rebuild_seconds * 1e3, 3),
        "sta_full_ms": round(full_seconds * 1e3, 3),
        "sta_incremental_1pct_ms": round(incremental_seconds * 1e3, 3),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--designs",
        default=",".join(DEFAULT_DESIGNS),
        help="comma-separated sb_mini names",
    )
    parser.add_argument(
        "--out",
        default=str(Path(__file__).parent / "results" / "BENCH_core.json"),
        help="output JSON path",
    )
    args = parser.parse_args(argv)

    rows = [bench_design(name) for name in args.designs.split(",") if name]
    payload = {
        "benchmark": "design core / CompiledDesign / STA micro-benchmark",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "designs": rows,
    }
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    header = f"{'design':<12} {'build':>8} {'compile':>8} {'pickle':>8} {'rebuild':>8} {'ratio':>6} {'sta full':>9} {'sta incr':>9}"
    print(header)
    for row in rows:
        print(
            f"{row['design']:<12} {row['build_ms']:>7.1f}m {row['compile_ms']:>7.2f}m "
            f"{row['snapshot_pickle_ms']:>7.2f}m {row['snapshot_rebuild_ms']:>7.1f}m "
            f"{row['pickle_size_ratio']:>5.1f}x {row['sta_full_ms']:>8.2f}m "
            f"{row['sta_incremental_1pct_ms']:>8.2f}m"
        )
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
