"""Electrostatics-based density penalty (ePlace / DREAMPlace style).

Movable cell area is splatted onto a regular bin grid, the resulting charge
density is smoothed by solving Poisson's equation with a DCT (Neumann
boundaries), and each cell experiences a force proportional to the electric
field at its location.  The penalty value is the usual electrostatic energy
``0.5 * sum(rho * psi)``, whose gradient with respect to a cell position is
``-area * E`` at the cell's center.

Two simplifications relative to the full ePlace formulation are made and
documented here because they matter only at scales far beyond this
reproduction's synthetic benchmarks:

* cells are splatted with bilinear (cloud-in-cell) weights instead of exact
  rectangle overlap — accurate when cells are small relative to bins, which
  holds for the generated standard-cell designs;
* fixed terminals (zero-area ports) carry no charge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np
from scipy import fft as spfft

from repro.netlist.core import as_core


def auto_bin_count(num_movable: int) -> int:
    """Power-of-two grid size targeting ~4 movable cells per bin (>= 16).

    Shared by the density model and the congestion estimator so their grids
    stay in correspondence: cells that crowd one density bin are the same
    cells whose nets crowd the matching congestion bins.

    Grows as ``sqrt(num_movable)`` without an upper clamp: the historical
    cap at 256 bins froze the per-bin cell count at XL sizes (a 1M-cell
    design would average ~15 cells/bin and smear every local hotspot).
    Values at the existing benchmark tiers (< ~300k cells) are unchanged,
    which keeps the small-design goldens bit-exact.
    """
    cells = max(int(num_movable), 1)
    return int(2 ** max(int(np.round(np.log2(np.sqrt(cells / 4.0)))), 4))


@dataclass
class DensityResult:
    """Energy, gradient, and overflow of one density evaluation."""

    energy: float
    grad_x: np.ndarray
    grad_y: np.ndarray
    overflow: float
    max_density: float


class ElectrostaticDensity:
    """Poisson-smoothed density penalty over a regular bin grid."""

    def __init__(
        self,
        design,
        *,
        num_bins_x: Optional[int] = None,
        num_bins_y: Optional[int] = None,
        target_density: float = 1.0,
        workers: int = 0,
        runner=None,
    ) -> None:
        arrays = as_core(design)
        self.core = arrays
        die = arrays.die
        num_movable = int(arrays.movable_mask.sum())
        if num_bins_x is None or num_bins_y is None:
            bins = auto_bin_count(num_movable)
            num_bins_x = num_bins_x or bins
            num_bins_y = num_bins_y or bins
        self.num_bins_x = int(num_bins_x)
        self.num_bins_y = int(num_bins_y)
        self.bin_w = die.width / self.num_bins_x
        self.bin_h = die.height / self.num_bins_y
        self.bin_area = self.bin_w * self.bin_h
        self.target_density = float(target_density)

        self._movable = arrays.movable_index
        self._area = arrays.inst_area[self._movable]
        self._half_w = arrays.inst_width[self._movable] * 0.5
        self._half_h = arrays.inst_height[self._movable] * 0.5
        self._total_movable_area = float(self._area.sum())

        # Parallel splat sharding (repro.parallel); workers=0 keeps the
        # serial path.  ``_terms_dirty`` tracks when the per-cell geometry
        # arrays in the shared block need a rewrite (area inflation).
        self.workers = int(workers)
        self._runner = runner
        self._runner_resolved = runner is not None
        self._block = None
        self._terms_dirty = True

        # Scatter-plan scratch: flattened corner indices/weights for the
        # single-bincount splat, plus Poisson-solve work grids (PR 7).
        num_movable_cells = self._movable.size
        self._flat_idx = np.empty(4 * num_movable_cells, dtype=np.int64)
        self._flat_w = np.empty(4 * num_movable_cells, dtype=np.float64)
        self._rho = np.empty((self.num_bins_x, self.num_bins_y), dtype=np.float64)
        self._field_u = np.empty_like(self._rho)
        self._field_v = np.empty_like(self._rho)
        # Corner-index/overflow scratch for the steady-state splat + sample
        # paths (PR 8: the alloc contract bans per-call astype/minimum
        # temporaries on the gradient path).
        self._iu = np.empty(num_movable_cells, dtype=np.int64)
        self._iv = np.empty(num_movable_cells, dtype=np.int64)
        self._iu1 = np.empty(num_movable_cells, dtype=np.int64)
        self._iv1 = np.empty(num_movable_cells, dtype=np.int64)
        self._floor_u = np.empty(num_movable_cells, dtype=np.float64)
        self._floor_v = np.empty(num_movable_cells, dtype=np.float64)
        self._over = np.empty_like(self._rho)

        # Optional buffer arena (attached by the placer) backing the
        # per-instance gradient accumulators; standalone callers keep
        # fresh-array semantics via the np.zeros fallback in _buffer.
        self.arena = None

        # Precompute DCT frequencies for the Poisson solve.
        wx = np.pi * np.arange(self.num_bins_x) / self.num_bins_x / self.bin_w
        wy = np.pi * np.arange(self.num_bins_y) / self.num_bins_y / self.bin_h
        wx2 = wx[:, None] ** 2
        wy2 = wy[None, :] ** 2
        denom = wx2 + wy2
        denom[0, 0] = 1.0  # DC term handled separately (set to zero)
        self._inv_denom = 1.0 / denom
        self._inv_denom[0, 0] = 0.0

    def set_area_scale(self, scale: Optional[np.ndarray]) -> None:
        """Inflate the cell areas the density model sees (routability repair).

        ``scale`` is a per-instance multiplier (indexed like ``core.x``;
        only movable entries matter); ``None`` restores the physical areas.
        Footprints grow isotropically — widths and heights scale by
        ``sqrt(scale)`` — which is how congestion-driven inflation trades
        whitespace for routing headroom without touching the real netlist
        geometry (legalization and evaluation still use physical sizes).
        """
        arrays = self.core
        if scale is None:
            factor = np.ones(self._movable.size, dtype=np.float64)
        else:
            scale = np.asarray(scale, dtype=np.float64)
            if scale.shape != (arrays.num_instances,):
                raise ValueError("area scale must have one entry per instance")
            if np.any(scale <= 0.0):
                raise ValueError("area scale factors must be positive")
            factor = scale[self._movable]
        self._area = arrays.inst_area[self._movable] * factor
        side = np.sqrt(factor)
        self._half_w = arrays.inst_width[self._movable] * 0.5 * side
        self._half_h = arrays.inst_height[self._movable] * 0.5 * side
        self._total_movable_area = float(self._area.sum())
        self._terms_dirty = True

    # ------------------------------------------------------------------
    def _get_runner(self):
        if not self._runner_resolved:
            self._runner_resolved = True
            if self.workers > 0:
                from repro.parallel import get_runner

                self._runner = get_runner(self.workers)
        return self._runner

    def _ensure_block(self, runner):
        if self._block is not None:
            return self._block
        arrays = self.core
        num_movable = self._movable.size
        self._block = runner.register(
            {
                "movable": self._movable,
                # Mutable per-call inputs.
                "x": np.zeros(arrays.num_instances, dtype=np.float64),
                "y": np.zeros(arrays.num_instances, dtype=np.float64),
                "area": np.zeros(num_movable, dtype=np.float64),
                "half_w": np.zeros(num_movable, dtype=np.float64),
                "half_h": np.zeros(num_movable, dtype=np.float64),
                # Worker outputs: bin indices + corner weights per cell.
                "iu": np.zeros(num_movable, dtype=np.int64),
                "iv": np.zeros(num_movable, dtype=np.int64),
                "iu1": np.zeros(num_movable, dtype=np.int64),
                "iv1": np.zeros(num_movable, dtype=np.int64),
                "w00": np.zeros(num_movable, dtype=np.float64),
                "w10": np.zeros(num_movable, dtype=np.float64),
                "w01": np.zeros(num_movable, dtype=np.float64),
                "w11": np.zeros(num_movable, dtype=np.float64),
            }
        )
        self._terms_dirty = True
        import weakref

        from repro.route.rudy import _release_block

        weakref.finalize(self, _release_block, runner, self._block)
        return self._block

    def _splat_parallel(self, runner, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Sharded splat: workers compute per-cell indices/weights, the
        parent replays the four ``np.add.at`` deposits in serial cell order —
        bitwise identical to the serial splat."""
        from repro.parallel.engine import split_ranges

        die = self.core.die
        block = self._ensure_block(runner)
        views = block.views
        views["x"][...] = x
        views["y"][...] = y
        if self._terms_dirty:
            views["area"][...] = self._area
            views["half_w"][...] = self._half_w
            views["half_h"][...] = self._half_h
            self._terms_dirty = False
        args = (die.xl, die.yl, self.bin_w, self.bin_h, self.num_bins_x, self.num_bins_y)
        tasks = [
            (s, e, *args) for s, e in split_ranges(self._movable.size, runner.workers)
        ]
        runner.run("density_terms", [block], tasks)
        return self._deposit(
            views["iu"], views["iv"], views["iu1"], views["iv1"],
            views["w00"], views["w10"], views["w01"], views["w11"],
        )

    def _deposit(self, iu, iv, iu1, iv1, w00, w10, w01, w11) -> np.ndarray:
        """Replay the four corner deposits as one flat ``bincount``.

        ``np.bincount`` with float weights is a sequential fold in input
        order, so concatenating the corner contributions in the legacy
        deposit order (w00, w10, w01, w11) reproduces the four sequential
        ``np.add.at`` calls bit for bit (property-tested against
        ``_reference_splat``).
        """
        n = iu.size
        nby = self.num_bins_y
        idx = self._flat_idx
        w = self._flat_w
        np.multiply(iu, nby, out=idx[:n])
        idx[:n] += iv
        np.multiply(iu1, nby, out=idx[n : 2 * n])
        idx[n : 2 * n] += iv
        np.multiply(iu, nby, out=idx[2 * n : 3 * n])
        idx[2 * n : 3 * n] += iv1
        np.multiply(iu1, nby, out=idx[3 * n :])
        idx[3 * n :] += iv1
        w[:n] = w00
        w[n : 2 * n] = w10
        w[2 * n : 3 * n] = w01
        w[3 * n :] = w11
        flat = np.bincount(idx, weights=w, minlength=self.num_bins_x * nby)
        return flat.reshape(self.num_bins_x, nby)

    def _splat(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Cloud-in-cell deposition of movable cell areas onto the bin grid."""
        runner = self._get_runner()
        if runner is not None and self._movable.size:
            return self._splat_parallel(runner, x, y)
        die = self.core.die
        cx = x[self._movable] + self._half_w
        cy = y[self._movable] + self._half_h
        # Continuous bin coordinates of the cell centers.
        u = (cx - die.xl) / self.bin_w - 0.5
        v = (cy - die.yl) / self.bin_h - 0.5
        u = np.clip(u, 0.0, self.num_bins_x - 1.0)
        v = np.clip(v, 0.0, self.num_bins_y - 1.0)
        iu, iv, iu1, iv1, fu, fv = self._corner_indices(u, v)
        return self._deposit(
            iu, iv, iu1, iv1,
            self._area * (1 - fu) * (1 - fv),
            self._area * fu * (1 - fv),
            self._area * (1 - fu) * fv,
            self._area * fu * fv,
        )

    def _corner_indices(
        self, u: np.ndarray, v: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Corner bin indices and fractional offsets, staged through owned
        buffers.  Bitwise identical to the legacy temporaries: the int-buffer
        setitem truncates exactly like ``.astype(np.int64)`` on the floored
        values, the int64→float64 round trip of a floor result is exact (so
        ``u - floor(u)`` matches ``u - iu``), and integer add/min have no
        rounding at all.  ``u``/``v`` are consumed in place and returned as
        the fractional parts."""
        iu, iv, iu1, iv1 = self._iu, self._iv, self._iu1, self._iv1
        floor_u, floor_v = self._floor_u, self._floor_v
        np.floor(u, out=floor_u)
        iu[...] = floor_u
        np.floor(v, out=floor_v)
        iv[...] = floor_v
        np.add(iu, 1, out=iu1)
        np.minimum(iu1, self.num_bins_x - 1, out=iu1)
        np.add(iv, 1, out=iv1)
        np.minimum(iv1, self.num_bins_y - 1, out=iv1)
        np.subtract(u, floor_u, out=u)
        np.subtract(v, floor_v, out=v)
        return iu, iv, iu1, iv1, u, v

    def _reference_splat(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Pre-plan splat via four ``np.add.at`` deposits (slow; kept as the
        bitwise reference for the property tests and legacy benchmarks)."""
        die = self.core.die
        cx = x[self._movable] + self._half_w
        cy = y[self._movable] + self._half_h
        u = (cx - die.xl) / self.bin_w - 0.5
        v = (cy - die.yl) / self.bin_h - 0.5
        u = np.clip(u, 0.0, self.num_bins_x - 1.0)
        v = np.clip(v, 0.0, self.num_bins_y - 1.0)
        iu = np.floor(u).astype(np.int64)
        iv = np.floor(v).astype(np.int64)
        iu1 = np.minimum(iu + 1, self.num_bins_x - 1)
        iv1 = np.minimum(iv + 1, self.num_bins_y - 1)
        fu = u - iu
        fv = v - iv

        density = np.zeros((self.num_bins_x, self.num_bins_y), dtype=np.float64)
        np.add.at(density, (iu, iv), self._area * (1 - fu) * (1 - fv))
        np.add.at(density, (iu1, iv), self._area * fu * (1 - fv))
        np.add.at(density, (iu, iv1), self._area * (1 - fu) * fv)
        np.add.at(density, (iu1, iv1), self._area * fu * fv)
        return density

    def _solve_field(self, density: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Solve the Poisson equation and return (potential, field_x, field_y).

        The charge and field grids live in preallocated buffers; ``psi`` is
        allocated by ``idctn`` (scipy's transforms have no ``out=``).  With
        ``workers > 0`` the multi-row DCTs are threaded — each row transform
        is computed identically, so the result is bitwise independent of the
        thread count.
        """
        rho = self._rho
        np.divide(density, self.bin_area, out=rho)
        # Remove the mean charge so the Neumann problem is well posed.
        rho -= rho.mean()
        fft_kwargs = {"workers": self.workers} if self.workers > 0 else {}
        rho_hat = spfft.dctn(rho, type=2, norm="ortho", **fft_kwargs)
        rho_hat *= self._inv_denom
        psi = spfft.idctn(rho_hat, type=2, norm="ortho", **fft_kwargs)
        # Electric field E = -grad(psi); central differences on the bin grid
        # (np.gradient's edge_order=1 stencil, staged into the reused field
        # buffers — bitwise identical to the allocating np.gradient call).
        if self.num_bins_x < 2 or self.num_bins_y < 2:
            grad_u, grad_v = np.gradient(psi, self.bin_w, self.bin_h)
            return psi, -grad_u, -grad_v
        eu = self._field_u
        ev = self._field_v
        np.subtract(psi[2:, :], psi[:-2, :], out=eu[1:-1, :])
        eu[1:-1, :] /= 2.0 * self.bin_w
        np.subtract(psi[1, :], psi[0, :], out=eu[0, :])
        eu[0, :] /= self.bin_w
        np.subtract(psi[-1, :], psi[-2, :], out=eu[-1, :])
        eu[-1, :] /= self.bin_w
        np.subtract(psi[:, 2:], psi[:, :-2], out=ev[:, 1:-1])
        ev[:, 1:-1] /= 2.0 * self.bin_h
        np.subtract(psi[:, 1], psi[:, 0], out=ev[:, 0])
        ev[:, 0] /= self.bin_h
        np.subtract(psi[:, -1], psi[:, -2], out=ev[:, -1])
        ev[:, -1] /= self.bin_h
        np.negative(eu, out=eu)
        np.negative(ev, out=ev)
        return psi, eu, ev

    def _sample_field(
        self, field: np.ndarray, x: np.ndarray, y: np.ndarray
    ) -> np.ndarray:
        """Bilinear interpolation of a bin-grid field at movable cell centers."""
        die = self.core.die
        cx = x[self._movable] + self._half_w
        cy = y[self._movable] + self._half_h
        u = np.clip((cx - die.xl) / self.bin_w - 0.5, 0.0, self.num_bins_x - 1.0)
        v = np.clip((cy - die.yl) / self.bin_h - 0.5, 0.0, self.num_bins_y - 1.0)
        iu, iv, iu1, iv1, fu, fv = self._corner_indices(u, v)
        return (
            field[iu, iv] * (1 - fu) * (1 - fv)
            + field[iu1, iv] * fu * (1 - fv)
            + field[iu, iv1] * (1 - fu) * fv
            + field[iu1, iv1] * fu * fv
        )

    def _buffer(self, name: str, size: int) -> np.ndarray:
        if self.arena is not None:
            return self.arena.zeros(name, size)
        # contract: allow(alloc) reason=fallback for standalone calls with no arena attached
        return np.zeros(size, dtype=np.float64)

    # ------------------------------------------------------------------
    def evaluate(self, x: np.ndarray, y: np.ndarray) -> DensityResult:
        """Density energy, per-instance gradient, and overflow at ``(x, y)``.

        With an arena attached the gradient arrays in the result are reused
        buffers, invalidated by the next ``evaluate`` — the placer consumes
        them within the iteration; callers that hold results across
        evaluations must copy (same contract as the wirelength model).
        """
        density = self._splat(x, y)
        psi, ex, ey = self._solve_field(density)

        energy = 0.5 * float(np.sum(density / self.bin_area * psi))

        num_instances = self.core.num_instances
        grad_x = self._buffer("density_grad_x", num_instances)
        grad_y = self._buffer("density_grad_y", num_instances)
        grad_x[self._movable] = -self._area * self._sample_field(ex, x, y)
        grad_y[self._movable] = -self._area * self._sample_field(ey, x, y)

        # Staged form of ``np.maximum(density - capacity, 0.0)`` — same
        # subtract-then-clamp rounding, reused grid buffer.
        capacity = self.target_density * self.bin_area
        over = self._over
        np.subtract(density, capacity, out=over)
        np.maximum(over, 0.0, out=over)
        overflow = float(over.sum() / max(self._total_movable_area, 1e-12))
        max_density = float(density.max() / self.bin_area) if density.size else 0.0
        return DensityResult(
            energy=energy,
            grad_x=grad_x,
            grad_y=grad_y,
            overflow=overflow,
            max_density=max_density,
        )

    def overflow(self, x: np.ndarray, y: np.ndarray) -> float:
        """Density overflow only (cheaper than a full evaluate when no solve is needed)."""
        density = self._splat(x, y)
        capacity = self.target_density * self.bin_area
        over = self._over
        np.subtract(density, capacity, out=over)
        np.maximum(over, 0.0, out=over)
        return float(over.sum() / max(self._total_movable_area, 1e-12))
