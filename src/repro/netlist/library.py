"""Standard-cell library model.

A :class:`Library` is a collection of :class:`CellType` masters (the LEF/Liberty
view of a cell): physical size, pin geometry, pin direction and capacitance,
and a per-arc delay model description.  Instances in a :class:`repro.netlist.Design`
reference these masters by name.

The delay information stored here intentionally mirrors a (heavily simplified)
Liberty non-linear delay model: each input->output timing arc carries either a
linear ``intrinsic + slope * load`` characterization, or a small lookup table
over load capacitance.  The STA engine in :mod:`repro.timing` consumes either
form through :class:`repro.timing.delay_model.CellDelayModel`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple


class PinDirection(enum.Enum):
    """Signal direction of a library pin."""

    INPUT = "input"
    OUTPUT = "output"
    INOUT = "inout"

    @classmethod
    def from_string(cls, text: str) -> "PinDirection":
        normalized = text.strip().lower()
        for member in cls:
            if member.value == normalized:
                return member
        # LEF/Liberty spellings
        aliases = {"in": cls.INPUT, "out": cls.OUTPUT, "output tristate": cls.OUTPUT}
        if normalized in aliases:
            return aliases[normalized]
        raise ValueError(f"Unknown pin direction: {text!r}")


@dataclass(frozen=True)
class TimingArcSpec:
    """Delay characterization of one input->output arc of a cell.

    ``intrinsic`` is the load-independent delay and ``load_slope`` the delay
    per unit of driven capacitance (both in the library's time unit,
    conventionally picoseconds here).  When ``load_table`` is provided it
    overrides the linear model: it is a sequence of ``(load_cap, delay)``
    breakpoints interpolated piecewise-linearly by the STA engine.
    """

    from_pin: str
    to_pin: str
    intrinsic: float = 0.0
    load_slope: float = 0.0
    load_table: Optional[Tuple[Tuple[float, float], ...]] = None
    is_clock_to_q: bool = False

    def delay(self, load_cap: float) -> float:
        """Evaluate the arc delay for a given driven capacitance."""
        if self.load_table:
            return _interpolate(self.load_table, load_cap)
        return self.intrinsic + self.load_slope * load_cap


def _interpolate(table: Sequence[Tuple[float, float]], x: float) -> float:
    """Piecewise-linear interpolation with flat extrapolation slopes at the ends."""
    if not table:
        raise ValueError("Empty lookup table")
    points = sorted(table)
    if len(points) == 1:
        return points[0][1]
    if x <= points[0][0]:
        lo, hi = points[0], points[1]
    elif x >= points[-1][0]:
        lo, hi = points[-2], points[-1]
    else:
        lo = points[0]
        hi = points[-1]
        for i in range(1, len(points)):
            if x <= points[i][0]:
                lo, hi = points[i - 1], points[i]
                break
    x0, y0 = lo
    x1, y1 = hi
    if x1 == x0:
        return y0
    t = (x - x0) / (x1 - x0)
    return y0 + t * (y1 - y0)


@dataclass(frozen=True)
class LibraryPin:
    """A pin on a cell master."""

    name: str
    direction: PinDirection
    capacitance: float = 0.0
    offset_x: float = 0.0
    offset_y: float = 0.0
    is_clock: bool = False

    @property
    def is_input(self) -> bool:
        return self.direction is PinDirection.INPUT

    @property
    def is_output(self) -> bool:
        return self.direction is PinDirection.OUTPUT


@dataclass
class CellType:
    """A standard-cell master: physical footprint plus timing arcs."""

    name: str
    width: float
    height: float
    pins: Dict[str, LibraryPin] = field(default_factory=dict)
    arcs: List[TimingArcSpec] = field(default_factory=list)
    is_sequential: bool = False
    is_macro: bool = False

    def add_pin(self, pin: LibraryPin) -> None:
        if pin.name in self.pins:
            raise ValueError(f"Cell {self.name} already has pin {pin.name}")
        self.pins[pin.name] = pin

    def add_arc(self, arc: TimingArcSpec) -> None:
        if arc.from_pin not in self.pins:
            raise ValueError(f"Arc references unknown pin {arc.from_pin} on {self.name}")
        if arc.to_pin not in self.pins:
            raise ValueError(f"Arc references unknown pin {arc.to_pin} on {self.name}")
        self.arcs.append(arc)

    def pin(self, name: str) -> LibraryPin:
        try:
            return self.pins[name]
        except KeyError as exc:
            raise KeyError(f"Cell {self.name} has no pin {name!r}") from exc

    @property
    def input_pins(self) -> List[LibraryPin]:
        return [p for p in self.pins.values() if p.is_input]

    @property
    def output_pins(self) -> List[LibraryPin]:
        return [p for p in self.pins.values() if p.is_output]

    @property
    def area(self) -> float:
        return self.width * self.height

    def arcs_to(self, output_pin: str) -> List[TimingArcSpec]:
        return [a for a in self.arcs if a.to_pin == output_pin]

    def arcs_from(self, input_pin: str) -> List[TimingArcSpec]:
        return [a for a in self.arcs if a.from_pin == input_pin]


class Library:
    """A named collection of :class:`CellType` masters."""

    def __init__(self, name: str = "library") -> None:
        self.name = name
        self._cells: Dict[str, CellType] = {}
        # Default RC characteristics of routing wire, used to build RC trees.
        self.wire_resistance_per_unit: float = 1.0e-3
        self.wire_capacitance_per_unit: float = 2.0e-4

    def add_cell(self, cell: CellType) -> CellType:
        if cell.name in self._cells:
            raise ValueError(f"Library already contains cell {cell.name}")
        self._cells[cell.name] = cell
        return cell

    def cell(self, name: str) -> CellType:
        try:
            return self._cells[name]
        except KeyError as exc:
            raise KeyError(f"Library {self.name} has no cell {name!r}") from exc

    def __contains__(self, name: str) -> bool:
        return name in self._cells

    def __iter__(self) -> Iterator[CellType]:
        return iter(self._cells.values())

    def __len__(self) -> int:
        return len(self._cells)

    @property
    def cell_names(self) -> List[str]:
        return list(self._cells.keys())

    def merge(self, other: "Library", *, overwrite: bool = False) -> None:
        """Add all cells of ``other`` into this library."""
        for cell in other:
            if cell.name in self._cells:
                if not overwrite:
                    raise ValueError(f"Duplicate cell {cell.name} while merging")
                self._cells[cell.name] = cell
            else:
                self._cells[cell.name] = cell


def make_generic_library(
    *,
    row_height: float = 12.0,
    site_width: float = 1.0,
    name: str = "generic",
) -> Library:
    """Build a small generic standard-cell library.

    The library contains the masters used by the synthetic benchmark
    generator and the unit tests: an inverter, 2-input NAND/NOR/AND/OR/XOR,
    a buffer in three drive strengths, a 2:1 mux, and a D flip-flop.  Delay
    numbers are loosely modeled on a generic 45nm-class library with
    picosecond delays and femtofarad-scale pin capacitances, which is enough
    to give the RC-dominated behaviour the paper's quadratic loss relies on.
    """

    lib = Library(name)
    lib.wire_resistance_per_unit = 2.0e-3   # ohm per DBU
    lib.wire_capacitance_per_unit = 1.6e-4  # pF per DBU

    def combinational(
        cell_name: str,
        n_inputs: int,
        width_sites: float,
        intrinsic: float,
        slope: float,
        input_cap: float,
    ) -> CellType:
        cell = CellType(cell_name, width=width_sites * site_width, height=row_height)
        input_names = [chr(ord("a") + i) for i in range(n_inputs)]
        for i, pin_name in enumerate(input_names):
            cell.add_pin(
                LibraryPin(
                    pin_name,
                    PinDirection.INPUT,
                    capacitance=input_cap,
                    offset_x=cell.width * (i + 1) / (n_inputs + 2),
                    offset_y=row_height * 0.25,
                )
            )
        cell.add_pin(
            LibraryPin(
                "o",
                PinDirection.OUTPUT,
                capacitance=0.0,
                offset_x=cell.width * (n_inputs + 1) / (n_inputs + 2),
                offset_y=row_height * 0.75,
            )
        )
        for pin_name in input_names:
            cell.add_arc(
                TimingArcSpec(pin_name, "o", intrinsic=intrinsic, load_slope=slope)
            )
        return lib.add_cell(cell)

    combinational("INV_X1", 1, 2, intrinsic=10.0, slope=350.0, input_cap=0.0015)
    combinational("INV_X2", 1, 3, intrinsic=9.0, slope=180.0, input_cap=0.0028)
    combinational("BUF_X1", 1, 3, intrinsic=18.0, slope=340.0, input_cap=0.0016)
    combinational("BUF_X2", 1, 4, intrinsic=16.0, slope=175.0, input_cap=0.0030)
    combinational("BUF_X4", 1, 6, intrinsic=15.0, slope=95.0, input_cap=0.0058)
    combinational("NAND2_X1", 2, 3, intrinsic=14.0, slope=380.0, input_cap=0.0017)
    combinational("NOR2_X1", 2, 3, intrinsic=16.0, slope=420.0, input_cap=0.0017)
    combinational("AND2_X1", 2, 4, intrinsic=22.0, slope=360.0, input_cap=0.0016)
    combinational("OR2_X1", 2, 4, intrinsic=23.0, slope=370.0, input_cap=0.0016)
    combinational("XOR2_X1", 2, 5, intrinsic=30.0, slope=430.0, input_cap=0.0021)
    combinational("MUX2_X1", 3, 6, intrinsic=28.0, slope=400.0, input_cap=0.0019)

    # D flip-flop: clock -> q launch arc, d is captured (no combinational arc).
    dff = CellType("DFF_X1", width=10 * site_width, height=row_height, is_sequential=True)
    dff.add_pin(LibraryPin("d", PinDirection.INPUT, capacitance=0.0018,
                           offset_x=1.0 * site_width, offset_y=row_height * 0.3))
    dff.add_pin(LibraryPin("ck", PinDirection.INPUT, capacitance=0.0012, is_clock=True,
                           offset_x=2.0 * site_width, offset_y=row_height * 0.7))
    dff.add_pin(LibraryPin("q", PinDirection.OUTPUT, capacitance=0.0,
                           offset_x=8.0 * site_width, offset_y=row_height * 0.5))
    dff.add_arc(TimingArcSpec("ck", "q", intrinsic=55.0, load_slope=300.0,
                              is_clock_to_q=True))
    lib.add_cell(dff)

    return lib
