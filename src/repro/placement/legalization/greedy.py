"""Greedy (Tetris-style) legalizer.

A simple, very robust fallback: cells are processed left-to-right and packed
into the nearest row at the first free site.  Displacement is worse than
Abacus but the algorithm cannot fail while total cell area fits in the rows,
so it is used by tests and as a safety net when Abacus reports failures.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.netlist.core import as_core
from repro.placement.legalization.abacus import LegalizationResult


class GreedyLegalizer:
    """First-fit row packing ordered by global-placement x coordinate."""

    def __init__(self, design) -> None:
        self.core = as_core(design)
        self.rows = self.core.rows()
        if not self.rows:
            raise ValueError("Design has no placement rows (die too short?)")

    def legalize(
        self,
        x: Optional[np.ndarray] = None,
        y: Optional[np.ndarray] = None,
    ) -> LegalizationResult:
        arrays = self.core
        if x is None or y is None:
            x, y = arrays.positions()
        x = np.asarray(x, dtype=np.float64).copy()
        y = np.asarray(y, dtype=np.float64).copy()

        movable = arrays.movable_index
        widths = arrays.inst_width
        order = movable[np.argsort(x[movable], kind="stable")]

        row_y = np.array([r.y for r in self.rows])
        # Next free x position in each row.
        cursor = np.array([r.xl for r in self.rows], dtype=np.float64)
        row_end = np.array([r.xh for r in self.rows], dtype=np.float64)
        site = self.core.site_width

        legal_x = x.copy()
        legal_y = y.copy()
        num_failed = 0

        for cell in order:
            cell = int(cell)
            width = float(widths[cell])
            candidate_rows = np.argsort(np.abs(row_y - y[cell]))
            placed = False
            for row_idx in candidate_rows:
                row_idx = int(row_idx)
                start = max(cursor[row_idx], x[cell])
                start = self.rows[row_idx].xl + round(
                    (start - self.rows[row_idx].xl) / site
                ) * site
                start = max(start, cursor[row_idx])
                if start + width <= row_end[row_idx] + 1e-9:
                    legal_x[cell] = start
                    legal_y[cell] = row_y[row_idx]
                    cursor[row_idx] = start + width
                    placed = True
                    break
            if not placed:
                num_failed += 1

        displacement = np.abs(legal_x[movable] - x[movable]) + np.abs(
            legal_y[movable] - y[movable]
        )
        return LegalizationResult(
            x=legal_x,
            y=legal_y,
            total_displacement=float(displacement.sum()),
            max_displacement=float(displacement.max()) if displacement.size else 0.0,
            num_failed=num_failed,
        )

    def apply(self, result: LegalizationResult) -> None:
        self.core.set_positions(result.x, result.y)
