"""Fig. 4 — runtime breakdown of DREAMPlace 4.0 vs Efficient-TDP.

Regenerates the paper's component breakdown for ``sb_mini_1``: the share of
total runtime spent in IO, gradient computation, timing analysis, weighting,
legalization, and others, for the net-weighting baseline and for the proposed
flow, both normalized by the baseline's total runtime (as the paper
normalizes by DREAMPlace 4.0's 615 s).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import save_json, save_text
from repro.evaluation import format_table

COMPONENTS = ["io", "gradient", "timing_analysis", "weighting", "legalization", "others"]


def test_fig4_runtime_breakdown(suite_results, benchmark):
    design = "sb_mini_1"
    dmp4 = suite_results[design]["DREAMPlace 4.0"]
    ours = suite_results[design]["Efficient-TDP (ours)"]

    def collect():
        reference = dmp4.runtime_seconds
        return (
            dmp4.profiler.normalized_breakdown(
                reference_total=reference, total_elapsed=dmp4.runtime_seconds
            ),
            ours.profiler.normalized_breakdown(
                reference_total=reference, total_elapsed=ours.runtime_seconds
            ),
        )

    dmp4_shares, ours_shares = benchmark.pedantic(collect, rounds=1, iterations=1)

    rows = []
    for component in COMPONENTS:
        rows.append(
            [
                component,
                round(100 * dmp4_shares.get(component, 0.0), 1),
                round(100 * ours_shares.get(component, 0.0), 1),
            ]
        )
    rows.append(
        [
            "total",
            round(100 * sum(dmp4_shares.get(c, 0.0) for c in COMPONENTS), 1),
            round(100 * sum(ours_shares.get(c, 0.0) for c in COMPONENTS), 1),
        ]
    )
    table = format_table(
        ["Component", "DREAMPlace 4.0 (%)", "Efficient-TDP (%)"],
        rows,
        title=f"Fig. 4 — runtime breakdown for {design}, normalized by DREAMPlace 4.0 total",
    )
    print("\n" + table)
    save_text("fig4_runtime_breakdown.txt", table)
    save_json(
        "fig4_runtime_breakdown.json",
        {"design": design, "dreamplace4": dmp4_shares, "ours": ours_shares},
    )

    # Timing analysis + weighting must be a visible share of both timing-driven
    # flows, and the reference flow's shares must sum to ~100%.
    assert dmp4_shares.get("timing_analysis", 0.0) > 0.0
    assert ours_shares.get("timing_analysis", 0.0) > 0.0
    assert sum(dmp4_shares.get(c, 0.0) for c in COMPONENTS) == pytest.approx(1.0, abs=0.05)
