"""Micro-benchmark of the array-first design core (perf trajectory anchor).

Measures, for a few sb_mini designs:

* design build time (synthetic generation + finalize);
* ``CompiledDesign`` snapshot: compile time, pickle size/time versus pickling
  the full object graph, and worker-side rebuild (``to_design``) time;
* STA update cost: full pass versus incremental pass after a small
  perturbation (1% of movable cells moved);
* multi-corner (MCMM) STA wall time for 1/2/4 corners — engine construction
  plus the first full update, i.e. what a flow pays to stand the analysis
  up — and the resulting 4-corner/single-corner ratio (the graph build and
  wire geometry are shared across corners, so the target is < 2.5x);
* RUDY congestion map build time (the routability subsystem's inner-loop
  cost: one full demand/capacity/pin-density estimate) — O(nets + bins),
  gated at < 50ms on every suite design;
* congestion-weighted global-place overhead: wall time of a fixed-length
  GP run with the in-loop congestion net weighting at the
  ``routability-gp`` preset's default cadence versus the plain run — the
  feedback subsystem's per-update cost folded into real placement
  iterations, gated at <= 15% overhead;
* tracing overhead: the same fixed-length plain GP run with the unified
  tracer (``repro.obs``) active — final positions are asserted bitwise
  identical in-bench, and the traced/plain wall ratio is gated at <= 3%
  (``--max-tracing-overhead``); both numbers come from the same run, so
  the gate holds on any host;
* back-end walls: Abacus legalization (array-backed path versus the
  object-based ``_reference_legalize`` twin, bitwise-asserted in-bench)
  and delta-HPWL detailed placement versus the full-recompute
  ``_reference_refine`` twin, both run from the same seed-0 initial
  placement.  The XL tier additionally shards the legalizer's row-band
  candidate search across the kernel pool (2/4 workers, bitwise vs
  serial) and hard-asserts the sb_xl_1 full-scale speedups (legalization
  >= 5x, detailed placement >= 20x per candidate).

Writes ``benchmarks/results/BENCH_core.json`` (override with ``--out``) so
successive PRs can track the numbers.

``--check`` additionally compares the freshly measured numbers against the
recorded baseline JSON and exits non-zero when single-corner STA regresses
more than ``--check-tolerance`` (default 10%), the 4-corner ratio exceeds
``--max-mcmm-ratio`` (default 2.5), or the congestion map build exceeds
``--max-congestion-ms`` (default 50ms) — the CI perf gate.  ``--fresh-out``
writes the freshly measured rows to a separate JSON even in check mode (CI
uploads it as a workflow artifact for the perf trajectory).

Usage::

    PYTHONPATH=src python benchmarks/bench_core.py [--designs sb_mini_18,...]
    PYTHONPATH=src python benchmarks/bench_core.py --check
"""

from __future__ import annotations

import argparse
import json
import pickle
import platform
import time
from pathlib import Path

import numpy as np

from repro.benchgen.suite import load_benchmark
from repro.feedback import CongestionNetWeighting, FeedbackCadence
from repro.netlist.compiled import compile_design
from repro.netlist.core import as_core
from repro.obs import start_tracing, stop_tracing
from repro.placement.global_placer import GlobalPlacer, PlacementConfig
from repro.route.rudy import CongestionEstimator
from repro.timing.mcmm import MultiCornerSTA
from repro.timing.constraints import Corner
from repro.timing.sta import STAEngine

DEFAULT_DESIGNS = ["sb_mini_18", "sb_mini_1", "sb_mini_10", "sb_cong_1"]
# XL tier: kernel-pool hot-path walls (congestion map, full STA, density
# splat) serial vs sharded.  Speedup fields are informational-only — they
# depend on the host's core count — while the serial walls are trend-gated
# like any other row (see bench_trend.py).
XL_DESIGNS = ["sb_xl_1", "sb_xl_2"]
XL_WORKER_COUNTS = (2, 4)
# Fixed-length GP run for the XL per-iteration rows: long enough to
# amortize the first-iteration setup (scatter plans, arena warm-up), short
# enough to stay time-boxed at full scale.
GP_XL_ITERS = 10
MCMM_CORNER_COUNTS = (1, 2, 4)
# Congestion-weighted GP overhead measurement: fixed-length runs (stop
# criterion disabled so both configurations execute exactly GP_ITERATIONS
# iterations) with the routability-gp preset's default weighting cadence.
GP_ITERATIONS = 150
GP_CADENCE = dict(start=100, interval=10)
# Candidate budget for the XL detailed-placement pair: the full-recompute
# reference costs a whole-design hpwl_per_net per candidate, so an uncapped
# reference run at 100k cells would take minutes.  Both paths see the
# identical cap, so the recorded speedup is the honest per-candidate ratio
# (the delta path's uncapped wall is recorded separately).
DETAILED_XL_CANDIDATES = 2000
# Hard floors for the sb_xl_1 full-scale back-end speedups (the PR-10
# acceptance gates): array-backed legalization vs the object-based
# reference, and per-candidate delta-HPWL refine vs full recompute.
LEGALIZE_XL_MIN_SPEEDUP = 5.0
DETAILED_XL_MIN_SPEEDUP = 20.0


def _time(fn, repeat: int = 3):
    """Best-of-N wall time and the last return value."""
    best = float("inf")
    value = None
    for _ in range(repeat):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def _bench_backend(
    name: str,
    design,
    cx: np.ndarray,
    cy: np.ndarray,
    *,
    worker_counts=(),
    max_candidates=None,
    legalize_repeat: int = 1,
    detailed_repeat: int = 1,
) -> dict:
    """Legalization + detailed-placement rows (shared by both tiers).

    Every variant is bitwise-compared in-bench: the array-backed legalizer
    against its object-based reference twin, each sharded worker count
    against the serial row bands, and the delta-HPWL refine against the
    full-recompute reference.  The reference sides run once — they are the
    slow paths being retired, and best-of-N would only shrink the fast side.
    """
    from repro.placement.detailed import DetailedPlacer
    from repro.placement.legalization.abacus import AbacusLegalizer

    fields: dict = {}
    legalizer = AbacusLegalizer(design)
    legalize_seconds, legal = _time(
        lambda: legalizer.legalize(cx, cy), repeat=legalize_repeat
    )
    reference_seconds, reference = _time(
        lambda: legalizer._reference_legalize(cx, cy), repeat=1
    )
    if not (
        np.array_equal(legal.x, reference.x)
        and np.array_equal(legal.y, reference.y)
        and legal.num_failed == reference.num_failed
        and legal.num_overfull_rows == reference.num_overfull_rows
    ):
        raise AssertionError(
            f"{name}: array-backed legalization differs from reference"
        )
    fields["legalize_ms"] = round(legalize_seconds * 1e3, 3)
    fields["legalize_reference_ms"] = round(reference_seconds * 1e3, 3)
    fields["legalize_speedup"] = round(
        reference_seconds / max(legalize_seconds, 1e-9), 3
    )
    for workers in worker_counts:
        sharded = AbacusLegalizer(design, workers=workers)
        seconds, result = _time(
            lambda: sharded.legalize(cx, cy), repeat=legalize_repeat
        )
        if not (
            np.array_equal(result.x, legal.x)
            and np.array_equal(result.y, legal.y)
        ):
            raise AssertionError(
                f"{name}: {workers}-worker legalization differs from serial"
            )
        fields[f"legalize_w{workers}_ms"] = round(seconds * 1e3, 3)

    placer = DetailedPlacer(design)
    detailed_seconds, (dx, dy, accepted) = _time(
        lambda: placer.refine(legal.x, legal.y, max_candidates=max_candidates),
        repeat=detailed_repeat,
    )
    reference_seconds, (rx, ry, reference_accepted) = _time(
        lambda: placer._reference_refine(
            legal.x, legal.y, max_candidates=max_candidates
        ),
        repeat=1,
    )
    if not (
        np.array_equal(dx, rx)
        and np.array_equal(dy, ry)
        and accepted == reference_accepted
    ):
        raise AssertionError(f"{name}: delta-HPWL refine differs from reference")
    fields["detailed_ms"] = round(detailed_seconds * 1e3, 3)
    fields["detailed_reference_ms"] = round(reference_seconds * 1e3, 3)
    fields["detailed_speedup"] = round(
        reference_seconds / max(detailed_seconds, 1e-9), 3
    )
    fields["detailed_accepted_swaps"] = int(accepted)
    if max_candidates is not None:
        # The capped pair above is the honest per-candidate comparison; the
        # uncapped delta wall shows what a real full refinement pass costs
        # (the reference could not afford one at XL sizes at all).
        fields["detailed_candidates"] = int(max_candidates)
        seconds, (_fx, _fy, full_accepted) = _time(
            lambda: placer.refine(legal.x, legal.y), repeat=1
        )
        fields["detailed_full_ms"] = round(seconds * 1e3, 3)
        fields["detailed_full_accepted_swaps"] = int(full_accepted)
    return fields


def bench_design(name: str) -> dict:
    build_seconds, design = _time(lambda: load_benchmark(name))

    compile_seconds, compiled = _time(lambda: compile_design(design))
    snapshot_pickle_seconds, snapshot_blob = _time(lambda: pickle.dumps(compiled))
    design_pickle_seconds, design_blob = _time(lambda: pickle.dumps(design))
    rebuild_seconds, _ = _time(lambda: pickle.loads(snapshot_blob).to_design())

    engine = STAEngine(design, incremental=True)
    # Sub-millisecond timings gate CI, so take the best of many repetitions
    # to keep scheduler noise out of the recorded numbers.
    full_seconds, _ = _time(lambda: engine.update_timing(incremental=False), repeat=25)

    # Perturb 1% of movable cells and measure the incremental re-propagation.
    core = design.core
    rng = np.random.default_rng(0)
    movable = core.movable_index
    num_moved = max(1, movable.size // 100)
    moved = rng.choice(movable, size=num_moved, replace=False)

    def incremental_pass():
        x, y = core.positions()
        x[moved] += rng.uniform(-5.0, 5.0, size=moved.size)
        y[moved] += rng.uniform(-5.0, 5.0, size=moved.size)
        return engine.update_timing(x, y)

    incremental_seconds, _ = _time(incremental_pass)

    # Multi-corner STA: construction + first full update, sharing one graph
    # across corners.  Single-corner wall time uses the same measurement on
    # the plain engine so the ratio isolates the corner axis.
    def single_corner_wall():
        return STAEngine(design).update_timing()

    single_wall_seconds, _ = _time(single_corner_wall, repeat=7)
    mcmm_ms = {}
    for count in MCMM_CORNER_COUNTS:
        corners = tuple(
            Corner(f"c{i}", wire_rc_scale=1.0 + 0.05 * i, cell_derate=1.0 + 0.02 * i)
            for i in range(count)
        )

        def mcmm_wall():
            return MultiCornerSTA(design, corners).update_timing()

        seconds, _ = _time(mcmm_wall, repeat=7)
        mcmm_ms[count] = round(seconds * 1e3, 3)

    # Congestion map build: estimator construction (grid + net filter, paid
    # once per design) and one full RUDY/pin-density estimate (paid every
    # inflation round / evaluation) on a spread-out placement.
    congestion_setup_seconds, estimator = _time(lambda: CongestionEstimator(design))
    from repro.placement.initial import initial_placement

    cx, cy = initial_placement(design, seed=0)
    congestion_map_seconds, _ = _time(lambda: estimator.estimate(cx, cy), repeat=15)

    # Congestion-weighted GP overhead: identical fixed-length placements
    # with and without the in-loop weighting feedback at default cadence.
    def gp_run(weighted: bool):
        config = PlacementConfig(
            max_iterations=GP_ITERATIONS, stop_overflow=0.0, seed=0
        )
        placer = GlobalPlacer(design, config)
        if weighted:
            placer.add_feedback(
                CongestionNetWeighting(), FeedbackCadence(**GP_CADENCE)
            )
        result = placer.run()
        return placer, result

    # Tracing overhead: the identical plain run with the unified tracer
    # active.  The span ring sees every gp.iteration / gradient-term /
    # profile span the run produces, so this is the real steady-state cost
    # being budgeted, and the final positions must stay bitwise identical.
    # The two walls are measured *interleaved* (plain, traced, plain, ...)
    # because back-to-back best-of-N pairs pick up machine drift between
    # the blocks that easily exceeds the 3% budget being gated.
    def gp_traced_run():
        stop_tracing()
        start_tracing()
        try:
            return gp_run(False)
        finally:
            stop_tracing()

    gp_plain_seconds = gp_traced_seconds = float("inf")
    plain_result = traced_result = None
    for _ in range(3):
        seconds, (_, plain_result) = _time(lambda: gp_run(False), repeat=1)
        gp_plain_seconds = min(gp_plain_seconds, seconds)
        seconds, (_, traced_result) = _time(gp_traced_run, repeat=1)
        gp_traced_seconds = min(gp_traced_seconds, seconds)
    if not (
        np.array_equal(plain_result.x, traced_result.x)
        and np.array_equal(plain_result.y, traced_result.y)
    ):
        raise AssertionError(f"{name}: traced GP run differs from untraced")

    gp_weighted_seconds, (weighted_placer, _) = _time(lambda: gp_run(True), repeat=2)
    gp_updates = int(weighted_placer.feedback.calls.get("congestion", 0))
    gp_update_seconds = weighted_placer.feedback.seconds.get("congestion", 0.0)

    # Back-end walls from the same seed-0 initial placement (uncapped
    # detailed refinement: mini designs can afford the full-recompute
    # reference end to end).
    backend = _bench_backend(name, design, cx, cy, legalize_repeat=3, detailed_repeat=3)

    return {
        "design": name,
        "num_instances": design.num_instances,
        "num_nets": design.num_nets,
        "num_pins": design.num_pins,
        "build_ms": round(build_seconds * 1e3, 3),
        "compile_ms": round(compile_seconds * 1e3, 3),
        "snapshot_pickle_ms": round(snapshot_pickle_seconds * 1e3, 3),
        "snapshot_pickle_bytes": len(snapshot_blob),
        "design_pickle_ms": round(design_pickle_seconds * 1e3, 3),
        "design_pickle_bytes": len(design_blob),
        "pickle_size_ratio": round(len(design_blob) / len(snapshot_blob), 2),
        "snapshot_rebuild_ms": round(rebuild_seconds * 1e3, 3),
        "sta_full_ms": round(full_seconds * 1e3, 3),
        "sta_incremental_1pct_ms": round(incremental_seconds * 1e3, 3),
        "sta_single_wall_ms": round(single_wall_seconds * 1e3, 3),
        "mcmm_wall_ms": {str(count): value for count, value in mcmm_ms.items()},
        "mcmm_4c_over_1c": round(
            mcmm_ms[4] / max(single_wall_seconds * 1e3, 1e-9), 3
        ),
        "congestion_setup_ms": round(congestion_setup_seconds * 1e3, 3),
        "congestion_map_ms": round(congestion_map_seconds * 1e3, 3),
        "gp_plain_ms": round(gp_plain_seconds * 1e3, 3),
        "gp_congestion_weighted_ms": round(gp_weighted_seconds * 1e3, 3),
        # Overhead is the *attributed* share: wall seconds the scheduler
        # spent inside congestion-weighting updates over the weighted run's
        # wall.  A whole-run wall difference would gate scheduler jitter
        # (two ~0.5s runs differ by several percent under CI load); the
        # per-feedback accounting measures exactly the cost being budgeted.
        "gp_weighting_overhead": round(
            gp_update_seconds / max(gp_weighted_seconds, 1e-9), 4
        ),
        "gp_weighting_updates": gp_updates,
        "gp_weighting_update_ms": round(
            1e3 * gp_update_seconds / max(gp_updates, 1), 3
        ),
        "gp_traced_ms": round(gp_traced_seconds * 1e3, 3),
        # Paired same-run measurement: both walls come from this invocation,
        # so the ratio transfers across hosts (bench_trend.py enforces it on
        # fresh rows regardless of the recorded baseline's host profile).
        "gp_tracing_overhead": round(
            gp_traced_seconds / max(gp_plain_seconds, 1e-9) - 1.0, 4
        ),
        **backend,
    }


def bench_xl_design(name: str, *, scale: float = 1.0) -> dict:
    """XL-tier hot-path walls: serial vs kernel-pool sharded.

    Parallel passes double as an end-to-end bitwise check: each worker
    variant's output is compared against the serial result and a mismatch
    raises (the pool's bit-exactness contract, enforced on real designs).
    """
    import os

    from repro.parallel import shutdown_kernel_pools
    from repro.placement.density import ElectrostaticDensity
    from repro.placement.initial import initial_placement
    from repro.route.rudy import CongestionConfig
    from repro.timing.constraints import TimingConstraints

    build_seconds, design = _time(lambda: load_benchmark(name, scale=scale), repeat=1)
    cx, cy = initial_placement(design, seed=0)

    row = {
        "design": name,
        "scale": scale,
        "num_instances": design.num_instances,
        "num_nets": design.num_nets,
        "num_pins": design.num_pins,
        "cpu_count": os.cpu_count(),
        "build_ms": round(build_seconds * 1e3, 3),
    }

    # Congestion map: one full RUDY/pin-density estimate.
    serial_est = CongestionEstimator(design)
    serial_seconds, serial_map = _time(lambda: serial_est.estimate(cx, cy), repeat=3)
    row["congestion_map_ms"] = round(serial_seconds * 1e3, 3)
    for workers in XL_WORKER_COUNTS:
        est = CongestionEstimator(design, CongestionConfig(workers=workers))
        seconds, result = _time(lambda: est.estimate(cx, cy), repeat=3)
        if not (
            np.array_equal(result.demand_h, serial_map.demand_h)
            and np.array_equal(result.demand_v, serial_map.demand_v)
            and np.array_equal(result.pin_density, serial_map.pin_density)
        ):
            raise AssertionError(
                f"{name}: {workers}-worker congestion map differs from serial"
            )
        row[f"congestion_map_w{workers}_ms"] = round(seconds * 1e3, 3)
        row[f"congestion_map_speedup_w{workers}"] = round(serial_seconds / seconds, 3)

    # Full STA (arrival + required sweeps dominate at XL sizes).
    constraints = TimingConstraints.from_design(design)
    serial_sta = STAEngine(design, constraints)
    serial_seconds, serial_result = _time(
        lambda: serial_sta.update_timing(), repeat=3
    )
    row["sta_full_ms"] = round(serial_seconds * 1e3, 3)
    for workers in XL_WORKER_COUNTS:
        sta = STAEngine(design, constraints, workers=workers)
        seconds, result = _time(lambda: sta.update_timing(), repeat=3)
        if not (
            np.array_equal(result.arrival, serial_result.arrival)
            and np.array_equal(result.required, serial_result.required)
        ):
            raise AssertionError(f"{name}: {workers}-worker STA differs from serial")
        row[f"sta_full_w{workers}_ms"] = round(seconds * 1e3, 3)
        row[f"sta_full_speedup_w{workers}"] = round(serial_seconds / seconds, 3)

    # Density splat (the electrostatic placer's per-iteration deposition).
    serial_density = ElectrostaticDensity(design)
    serial_seconds, serial_grid = _time(lambda: serial_density._splat(cx, cy), repeat=3)
    row["density_splat_ms"] = round(serial_seconds * 1e3, 3)
    for workers in XL_WORKER_COUNTS:
        density = ElectrostaticDensity(design, workers=workers)
        seconds, grid = _time(lambda: density._splat(cx, cy), repeat=3)
        if not np.array_equal(grid, serial_grid):
            raise AssertionError(
                f"{name}: {workers}-worker density splat differs from serial"
            )
        row[f"density_splat_w{workers}_ms"] = round(seconds * 1e3, 3)
        row[f"density_splat_speedup_w{workers}"] = round(serial_seconds / seconds, 3)

    # Global-place iteration wall: fixed-length runs through the plan-based
    # serial path, the legacy pre-plan inner loop (forced via the kept
    # _reference_* helpers: full-size wirelength scatters, four-add.at
    # density splat, and the per-net-fallback HPWL bookkeeping pass), and
    # the kernel-pool sharded path.  Every variant's final positions are
    # bitwise-compared against the serial plan run (the GP inner loop's
    # bit-exactness contract).
    def gp_run(*, workers: int = 0, legacy: bool = False):
        config = PlacementConfig(
            max_iterations=GP_XL_ITERS,
            min_iterations=GP_XL_ITERS,
            stop_overflow=0.0,
            seed=0,
            kernel_workers=workers,
        )
        placer = GlobalPlacer(design, config)
        if legacy:
            placer.wirelength.evaluate = placer.wirelength._reference_evaluate
            placer.density._splat = placer.density._reference_splat
            core = as_core(design)
            core.hpwl_per_net = core._reference_hpwl_per_net
            try:
                return placer.run()
            finally:
                del core.hpwl_per_net
        return placer.run()

    row["gp_iters"] = GP_XL_ITERS
    plan_seconds, plan_result = _time(lambda: gp_run(), repeat=1)
    row["gp_iter_ms"] = round(plan_seconds / GP_XL_ITERS * 1e3, 3)
    legacy_seconds, legacy_result = _time(lambda: gp_run(legacy=True), repeat=1)
    row["gp_iter_legacy_ms"] = round(legacy_seconds / GP_XL_ITERS * 1e3, 3)
    row["gp_plan_speedup"] = round(legacy_seconds / plan_seconds, 3)
    if not (
        np.array_equal(plan_result.x, legacy_result.x)
        and np.array_equal(plan_result.y, legacy_result.y)
    ):
        raise AssertionError(f"{name}: plan-based GP differs from legacy path")
    for workers in XL_WORKER_COUNTS:
        seconds, result = _time(lambda: gp_run(workers=workers), repeat=1)
        if not (
            np.array_equal(result.x, plan_result.x)
            and np.array_equal(result.y, plan_result.y)
        ):
            raise AssertionError(f"{name}: {workers}-worker GP differs from serial")
        row[f"gp_iter_w{workers}_ms"] = round(seconds / GP_XL_ITERS * 1e3, 3)
        row[f"gp_iter_speedup_w{workers}"] = round(plan_seconds / seconds, 3)

    # Back-end walls: array-backed Abacus vs the object-based reference,
    # sharded row-band candidates vs serial, and the capped delta-HPWL
    # refine pair (see DETAILED_XL_CANDIDATES).  sb_xl_1 at full scale is
    # the PR-10 acceptance gate and hard-asserts its speedup floors.
    row.update(
        _bench_backend(
            name,
            design,
            cx,
            cy,
            worker_counts=XL_WORKER_COUNTS,
            max_candidates=DETAILED_XL_CANDIDATES,
        )
    )
    if name == "sb_xl_1" and scale >= 1.0:
        if row["legalize_speedup"] < LEGALIZE_XL_MIN_SPEEDUP:
            raise AssertionError(
                f"{name}: legalization speedup {row['legalize_speedup']:.2f}x "
                f"below the {LEGALIZE_XL_MIN_SPEEDUP:.0f}x floor"
            )
        if row["detailed_speedup"] < DETAILED_XL_MIN_SPEEDUP:
            raise AssertionError(
                f"{name}: detailed-placement speedup "
                f"{row['detailed_speedup']:.2f}x below the "
                f"{DETAILED_XL_MIN_SPEEDUP:.0f}x floor"
            )

    shutdown_kernel_pools()
    return row


def check_against_baseline(
    rows,
    baseline_path: Path,
    *,
    tolerance: float,
    max_mcmm_ratio: float,
    max_congestion_ms: float,
    max_gp_overhead: float,
    max_tracing_overhead: float,
) -> int:
    """Perf gate: compare fresh numbers against the recorded baseline.

    Fails (returns 1) when single-corner full STA is more than ``tolerance``
    slower than the recorded ``sta_full_ms`` for the same design, when
    the (hardware-independent) 4-corner/1-corner wall ratio exceeds
    ``max_mcmm_ratio``, when a congestion map build exceeds
    ``max_congestion_ms`` (the routability subsystem's O(nets) budget),
    when in-loop congestion weighting at default cadence costs more than
    ``max_gp_overhead`` of the plain global-place wall time, or when the
    traced GP run is more than ``max_tracing_overhead`` slower than the
    paired untraced run (plus a 5ms absolute floor for scheduler jitter).
    """
    baseline_rows = {}
    if not baseline_path.exists():
        print(f"check: no recorded baseline at {baseline_path}; skipping comparison")
    else:
        recorded = json.loads(baseline_path.read_text(encoding="utf-8"))
        recorded_host = (recorded.get("machine"), recorded.get("python"))
        current_host = (platform.machine(), platform.python_version())
        if recorded_host != current_host:
            # Absolute wall-clock numbers do not transfer across hosts; on a
            # different machine/interpreter only the hardware-independent
            # 4-corner ratio is gated.
            print(
                f"check: baseline recorded on {recorded_host}, running on "
                f"{current_host}; skipping absolute-time comparison"
            )
        else:
            baseline_rows = {row["design"]: row for row in recorded.get("designs", [])}

    failures = []
    for row in rows:
        name = row["design"]
        ratio = row["mcmm_4c_over_1c"]
        if ratio > max_mcmm_ratio:
            failures.append(
                f"{name}: 4-corner MCMM wall is {ratio:.2f}x single-corner "
                f"(limit {max_mcmm_ratio:.2f}x)"
            )
        congestion_ms = float(row.get("congestion_map_ms", 0.0))
        if congestion_ms > max_congestion_ms:
            failures.append(
                f"{name}: congestion map build {congestion_ms:.3f}ms exceeds "
                f"the {max_congestion_ms:.0f}ms budget"
            )
        gp_overhead = float(row.get("gp_weighting_overhead", 0.0))
        if gp_overhead > max_gp_overhead:
            failures.append(
                f"{name}: congestion-weighted GP overhead {gp_overhead:.1%} "
                f"exceeds the {max_gp_overhead:.0%} budget"
            )
        # Paired same-run gate: plain and traced walls come from this very
        # invocation, so the comparison needs no recorded baseline and no
        # matching host profile.  The 5ms floor keeps sub-jitter runs from
        # flaking a purely relative 3% bound.
        plain_ms = float(row.get("gp_plain_ms", 0.0))
        traced_ms = float(row.get("gp_traced_ms", 0.0))
        if (
            plain_ms
            and traced_ms
            and traced_ms > plain_ms * (1.0 + max_tracing_overhead) + 5.0
        ):
            failures.append(
                f"{name}: traced GP run {traced_ms:.3f}ms vs untraced "
                f"{plain_ms:.3f}ms (> {max_tracing_overhead:.0%} tracing "
                "overhead)"
            )
        baseline = baseline_rows.get(name)
        if baseline is None or "sta_full_ms" not in baseline:
            continue
        recorded_ms = float(baseline["sta_full_ms"])
        measured_ms = float(row["sta_full_ms"])
        # 0.5ms absolute floor: below that, scheduler jitter dominates even
        # best-of-N timings and a purely relative gate would flake.
        if measured_ms > recorded_ms * (1.0 + tolerance) + 0.5:
            failures.append(
                f"{name}: single-corner STA {measured_ms:.3f}ms vs recorded "
                f"{recorded_ms:.3f}ms (> {tolerance:.0%} regression)"
            )
        if "congestion_map_ms" in baseline:
            recorded_cong = float(baseline["congestion_map_ms"])
            if congestion_ms > recorded_cong * (1.0 + tolerance) + 0.5:
                failures.append(
                    f"{name}: congestion map build {congestion_ms:.3f}ms vs "
                    f"recorded {recorded_cong:.3f}ms (> {tolerance:.0%} "
                    "regression)"
                )
    if failures:
        for failure in failures:
            print(f"CHECK FAILED: {failure}")
        return 1
    print(
        f"check OK: single-corner STA within {tolerance:.0%} of baseline, "
        f"4-corner MCMM under {max_mcmm_ratio:.2f}x, congestion map under "
        f"{max_congestion_ms:.0f}ms, weighted-GP overhead under "
        f"{max_gp_overhead:.0%}, tracing overhead under "
        f"{max_tracing_overhead:.0%}"
    )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--designs",
        default=",".join(DEFAULT_DESIGNS),
        help="comma-separated sb_mini names",
    )
    parser.add_argument(
        "--out",
        default=str(Path(__file__).parent / "results" / "BENCH_core.json"),
        help="output JSON path",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare against the recorded baseline instead of overwriting "
        "it; non-zero exit on regression (CI gate)",
    )
    parser.add_argument(
        "--check-tolerance",
        type=float,
        default=0.10,
        help="allowed single-corner STA slowdown vs the recorded baseline "
        "(default 0.10 = 10%%)",
    )
    parser.add_argument(
        "--max-mcmm-ratio",
        type=float,
        default=2.5,
        help="maximum allowed 4-corner/1-corner wall-time ratio (default 2.5)",
    )
    parser.add_argument(
        "--max-congestion-ms",
        type=float,
        default=50.0,
        help="maximum allowed congestion map build time in ms (default 50)",
    )
    parser.add_argument(
        "--max-gp-overhead",
        type=float,
        default=0.15,
        help="maximum allowed congestion-weighted GP wall overhead at the "
        "default cadence (default 0.15 = 15%%)",
    )
    parser.add_argument(
        "--max-tracing-overhead",
        type=float,
        default=0.03,
        help="maximum allowed traced-vs-untraced GP wall overhead "
        "(default 0.03 = 3%%; paired same-run measurement)",
    )
    parser.add_argument(
        "--fresh-out",
        default=None,
        help="also write the freshly measured rows to this JSON path "
        "(useful with --check, which never touches the recorded baseline)",
    )
    parser.add_argument(
        "--xl",
        action="store_true",
        help="also measure the XL tier (kernel-pool serial vs sharded walls "
        "on sb_xl_1/sb_xl_2)",
    )
    parser.add_argument(
        "--xl-only",
        action="store_true",
        help="measure only the XL tier (skips the sb_mini micro-benchmark)",
    )
    parser.add_argument(
        "--xl-designs",
        default=",".join(XL_DESIGNS),
        help="comma-separated XL design names",
    )
    parser.add_argument(
        "--xl-scale",
        type=float,
        default=1.0,
        help="cell-count multiplier for the XL designs (CI smoke uses a "
        "reduced scale to stay time-boxed)",
    )
    args = parser.parse_args(argv)

    rows = []
    if not args.xl_only:
        rows = [bench_design(name) for name in args.designs.split(",") if name]
    xl_rows = []
    if args.xl or args.xl_only:
        xl_rows = [
            bench_xl_design(name, scale=args.xl_scale)
            for name in args.xl_designs.split(",")
            if name
        ]
    out = Path(args.out)
    payload = {
        "benchmark": "design core / CompiledDesign / STA micro-benchmark",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "designs": rows,
    }
    if xl_rows:
        payload["xl_designs"] = xl_rows
    if args.check:
        status = check_against_baseline(
            rows,
            out,
            tolerance=args.check_tolerance,
            max_mcmm_ratio=args.max_mcmm_ratio,
            max_congestion_ms=args.max_congestion_ms,
            max_gp_overhead=args.max_gp_overhead,
            max_tracing_overhead=args.max_tracing_overhead,
        )
    else:
        status = 0
        # Partial runs (--xl-only, or a run without --xl) must not silently
        # drop the other tier's recorded rows from the baseline.
        if out.exists():
            try:
                prior = json.loads(out.read_text(encoding="utf-8"))
            except json.JSONDecodeError:
                prior = {}
            if not rows and prior.get("designs"):
                payload["designs"] = prior["designs"]
            if not xl_rows and prior.get("xl_designs"):
                payload["xl_designs"] = prior["xl_designs"]
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    if args.fresh_out:
        fresh = Path(args.fresh_out)
        fresh.parent.mkdir(parents=True, exist_ok=True)
        fresh.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    if xl_rows:
        xl_header = (
            f"{'xl design':<12} {'cells':>8} {'build':>8} {'rudy s/2/4':>22} "
            f"{'sta s/2/4':>22} {'splat s/2/4':>22} {'gp it p/l/2/4':>24} "
            f"{'gp x':>6} {'lg a/r/2/4':>22} {'lg x':>6} {'dp d/r':>14} {'dp x':>6}"
        )
        print(xl_header)
        for row in xl_rows:
            rudy = "/".join(
                f"{row[key]:.0f}"
                for key in ("congestion_map_ms", "congestion_map_w2_ms", "congestion_map_w4_ms")
            )
            sta = "/".join(
                f"{row[key]:.0f}"
                for key in ("sta_full_ms", "sta_full_w2_ms", "sta_full_w4_ms")
            )
            splat = "/".join(
                f"{row[key]:.0f}"
                for key in ("density_splat_ms", "density_splat_w2_ms", "density_splat_w4_ms")
            )
            gp = "/".join(
                f"{row[key]:.0f}"
                for key in ("gp_iter_ms", "gp_iter_legacy_ms", "gp_iter_w2_ms", "gp_iter_w4_ms")
            )
            legalize = "/".join(
                f"{row[key]:.0f}"
                for key in (
                    "legalize_ms",
                    "legalize_reference_ms",
                    "legalize_w2_ms",
                    "legalize_w4_ms",
                )
            )
            detailed = f"{row['detailed_ms']:.0f}/{row['detailed_reference_ms']:.0f}"
            print(
                f"{row['design']:<12} {row['num_instances']:>8} "
                f"{row['build_ms']:>7.0f}m {rudy:>21}m {sta:>21}m {splat:>21}m "
                f"{gp:>23}m {row['gp_plan_speedup']:>5.2f}x {legalize:>21}m "
                f"{row['legalize_speedup']:>5.2f}x {detailed:>13}m "
                f"{row['detailed_speedup']:>5.1f}x"
            )
        print()

    header = (
        f"{'design':<12} {'build':>8} {'compile':>8} {'pickle':>8} {'rebuild':>8} "
        f"{'ratio':>6} {'sta full':>9} {'sta incr':>9} {'mcmm 1/2/4c':>20} {'4c/1c':>6} "
        f"{'rudy map':>9} {'gp+cong':>8} {'trace':>7} {'lg ms':>7} {'lg x':>6} "
        f"{'dp ms':>7} {'dp x':>6}"
    )
    print(header)
    for row in rows:
        mcmm = row["mcmm_wall_ms"]
        mcmm_text = "/".join(f"{mcmm[str(count)]:.1f}" for count in MCMM_CORNER_COUNTS)
        print(
            f"{row['design']:<12} {row['build_ms']:>7.1f}m {row['compile_ms']:>7.2f}m "
            f"{row['snapshot_pickle_ms']:>7.2f}m {row['snapshot_rebuild_ms']:>7.1f}m "
            f"{row['pickle_size_ratio']:>5.1f}x {row['sta_full_ms']:>8.2f}m "
            f"{row['sta_incremental_1pct_ms']:>8.2f}m {mcmm_text:>19}m "
            f"{row['mcmm_4c_over_1c']:>5.2f}x {row['congestion_map_ms']:>8.2f}m "
            f"{row['gp_weighting_overhead']:>7.1%} {row['gp_tracing_overhead']:>6.1%} "
            f"{row['legalize_ms']:>6.2f}m {row['legalize_speedup']:>5.1f}x "
            f"{row['detailed_ms']:>6.1f}m {row['detailed_speedup']:>5.1f}x"
        )
    if not args.check:
        print(f"wrote {out}")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
