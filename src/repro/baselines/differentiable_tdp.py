"""Differentiable-TDP-style baseline (Guo & Lin, DAC'22 spirit).

Guo & Lin integrate a differentiable timing engine into DREAMPlace and
back-propagate a smoothed TNS objective through every arc of the timing
graph.  The key properties relative to the paper's method are that (a) all
net arcs participate (paths are considered implicitly, no explicit
extraction), and (b) the timing metric is smoothed, trading accuracy for
differentiability.

This baseline reproduces those two properties on the shared substrate via
the ``timing_weight(smooth_pair)`` strategy: every ``m`` iterations it
refreshes STA and rebuilds a pin-pair attraction set over *all* net arcs,
weighted by a smooth (sigmoid) criticality of the sink pin's slack,
optimized with a linear Euclidean distance loss.  It is path-free and
smooth — accurate enough to beat pure net weighting, but without the
fine-grained path coverage of explicit extraction, which is where the
proposed method gains.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.baselines.dreamplace import BaselineResult, baseline_result_from_flow
from repro.flow.presets import build_stages
from repro.flow.runner import FlowRunner
from repro.netlist.design import Design
from repro.placement.global_placer import PlacementConfig
from repro.timing.constraints import TimingConstraints
from repro.utils.profiling import RuntimeProfiler


@dataclass
class DifferentiableTDPConfig:
    """Schedule and smoothing knobs of the differentiable-TDP-style baseline."""

    max_iterations: int = 450
    timing_start_iteration: int = 150
    min_timing_iterations: int = 120
    stop_overflow: float = 0.08
    target_density: float = 1.0
    seed: int = 0
    timing_update_interval: int = 15
    temperature: float = 0.25
    criticality_threshold: float = 0.05
    attraction_ratio: float = 0.15
    # MCMM corners spec (None, "fast,typ,slow", or Corner objects).
    corners: Optional[object] = None
    verbose: bool = False
    # Kernel-pool workers for the density / congestion / STA hot paths
    # (0 = serial; see repro.parallel for the bit-exactness guarantee).
    kernel_workers: int = 0
    # Record placement history every N iterations (1 = every iteration;
    # the optimization trajectory is bitwise unaffected).
    history_every: int = 1

    def placement_config(self) -> PlacementConfig:
        return PlacementConfig(
            max_iterations=self.max_iterations,
            min_iterations=self.timing_start_iteration + self.min_timing_iterations,
            stop_overflow=self.stop_overflow,
            target_density=self.target_density,
            seed=self.seed,
            verbose=self.verbose,
            kernel_workers=self.kernel_workers,
            history_every=self.history_every,
        )


class DifferentiableTDPBaseline:
    """Smoothed, path-free timing attraction over all net arcs."""

    def __init__(
        self,
        design: Design,
        config: Optional[DifferentiableTDPConfig] = None,
        *,
        constraints: Optional[TimingConstraints] = None,
    ) -> None:
        self.design = design
        self.config = config if config is not None else DifferentiableTDPConfig()
        self.constraints = (
            constraints if constraints is not None else TimingConstraints.from_design(design)
        )
        self.profiler = RuntimeProfiler()

    def run(self) -> BaselineResult:
        runner = FlowRunner(
            build_stages("differentiable_tdp", self.config), name="differentiable_tdp"
        )
        result = runner.run(
            self.design,
            constraints=self.constraints,
            seed=self.config.seed,
            profiler=self.profiler,
        )
        return baseline_result_from_flow(result)
