"""Lightweight parsers for the simplified physical-design file formats.

These parsers accept the subset of each format that the library's own
writers emit (plus a little slack for hand-written fixtures).  They are not
full industrial parsers — the goal is that a design can be dumped to disk,
inspected, edited, and read back, mirroring the LEF/DEF/.v/.lib/.sdc flow in
Fig. 1 of the paper.
"""

from repro.netlist.parsers.lef import parse_lef, parse_lef_file
from repro.netlist.parsers.liberty import parse_liberty, parse_liberty_file
from repro.netlist.parsers.def_ import parse_def, parse_def_file
from repro.netlist.parsers.verilog import parse_verilog, parse_verilog_file
from repro.netlist.parsers.sdc import parse_sdc, parse_sdc_file, apply_sdc
from repro.netlist.parsers.bookshelf import parse_bookshelf_pl, parse_bookshelf_nodes

__all__ = [
    "parse_lef",
    "parse_lef_file",
    "parse_liberty",
    "parse_liberty_file",
    "parse_def",
    "parse_def_file",
    "parse_verilog",
    "parse_verilog_file",
    "parse_sdc",
    "parse_sdc_file",
    "apply_sdc",
    "parse_bookshelf_pl",
    "parse_bookshelf_nodes",
]
