"""Flat gate-level design (netlist + floorplan + placement state).

The :class:`Design` is the central data structure shared by every other
subsystem:

* the placement engine reads cell sizes and pin offsets as flat NumPy arrays
  and writes cell locations back;
* the STA engine builds its timing graph from the same arrays plus the
  library timing arcs;
* parsers/writers translate between on-disk formats and this model.

A design is built incrementally (``add_instance`` / ``add_net`` / ``connect``)
and then :meth:`Design.finalize` freezes it, validating connectivity and
building the :class:`repro.netlist.core.DesignCore` — the array-first single
source of truth.  After finalize, ``Instance``/``PinRef``/``Net`` are thin
index-backed views: reading or writing ``inst.x`` reads or writes
``core.x[inst.index]``, so bulk operations (``positions``, ``set_positions``,
``total_hpwl``, pin positions) are O(1) views or single vectorized kernels
with no per-object Python loops.  Cell positions remain mutable after
finalization (placement would be pointless otherwise) but the netlist
topology does not.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.netlist.core import DesignCore, Row, build_rows
from repro.netlist.library import CellType, Library, LibraryPin, PinDirection
from repro.utils.geometry import Rect

__all__ = [
    "Design",
    "DesignArrays",
    "DesignCore",
    "Instance",
    "Net",
    "PinRef",
    "Row",
]

# Cell masters used to model top-level IO ports as zero-area fixed instances.
_PORT_INPUT = CellType("__PORT_IN__", width=0.0, height=0.0)
_PORT_INPUT.add_pin(LibraryPin("o", PinDirection.OUTPUT, capacitance=0.0))
_PORT_OUTPUT = CellType("__PORT_OUT__", width=0.0, height=0.0)
_PORT_OUTPUT.add_pin(LibraryPin("i", PinDirection.INPUT, capacitance=0.01))

PORT_INPUT_CELL_NAME = _PORT_INPUT.name
PORT_OUTPUT_CELL_NAME = _PORT_OUTPUT.name


class Instance:
    """A placed occurrence of a library cell (or a top-level IO port).

    Before finalize, position and fixedness live on the instance; afterwards
    they are views into the design core's arrays (``core.x[index]`` etc.), so
    per-instance access and bulk array access always agree.
    """

    __slots__ = ("name", "cell", "orientation", "index", "is_port", "_x", "_y", "_fixed", "_core")

    def __init__(
        self,
        name: str,
        cell: CellType,
        *,
        x: float = 0.0,
        y: float = 0.0,
        fixed: bool = False,
        orientation: str = "N",
        is_port: bool = False,
    ) -> None:
        self.name = name
        self.cell = cell
        self._x = float(x)
        self._y = float(y)
        self._fixed = bool(fixed)
        self.orientation = orientation
        self.index = -1
        self.is_port = is_port
        self._core: Optional[DesignCore] = None

    @property
    def x(self) -> float:
        core = self._core
        return float(core.x[self.index]) if core is not None else self._x

    @x.setter
    def x(self, value: float) -> None:
        core = self._core
        if core is not None:
            core.x[self.index] = value
        else:
            self._x = float(value)

    @property
    def y(self) -> float:
        core = self._core
        return float(core.y[self.index]) if core is not None else self._y

    @y.setter
    def y(self, value: float) -> None:
        core = self._core
        if core is not None:
            core.y[self.index] = value
        else:
            self._y = float(value)

    @property
    def fixed(self) -> bool:
        core = self._core
        return bool(core.inst_fixed[self.index]) if core is not None else self._fixed

    @fixed.setter
    def fixed(self, value: bool) -> None:
        if self._core is not None:
            raise RuntimeError(
                "Instance fixedness is frozen after finalize() (the movable "
                "mask is part of the design core)"
            )
        self._fixed = bool(value)

    @property
    def width(self) -> float:
        return self.cell.width

    @property
    def height(self) -> float:
        return self.cell.height

    @property
    def area(self) -> float:
        return self.cell.area

    @property
    def is_sequential(self) -> bool:
        return self.cell.is_sequential

    @property
    def center(self) -> Tuple[float, float]:
        return (self.x + 0.5 * self.width, self.y + 0.5 * self.height)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "port" if self.is_port else self.cell.name
        return f"Instance({self.name}, {kind}, x={self.x:.1f}, y={self.y:.1f})"


class PinRef:
    """One physical pin of one instance (or port), possibly connected to a net."""

    __slots__ = ("index", "instance", "lib_pin", "net")

    def __init__(self, instance: Instance, lib_pin: LibraryPin) -> None:
        self.index = -1
        self.instance = instance
        self.lib_pin = lib_pin
        self.net: Optional["Net"] = None

    @property
    def name(self) -> str:
        return self.lib_pin.name

    @property
    def full_name(self) -> str:
        if self.instance.is_port:
            return self.instance.name
        return f"{self.instance.name}/{self.lib_pin.name}"

    @property
    def direction(self) -> PinDirection:
        return self.lib_pin.direction

    @property
    def is_driver(self) -> bool:
        """True when this pin drives its net (cell output or input port)."""
        return self.lib_pin.is_output

    @property
    def capacitance(self) -> float:
        return self.lib_pin.capacitance

    @property
    def offset(self) -> Tuple[float, float]:
        return (self.lib_pin.offset_x, self.lib_pin.offset_y)

    def position(self) -> Tuple[float, float]:
        """Current absolute location of the pin."""
        return (
            self.instance.x + self.lib_pin.offset_x,
            self.instance.y + self.lib_pin.offset_y,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PinRef({self.full_name})"


class Net:
    """A signal net connecting one driver pin to zero or more sink pins."""

    __slots__ = ("name", "index", "pins", "_weight", "_core")

    def __init__(self, name: str) -> None:
        self.name = name
        self.index = -1
        self.pins: List[PinRef] = []
        self._weight = 1.0
        self._core: Optional[DesignCore] = None

    @property
    def weight(self) -> float:
        core = self._core
        return float(core.net_weight[self.index]) if core is not None else self._weight

    @weight.setter
    def weight(self, value: float) -> None:
        core = self._core
        if core is not None:
            core.net_weight[self.index] = value
        else:
            self._weight = float(value)

    @property
    def driver(self) -> Optional[PinRef]:
        for pin in self.pins:
            if pin.is_driver:
                return pin
        return None

    @property
    def sinks(self) -> List[PinRef]:
        return [p for p in self.pins if not p.is_driver]

    @property
    def degree(self) -> int:
        return len(self.pins)

    def hpwl(self) -> float:
        """Half-perimeter wirelength of the net at current pin positions."""
        if len(self.pins) < 2:
            return 0.0
        xs, ys = zip(*(p.position() for p in self.pins))
        return (max(xs) - min(xs)) + (max(ys) - min(ys))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Net({self.name}, degree={self.degree})"


class Design:
    """A gate-level design: floorplan, instances, nets, and connectivity."""

    def __init__(
        self,
        name: str,
        *,
        die: Rect | Tuple[float, float, float, float],
        library: Library,
        row_height: float = 12.0,
        site_width: float = 1.0,
    ) -> None:
        self.name = name
        self._die = die if isinstance(die, Rect) else Rect(*die)
        self.library = library
        self._row_height = float(row_height)
        self._site_width = float(site_width)

        self.instances: List[Instance] = []
        self.nets: List[Net] = []
        self.pins: List[PinRef] = []

        self._instance_by_name: Dict[str, Instance] = {}
        self._net_by_name: Dict[str, Net] = {}
        self._pins_by_instance: Dict[str, Dict[str, PinRef]] = {}
        self._finalized = False
        self._core: Optional[DesignCore] = None

        # Timing constraints are attached by the SDC parser / benchmark
        # generator; kept here so a design file is self-contained.
        self.clock_period: Optional[float] = None
        self.clock_name: str = "clk"
        self.clock_port: Optional[str] = None
        self.input_delays: Dict[str, float] = {}
        self.output_delays: Dict[str, float] = {}
        # Optional MCMM analysis corners (tuple of repro.timing Corner
        # objects, or a preset spec string).  Carried by CompiledDesign
        # snapshots so batch workers rebuild the same analysis setup; flows
        # fall back to these when no corners are configured explicitly.
        self.corners: Optional[Tuple[object, ...]] = None

    # ------------------------------------------------------------------
    # Floorplan parameters (synced to the core so its rows cache can
    # invalidate itself when the floorplan changes)
    # ------------------------------------------------------------------
    @property
    def die(self) -> Rect:
        return self._die

    @die.setter
    def die(self, value: Rect | Tuple[float, float, float, float]) -> None:
        self._die = value if isinstance(value, Rect) else Rect(*value)
        if self._core is not None:
            self._core.set_floorplan(die=self._die)

    @property
    def row_height(self) -> float:
        return self._row_height

    @row_height.setter
    def row_height(self, value: float) -> None:
        self._row_height = float(value)
        if self._core is not None:
            self._core.set_floorplan(row_height=self._row_height)

    @property
    def site_width(self) -> float:
        return self._site_width

    @site_width.setter
    def site_width(self, value: float) -> None:
        self._site_width = float(value)
        if self._core is not None:
            self._core.set_floorplan(site_width=self._site_width)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _check_mutable(self) -> None:
        if self._finalized:
            raise RuntimeError("Design topology is frozen after finalize()")

    def add_instance(
        self,
        name: str,
        cell: CellType | str,
        *,
        x: float = 0.0,
        y: float = 0.0,
        fixed: bool = False,
        orientation: str = "N",
    ) -> Instance:
        """Create an instance of ``cell`` named ``name``."""
        self._check_mutable()
        if name in self._instance_by_name:
            raise ValueError(f"Duplicate instance name {name!r}")
        master = self.library.cell(cell) if isinstance(cell, str) else cell
        inst = Instance(name, master, x=x, y=y, fixed=fixed, orientation=orientation)
        self._register_instance(inst)
        return inst

    def add_port(
        self,
        name: str,
        direction: PinDirection | str,
        *,
        x: float = 0.0,
        y: float = 0.0,
    ) -> Instance:
        """Create a top-level IO port, modeled as a fixed zero-area instance."""
        self._check_mutable()
        if name in self._instance_by_name:
            raise ValueError(f"Duplicate instance/port name {name!r}")
        direction = (
            direction
            if isinstance(direction, PinDirection)
            else PinDirection.from_string(direction)
        )
        # From the netlist's point of view an *input* port drives a net, so
        # its single pin is an output pin (and vice versa).
        master = _PORT_INPUT if direction is PinDirection.INPUT else _PORT_OUTPUT
        inst = Instance(name, master, x=x, y=y, fixed=True, is_port=True)
        self._register_instance(inst)
        return inst

    def _register_instance(self, inst: Instance) -> None:
        inst.index = len(self.instances)
        self.instances.append(inst)
        self._instance_by_name[inst.name] = inst
        pin_map: Dict[str, PinRef] = {}
        for lib_pin in inst.cell.pins.values():
            pin = PinRef(inst, lib_pin)
            pin.index = len(self.pins)
            self.pins.append(pin)
            pin_map[lib_pin.name] = pin
        self._pins_by_instance[inst.name] = pin_map

    def add_net(self, name: str) -> Net:
        self._check_mutable()
        if name in self._net_by_name:
            raise ValueError(f"Duplicate net name {name!r}")
        net = Net(name)
        net.index = len(self.nets)
        self.nets.append(net)
        self._net_by_name[name] = net
        return net

    def connect(self, net: Net | str, instance: Instance | str, pin_name: str | None = None) -> PinRef:
        """Attach ``instance``'s pin ``pin_name`` to ``net``.

        For ports (single-pin instances) ``pin_name`` may be omitted.
        """
        self._check_mutable()
        net_obj = self._net_by_name[net] if isinstance(net, str) else net
        inst_obj = (
            self._instance_by_name[instance] if isinstance(instance, str) else instance
        )
        pin_map = self._pins_by_instance[inst_obj.name]
        if pin_name is None:
            if len(pin_map) != 1:
                raise ValueError(
                    f"pin_name required for multi-pin instance {inst_obj.name}"
                )
            pin = next(iter(pin_map.values()))
        else:
            try:
                pin = pin_map[pin_name]
            except KeyError as exc:
                raise KeyError(
                    f"Instance {inst_obj.name} ({inst_obj.cell.name}) has no pin {pin_name!r}"
                ) from exc
        if pin.net is not None:
            raise ValueError(f"Pin {pin.full_name} is already connected to {pin.net.name}")
        pin.net = net_obj
        net_obj.pins.append(pin)
        return pin

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def instance(self, name: str) -> Instance:
        try:
            return self._instance_by_name[name]
        except KeyError as exc:
            raise KeyError(f"Design {self.name} has no instance {name!r}") from exc

    def net(self, name: str) -> Net:
        try:
            return self._net_by_name[name]
        except KeyError as exc:
            raise KeyError(f"Design {self.name} has no net {name!r}") from exc

    def pin(self, instance_name: str, pin_name: str | None = None) -> PinRef:
        """Look up a pin by ``inst`` + ``pin`` names or by ``"inst/pin"``."""
        if pin_name is None:
            if "/" in instance_name:
                instance_name, pin_name = instance_name.rsplit("/", 1)
            else:
                pin_map = self._pins_by_instance[instance_name]
                if len(pin_map) != 1:
                    raise ValueError(f"Ambiguous pin reference {instance_name!r}")
                return next(iter(pin_map.values()))
        return self._pins_by_instance[instance_name][pin_name]

    def has_instance(self, name: str) -> bool:
        return name in self._instance_by_name

    def has_net(self, name: str) -> bool:
        return name in self._net_by_name

    @property
    def ports(self) -> List[Instance]:
        return [i for i in self.instances if i.is_port]

    @property
    def cells(self) -> List[Instance]:
        """All non-port instances."""
        return [i for i in self.instances if not i.is_port]

    @property
    def movable_instances(self) -> List[Instance]:
        return [i for i in self.instances if not i.fixed]

    @property
    def num_instances(self) -> int:
        return len(self.instances)

    @property
    def num_movable(self) -> int:
        if self._core is not None:
            return int(self._core.movable_index.size)
        return sum(1 for i in self.instances if not i.fixed)

    @property
    def num_nets(self) -> int:
        return len(self.nets)

    @property
    def num_pins(self) -> int:
        return len(self.pins)

    # ------------------------------------------------------------------
    # Finalization and the array core
    # ------------------------------------------------------------------
    def finalize(self) -> "Design":
        """Validate connectivity, freeze the topology, and build the core.

        After this call the NumPy arrays in :attr:`core` are the single
        source of truth for positions and net weights; the Python objects
        become index-backed views onto them.
        """
        if self._finalized:
            return self
        for net in self.nets:
            drivers = [p for p in net.pins if p.is_driver]
            if len(drivers) > 1:
                names = ", ".join(p.full_name for p in drivers)
                raise ValueError(f"Net {net.name} has multiple drivers: {names}")
        self._finalized = True
        core = DesignCore.from_design(self)
        self._core = core
        # Flip the objects into view mode (one-time pass at finalize).
        for inst in self.instances:
            inst._core = core
        for net in self.nets:
            net._core = core
        return self

    @property
    def finalized(self) -> bool:
        return self._finalized

    @property
    def core(self) -> DesignCore:
        """The array-first design core (requires ``finalize()``)."""
        if not self._finalized or self._core is None:
            raise RuntimeError("Design must be finalized before accessing the core")
        return self._core

    @property
    def arrays(self) -> DesignCore:
        """Alias of :attr:`core`, kept for the pre-core ``DesignArrays`` API."""
        return self.core

    def positions(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return instance lower-left coordinates as two float arrays."""
        if self._core is not None:
            return self._core.positions()
        x = np.array([i.x for i in self.instances], dtype=np.float64)
        y = np.array([i.y for i in self.instances], dtype=np.float64)
        return x, y

    def set_positions(self, x: Sequence[float], y: Sequence[float]) -> None:
        """Write instance positions back from flat arrays (fixed cells kept)."""
        if self._core is not None:
            self._core.set_positions(
                np.asarray(x, dtype=np.float64), np.asarray(y, dtype=np.float64)
            )
            return
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if x.shape != (len(self.instances),) or y.shape != (len(self.instances),):
            raise ValueError("Position arrays must have one entry per instance")
        for inst, xi, yi in zip(self.instances, x, y):
            if not inst.fixed:
                inst.x = float(xi)
                inst.y = float(yi)

    def pin_positions(
        self,
        x: Optional[np.ndarray] = None,
        y: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Absolute pin coordinates for instance positions ``(x, y)``.

        When ``x``/``y`` are omitted the core's stored positions are used.
        """
        return self.core.pin_positions(x, y)

    # ------------------------------------------------------------------
    # Floorplan helpers
    # ------------------------------------------------------------------
    def rows(self) -> List[Row]:
        """Placement rows filling the die from bottom to top.

        Cached on the core after finalize; the cache invalidates itself when
        the floorplan (die, row height, site width) changes.
        """
        if self._core is not None:
            return self._core.rows()
        return build_rows(self._die, self._row_height, self._site_width)

    def utilization(self) -> float:
        """Total movable + fixed cell area divided by die area."""
        if self._core is not None:
            return self._core.utilization()
        total_area = sum(i.area for i in self.instances if not i.is_port)
        return total_area / self._die.area if self._die.area > 0 else 0.0

    def total_hpwl(self) -> float:
        """Half-perimeter wirelength summed over all nets at current positions."""
        if self._core is not None:
            return self._core.total_hpwl()
        return sum(net.hpwl() for net in self.nets)

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, float]:
        """Compact description used in logs and experiment reports."""
        return {
            "name": self.name,
            "num_instances": self.num_instances,
            "num_cells": len(self.cells),
            "num_ports": len(self.ports),
            "num_nets": self.num_nets,
            "num_pins": self.num_pins,
            "num_sequential": sum(1 for i in self.cells if i.is_sequential),
            "die_width": self.die.width,
            "die_height": self.die.height,
            "utilization": round(self.utilization(), 4),
            "clock_period": self.clock_period,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Design({self.name}, cells={len(self.cells)}, nets={self.num_nets}, "
            f"pins={self.num_pins})"
        )


def DesignArrays(design: Design) -> DesignCore:
    """Backwards-compatible constructor for the pre-core ``DesignArrays`` API.

    The vectorized view used to be a separate class built from a design;
    the :class:`DesignCore` *is* that view now (``design.arrays`` /
    ``design.core`` after ``finalize()``).  This shim keeps the old
    ``DesignArrays(design)`` call shape working by building a fresh core
    from the design's current state.
    """
    return DesignCore.from_design(design)
