"""The flow pipeline subsystem: stage registry, runner, presets, legalization
fallback, and beta auto-calibration."""

import numpy as np
import pytest

from repro.core import EfficientTDPConfig, EfficientTDPlacer
from repro.flow import (
    FlowRunner,
    available_stages,
    build_flow,
    build_stages,
    create_stage,
    get_preset,
    make_config,
    preset_names,
)
from repro.flow.stages import (
    EvaluateStage,
    GlobalPlaceStage,
    LegalizeStage,
    PinPairAttractionStrategy,
    TimingWeightStage,
)
from repro.netlist import Design, make_generic_library

FAST = dict(
    max_iterations=120,
    timing_start_iteration=50,
    min_timing_iterations=40,
    timing_update_interval=10,
)


class TestStageRegistry:
    def test_all_core_stages_registered(self):
        assert {"global_place", "timing_weight", "legalize", "evaluate"} <= set(
            available_stages()
        )

    def test_create_stage_by_name(self):
        stage = create_stage("legalize")
        assert stage.name == "legalize"
        stage = create_stage("timing_weight", strategy="net_weight", interval=5)
        assert stage.interval == 5

    def test_unknown_stage_raises(self):
        with pytest.raises(KeyError, match="Unknown stage"):
            create_stage("no_such_stage")

    def test_unknown_strategy_raises(self):
        with pytest.raises(KeyError, match="Unknown timing strategy"):
            create_stage("timing_weight", strategy="no_such_strategy")


class TestPresets:
    def test_preset_names(self):
        assert set(preset_names()) == {
            "efficient_tdp",
            "dreamplace",
            "dreamplace4",
            "differentiable_tdp",
            "routability",
            "routability-gp",
        }

    def test_preset_descriptions(self):
        for name in preset_names():
            assert get_preset(name).description

    def test_make_config_rejects_unknown_field(self):
        with pytest.raises(AttributeError, match="no field"):
            make_config("efficient_tdp", not_a_field=1)

    def test_build_stages_shapes(self):
        stages = build_stages("efficient_tdp", **FAST)
        assert [type(s) for s in stages] == [
            TimingWeightStage,
            GlobalPlaceStage,
            LegalizeStage,
            EvaluateStage,
        ]
        stages = build_stages("dreamplace")
        assert [type(s) for s in stages] == [
            GlobalPlaceStage,
            LegalizeStage,
            EvaluateStage,
        ]

    def test_legalize_false_drops_stage(self):
        stages = build_stages("efficient_tdp", legalize=False, **FAST)
        assert not any(isinstance(s, LegalizeStage) for s in stages)


class TestFlowRunner:
    def test_runner_requires_stages(self):
        with pytest.raises(ValueError):
            FlowRunner([])

    def test_preset_flow_runs_and_summarizes(self, fresh_small_design):
        result = build_flow("efficient_tdp", **FAST).run(fresh_small_design, seed=0)
        summary = result.summary()
        assert summary["flow"] == "efficient_tdp"
        assert summary["hpwl"] > 0
        assert summary["overlap_area"] == pytest.approx(0.0, abs=1e-6)
        assert "pin_pairs" in summary
        assert set(result.stage_seconds) == {
            "timing_weight",
            "global_place",
            "legalize",
            "evaluate",
        }

    def test_matches_legacy_placer_exactly(self, small_spec):
        from repro.benchgen import generate_circuit

        config = EfficientTDPConfig(**FAST)
        legacy = EfficientTDPlacer(generate_circuit(small_spec), config).run()
        pipeline = build_flow("efficient_tdp", config).run(
            generate_circuit(small_spec), seed=config.seed
        )
        assert pipeline.evaluation.hpwl == legacy.evaluation.hpwl
        assert pipeline.evaluation.tns == legacy.evaluation.tns
        assert pipeline.evaluation.wns == legacy.evaluation.wns
        np.testing.assert_array_equal(pipeline.x, legacy.x)
        np.testing.assert_array_equal(pipeline.y, legacy.y)

    def test_incremental_sta_flow_matches_full(self, small_spec):
        """The pipelined flow with incremental STA reproduces the exact flow."""
        from repro.benchgen import generate_circuit

        base = build_flow("efficient_tdp", **FAST).run(generate_circuit(small_spec))
        inc = build_flow("efficient_tdp", incremental_sta=True, **FAST).run(
            generate_circuit(small_spec)
        )
        assert inc.evaluation.tns == pytest.approx(base.evaluation.tns, abs=1e-9)
        assert inc.evaluation.wns == pytest.approx(base.evaluation.wns, abs=1e-9)
        assert inc.evaluation.hpwl == pytest.approx(base.evaluation.hpwl, rel=1e-12)


def _overfull_design():
    """More cell width than the die's rows can hold: Abacus must fail."""
    library = make_generic_library()
    design = Design("overfull", die=(0, 0, 60, 24), library=library)
    design.add_port("clk", "input", x=0, y=0)
    design.add_port("din", "input", x=0, y=12)
    net = design.add_net("nclk")
    design.connect(net, "clk")
    chain = design.add_net("n_in")
    design.connect(chain, "din")
    # 14 DFFs of width 10 -> 140 units of cell width vs 120 units of row space.
    for i in range(14):
        inst = design.add_instance(f"ff{i}", "DFF_X1", x=5.0 + i, y=6.0)
        design.connect(net, inst, "ck")
        design.connect(chain, inst, "d")
        chain = design.add_net(f"n{i}")
        design.connect(chain, inst, "q")
    design.clock_period = 500.0
    design.clock_port = "clk"
    return design.finalize()


class TestLegalizationFallback:
    def test_abacus_failure_triggers_greedy(self):
        from repro.flow.context import FlowContext
        from repro.timing import TimingConstraints
        from repro.utils.profiling import RuntimeProfiler

        design = _overfull_design()
        ctx = FlowContext(
            design=design,
            constraints=TimingConstraints.from_design(design),
            profiler=RuntimeProfiler(),
        )
        LegalizeStage().run(ctx)
        meta = ctx.metadata["legalization"]
        assert meta["fallback"] is True
        assert meta["engine"] == "greedy"
        assert meta["num_failed"] > 0

    def test_full_flow_survives_overfull_design(self):
        config = EfficientTDPConfig(
            max_iterations=30,
            timing_start_iteration=10,
            min_timing_iterations=10,
            timing_update_interval=10,
        )
        result = EfficientTDPlacer(_overfull_design(), config).run()
        # The flow completes and evaluates even though Abacus failed.
        assert result.evaluation.hpwl > 0

    def test_fallback_disabled_keeps_abacus_result(self):
        from repro.flow.context import FlowContext
        from repro.timing import TimingConstraints
        from repro.utils.profiling import RuntimeProfiler

        design = _overfull_design()
        ctx = FlowContext(
            design=design,
            constraints=TimingConstraints.from_design(design),
            profiler=RuntimeProfiler(),
        )
        LegalizeStage(fallback=False).run(ctx)
        meta = ctx.metadata["legalization"]
        assert meta["fallback"] is False
        assert meta["num_failed"] > 0


class TestBetaCalibration:
    def test_auto_mode_calibrates_once(self, small_spec):
        from repro.benchgen import generate_circuit

        config = EfficientTDPConfig(beta_mode="auto", **FAST)
        flow = EfficientTDPlacer(generate_circuit(small_spec), config)
        assert isinstance(flow.strategy, PinPairAttractionStrategy)
        assert flow.strategy.beta_mode == "auto"
        flow.run()
        assert flow.strategy.beta_calibrated
        # Calibration rescales the attraction strength away from the paper's
        # engine-specific literal.
        assert flow.strategy.attraction.weight != config.beta
        assert flow.strategy.attraction.weight > 0

    def test_literal_mode_keeps_beta(self, small_spec):
        from repro.benchgen import generate_circuit

        config = EfficientTDPConfig(beta_mode="literal", beta=3e-4, **FAST)
        flow = EfficientTDPlacer(generate_circuit(small_spec), config)
        flow.run()
        assert flow.strategy.beta_calibrated  # literal mode never recalibrates
        assert flow.strategy.attraction.weight == config.beta

    def test_calibration_ratio_scales_weight(self, small_spec):
        from repro.benchgen import generate_circuit

        low = EfficientTDPlacer(
            generate_circuit(small_spec),
            EfficientTDPConfig(beta_auto_ratio=1.0, **FAST),
        )
        high = EfficientTDPlacer(
            generate_circuit(small_spec),
            EfficientTDPConfig(beta_auto_ratio=8.0, **FAST),
        )
        low.run()
        high.run()
        assert low.strategy.beta_calibrated and high.strategy.beta_calibrated
        assert high.strategy.attraction.weight > low.strategy.attraction.weight
