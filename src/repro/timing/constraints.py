"""Timing constraints consumed by the STA engine.

The constraints mirror the subset of SDC the library parses: one ideal clock,
per-port input/output delays, and a global flip-flop setup time.  They can be
constructed directly, converted from a parsed
:class:`repro.netlist.parsers.sdc.SDCConstraints`, or pulled from the fields a
:class:`repro.netlist.Design` carries after ``apply_sdc``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.netlist.design import Design


@dataclass
class TimingConstraints:
    """Constraints for one analysis corner."""

    clock_period: float = 1000.0
    clock_name: str = "clk"
    clock_port: Optional[str] = None
    setup_time: float = 20.0
    input_delays: Dict[str, float] = field(default_factory=dict)
    output_delays: Dict[str, float] = field(default_factory=dict)
    default_input_delay: float = 0.0
    default_output_delay: float = 0.0

    @classmethod
    def from_design(cls, design: Design, *, setup_time: float = 20.0) -> "TimingConstraints":
        """Build constraints from the SDC-derived fields stored on a design."""
        period = design.clock_period if design.clock_period is not None else 1000.0
        return cls(
            clock_period=period,
            clock_name=design.clock_name,
            clock_port=design.clock_port,
            setup_time=setup_time,
            input_delays=dict(design.input_delays),
            output_delays=dict(design.output_delays),
        )

    def input_delay(self, port_name: str) -> float:
        return self.input_delays.get(port_name, self.default_input_delay)

    def output_delay(self, port_name: str) -> float:
        return self.output_delays.get(port_name, self.default_output_delay)

    def validate(self) -> None:
        if self.clock_period <= 0:
            raise ValueError("clock_period must be positive")
        if self.setup_time < 0:
            raise ValueError("setup_time cannot be negative")
