"""Initial placement for the nonlinear solver.

DREAMPlace starts from all movable cells gathered near the die center with a
small random perturbation, which gives the electrostatic spreading force a
well-defined direction from the first iteration.  The same strategy is used
here; fixed instances (IO ports, macros) keep their positions.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.netlist.design import Design
from repro.utils.rng import SeedLike, make_rng


def initial_placement(
    design: Design,
    *,
    spread: float = 0.12,
    seed: SeedLike = 0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Return initial ``(x, y)`` arrays for all instances.

    Movable cells are placed around the die center with a Gaussian spread of
    ``spread`` times the die dimensions (clipped to the die); fixed instances
    keep their stored positions.
    """
    rng = make_rng(seed)
    arrays = design.arrays
    die = design.die
    x, y = design.positions()

    movable = arrays.movable_index
    center_x = die.xl + 0.5 * die.width
    center_y = die.yl + 0.5 * die.height
    x = x.copy()
    y = y.copy()
    x[movable] = center_x + rng.normal(0.0, spread * die.width, size=movable.size)
    y[movable] = center_y + rng.normal(0.0, spread * die.height, size=movable.size)

    # Keep cells fully inside the die.
    x[movable] = np.clip(
        x[movable], die.xl, die.xh - arrays.inst_width[movable]
    )
    y[movable] = np.clip(
        y[movable], die.yl, die.yh - arrays.inst_height[movable]
    )
    return x, y


def clamp_to_die(design: Design, x: np.ndarray, y: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Clip movable instances so their footprint stays inside the die."""
    arrays = design.arrays
    die = design.die
    movable = arrays.movable_index
    x = x.copy()
    y = y.copy()
    x[movable] = np.clip(x[movable], die.xl, die.xh - arrays.inst_width[movable])
    y[movable] = np.clip(y[movable], die.yl, die.yh - arrays.inst_height[movable])
    return x, y
