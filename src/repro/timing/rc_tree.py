"""Explicit RC tree with Elmore delay evaluation.

The Elmore delay from the tree root (net driver) to a node ``t`` is

    delay(t) = sum over edges e on the root->t path of  R_e * C_down(e)

where ``C_down(e)`` is the total capacitance in the subtree hanging below
edge ``e`` (wire capacitance plus pin loads).  This is the delay model the
paper's quadratic distance loss is derived from (Sec. III-C, Eq. 7): with
wire resistance and capacitance both linear in length, the driver-to-sink
delay grows quadratically with the pin-to-pin distance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.timing.steiner import NetTopology


@dataclass
class _Edge:
    parent: int
    child: int
    resistance: float
    capacitance: float


class RCTree:
    """Distributed RC tree for one net.

    Wire segments use a pi-model: half the segment capacitance is lumped at
    each end.  Pin load capacitances are added at the pin nodes.
    """

    def __init__(
        self,
        topology: NetTopology,
        *,
        resistance_per_unit: float,
        capacitance_per_unit: float,
        pin_caps: Optional[Sequence[float]] = None,
    ) -> None:
        self.topology = topology
        self.resistance_per_unit = resistance_per_unit
        self.capacitance_per_unit = capacitance_per_unit
        num_nodes = topology.node_xy.shape[0]
        self.node_cap = np.zeros(num_nodes, dtype=np.float64)
        if pin_caps is not None:
            caps = np.asarray(pin_caps, dtype=np.float64)
            if caps.size != topology.num_pins:
                raise ValueError("pin_caps must have one entry per pin")
            self.node_cap[: topology.num_pins] += caps

        self._edges: List[_Edge] = []
        self._children: Dict[int, List[int]] = {}
        for parent, child, length in topology.edges:
            resistance = resistance_per_unit * length
            capacitance = capacitance_per_unit * length
            self._edges.append(_Edge(parent, child, resistance, capacitance))
            self.node_cap[parent] += 0.5 * capacitance
            self.node_cap[child] += 0.5 * capacitance
            self._children.setdefault(parent, []).append(len(self._edges) - 1)

        self.root = topology.root
        self._downstream_cap: Optional[np.ndarray] = None

    @property
    def total_capacitance(self) -> float:
        """Total capacitance the driver sees (wire + pin loads)."""
        return float(self.node_cap.sum())

    @property
    def total_wire_length(self) -> float:
        return self.topology.total_length

    def _compute_downstream(self) -> np.ndarray:
        """Capacitance of the subtree rooted at each node (including itself)."""
        if self._downstream_cap is not None:
            return self._downstream_cap
        num_nodes = self.node_cap.size
        downstream = self.node_cap.copy()
        # Process nodes bottom-up: children before parents. Obtain an order by
        # DFS from the root and reverse it.
        order: List[int] = []
        stack = [self.root]
        visited = set()
        while stack:
            node = stack.pop()
            if node in visited:
                continue
            visited.add(node)
            order.append(node)
            for edge_idx in self._children.get(node, []):
                stack.append(self._edges[edge_idx].child)
        for node in reversed(order):
            for edge_idx in self._children.get(node, []):
                downstream[node] += downstream[self._edges[edge_idx].child]
        self._downstream_cap = downstream
        return downstream

    def elmore_delay(self, node: int) -> float:
        """Elmore delay from the root (driver) to ``node``."""
        downstream = self._compute_downstream()
        # Build parent pointers lazily.
        parent_edge: Dict[int, _Edge] = {e.child: e for e in self._edges}
        delay = 0.0
        current = node
        guard = 0
        while current != self.root:
            edge = parent_edge.get(current)
            if edge is None:
                raise ValueError(f"Node {current} is not reachable from the root")
            delay += edge.resistance * downstream[edge.child]
            current = edge.parent
            guard += 1
            if guard > len(self._edges) + 1:
                raise ValueError("RC tree contains a cycle")
        return float(delay)

    def elmore_delays_to_pins(self) -> np.ndarray:
        """Elmore delay from the root to every pin node (driver delay is 0)."""
        num_pins = self.topology.num_pins
        delays = np.zeros(num_pins, dtype=np.float64)
        for pin in range(num_pins):
            if pin == self.root:
                continue
            delays[pin] = self.elmore_delay(pin)
        return delays
