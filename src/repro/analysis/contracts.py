"""The repo's machine-checked contracts: registries the lint rules consume.

This module is the single place where "which code is held to which
invariant" is written down.  The rules in :mod:`repro.analysis.rules` are
generic AST checks; everything repo-specific (which functions are
steady-state, which packages may not import which, what counts as an
allocating constructor) lives here so growing the contract surface is a
one-line registry edit, not a rule rewrite.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Tuple, TypeVar

_F = TypeVar("_F", bound=Callable)


def steady_state(fn: _F) -> _F:
    """Mark a function as part of a zero-allocation steady-state loop.

    Purely declarative — the decorator returns ``fn`` unchanged at runtime;
    the contract linter recognizes it *syntactically* (any decorator named
    ``steady_state``) and applies the ``alloc`` rule to the function body.
    Existing hot paths are covered by :data:`STEADY_STATE_FUNCTIONS` instead
    so the production modules don't need to import the analysis package.
    """
    return fn


# ----------------------------------------------------------------------
# alloc: steady-state functions (module path suffix -> qualified names).
#
# Keys are paths relative to the ``repro`` package root; values name the
# functions (``Class.method`` or ``function``) whose bodies may not call
# allocating NumPy constructors outside a ``# contract: allow(alloc)``
# pragma.  This is the GP gradient path: every function here runs once (or
# more) per placement iteration, ~600 times per run.
# ----------------------------------------------------------------------
STEADY_STATE_FUNCTIONS: Dict[str, FrozenSet[str]] = {
    "placement/wirelength.py": frozenset(
        {
            "WeightedAverageWirelength.evaluate",
            "WeightedAverageWirelength._directional",
            "WeightedAverageWirelength._evaluate_pooled",
            "WeightedAverageWirelength._buffer",
            "WeightedAverageWirelength._zeros_buffer",
        }
    ),
    "placement/density.py": frozenset(
        {
            "ElectrostaticDensity.evaluate",
            "ElectrostaticDensity.overflow",
            "ElectrostaticDensity._splat",
            "ElectrostaticDensity._splat_parallel",
            "ElectrostaticDensity._deposit",
            "ElectrostaticDensity._solve_field",
            "ElectrostaticDensity._sample_field",
            "ElectrostaticDensity._corner_indices",
            "ElectrostaticDensity._buffer",
        }
    ),
    "placement/nesterov.py": frozenset(
        {
            "NesterovOptimizer.step_once",
            "NesterovOptimizer._bb_step",
            "NesterovOptimizer._take_ref",
            "NesterovOptimizer.reset_momentum",
        }
    ),
    "placement/objective.py": frozenset({"PlacementObjective.evaluate_extra"}),
    "placement/global_placer.py": frozenset(
        {"GlobalPlacer._gradient", "GlobalPlacer._derive_density_weight"}
    ),
    "core/pin_attraction.py": frozenset({"PinAttractionObjective.evaluate"}),
    # Back-end hot loops (PR 10): the per-cell Abacus cluster collapse runs
    # once per movable cell per legalization, and the delta-HPWL swap
    # evaluation once per candidate pair per detailed-placement pass.
    "placement/legalization/abacus.py": frozenset({"AbacusLegalizer._insert_cell"}),
    "placement/detailed.py": frozenset({"DetailedPlacer._try_swap"}),
}

# Allocating NumPy constructors (``np.<name>(...)``) banned in steady-state
# bodies.  ``np.bincount`` is deliberately absent: it has no ``out=`` form
# and the scatter plans are built around its sequential-fold bit-exactness.
ALLOCATING_CONSTRUCTORS: FrozenSet[str] = frozenset(
    {
        "empty",
        "zeros",
        "ones",
        "full",
        "empty_like",
        "zeros_like",
        "ones_like",
        "full_like",
        "concatenate",
        "copy",
        "append",
        "arange",
        "repeat",
        "tile",
        "stack",
        "hstack",
        "vstack",
        "column_stack",
    }
)

# Binary (and gather) ufunc-style calls that must pass ``out=`` in
# steady-state bodies — without it each call allocates a fresh result array
# every iteration.  Unary ufuncs are not enforced (the hot paths stage them
# through ``out=`` anyway, but e.g. ``np.sqrt`` on a scalar is harmless).
OUT_REQUIRED_CALLS: FrozenSet[str] = frozenset(
    {
        "add",
        "subtract",
        "multiply",
        "divide",
        "true_divide",
        "floor_divide",
        "power",
        "maximum",
        "minimum",
        "fmax",
        "fmin",
        "mod",
        "remainder",
        "hypot",
        "arctan2",
        "logaddexp",
        "take",
    }
)

# ----------------------------------------------------------------------
# kernel-purity: order-independent reductions allowed in worker kernels.
#
# ``np.maximum.at`` / ``np.minimum.reduceat`` etc. are exact under any shard
# decomposition (IEEE min/max is associative and commutative for NaN-free
# input); every other ``ufunc.at`` / ``ufunc.reduceat`` is an
# order-sensitive float fold that only the parent replay may perform.
# ----------------------------------------------------------------------
ORDER_INDEPENDENT_UFUNCS: FrozenSet[str] = frozenset({"maximum", "minimum"})

# Decorator names that mark a function as a worker kernel.
KERNEL_DECORATORS: FrozenSet[str] = frozenset({"register_kernel"})

# Names whose call inside a kernel means nondeterminism or side effects.
KERNEL_BANNED_MODULES: FrozenSet[str] = frozenset({"random", "time", "datetime"})
KERNEL_BANNED_CALLS: FrozenSet[str] = frozenset(
    {"open", "print", "input", "default_rng", "make_rng", "seed"}
)

# ----------------------------------------------------------------------
# layering: package import constraints.
#
# Engine-layer packages may not import the flow/CLI layer at module scope
# (lazy imports inside functions are the sanctioned seam — e.g. the
# ``route/flow.py`` retrofit helpers); the kernel module may never import
# the pool engine (workers resolve kernels from the registry precisely so
# they do not pull in pool machinery).
# ----------------------------------------------------------------------
LAYERED_PACKAGES: Tuple[str, ...] = ("netlist", "placement", "timing", "route")
FORBIDDEN_LAYER_IMPORTS: Tuple[str, ...] = ("repro.flow", "repro.cli")

# path-suffix -> module prefixes it may not import at any scope.
WORKER_MODULE_FORBIDDEN_IMPORTS: Dict[str, Tuple[str, ...]] = {
    "parallel/kernels.py": ("repro.parallel.engine",),
}

# ----------------------------------------------------------------------
# raw-timing: blessed wall-clock call sites.
#
# Every other module must route timing through :mod:`repro.obs` —
# ``clock()`` for durations, ``span()`` for traced sections — so the
# unified tracer is the single source of where-did-the-time-go truth.
# ``obs/`` owns the clock; ``utils/profiling.py`` keeps its raw Timer as
# the documented no-tracer fallback path.
# ----------------------------------------------------------------------
TIMING_ALLOWED_PATHS: Tuple[str, ...] = ("obs/", "utils/profiling.py")

# ``time.<name>()`` calls (and their ``from time import`` forms) that count
# as raw wall-clock reads.  ``time.sleep`` is deliberately absent: sleeping
# is not measurement.
RAW_TIMING_CALLS: FrozenSet[str] = frozenset(
    {
        "perf_counter",
        "perf_counter_ns",
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
        "thread_time",
        "thread_time_ns",
    }
)


def repro_subpath(posix_path: str) -> str:
    """The path suffix after the last ``repro/`` path component (or "")."""
    parts = posix_path.split("/")
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            return "/".join(parts[index + 1:])
    return ""
