"""Composable placement-flow pipeline.

This package turns the hard-wired Efficient-TDP flow into a small pipeline
framework.  The pieces:

* :class:`~repro.flow.context.FlowContext` — the shared state one run
  accumulates: design, constraints, positions, STA engine/result, pin pairs,
  extraction statistics, profiler, placement history, evaluation report.
* :class:`~repro.flow.stage.FlowStage` — the stage protocol: any object with
  a ``name`` and ``run(ctx)``.
* :class:`~repro.flow.runner.FlowRunner` — executes an ordered stage list
  over a design and returns a :class:`~repro.flow.runner.FlowResult`.
* :mod:`~repro.flow.stages` — the concrete stages and timing strategies.
* :mod:`~repro.flow.presets` — named stage compositions (the Table II
  methods) and the ``build_flow`` helper.
* :mod:`~repro.flow.batch` — run many designs concurrently and aggregate a
  :class:`~repro.flow.batch.BatchReport`.
* :mod:`~repro.flow.cli` — the ``repro`` command-line entry point
  (``repro run / batch / compare / sweep``).

Stage registry
--------------

Stages self-register by name via the :func:`~repro.flow.stage.register_stage`
class decorator, so flows can be assembled declaratively::

    from repro.flow import available_stages, create_stage, FlowRunner

    available_stages()
    # ['evaluate', 'global_place', 'legalize', 'timing_weight']

    runner = FlowRunner([
        create_stage("timing_weight", strategy="pin_pair",
                     start_iteration=100, interval=10),
        create_stage("global_place"),
        create_stage("legalize"),
        create_stage("evaluate"),
    ])
    result = runner.run(design)

``timing_weight`` accepts a strategy instance or one of the registered
strategy names:

* ``pin_pair``    — the paper's critical-path extraction + Eq. 9 pin pairs;
* ``net_weight``  — DREAMPlace 4.0-style momentum net weighting;
* ``smooth_pair`` — Differentiable-TDP-style smoothed pin attraction;
* ``record``      — observe-only TNS/WNS trajectory recording.

Ordering convention: configuration stages (``timing_weight``) come *before*
``global_place`` in the stage list because they hook into the placement loop
via :attr:`FlowContext.placer_hooks`; post-processing stages (``legalize``,
``evaluate``) come after.

Flow presets
------------

The shipped presets (``efficient_tdp``, ``dreamplace``, ``dreamplace4``,
``differentiable_tdp``) are registered in :mod:`repro.flow.presets`::

    from repro.flow import build_flow

    result = build_flow("efficient_tdp", max_iterations=300, seed=7).run(design)

Batch execution
---------------

:func:`~repro.flow.batch.run_batch` fans a list of
:class:`~repro.flow.batch.BatchJob` descriptions out over a
``concurrent.futures`` pool (threads by default, processes optionally) with
per-design seeds, and aggregates the per-design summaries into a
:class:`~repro.flow.batch.BatchReport` with ready-to-serialize JSON.
"""

from repro.flow.context import FlowContext
from repro.flow.runner import FlowResult, FlowRunner
from repro.flow.stage import FlowStage, available_stages, create_stage, register_stage
from repro.flow.stages import (
    EvaluateStage,
    FeedbackWeightStage,
    GlobalPlaceStage,
    LegalizeStage,
    MomentumNetWeightStrategy,
    PinPairAttractionStrategy,
    RecordTimingStrategy,
    SmoothPinPairStrategy,
    TimingWeightStage,
    make_strategy,
)
from repro.flow.presets import (
    FlowPreset,
    build_flow,
    build_stages,
    get_preset,
    make_config,
    preset_names,
    register_preset,
)
from repro.flow.batch import BatchJob, BatchReport, run_batch

__all__ = [
    "FlowContext",
    "FlowResult",
    "FlowRunner",
    "FlowStage",
    "available_stages",
    "create_stage",
    "register_stage",
    "EvaluateStage",
    "FeedbackWeightStage",
    "GlobalPlaceStage",
    "LegalizeStage",
    "TimingWeightStage",
    "PinPairAttractionStrategy",
    "MomentumNetWeightStrategy",
    "SmoothPinPairStrategy",
    "RecordTimingStrategy",
    "make_strategy",
    "FlowPreset",
    "build_flow",
    "build_stages",
    "get_preset",
    "make_config",
    "preset_names",
    "register_preset",
    "BatchJob",
    "BatchReport",
    "run_batch",
]
