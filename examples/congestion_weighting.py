#!/usr/bin/env python3
"""In-loop congestion + timing net weighting: the ``routability-gp`` preset.

PR 4 reacted to congestion *after* placement (the inflation loop); the
feedback architecture folds it into the placement iteration itself: every K
iterations a :class:`~repro.feedback.congestion.CongestionNetWeighting`
scores each net by the RUDY overflow under its bounding box, a
:class:`~repro.feedback.timing.TimingCriticalityWeighting` scores each net
by its share of the worst slack, and one
:class:`~repro.feedback.composer.WeightComposer` merges both proposals into
the placer's net weights with shared momentum and clamping.  The inflation
loop still runs afterwards as post-place cleanup.

This script runs the inflation-only ``routability`` preset and the in-loop
``routability-gp`` preset on ``sb_cong_1``, prints the final scores side by
side, and dumps the feedback trajectory (per-update WNS / peak overflow /
weight norm) that the evaluation report now carries.

Run:  python examples/congestion_weighting.py
      (or, with the package installed:  repro run sb_cong_1 --preset routability-gp)
"""

from repro import build_flow, load_benchmark

DESIGN = "sb_cong_1"


def main() -> None:
    # Inflation-only: congestion feedback happens after placement.
    inflation_design = load_benchmark(DESIGN)
    inflation = build_flow("routability", max_iterations=300).run(
        inflation_design, seed=0
    )

    # In-loop: congestion + timing weighting inside the placement loop,
    # inflation demoted to cleanup.
    gp_design = load_benchmark(DESIGN)
    gp = build_flow("routability-gp", max_iterations=300).run(gp_design, seed=0)

    print(f"{'':>22} {'inflation-only':>15} {'in-loop (gp)':>15}")
    rows = [
        ("HPWL", inflation.evaluation.hpwl, gp.evaluation.hpwl),
        ("peak overflow", inflation.evaluation.congestion_peak_overflow,
         gp.evaluation.congestion_peak_overflow),
        ("avg overflow", inflation.evaluation.congestion_avg_overflow,
         gp.evaluation.congestion_avg_overflow),
        ("hotspot bins", inflation.evaluation.congestion_hotspots,
         gp.evaluation.congestion_hotspots),
        ("TNS (ps)", inflation.evaluation.tns, gp.evaluation.tns),
    ]
    for label, a, b in rows:
        print(f"{label:>22} {a:>15.3f} {b:>15.3f}")

    record = gp.context.metadata["feedback"]
    print("\nper-feedback runtime (seconds across main + refine placements):")
    for name, seconds in sorted(record["seconds"].items()):
        calls = record["calls"].get(name, 0)
        print(f"  {name:<12} {seconds:8.3f}s over {calls:>3d} updates")

    print("\nfeedback trajectory (iteration: fired -> metrics):")
    for row in record["trajectory"][:12]:
        metrics = {
            key: round(value, 3)
            for key, value in row.items()
            if key not in ("iteration", "fired") and isinstance(value, float)
        }
        print(f"  iter {row['iteration']:>4d}: {'+'.join(row['fired']):<18} {metrics}")
    remaining = len(record["trajectory"]) - 12
    if remaining > 0:
        print(f"  ... {remaining} more rows (also on evaluation.feedback_trajectory)")

    drop = 1.0 - (
        gp.evaluation.congestion_peak_overflow
        / inflation.evaluation.congestion_peak_overflow
    )
    cost = gp.evaluation.hpwl / inflation.evaluation.hpwl - 1.0
    print(
        f"\nin-loop weighting vs inflation-alone: peak overflow "
        f"{100 * drop:+.0f}% at HPWL cost {100 * cost:+.1f}%"
    )


if __name__ == "__main__":
    main()
