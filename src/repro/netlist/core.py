"""Array-first design core: the single source of truth for design state.

:class:`DesignCore` owns every per-instance / per-pin / per-net quantity as a
contiguous NumPy array.  After :meth:`repro.netlist.design.Design.finalize`,
the Python objects (``Instance``, ``PinRef``, ``Net``) become thin
index-backed *views* onto these arrays — writing ``inst.x`` writes
``core.x[inst.index]`` and vice versa — so every compute layer (placement,
STA, evaluation) reads and writes flat arrays with no object-graph traffic.

The core is deliberately object-free on the hot paths: positions, pin
positions, HPWL, and utilization are O(1) views or single vectorized kernels.
The only references to Python objects it keeps are the :class:`CellType`
masters (one per distinct library cell, used by the timing-graph builder for
arc specs) — never per-instance objects.

Array layout
------------

Instances, pins, and nets are indexed consistently with
``Design.instances`` / ``Design.pins`` / ``Design.nets``.  Pins of instance
``i`` are the contiguous range ``inst_pin_offsets[i]:inst_pin_offsets[i+1]``
(in the cell master's pin-declaration order).  The pins of net ``e`` are
``net_pin_index[net_pin_offsets[e]:net_pin_offsets[e+1]]`` (CSR layout, in
connection order, which fixes the driver/sink ordering the timing graph
relies on).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Tuple

import numpy as np

from repro.utils.geometry import Rect

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.netlist.design import Design
    from repro.netlist.library import CellType


@dataclass(frozen=True)
class Row:
    """A placement row (used by row-based legalization)."""

    index: int
    y: float
    xl: float
    xh: float
    height: float
    site_width: float

    @property
    def width(self) -> float:
        return self.xh - self.xl

    @property
    def num_sites(self) -> int:
        return int(self.width // self.site_width)


def build_rows(die: Rect, row_height: float, site_width: float) -> List[Row]:
    """Placement rows filling ``die`` from bottom to top."""
    rows: List[Row] = []
    y = die.yl
    index = 0
    while y + row_height <= die.yh + 1e-9:
        rows.append(
            Row(
                index=index,
                y=y,
                xl=die.xl,
                xh=die.xh,
                height=row_height,
                site_width=site_width,
            )
        )
        y += row_height
        index += 1
    return rows


def as_core(design_or_core) -> "DesignCore":
    """Accept either a finalized ``Design`` or a ``DesignCore``.

    Every array consumer (wirelength, density, legalization, evaluation, wire
    RC) goes through this so it can be fed a bare core — e.g. one
    reconstructed from a :class:`repro.netlist.compiled.CompiledDesign` —
    without a full object-model design wrapped around it.
    """
    core = getattr(design_or_core, "core", None)
    return core if core is not None else design_or_core


class DesignCore:
    """Flat array state of one finalized design.

    Mutable state is exactly ``x``, ``y`` (cell positions) and ``net_weight``;
    everything else is topology/geometry frozen at finalize time.
    """

    def __init__(
        self,
        *,
        name: str,
        die: Rect,
        row_height: float,
        site_width: float,
        wire_resistance_per_unit: float,
        wire_capacitance_per_unit: float,
        x: np.ndarray,
        y: np.ndarray,
        inst_width: np.ndarray,
        inst_height: np.ndarray,
        inst_fixed: np.ndarray,
        inst_is_port: np.ndarray,
        inst_is_sequential: np.ndarray,
        inst_cell_id: np.ndarray,
        inst_pin_offsets: np.ndarray,
        cell_types: Tuple["CellType", ...],
        pin_instance: np.ndarray,
        pin_offset_x: np.ndarray,
        pin_offset_y: np.ndarray,
        pin_net: np.ndarray,
        pin_capacitance: np.ndarray,
        pin_is_driver: np.ndarray,
        pin_is_clock: np.ndarray,
        pin_is_input: np.ndarray,
        pin_is_output: np.ndarray,
        net_pin_offsets: np.ndarray,
        net_pin_index: np.ndarray,
        net_weight: np.ndarray,
    ) -> None:
        self.name = name
        self.die = die
        self.row_height = float(row_height)
        self.site_width = float(site_width)
        self.wire_resistance_per_unit = float(wire_resistance_per_unit)
        self.wire_capacitance_per_unit = float(wire_capacitance_per_unit)

        self.x = np.ascontiguousarray(x, dtype=np.float64)
        self.y = np.ascontiguousarray(y, dtype=np.float64)
        self.inst_width = np.ascontiguousarray(inst_width, dtype=np.float64)
        self.inst_height = np.ascontiguousarray(inst_height, dtype=np.float64)
        self.inst_fixed = np.ascontiguousarray(inst_fixed, dtype=bool)
        self.inst_is_port = np.ascontiguousarray(inst_is_port, dtype=bool)
        self.inst_is_sequential = np.ascontiguousarray(inst_is_sequential, dtype=bool)
        self.inst_cell_id = np.ascontiguousarray(inst_cell_id, dtype=np.int64)
        self.inst_pin_offsets = np.ascontiguousarray(inst_pin_offsets, dtype=np.int64)
        self.cell_types = tuple(cell_types)
        self.inst_area = self.inst_width * self.inst_height

        self.pin_instance = np.ascontiguousarray(pin_instance, dtype=np.int64)
        self.pin_offset_x = np.ascontiguousarray(pin_offset_x, dtype=np.float64)
        self.pin_offset_y = np.ascontiguousarray(pin_offset_y, dtype=np.float64)
        self.pin_net = np.ascontiguousarray(pin_net, dtype=np.int64)
        self.pin_capacitance = np.ascontiguousarray(pin_capacitance, dtype=np.float64)
        self.pin_is_driver = np.ascontiguousarray(pin_is_driver, dtype=bool)
        self.pin_is_clock = np.ascontiguousarray(pin_is_clock, dtype=bool)
        self.pin_is_input = np.ascontiguousarray(pin_is_input, dtype=bool)
        self.pin_is_output = np.ascontiguousarray(pin_is_output, dtype=bool)

        self.net_pin_offsets = np.ascontiguousarray(net_pin_offsets, dtype=np.int64)
        self.net_pin_index = np.ascontiguousarray(net_pin_index, dtype=np.int64)
        self.net_weight = np.ascontiguousarray(net_weight, dtype=np.float64)

        self.num_instances = int(self.x.size)
        self.num_pins = int(self.pin_instance.size)
        self.num_nets = int(self.net_pin_offsets.size - 1)

        self.movable_mask = ~self.inst_fixed
        self.movable_index = np.nonzero(self.movable_mask)[0]

        self._rows_cache: Optional[List[Row]] = None
        self._rows_cache_key: Optional[Tuple[float, ...]] = None
        self._csr_net: Optional[np.ndarray] = None
        self._net_driver_pin: Optional[np.ndarray] = None
        self._hpwl_plan: Optional[Tuple[np.ndarray, ...]] = None
        self._inst_net_plan: Optional[Tuple[np.ndarray, np.ndarray]] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_design(cls, design: "Design") -> "DesignCore":
        """One-time conversion of a design's object graph into flat arrays.

        This is the only place the object graph is walked; every later query
        is a pure array operation.
        """
        insts = design.instances
        pins = design.pins
        nets = design.nets

        cell_ids: dict = {}
        cell_types: List["CellType"] = []
        inst_cell_id = np.zeros(len(insts), dtype=np.int64)
        for i, inst in enumerate(insts):
            key = id(inst.cell)
            cid = cell_ids.get(key)
            if cid is None:
                cid = len(cell_types)
                cell_ids[key] = cid
                cell_types.append(inst.cell)
            inst_cell_id[i] = cid

        inst_pin_offsets = np.zeros(len(insts) + 1, dtype=np.int64)
        for inst in insts:
            inst_pin_offsets[inst.index + 1] = len(inst.cell.pins)
        np.cumsum(inst_pin_offsets, out=inst_pin_offsets)

        offsets = np.zeros(len(nets) + 1, dtype=np.int64)
        for net in nets:
            offsets[net.index + 1] = len(net.pins)
        np.cumsum(offsets, out=offsets)
        index = np.zeros(int(offsets[-1]), dtype=np.int64)
        cursor = offsets[:-1].copy()
        for net in nets:
            for pin in net.pins:
                index[cursor[net.index]] = pin.index
                cursor[net.index] += 1

        return cls(
            name=design.name,
            die=design.die,
            row_height=design.row_height,
            site_width=design.site_width,
            wire_resistance_per_unit=design.library.wire_resistance_per_unit,
            wire_capacitance_per_unit=design.library.wire_capacitance_per_unit,
            x=np.array([i.x for i in insts], dtype=np.float64),
            y=np.array([i.y for i in insts], dtype=np.float64),
            inst_width=np.array([i.width for i in insts], dtype=np.float64),
            inst_height=np.array([i.height for i in insts], dtype=np.float64),
            inst_fixed=np.array([i.fixed for i in insts], dtype=bool),
            inst_is_port=np.array([i.is_port for i in insts], dtype=bool),
            inst_is_sequential=np.array([i.is_sequential for i in insts], dtype=bool),
            inst_cell_id=inst_cell_id,
            inst_pin_offsets=inst_pin_offsets,
            cell_types=tuple(cell_types),
            pin_instance=np.array([p.instance.index for p in pins], dtype=np.int64),
            pin_offset_x=np.array([p.lib_pin.offset_x for p in pins], dtype=np.float64),
            pin_offset_y=np.array([p.lib_pin.offset_y for p in pins], dtype=np.float64),
            pin_net=np.array(
                [p.net.index if p.net is not None else -1 for p in pins], dtype=np.int64
            ),
            pin_capacitance=np.array([p.capacitance for p in pins], dtype=np.float64),
            pin_is_driver=np.array([p.is_driver for p in pins], dtype=bool),
            pin_is_clock=np.array([p.lib_pin.is_clock for p in pins], dtype=bool),
            pin_is_input=np.array([p.lib_pin.is_input for p in pins], dtype=bool),
            pin_is_output=np.array([p.lib_pin.is_output for p in pins], dtype=bool),
            net_pin_offsets=offsets,
            net_pin_index=index,
            net_weight=np.array([n.weight for n in nets], dtype=np.float64),
        )

    # ------------------------------------------------------------------
    # Positions
    # ------------------------------------------------------------------
    def positions(self) -> Tuple[np.ndarray, np.ndarray]:
        """Copies of the instance lower-left coordinates.

        Copies, not views: callers (optimizers, legalizers) treat the result
        as scratch space, and the core's state must only change through
        :meth:`set_positions` or per-instance view writes.
        """
        return self.x.copy(), self.y.copy()

    def set_positions(self, x: np.ndarray, y: np.ndarray) -> None:
        """Write back positions for movable instances (fixed cells kept)."""
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if x.shape != (self.num_instances,) or y.shape != (self.num_instances,):
            raise ValueError("Position arrays must have one entry per instance")
        np.copyto(self.x, x, where=self.movable_mask)
        np.copyto(self.y, y, where=self.movable_mask)

    def pin_positions(
        self,
        x: Optional[np.ndarray] = None,
        y: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Absolute pin coordinates for instance positions ``(x, y)``."""
        if x is None or y is None:
            x, y = self.x, self.y
        px = x[self.pin_instance] + self.pin_offset_x
        py = y[self.pin_instance] + self.pin_offset_y
        return px, py

    # ------------------------------------------------------------------
    # Connectivity helpers
    # ------------------------------------------------------------------
    def net_pins(self, net_index: int) -> np.ndarray:
        start = self.net_pin_offsets[net_index]
        end = self.net_pin_offsets[net_index + 1]
        return self.net_pin_index[start:end]

    def instance_pins(self, inst_index: int) -> np.ndarray:
        start = self.inst_pin_offsets[inst_index]
        end = self.inst_pin_offsets[inst_index + 1]
        return np.arange(start, end, dtype=np.int64)

    @property
    def csr_net(self) -> np.ndarray:
        """Net id of every ``net_pin_index`` entry (net-major CSR expansion).

        Cached: the topology is frozen, and the timing graph, wire-RC model,
        and smooth-wirelength model all consume this same array.
        """
        if self._csr_net is None:
            self._csr_net = np.repeat(
                np.arange(self.num_nets, dtype=np.int64),
                np.diff(self.net_pin_offsets),
            )
        return self._csr_net

    @property
    def net_driver_pin(self) -> np.ndarray:
        """Driver pin index per net (-1 when undriven); cached, do not mutate.

        Well defined after finalize: multi-driver nets are rejected there.
        """
        if self._net_driver_pin is None:
            driver = np.full(self.num_nets, -1, dtype=np.int64)
            mask = self.pin_is_driver[self.net_pin_index]
            driver[self.csr_net[mask]] = self.net_pin_index[mask]
            self._net_driver_pin = driver
        return self._net_driver_pin

    def instance_nets_plan(self) -> Tuple[np.ndarray, np.ndarray]:
        """Cached instance→net CSR: the distinct nets touching each instance.

        Returns ``(offsets, nets)`` where instance ``i``'s nets are the
        sorted, de-duplicated range ``nets[offsets[i]:offsets[i+1]]`` (an
        instance with several pins on one net lists that net once).  Built
        vectorized from the pin tables — the topology is frozen, so like
        :meth:`_hpwl_scatter_plan` this is computed once and shared; the
        detailed placer's delta-HPWL swap evaluation walks it per candidate.
        """
        if self._inst_net_plan is None:
            connected = self.pin_net >= 0
            inst = self.pin_instance[connected]
            net = self.pin_net[connected]
            order = np.lexsort((net, inst))
            inst = inst[order]
            net = net[order]
            if inst.size:
                keep = np.empty(inst.size, dtype=bool)
                keep[0] = True
                np.logical_or(
                    inst[1:] != inst[:-1], net[1:] != net[:-1], out=keep[1:]
                )
                inst = inst[keep]
                net = net[keep]
            offsets = np.zeros(self.num_instances + 1, dtype=np.int64)
            np.cumsum(
                np.bincount(inst, minlength=self.num_instances),
                out=offsets[1:],
            )
            self._inst_net_plan = (offsets, np.ascontiguousarray(net))
        return self._inst_net_plan

    # ------------------------------------------------------------------
    # Geometry kernels
    # ------------------------------------------------------------------
    def _hpwl_scatter_plan(self) -> Tuple[np.ndarray, ...]:
        """Cached scatter plan for :meth:`hpwl_per_net` (topology-only).

        ``valid_ids`` are the nets with at least two pins; ``pins`` is the
        valid subset of ``net_pin_index`` (net-contiguous, because the CSR
        expansion is net-major); ``seg`` maps each such pin to its compact
        valid-net id.  ``legacy_clean`` records which valid nets the old
        ``reduceat``-over-raw-offsets formulation could evaluate without its
        per-net fallback — the two code paths grouped the four extrema
        differently (``((xmax-xmin)+ymax)-ymin`` vs
        ``(xmax-xmin)+(ymax-ymin)``), and the vectorized pass replays that
        split so per-net values stay bitwise-stable across the rewrite.
        """
        if self._hpwl_plan is None:
            offsets = self.net_pin_offsets
            counts = np.diff(offsets)
            valid_ids = np.nonzero(counts >= 2)[0]
            pins = self.net_pin_index[counts[self.csr_net] >= 2]
            seg = np.repeat(
                np.arange(valid_ids.size, dtype=np.int64), counts[valid_ids]
            )
            starts = offsets[:-1][valid_ids]
            spans = np.append(starts[1:], self.net_pin_index.size) - starts
            legacy_clean = spans == counts[valid_ids]
            self._hpwl_plan = (valid_ids, pins, seg, legacy_clean)
        return self._hpwl_plan

    def hpwl_per_net(
        self,
        x: Optional[np.ndarray] = None,
        y: Optional[np.ndarray] = None,
        *,
        pin_x: Optional[np.ndarray] = None,
        pin_y: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Exact HPWL of every net in one vectorized pass (0 for degenerate nets).

        ``pin_x``/``pin_y`` may carry precomputed absolute pin coordinates to
        skip the gather (the placer shares one gather per iteration).

        Per-net extrema run through ``np.maximum.at``/``np.minimum.at`` over
        the compact valid-net segments of the cached scatter plan — min/max
        folds are order-independent in IEEE arithmetic, so every net's value
        is bitwise identical to :meth:`_reference_hpwl_per_net`, without that
        path's Python-level fallback loop over nets that share a ``reduceat``
        span with a degenerate neighbour.
        """
        if pin_x is None or pin_y is None:
            pin_x, pin_y = self.pin_positions(x, y)
        result = np.zeros(self.num_nets, dtype=np.float64)
        valid_ids, pins, seg, legacy_clean = self._hpwl_scatter_plan()
        if valid_ids.size == 0:
            return result
        vx = pin_x[pins]
        vy = pin_y[pins]
        num_valid = valid_ids.size
        xmax = np.full(num_valid, -np.inf)
        xmin = np.full(num_valid, np.inf)
        ymax = np.full(num_valid, -np.inf)
        ymin = np.full(num_valid, np.inf)
        np.maximum.at(xmax, seg, vx)
        np.minimum.at(xmin, seg, vx)
        np.maximum.at(ymax, seg, vy)
        np.minimum.at(ymin, seg, vy)
        # Replay the historical grouping split (see _hpwl_scatter_plan).
        result[valid_ids] = np.where(
            legacy_clean,
            xmax - xmin + ymax - ymin,
            (xmax - xmin) + (ymax - ymin),
        )
        return result

    def _reference_hpwl_per_net(
        self,
        x: Optional[np.ndarray] = None,
        y: Optional[np.ndarray] = None,
        *,
        pin_x: Optional[np.ndarray] = None,
        pin_y: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Pre-plan HPWL pass (kept for bitwise property tests and benches).

        ``reduceat`` over the raw CSR offsets, plus a per-net Python fallback
        for every valid net whose segment spans a degenerate neighbour — that
        loop is the cost the planned :meth:`hpwl_per_net` removes.
        """
        if pin_x is None or pin_y is None:
            pin_x, pin_y = self.pin_positions(x, y)
        num_nets = self.num_nets
        result = np.zeros(num_nets, dtype=np.float64)
        offsets = self.net_pin_offsets
        csr = self.net_pin_index
        counts = np.diff(offsets)
        valid = counts >= 2
        if not np.any(valid):
            return result
        # reduceat needs non-empty segments; operate on valid nets only.
        valid_ids = np.nonzero(valid)[0]
        starts = offsets[:-1][valid_ids]
        xmax = np.maximum.reduceat(pin_x[csr], starts)
        xmin = np.minimum.reduceat(pin_x[csr], starts)
        ymax = np.maximum.reduceat(pin_y[csr], starts)
        ymin = np.minimum.reduceat(pin_y[csr], starts)
        # reduceat with ``starts`` reduces from each start to the next start
        # (or the end), which may span nets when invalid nets sit between
        # valid ones.  That only happens for nets with <2 pins, which
        # contribute their single pin; including it in the neighbouring
        # segment would corrupt the result, so recompute those rare cases.
        spans = np.append(starts[1:], csr.size) - starts
        clean = spans == counts[valid_ids]
        result[valid_ids[clean]] = (xmax - xmin + ymax - ymin)[clean]
        for net_id in valid_ids[~clean]:
            pins = self.net_pins(int(net_id))
            px = pin_x[pins]
            py = pin_y[pins]
            result[net_id] = (px.max() - px.min()) + (py.max() - py.min())
        return result

    def total_hpwl(
        self,
        x: Optional[np.ndarray] = None,
        y: Optional[np.ndarray] = None,
        *,
        net_weights: Optional[np.ndarray] = None,
        pin_x: Optional[np.ndarray] = None,
        pin_y: Optional[np.ndarray] = None,
    ) -> float:
        """Total (optionally net-weighted) HPWL at positions ``(x, y)``."""
        per_net = self.hpwl_per_net(x, y, pin_x=pin_x, pin_y=pin_y)
        if net_weights is not None:
            per_net = per_net * net_weights
        return float(per_net.sum())

    def utilization(self) -> float:
        """Total non-port cell area divided by die area."""
        if self.die.area <= 0:
            return 0.0
        return float(self.inst_area[~self.inst_is_port].sum()) / self.die.area

    # ------------------------------------------------------------------
    # Floorplan
    # ------------------------------------------------------------------
    def set_floorplan(
        self,
        *,
        die: Optional[Rect | Tuple[float, float, float, float]] = None,
        row_height: Optional[float] = None,
        site_width: Optional[float] = None,
    ) -> None:
        """Update floorplan parameters (invalidates the cached rows).

        The rows cache keys on the *values* of the floorplan, so both this
        method and a direct attribute assignment invalidate it on the next
        :meth:`rows` call.  Tuples are normalized to :class:`Rect` so the
        cache key never sees a malformed die.
        """
        if die is not None:
            self.die = die if isinstance(die, Rect) else Rect(*die)
        if row_height is not None:
            self.row_height = float(row_height)
        if site_width is not None:
            self.site_width = float(site_width)

    def _floorplan_key(self) -> Tuple[float, ...]:
        die = self.die
        return (die.xl, die.yl, die.xh, die.yh, self.row_height, self.site_width)

    def rows(self) -> List[Row]:
        """Placement rows, cached until the floorplan changes."""
        key = self._floorplan_key()
        if self._rows_cache is None or self._rows_cache_key != key:
            self._rows_cache = build_rows(self.die, self.row_height, self.site_width)
            self._rows_cache_key = key
        return self._rows_cache

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DesignCore({self.name}, instances={self.num_instances}, "
            f"nets={self.num_nets}, pins={self.num_pins})"
        )
