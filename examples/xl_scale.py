#!/usr/bin/env python3
"""XL-scale placement with the shared-memory kernel pool.

Runs one XL benchmark (``sb_xl_1``, 100k cells at full scale) end-to-end
through the ``dreamplace`` preset with ``--kernel-workers`` sharding the
density splat and the WA-wirelength gradient across pool workers, then
times the GP inner loop (plan vs legacy vs pooled), a congestion map, and
a full STA pass — the other pooled hot paths — and prints the walls.

The kernel pool's contract is *bit-exactness*: any ``--kernel-workers``
value (including 0, the serial default) produces the same placement, the
same congestion map, and the same timing report.  This script demonstrates
that by re-running the congestion and STA passes serially and comparing.

Worker-count guidance: sharding pays on multi-core hosts once designs pass
~50k cells; on small designs or single-core hosts the process round trips
cost more than the numpy kernels save.  Start with the machine's physical
core count and drop to 0 (serial) below ~10k cells.

Run:  python examples/xl_scale.py [--scale 0.1] [--kernel-workers 2]
      (full scale needs a few GB of RAM and a few minutes)
"""

import argparse
import time

import numpy as np

from repro.benchgen.suite import load_benchmark
from repro.flow import build_flow
from repro.route.rudy import CongestionConfig, CongestionEstimator
from repro.timing.constraints import TimingConstraints
from repro.timing.sta import STAEngine


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--design", default="sb_xl_1")
    parser.add_argument(
        "--scale", type=float, default=0.1,
        help="cell-count multiplier (default 0.1 = 10k cells; 1.0 = full XL)",
    )
    parser.add_argument(
        "--kernel-workers", type=int, default=2,
        help="kernel-pool workers for density/congestion/STA (0 = serial)",
    )
    parser.add_argument(
        "--iterations", type=int, default=100,
        help="global-place iterations (keep small for a smoke run)",
    )
    args = parser.parse_args()

    t0 = time.perf_counter()
    design = load_benchmark(args.design, scale=args.scale)
    print(
        f"{args.design} @ scale {args.scale}: {design.num_instances} instances, "
        f"{design.num_nets} nets, {design.num_pins} pins "
        f"(generated in {time.perf_counter() - t0:.1f}s)"
    )

    # End-to-end placement with the pooled density splat.
    flow = build_flow(
        "dreamplace",
        kernel_workers=args.kernel_workers,
        max_iterations=args.iterations,
    )
    t0 = time.perf_counter()
    result = flow.run(design)
    wall = time.perf_counter() - t0
    print(f"placement ({args.kernel_workers} workers): {wall:.1f}s")
    for key, value in result.summary().items():
        print(f"  {key}: {value}")

    x, y = design.positions()

    # GP-iteration wall: plan-based serial gradient vs the kept legacy
    # (_reference_*) inner loop vs the pooled wa_wirelength kernel, each
    # re-run over a short fixed-length placement and bitwise-compared.
    from repro.netlist.core import as_core
    from repro.placement.global_placer import GlobalPlacer, PlacementConfig

    gp_iters = min(args.iterations, 10)

    def gp_run(workers=0, legacy=False):
        config = PlacementConfig(
            max_iterations=gp_iters,
            min_iterations=gp_iters,
            stop_overflow=0.0,
            seed=0,
            kernel_workers=workers,
        )
        placer = GlobalPlacer(design, config)
        if legacy:
            placer.wirelength.evaluate = placer.wirelength._reference_evaluate
            placer.density._splat = placer.density._reference_splat
            core = as_core(design)
            core.hpwl_per_net = core._reference_hpwl_per_net
            try:
                return placer.run()
            finally:
                del core.hpwl_per_net
        return placer.run()

    t0 = time.perf_counter()
    gp_plan = gp_run()
    plan_wall = time.perf_counter() - t0
    t0 = time.perf_counter()
    gp_legacy = gp_run(legacy=True)
    legacy_wall = time.perf_counter() - t0
    exact = np.array_equal(gp_plan.x, gp_legacy.x) and np.array_equal(
        gp_plan.y, gp_legacy.y
    )
    print(
        f"GP iteration ({gp_iters} iters): "
        f"{plan_wall / gp_iters * 1e3:.1f}ms plan vs "
        f"{legacy_wall / gp_iters * 1e3:.1f}ms legacy; bitwise equal: {exact}"
    )
    if not exact:
        raise SystemExit("plan-based GP inner loop diverged from legacy")
    if args.kernel_workers > 0:
        t0 = time.perf_counter()
        gp_pooled = gp_run(workers=args.kernel_workers)
        pooled_wall = time.perf_counter() - t0
        exact = np.array_equal(gp_plan.x, gp_pooled.x) and np.array_equal(
            gp_plan.y, gp_pooled.y
        )
        print(
            f"GP iteration ({args.kernel_workers} workers): "
            f"{pooled_wall / gp_iters * 1e3:.1f}ms; bitwise equal: {exact}"
        )
        if not exact:
            raise SystemExit("kernel-pool GP inner loop diverged from serial")

    # Congestion map: pooled vs serial, bitwise.
    t0 = time.perf_counter()
    pooled = CongestionEstimator(
        design, CongestionConfig(workers=args.kernel_workers)
    ).estimate(x, y)
    pooled_wall = time.perf_counter() - t0
    t0 = time.perf_counter()
    serial = CongestionEstimator(design).estimate(x, y)
    serial_wall = time.perf_counter() - t0
    exact = np.array_equal(pooled.demand_h, serial.demand_h) and np.array_equal(
        pooled.demand_v, serial.demand_v
    )
    print(
        f"congestion map: {pooled_wall:.2f}s pooled vs {serial_wall:.2f}s serial; "
        f"bitwise equal: {exact}"
    )
    if not exact:
        raise SystemExit("kernel-pool congestion map diverged from serial")

    # Full STA: pooled vs serial, bitwise.
    constraints = TimingConstraints.from_design(design)
    t0 = time.perf_counter()
    pooled_sta = STAEngine(
        design, constraints, workers=args.kernel_workers
    ).update_timing()
    pooled_wall = time.perf_counter() - t0
    t0 = time.perf_counter()
    serial_sta = STAEngine(design, constraints).update_timing()
    serial_wall = time.perf_counter() - t0
    exact = np.array_equal(pooled_sta.arrival, serial_sta.arrival) and np.array_equal(
        pooled_sta.required, serial_sta.required
    )
    print(
        f"full STA: {pooled_wall:.2f}s pooled vs {serial_wall:.2f}s serial; "
        f"bitwise equal: {exact} (wns {pooled_sta.wns:.3f})"
    )
    if not exact:
        raise SystemExit("kernel-pool STA diverged from serial")


if __name__ == "__main__":
    main()
