"""Cadenced dispatch of placement feedbacks inside the placer loop.

The :class:`FeedbackScheduler` is owned by
:class:`~repro.placement.global_placer.GlobalPlacer` and invoked once per
placement iteration.  It owns everything the feedback components must not:

* **cadence** — each slot pairs a feedback with a
  :class:`~repro.feedback.base.FeedbackCadence` (warmup / every-K /
  cooldown) and only fires when the cadence says so;
* **composition** — weight proposals from fired slots are merged by the
  shared :class:`~repro.feedback.composer.WeightComposer` and applied via
  ``placer.set_net_weights`` in one place (with one momentum reset), instead
  of every feedback clobbering the weight vector independently.  Proposals
  are cached per slot, so a slot on a slower cadence keeps contributing its
  last opinion while faster slots fire — neither signal starves between its
  own firings;
* **accounting** — per-feedback wall-clock seconds, call counts, and the
  per-update trajectory rows (iteration, WNS, peak overflow, weight norm)
  that ``repro run --profile`` and the evaluation report surface.

Raw per-iteration callbacks (``placer.add_callback``) ride through the same
scheduler as :class:`CallbackFeedback` slots with the every-iteration
cadence, which is what makes the legacy hook API a thin compatibility shim
rather than a second dispatch path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional

import numpy as np

from repro.feedback.base import FeedbackCadence, FeedbackUpdate, PlacementFeedback
from repro.feedback.composer import WeightComposer
from repro.obs import clock, span

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.placement.global_placer import GlobalPlacer

__all__ = ["CallbackFeedback", "FeedbackSlot", "FeedbackScheduler", "feedback_record"]


class CallbackFeedback(PlacementFeedback):
    """Compatibility shim: a raw per-iteration callback as a feedback slot.

    The callback mutates the placer directly (or just observes), so the slot
    never proposes weights and never forces a momentum reset of its own.
    """

    resets_momentum = False

    def __init__(
        self,
        fn: Callable[["GlobalPlacer", int, np.ndarray, np.ndarray], None],
        name: str = "callback",
    ) -> None:
        self.fn = fn
        self.name = name

    def update(
        self,
        placer: "GlobalPlacer",
        iteration: int,
        x: np.ndarray,
        y: np.ndarray,
    ) -> Optional[FeedbackUpdate]:
        self.fn(placer, iteration, x, y)
        return None


@dataclass
class FeedbackSlot:
    """One scheduled feedback: the component plus when it fires."""

    feedback: PlacementFeedback
    cadence: FeedbackCadence


def feedback_record(ctx: Any) -> Dict[str, Any]:
    """The flow-level feedback accounting record (shared across placers).

    Stored in ``ctx.metadata["feedback"]`` so the main placement run and any
    warm-started refine runs (routability repair) accumulate into the same
    trajectory/seconds containers, and so the CLI/evaluation layers can read
    it without holding a placer.
    """
    return ctx.metadata.setdefault(
        "feedback", {"trajectory": [], "seconds": {}, "calls": {}}
    )


class FeedbackScheduler:
    """Dispatch scheduled feedback slots for one placer (see module doc)."""

    def __init__(self, composer: Optional[WeightComposer] = None) -> None:
        self.slots: List[FeedbackSlot] = []
        self.composer = composer
        self.trajectory: List[Dict[str, Any]] = []
        self.seconds: Dict[str, float] = {}
        self.calls: Dict[str, int] = {}
        self._last_proposals: Dict[str, np.ndarray] = {}

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def add(
        self,
        feedback: PlacementFeedback,
        cadence: Optional[FeedbackCadence] = None,
    ) -> FeedbackSlot:
        slot = FeedbackSlot(
            feedback=feedback,
            cadence=cadence if cadence is not None else FeedbackCadence(),
        )
        self.slots.append(slot)
        return slot

    def bind(
        self,
        *,
        composer: Optional[WeightComposer] = None,
        trajectory: Optional[List[Dict[str, Any]]] = None,
        seconds: Optional[Dict[str, float]] = None,
        calls: Optional[Dict[str, int]] = None,
    ) -> None:
        """Share composer / accounting containers across placer instances.

        Refine placements (the inflation loop) construct fresh placers, each
        with its own scheduler; binding them to the flow-level containers
        keeps one continuous weight state and one trajectory per run.
        """
        if composer is not None:
            self.composer = composer
        if trajectory is not None:
            self.trajectory = trajectory
        if seconds is not None:
            self.seconds = seconds
        if calls is not None:
            self.calls = calls

    @property
    def has_slots(self) -> bool:
        return bool(self.slots)

    # ------------------------------------------------------------------
    # Per-iteration dispatch
    # ------------------------------------------------------------------
    def dispatch(
        self,
        placer: "GlobalPlacer",
        iteration: int,
        x: np.ndarray,
        y: np.ndarray,
    ) -> None:
        proposals: Dict[str, np.ndarray] = {}
        metrics: Dict[str, float] = {}
        fired: List[str] = []
        reset_momentum = False
        for slot in self.slots:
            if not slot.cadence.fires(iteration):
                # A slot past its cooldown boundary is retired: drop its
                # cached proposal so the composer's momentum glides the
                # signal back out instead of freezing the last boost in.
                if (
                    slot.cadence.end is not None
                    and iteration > slot.cadence.end
                ):
                    self._last_proposals.pop(slot.feedback.name, None)
                continue
            feedback = slot.feedback
            start = clock()
            with span(f"feedback.{feedback.name}", i=iteration):
                update = feedback.update(placer, iteration, x, y)
            elapsed = clock() - start
            self.seconds[feedback.name] = self.seconds.get(feedback.name, 0.0) + elapsed
            self.calls[feedback.name] = self.calls.get(feedback.name, 0) + 1
            if update is None:
                continue
            fired.append(feedback.name)
            metrics.update(update.metrics)
            if update.proposal is not None:
                proposals[feedback.name] = update.proposal
                self._last_proposals[feedback.name] = update.proposal
                if feedback.resets_momentum:
                    reset_momentum = True
        if proposals:
            if self.composer is None:
                self.composer = WeightComposer()
            # Compose the fired proposals together with the cached latest
            # proposal of every slower slot, so interleaved cadences still
            # produce jointly-weighted nets.
            weights = self.composer.compose(dict(self._last_proposals))
            placer.set_net_weights(weights)
            if reset_momentum:
                placer.reset_optimizer_momentum()
            metrics.update(self.composer.summary())
        if fired:
            row: Dict[str, Any] = {"iteration": int(iteration), "fired": fired}
            row.update(metrics)
            self.trajectory.append(row)

    def finalize(self, placer: "GlobalPlacer") -> None:
        for slot in self.slots:
            slot.feedback.finalize(placer)
