"""Initial placement for the nonlinear solver.

DREAMPlace starts from all movable cells gathered near the die center with a
small random perturbation, which gives the electrostatic spreading force a
well-defined direction from the first iteration.  The same strategy is used
here; fixed instances (IO ports, macros) keep their positions.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.netlist.core import as_core
from repro.utils.rng import SeedLike, make_rng


def initial_placement(
    design,
    *,
    spread: float = 0.12,
    seed: SeedLike = 0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Return initial ``(x, y)`` arrays for all instances.

    Movable cells are placed around the die center with a Gaussian spread of
    ``spread`` times the die dimensions (clipped to the die); fixed instances
    keep their stored positions.  ``design`` may be a :class:`Design` or a
    bare :class:`DesignCore`.
    """
    rng = make_rng(seed)
    core = as_core(design)
    die = core.die
    x, y = core.positions()

    movable = core.movable_index
    center_x = die.xl + 0.5 * die.width
    center_y = die.yl + 0.5 * die.height
    x[movable] = center_x + rng.normal(0.0, spread * die.width, size=movable.size)
    y[movable] = center_y + rng.normal(0.0, spread * die.height, size=movable.size)

    # Keep cells fully inside the die.
    x[movable] = np.clip(
        x[movable], die.xl, die.xh - core.inst_width[movable]
    )
    y[movable] = np.clip(
        y[movable], die.yl, die.yh - core.inst_height[movable]
    )
    return x, y


def clamp_to_die(
    design, x: np.ndarray, y: np.ndarray, *, copy: bool = True
) -> Tuple[np.ndarray, np.ndarray]:
    """Clip movable instances so their footprint stays inside the die.

    With ``copy=False`` the inputs are clipped in place (same values bit for
    bit; the placer's inner loop uses this to avoid re-allocating the
    position arrays every iteration).
    """
    core = as_core(design)
    die = core.die
    movable = core.movable_index
    if copy:
        x = x.copy()
        y = y.copy()
    x[movable] = np.clip(x[movable], die.xl, die.xh - core.inst_width[movable])
    y[movable] = np.clip(y[movable], die.yl, die.yh - core.inst_height[movable])
    return x, y
