"""Fig. 5 — HPWL / overflow / TNS / WNS trajectories over placement iterations.

Regenerates the paper's optimization-trajectory comparison for ``sb_mini_1``
between DREAMPlace 4.0 and Efficient-TDP: per-iteration HPWL and density
overflow from the placement history, and the TNS/WNS series recorded at every
timing iteration (absolute values, as in the figure).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import save_json, save_text
from repro.evaluation import format_table


def _series(result):
    history = result.history
    return {
        "iterations": history.iterations,
        "hpwl": history.hpwl,
        "overflow": history.overflow,
        "tns": history.extra.get("tns", []),
        "wns": history.extra.get("wns", []),
    }


def test_fig5_trajectories(suite_results, benchmark):
    design = "sb_mini_1"
    dmp4 = suite_results[design]["DREAMPlace 4.0"]
    ours = suite_results[design]["Efficient-TDP (ours)"]

    series = benchmark.pedantic(
        lambda: {"dreamplace4": _series(dmp4), "ours": _series(ours)},
        rounds=1,
        iterations=1,
    )
    save_json("fig5_trajectories.json", {"design": design, **series})

    # Print a compact sampled view of the four sub-figures.
    rows = []
    ours_series = series["ours"]
    dmp4_series = series["dreamplace4"]
    stride = max(1, len(ours_series["iterations"]) // 12)
    for idx in range(0, len(ours_series["iterations"]), stride):
        iteration = ours_series["iterations"][idx]
        row = [iteration, round(ours_series["hpwl"][idx], 0), round(ours_series["overflow"][idx], 3)]
        if idx < len(dmp4_series["iterations"]):
            row += [round(dmp4_series["hpwl"][idx], 0), round(dmp4_series["overflow"][idx], 3)]
        else:
            row += ["-", "-"]
        rows.append(row)
    table = format_table(
        ["iter", "ours HPWL", "ours overflow", "DMP4 HPWL", "DMP4 overflow"],
        rows,
        title=f"Fig. 5 — optimization trajectories for {design} (sampled)",
    )
    print("\n" + table)
    save_text("fig5_trajectories.txt", table)

    # Shape checks:
    # 1. both flows record TNS/WNS trajectories once timing optimization starts;
    assert len(series["ours"]["tns"]) >= 2
    assert len(series["dreamplace4"]["tns"]) >= 2
    # 2. the trajectories coincide before timing optimization starts (same
    #    wirelength-driven prefix, same seed);
    prefix = 50
    assert series["ours"]["hpwl"][:prefix] == pytest.approx(
        series["dreamplace4"]["hpwl"][:prefix], rel=1e-6
    )
    # 3. density overflow ultimately falls below the stop threshold + margin.
    assert series["ours"]["overflow"][-1] <= 0.2
    assert series["dreamplace4"]["overflow"][-1] <= 0.2
