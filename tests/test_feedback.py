"""The unified placement-feedback architecture (PR 5).

Covers:

* :class:`FeedbackCadence` warmup / every-K / cooldown boundary iterations;
* :class:`WeightComposer` semantics, including the hypothesis property:
  composed weights are always within ``[1, max_weight]``, and with a
  zero-overflow congestion map the composition reduces to the pure-timing
  weights;
* :class:`FeedbackScheduler` dispatch inside a real ``GlobalPlacer`` run
  (cadenced firing, proposal caching across interleaved cadences, the
  ``add_callback`` compat shim, per-feedback runtime accounting);
* ``GlobalPlacer.set_net_weights`` input validation (satellite);
* :class:`CongestionNetWeighting` SAT scoring against a naive per-net loop;
* the ``routability-gp`` preset shape, trajectory/report plumbing, and the
  acceptance experiment on ``sb_cong_1``: in-loop congestion weighting +
  inflation beats inflation-alone on peak overflow at <= 2% legalized HPWL
  cost.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.benchgen import load_benchmark
from repro.feedback import (
    CongestionNetWeighting,
    FeedbackCadence,
    FeedbackUpdate,
    PlacementFeedback,
    TimingCriticalityWeighting,
    WeightComposer,
    WeightComposerConfig,
)
from repro.flow.presets import build_flow, build_stages, get_preset
from repro.flow.stage import create_stage
from repro.flow.stages import FeedbackWeightStage
from repro.placement.global_placer import GlobalPlacer, PlacementConfig
from repro.placement.initial import initial_placement
from repro.route import CongestionConfig, CongestionEstimator


# ----------------------------------------------------------------------
# Cadence
# ----------------------------------------------------------------------
class TestFeedbackCadence:
    def test_warmup_boundary(self):
        cadence = FeedbackCadence(start=10, interval=1)
        assert not cadence.fires(9)
        assert cadence.fires(10)
        assert cadence.fires(11)

    def test_every_k(self):
        cadence = FeedbackCadence(start=10, interval=5)
        fired = [i for i in range(30) if cadence.fires(i)]
        assert fired == [10, 15, 20, 25]

    def test_cooldown_boundary_inclusive(self):
        cadence = FeedbackCadence(start=0, interval=2, end=6)
        fired = [i for i in range(12) if cadence.fires(i)]
        assert fired == [0, 2, 4, 6]

    def test_default_fires_every_iteration(self):
        cadence = FeedbackCadence()
        assert all(cadence.fires(i) for i in range(5))

    def test_matches_legacy_timing_schedule(self):
        """The cadence reproduces the old callback guard bit for bit."""
        start, interval = 150, 15
        cadence = FeedbackCadence(start=start, interval=interval)
        for i in range(1, 400):
            legacy = i >= start and (i - start) % interval == 0
            assert cadence.fires(i) == legacy

    def test_validation(self):
        with pytest.raises(ValueError):
            FeedbackCadence(start=-1)
        with pytest.raises(ValueError):
            FeedbackCadence(interval=0)
        with pytest.raises(ValueError):
            FeedbackCadence(start=10, end=9)


# ----------------------------------------------------------------------
# Composer
# ----------------------------------------------------------------------
class TestWeightComposer:
    def test_single_proposal_momentum(self):
        composer = WeightComposer(
            config=WeightComposerConfig(momentum_decay=0.5, max_weight=10.0)
        )
        proposal = np.array([1.0, 2.0, 4.0])
        w1 = composer.compose({"t": proposal})
        np.testing.assert_allclose(w1, [1.0, 1.5, 2.5])
        w2 = composer.compose({"t": proposal})
        np.testing.assert_allclose(w2, [1.0, 1.75, 3.25])

    def test_release_when_signal_clears(self):
        composer = WeightComposer(config=WeightComposerConfig(momentum_decay=0.5))
        hot = np.array([1.0, 3.0])
        for _ in range(10):
            composer.compose({"c": hot})
        cleared = np.ones(2)
        for _ in range(40):
            w = composer.compose({"c": cleared})
        np.testing.assert_allclose(w, 1.0, atol=1e-6)

    def test_target_cap_preserves_signal_ratio(self):
        cfg = WeightComposerConfig(momentum_decay=0.0, max_target_boost=2.0,
                                   max_weight=100.0)
        composer = WeightComposer(config=cfg)
        w = composer.compose({"a": np.array([4.0]), "b": np.array([4.0])})
        # Combined target 16 is capped at 2.
        np.testing.assert_allclose(w, [2.0])

    def test_rejects_bad_proposals(self):
        composer = WeightComposer(num_nets=3)
        with pytest.raises(ValueError, match="at least one"):
            composer.compose({})
        with pytest.raises(ValueError, match=">= 1"):
            composer.compose({"x": np.array([0.5, 1.0, 1.0])})
        with pytest.raises(ValueError, match="shape"):
            composer.compose({"x": np.ones(2)})
        with pytest.raises(ValueError, match=">= 1"):
            composer.compose({"x": np.array([1.0, np.nan, 1.0])})

    def test_config_validation(self):
        with pytest.raises(ValueError):
            WeightComposerConfig(momentum_decay=1.5).validate()
        with pytest.raises(ValueError):
            WeightComposerConfig(max_weight=0.5, min_weight=1.0).validate()
        with pytest.raises(ValueError):
            WeightComposerConfig(max_target_boost=0.5).validate()

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        num_nets=st.integers(min_value=1, max_value=50),
        updates=st.integers(min_value=1, max_value=6),
        timing_boost=st.floats(min_value=0.0, max_value=3.0),
        congestion_boost=st.floats(min_value=0.0, max_value=3.0),
        max_weight=st.floats(min_value=1.0, max_value=8.0),
        decay=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_bounds_and_pure_timing_reduction(
        self, seed, num_nets, updates, timing_boost, congestion_boost,
        max_weight, decay,
    ):
        """Hypothesis property: composed weights live in [1, max_weight],
        and a zero-overflow congestion map reduces the composition to the
        pure-timing weights exactly."""
        rng = np.random.default_rng(seed)
        cfg = WeightComposerConfig(momentum_decay=decay, max_weight=max_weight)
        both = WeightComposer(config=cfg)
        timing_only = WeightComposer(config=cfg)
        zero_overflow = np.ones(num_nets)  # congestion with nothing to say
        for _ in range(updates):
            criticality = rng.uniform(0.0, 1.0, size=num_nets)
            timing = 1.0 + timing_boost * criticality
            w_both = both.compose({"timing": timing, "congestion": zero_overflow})
            w_timing = timing_only.compose({"timing": timing})
            assert np.all(w_both >= 1.0 - 1e-12)
            assert np.all(w_both <= max_weight + 1e-12)
            np.testing.assert_array_equal(w_both, w_timing)
        # And with real congestion the bounds still hold.
        congestion = 1.0 + congestion_boost * rng.uniform(0.0, 1.0, size=num_nets)
        w = both.compose({"timing": timing, "congestion": congestion})
        assert np.all(w >= 1.0 - 1e-12)
        assert np.all(w <= max_weight + 1e-12)


# ----------------------------------------------------------------------
# Scheduler dispatch inside a real placer
# ----------------------------------------------------------------------
class _RecordingFeedback(PlacementFeedback):
    """Test feedback: records firings, optionally proposes a multiplier."""

    def __init__(self, name, proposal=None):
        self.name = name
        self.proposal = proposal
        self.fired = []
        self.finalized = 0

    def update(self, placer, iteration, x, y):
        self.fired.append(iteration)
        if self.proposal is None:
            return None
        return FeedbackUpdate(proposal=self.proposal, metrics={"val": 1.0})

    def finalize(self, placer):
        self.finalized += 1


class TestSchedulerInPlacer:
    def test_cadenced_firing_and_accounting(self, fresh_small_design):
        placer = GlobalPlacer(
            fresh_small_design, PlacementConfig(max_iterations=30, seed=0)
        )
        fb = _RecordingFeedback("probe")
        placer.add_feedback(fb, FeedbackCadence(start=10, interval=5, end=20))
        placer.run()
        assert fb.fired == [10, 15, 20]
        assert fb.finalized == 1
        assert placer.feedback.calls["probe"] == 3
        assert placer.feedback.seconds["probe"] >= 0.0

    def test_proposals_reach_net_weights(self, fresh_small_design):
        design = fresh_small_design
        placer = GlobalPlacer(design, PlacementConfig(max_iterations=20, seed=0))
        proposal = np.full(design.num_nets, 3.0)
        fb = _RecordingFeedback("booster", proposal=proposal)
        placer.add_feedback(fb, FeedbackCadence(start=5, interval=100))
        placer.run()
        # One update with decay 0.75: w = 0.75*1 + 0.25*3 = 1.5.
        np.testing.assert_allclose(placer.net_weights, 1.5)
        rows = placer.feedback.trajectory
        assert len(rows) == 1
        assert rows[0]["iteration"] == 5
        assert rows[0]["fired"] == ["booster"]
        assert rows[0]["weight_max"] == pytest.approx(1.5)

    def test_slower_slot_proposal_is_cached(self, fresh_small_design):
        """A slot between its firings keeps contributing its last proposal."""
        design = fresh_small_design
        placer = GlobalPlacer(design, PlacementConfig(max_iterations=25, seed=0))
        slow = _RecordingFeedback("slow", proposal=np.full(design.num_nets, 2.0))
        fast = _RecordingFeedback("fast", proposal=np.full(design.num_nets, 2.0))
        placer.add_feedback(slow, FeedbackCadence(start=5, interval=100))
        placer.add_feedback(fast, FeedbackCadence(start=5, interval=1))
        placer.run()
        # Every compose after iteration 5 sees both proposals: target 4.
        # With decay 0.75 over 21 composes, weights approach 4.
        assert placer.net_weights[0] > 3.9
        assert len(slow.fired) == 1 and len(fast.fired) == 21

    def test_add_callback_shim_rides_scheduler(self, fresh_small_design):
        placer = GlobalPlacer(
            fresh_small_design, PlacementConfig(max_iterations=10, seed=0)
        )
        seen = []
        placer.add_callback(lambda p, i, x, y: seen.append(i))
        assert placer.feedback.has_slots
        placer.run()
        assert seen == list(range(1, 11))
        # Raw callbacks never appear in the trajectory (no metrics).
        assert placer.feedback.trajectory == []


class TestSetNetWeightsValidation:
    def test_accepts_lists_and_int_arrays(self, fresh_small_design):
        placer = GlobalPlacer(fresh_small_design)
        placer.set_net_weights([2] * fresh_small_design.num_nets)
        assert placer.net_weights.dtype == np.float64
        np.testing.assert_array_equal(placer.net_weights, 2.0)

    def test_rejects_wrong_shape_and_scalars(self, fresh_small_design):
        placer = GlobalPlacer(fresh_small_design)
        with pytest.raises(ValueError, match="shape"):
            placer.set_net_weights(np.ones(3))
        with pytest.raises(ValueError, match="scalars"):
            placer.set_net_weights(2.0)
        with pytest.raises(ValueError, match="shape"):
            placer.set_net_weights(np.ones((fresh_small_design.num_nets, 1)))

    def test_rejects_bad_values(self, fresh_small_design):
        placer = GlobalPlacer(fresh_small_design)
        num_nets = fresh_small_design.num_nets
        bad = np.ones(num_nets)
        bad[0] = -1.0
        with pytest.raises(ValueError, match="non-negative"):
            placer.set_net_weights(bad)
        bad[0] = np.nan
        with pytest.raises(ValueError, match="finite"):
            placer.set_net_weights(bad)
        bad[0] = np.inf
        with pytest.raises(ValueError, match="finite"):
            placer.set_net_weights(bad)

    def test_rejects_non_numeric_dtypes(self, fresh_small_design):
        placer = GlobalPlacer(fresh_small_design)
        num_nets = fresh_small_design.num_nets
        with pytest.raises(TypeError, match="numeric"):
            placer.set_net_weights(np.array(["x"] * num_nets))
        with pytest.raises(TypeError, match="numeric"):
            placer.set_net_weights(np.array([object()] * num_nets))
        with pytest.raises(TypeError, match="complex"):
            placer.set_net_weights(np.ones(num_nets, dtype=np.complex128))


# ----------------------------------------------------------------------
# Congestion net weighting
# ----------------------------------------------------------------------
class TestCongestionNetWeighting:
    def test_scores_match_naive_reference(self, small_design):
        config = CongestionConfig(num_bins_x=8, num_bins_y=8)
        weighting = CongestionNetWeighting(config)
        estimator = CongestionEstimator(small_design, config)
        weighting.estimator = estimator
        x, y = initial_placement(small_design, seed=3)
        result = estimator.estimate(x, y)
        scores = weighting.net_overflow_scores(result, x, y)

        overflow = result.overflow
        ix0, ix1, iy0, iy1 = estimator.net_bin_spans(x, y)
        expected = np.zeros(small_design.num_nets)
        for k, net in enumerate(estimator.active_net_ids):
            patch = overflow[ix0[k]:ix1[k] + 1, iy0[k]:iy1[k] + 1]
            expected[net] = patch.mean()
        np.testing.assert_allclose(scores, expected, rtol=1e-9, atol=1e-12)

    def test_zero_overflow_proposes_ones(self, fresh_small_design):
        design = fresh_small_design
        # A huge track capacity makes every bin routable.
        weighting = CongestionNetWeighting(
            CongestionConfig(tracks_per_row=10000.0), max_boost=2.0
        )
        placer = GlobalPlacer(design, PlacementConfig(max_iterations=1, seed=0))
        x, y = initial_placement(design, seed=0)
        update = weighting.update(placer, 1, x, y)
        np.testing.assert_array_equal(update.proposal, 1.0)
        assert update.metrics["peak_overflow"] == 0.0

    def test_proposal_bounded_by_max_boost(self, fresh_small_design):
        design = fresh_small_design
        weighting = CongestionNetWeighting(max_boost=0.7, saturation_overflow=0.1)
        placer = GlobalPlacer(design, PlacementConfig(max_iterations=1, seed=0))
        x, y = initial_placement(design, seed=0)
        update = weighting.update(placer, 1, x, y)
        assert update.proposal.min() >= 1.0
        assert update.proposal.max() <= 1.7 + 1e-12

    def test_knob_validation(self):
        with pytest.raises(ValueError):
            CongestionNetWeighting(max_boost=-0.1)
        with pytest.raises(ValueError):
            CongestionNetWeighting(saturation_overflow=0.0)


class TestTimingCriticalityWeighting:
    def _context(self, design):
        from repro.flow.context import FlowContext
        from repro.timing.constraints import TimingConstraints
        from repro.utils.profiling import RuntimeProfiler

        return FlowContext(
            design=design,
            constraints=TimingConstraints.from_design(design),
            profiler=RuntimeProfiler(),
        )

    def test_proposal_bounds_and_threshold(self, fresh_small_design):
        design = fresh_small_design
        placer = GlobalPlacer(design, PlacementConfig(max_iterations=1, seed=0))
        x, y = initial_placement(design, seed=0)

        full = TimingCriticalityWeighting(max_boost=0.5)
        full.prepare(self._context(design))
        update = full.update(placer, 1, x, y)
        assert update.proposal.min() >= 1.0
        assert update.proposal.max() <= 1.5 + 1e-12
        assert update.metrics["wns"] <= 0.0

        focused = TimingCriticalityWeighting(
            max_boost=0.5, criticality_threshold=0.5
        )
        focused.prepare(self._context(design))
        focused_update = focused.update(placer, 1, x, y)
        # Thresholding only zeroes sub-threshold nets, never boosts more.
        assert np.all(focused_update.proposal <= update.proposal + 1e-12)
        boosted = np.count_nonzero(focused_update.proposal > 1.0)
        assert boosted < np.count_nonzero(update.proposal > 1.0)

    def test_requires_prepare(self, fresh_small_design):
        placer = GlobalPlacer(fresh_small_design)
        weighting = TimingCriticalityWeighting()
        with pytest.raises(RuntimeError, match="prepare"):
            weighting.update(placer, 1, *initial_placement(fresh_small_design, seed=0))

    def test_knob_validation(self):
        with pytest.raises(ValueError):
            TimingCriticalityWeighting(max_boost=-1.0)
        with pytest.raises(ValueError):
            TimingCriticalityWeighting(criticality_threshold=1.0)


# ----------------------------------------------------------------------
# Flow integration: stage, preset, reports
# ----------------------------------------------------------------------
class TestFeedbackFlowIntegration:
    def test_stage_registered(self):
        stage = create_stage(
            "feedback_weight",
            slots=[(CongestionNetWeighting(), FeedbackCadence(start=5, interval=5))],
        )
        assert isinstance(stage, FeedbackWeightStage)

    def test_stage_requires_slots(self):
        with pytest.raises(ValueError, match="at least one"):
            FeedbackWeightStage([])

    def test_routability_gp_preset_shape(self):
        stages = build_stages("routability-gp", max_iterations=40)
        names = [s.name for s in stages]
        assert names == [
            "feedback_weight",
            "global_place",
            "routability_repair",
            "legalize",
            "congestion",
            "evaluate",
        ]
        assert get_preset("routability-gp").description

    def test_preset_runs_and_reports(self, fresh_small_design):
        runner = build_flow(
            "routability-gp",
            max_iterations=60,
            refine_iterations=20,
            congestion_start=10,
            congestion_interval=10,
            timing_start=20,
            timing_interval=20,
        )
        result = runner.run(fresh_small_design, seed=0)
        ctx = result.context
        record = ctx.metadata["feedback"]
        assert record["trajectory"], "in-loop feedback never fired"
        assert "congestion" in record["calls"] and "timing" in record["calls"]
        assert all(sec >= 0.0 for sec in record["seconds"].values())
        congestion_rows = [
            row for row in record["trajectory"] if "congestion" in row["fired"]
        ]
        assert congestion_rows and "peak_overflow" in congestion_rows[0]
        timing_rows = [row for row in record["trajectory"] if "timing" in row["fired"]]
        assert timing_rows and "wns" in timing_rows[0]
        # Composed weights stay within the composer clamp.
        weights = ctx.placer.net_weights
        assert weights.min() >= 1.0 - 1e-12
        assert weights.max() <= 6.0 + 1e-12
        # The evaluation report carries the trajectory; the summary counts it.
        assert result.evaluation.feedback_trajectory == record["trajectory"]
        assert "feedback_trajectory" in result.evaluation.as_dict()
        assert result.summary()["feedback_updates"] == len(record["trajectory"])

    def test_timing_weight_presets_record_trajectory(self, fresh_small_design):
        """The legacy strategies ride the scheduler: trajectory rows appear
        for the pre-existing presets without changing their math."""
        result = build_flow(
            "dreamplace4",
            max_iterations=40,
            timing_start_iteration=10,
            timing_update_interval=10,
        ).run(fresh_small_design, seed=0)
        record = result.context.metadata["feedback"]
        assert record["trajectory"]
        assert all("wns" in row for row in record["trajectory"])
        assert result.evaluation.feedback_trajectory == record["trajectory"]

    def test_add_congestion_weighting_retrofit(self):
        from repro.flow.stages import EvaluateStage, GlobalPlaceStage
        from repro.route.flow import add_congestion_weighting

        stages = build_stages("dreamplace", max_iterations=40)
        out = add_congestion_weighting(stages)
        names = [s.name for s in out]
        assert names.index("feedback_weight") == names.index("global_place") - 1
        # Original list untouched.
        assert not any(s.name == "feedback_weight" for s in stages)
        with pytest.raises(ValueError, match="global_place"):
            add_congestion_weighting([EvaluateStage()])
        assert any(isinstance(s, GlobalPlaceStage) for s in out)

    def test_add_congestion_weighting_rejects_self_applying_strategy(self):
        """Composing with a strategy that owns the net-weight vector itself
        (momentum net weighting) would clobber both signals: refuse."""
        from repro.route.flow import add_congestion_weighting

        stages = build_stages("dreamplace4", max_iterations=40)
        with pytest.raises(ValueError, match="momentum net-weighting"):
            add_congestion_weighting(stages)
        # Objective-term strategies (pin pairs) compose fine.
        stages = build_stages("efficient_tdp", max_iterations=40)
        assert any(
            s.name == "feedback_weight" for s in add_congestion_weighting(stages)
        )

    def test_retired_slot_proposal_is_released(self, fresh_small_design):
        """After a slot's cooldown boundary its cached proposal leaves the
        composition, so the boost glides back out via momentum."""
        design = fresh_small_design
        placer = GlobalPlacer(design, PlacementConfig(max_iterations=40, seed=0))
        retiring = _RecordingFeedback(
            "retiring", proposal=np.full(design.num_nets, 4.0)
        )
        steady = _RecordingFeedback("steady", proposal=np.ones(design.num_nets))
        placer.add_feedback(retiring, FeedbackCadence(start=5, interval=5, end=10))
        placer.add_feedback(steady, FeedbackCadence(start=5, interval=1))
        placer.run()
        assert retiring.fired == [5, 10]
        # With the retiring proposal dropped after iteration 10, ~30 further
        # composes at decay 0.75 pull the weights back to ~1.
        assert placer.net_weights.max() < 1.01


# ----------------------------------------------------------------------
# Acceptance: in-loop weighting + inflation vs inflation-alone
# ----------------------------------------------------------------------
class TestInLoopWeightingAcceptance:
    @pytest.fixture(scope="class")
    def inflation_only(self):
        design = load_benchmark("sb_cong_1")
        return build_flow("routability", max_iterations=300).run(design, seed=0)

    def test_congestion_weighting_beats_inflation_alone(self, inflation_only):
        """Acceptance (ISSUE 5): in-loop congestion weighting + inflation
        beats inflation-alone on peak overflow at <= 2% legalized HPWL cost
        (congestion-only mode, where the congestion signal has the whole
        HPWL budget to itself)."""
        design = load_benchmark("sb_cong_1")
        gp = build_flow("routability-gp", max_iterations=300, timing=False).run(
            design, seed=0
        )
        base = inflation_only.evaluation
        ours = gp.evaluation
        assert ours.congestion_peak_overflow <= 0.85 * base.congestion_peak_overflow
        assert ours.hpwl <= 1.02 * base.hpwl

    def test_composed_timing_and_congestion_still_beats(self, inflation_only):
        """The full composed preset (timing x congestion) must still beat
        inflation-alone on peak overflow within the same HPWL budget."""
        design = load_benchmark("sb_cong_1")
        gp = build_flow("routability-gp", max_iterations=300).run(design, seed=0)
        base = inflation_only.evaluation
        ours = gp.evaluation
        assert ours.congestion_peak_overflow < base.congestion_peak_overflow
        assert ours.hpwl <= 1.02 * base.hpwl
        # And the composition actually happened: both signals fired.
        record = gp.context.metadata["feedback"]
        assert "timing" in record["calls"] and "congestion" in record["calls"]
