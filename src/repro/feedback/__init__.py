"""Unified placement-feedback architecture.

Everything that periodically analyzes an in-progress placement and folds the
result back into the optimization — timing criticality, routing congestion,
and whatever comes next (density targets, IR drop, ECO deltas) — goes
through one composition seam:

* :class:`~repro.feedback.base.PlacementFeedback` — the component protocol
  (``prepare`` / ``attach`` / ``update`` / ``finalize``);
* :class:`~repro.feedback.base.FeedbackCadence` — warmup / every-K /
  cooldown firing windows;
* :class:`~repro.feedback.scheduler.FeedbackScheduler` — owned by the
  global placer; dispatches slots on cadence, applies composed weights,
  and keeps per-feedback runtime + trajectory accounting;
* :class:`~repro.feedback.composer.WeightComposer` — merges several per-net
  weight proposals (timing criticality x congestion penalty) with shared
  momentum, clamping, and log-proportional normalization;
* :class:`~repro.feedback.timing.TimingCriticalityWeighting` and
  :class:`~repro.feedback.congestion.CongestionNetWeighting` — the two
  shipped composable signals;
* :class:`~repro.feedback.timing.StrategyFeedback` — adapter that runs the
  legacy timing strategies through the scheduler bit-identically.

Flow integration lives in :class:`repro.flow.stages.FeedbackWeightStage`
and the ``routability-gp`` preset.
"""

from repro.feedback.base import FeedbackCadence, FeedbackUpdate, PlacementFeedback
from repro.feedback.composer import WeightComposer, WeightComposerConfig
from repro.feedback.congestion import CongestionNetWeighting
from repro.feedback.scheduler import (
    CallbackFeedback,
    FeedbackScheduler,
    FeedbackSlot,
    feedback_record,
)
from repro.feedback.timing import StrategyFeedback, TimingCriticalityWeighting

__all__ = [
    "CallbackFeedback",
    "CongestionNetWeighting",
    "FeedbackCadence",
    "FeedbackScheduler",
    "FeedbackSlot",
    "FeedbackUpdate",
    "PlacementFeedback",
    "StrategyFeedback",
    "TimingCriticalityWeighting",
    "WeightComposer",
    "WeightComposerConfig",
    "feedback_record",
]
