"""Writers for the simplified DEF / Verilog / Bookshelf / SDC views.

Each writer emits exactly the subset the corresponding parser in
:mod:`repro.netlist.parsers` understands, so a design round-trips through
disk.  The DEF writer mirrors the ".def Output" step in Fig. 1 of the paper.
"""

from __future__ import annotations

from typing import List

from repro.netlist.design import Design, Instance
from repro.netlist.library import Library


def write_def(design: Design) -> str:
    """Serialize ``design`` (floorplan, placement, connectivity) as DEF text."""
    lines: List[str] = []
    lines.append("VERSION 5.8 ;")
    lines.append(f"DESIGN {design.name} ;")
    lines.append("UNITS DISTANCE MICRONS 1000 ;")
    die = design.die
    lines.append(
        f"DIEAREA ( {_fmt(die.xl)} {_fmt(die.yl)} ) ( {_fmt(die.xh)} {_fmt(die.yh)} ) ;"
    )
    for row in design.rows():
        lines.append(
            f"ROW core_row_{row.index} core {_fmt(row.xl)} {_fmt(row.y)} N "
            f"DO {row.num_sites} BY 1 STEP {_fmt(row.site_width)} 0 ;"
        )

    cells = design.cells
    lines.append(f"COMPONENTS {len(cells)} ;")
    for inst in cells:
        status = "FIXED" if inst.fixed else "PLACED"
        lines.append(
            f"  - {inst.name} {inst.cell.name} + {status} "
            f"( {_fmt(inst.x)} {_fmt(inst.y)} ) {inst.orientation} ;"
        )
    lines.append("END COMPONENTS")

    ports = design.ports
    lines.append(f"PINS {len(ports)} ;")
    for port in ports:
        pin = next(iter(port.cell.pins.values()))
        direction = "INPUT" if pin.is_output else "OUTPUT"
        net_name = _port_net_name(design, port)
        lines.append(
            f"  - {port.name} + NET {net_name} + DIRECTION {direction} "
            f"+ PLACED ( {_fmt(port.x)} {_fmt(port.y)} ) N ;"
        )
    lines.append("END PINS")

    lines.append(f"NETS {len(design.nets)} ;")
    for net in design.nets:
        terms = []
        for pin in net.pins:
            if pin.instance.is_port:
                terms.append(f"( PIN {pin.instance.name} )")
            else:
                terms.append(f"( {pin.instance.name} {pin.lib_pin.name} )")
        lines.append(f"  - {net.name} {' '.join(terms)} ;")
    lines.append("END NETS")
    lines.append("END DESIGN")
    return "\n".join(lines) + "\n"


def write_def_file(design: Design, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(write_def(design))


def write_verilog(design: Design) -> str:
    """Serialize the design's connectivity as structural Verilog.

    Nets attached to a top-level port are emitted under the port's name (a
    Verilog port *is* the signal), so the text round-trips through
    :func:`repro.netlist.parsers.verilog.parse_verilog` with the same net
    count.
    """
    ports = design.ports
    port_names = [p.name for p in ports]
    # Map each net to its Verilog signal name: the attached port's name when
    # a port drives or loads it, the net's own name otherwise.
    signal_name = {net.name: net.name for net in design.nets}
    for pin in design.pins:
        if pin.instance.is_port and pin.net is not None:
            signal_name[pin.net.name] = pin.instance.name

    lines: List[str] = []
    lines.append(f"module {design.name} ({', '.join(port_names)});")
    inputs = [p.name for p in ports if next(iter(p.cell.pins.values())).is_output]
    outputs = [p.name for p in ports if next(iter(p.cell.pins.values())).is_input]
    if inputs:
        lines.append(f"  input {', '.join(inputs)};")
    if outputs:
        lines.append(f"  output {', '.join(outputs)};")
    wires = sorted(
        {name for name in signal_name.values() if name not in set(port_names)}
    )
    if wires:
        lines.append(f"  wire {', '.join(wires)};")
    lines.append("")
    for inst in design.cells:
        connections = []
        for pin in design.pins:
            if pin.instance is inst and pin.net is not None:
                connections.append(f".{pin.lib_pin.name}({signal_name[pin.net.name]})")
        lines.append(f"  {inst.cell.name} {inst.name} ({', '.join(connections)});")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def write_verilog_file(design: Design, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(write_verilog(design))


def write_bookshelf_pl(design: Design) -> str:
    """Serialize current instance positions as a Bookshelf ``.pl`` file."""
    lines = ["UCLA pl 1.0", ""]
    for inst in design.instances:
        suffix = " /FIXED" if inst.fixed else ""
        lines.append(f"{inst.name}\t{_fmt(inst.x)}\t{_fmt(inst.y)}\t: N{suffix}")
    return "\n".join(lines) + "\n"


def write_bookshelf_nodes(design: Design) -> str:
    """Serialize instance footprints as a Bookshelf ``.nodes`` file."""
    cells = design.instances
    terminals = [i for i in cells if i.fixed]
    lines = [
        "UCLA nodes 1.0",
        "",
        f"NumNodes : {len(cells)}",
        f"NumTerminals : {len(terminals)}",
    ]
    for inst in cells:
        suffix = " terminal" if inst.fixed else ""
        lines.append(f"{inst.name}\t{_fmt(inst.width)}\t{_fmt(inst.height)}{suffix}")
    return "\n".join(lines) + "\n"


def write_sdc(design: Design) -> str:
    """Serialize the design's timing constraints as SDC."""
    lines: List[str] = []
    if design.clock_period is not None:
        port_ref = f" [get_ports {design.clock_port}]" if design.clock_port else ""
        lines.append(
            f"create_clock -name {design.clock_name} -period {_fmt(design.clock_period)}{port_ref}"
        )
    for port, delay in sorted(design.input_delays.items()):
        lines.append(
            f"set_input_delay {_fmt(delay)} -clock {design.clock_name} [get_ports {port}]"
        )
    for port, delay in sorted(design.output_delays.items()):
        lines.append(
            f"set_output_delay {_fmt(delay)} -clock {design.clock_name} [get_ports {port}]"
        )
    return "\n".join(lines) + "\n"


def write_lef(library: Library, *, site_width: float = 1.0, row_height: float = 12.0) -> str:
    """Serialize ``library`` masters as simplified LEF."""
    lines: List[str] = []
    lines.append("VERSION 5.8 ;")
    lines.append("SITE core")
    lines.append(f"  SIZE {_fmt(site_width)} BY {_fmt(row_height)} ;")
    lines.append("END core")
    for cell in library:
        if cell.name.startswith("__PORT"):
            continue
        lines.append(f"MACRO {cell.name}")
        lines.append(f"  CLASS {'BLOCK' if cell.is_macro else 'CORE'} ;")
        lines.append(f"  SIZE {_fmt(cell.width)} BY {_fmt(cell.height)} ;")
        for pin in cell.pins.values():
            lines.append(f"  PIN {pin.name}")
            lines.append(f"    DIRECTION {pin.direction.value.upper()} ;")
            if pin.is_clock:
                lines.append("    USE CLOCK ;")
            lines.append(f"    CAPACITANCE {pin.capacitance} ;")
            lines.append(
                f"    PORT RECT {_fmt(pin.offset_x)} {_fmt(pin.offset_y)} "
                f"{_fmt(pin.offset_x)} {_fmt(pin.offset_y)} END"
            )
            lines.append(f"  END {pin.name}")
        lines.append(f"END {cell.name}")
    return "\n".join(lines) + "\n"


def _port_net_name(design: Design, port: Instance) -> str:
    for pin in design.pins:
        if pin.instance is port and pin.net is not None:
            return pin.net.name
    return port.name


def _fmt(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return f"{value:.3f}"
