"""Writer ↔ parser round-trips: a design survives a save/load cycle.

Covers DEF (floorplan + placement + connectivity), Bookshelf (.pl / .nodes),
and SDC (constraints).  Positions are snapped to 1/8 units before writing:
binary fractions with three decimal places print exactly under the writers'
``%.3f`` formatting, so "survives" means *bit-exact*, not approximately.

Parsers rebuild instances in a different order (components before ports),
so the comparison is by name — which is also what any external tool consuming
these files would key on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.benchgen import CircuitSpec, generate_circuit
from repro.netlist.parsers.bookshelf import (
    apply_bookshelf_pl,
    parse_bookshelf_nodes,
    parse_bookshelf_pl,
)
from repro.netlist.parsers.def_ import parse_def
from repro.netlist.parsers.sdc import apply_sdc, parse_sdc
from repro.netlist.writers import (
    write_bookshelf_nodes,
    write_bookshelf_pl,
    write_def,
    write_sdc,
)
from repro.placement.initial import initial_placement


def _snap_eighths(design, seed: int = 11) -> None:
    """Spread the cells and snap to 1/8 units (exact under %.3f printing).

    Ports are snapped too (writing the core arrays directly, since
    ``set_positions`` preserves fixed cells): the generator places them at
    arbitrary boundary fractions that would not survive the writers' three
    printed decimals.
    """
    x, y = initial_placement(design, seed=seed)
    design.set_positions(np.round(x * 8.0) / 8.0, np.round(y * 8.0) / 8.0)
    core = design.core
    core.x[:] = np.round(core.x * 8.0) / 8.0
    core.y[:] = np.round(core.y * 8.0) / 8.0


@pytest.fixture()
def placed_design(library):
    spec = CircuitSpec(
        name="roundtrip",
        num_cells=120,
        sequential_fraction=0.2,
        logic_depth=5,
        num_primary_inputs=6,
        num_primary_outputs=6,
        seed=42,
    )
    design = generate_circuit(spec, library=library)
    _snap_eighths(design)
    return design


def _net_topology(design):
    """Connectivity as a name-keyed, order-preserving structure."""
    topology = {}
    for net in design.nets:
        topology[net.name] = [
            (pin.instance.name, pin.lib_pin.name) for pin in net.pins
        ]
    return topology


class TestDefRoundTrip:
    def test_positions_topology_floorplan_survive(self, placed_design, library):
        text = write_def(placed_design)
        parsed = parse_def(text, library)

        # Floorplan.
        for attr in ("xl", "yl", "xh", "yh"):
            assert getattr(parsed.die, attr) == getattr(placed_design.die, attr)
        assert parsed.site_width == placed_design.site_width
        assert parsed.row_height == placed_design.row_height
        assert parsed.name == placed_design.name

        # Instances: same names, masters, positions (bit-exact), fixedness.
        assert parsed.num_instances == placed_design.num_instances
        for inst in placed_design.instances:
            other = parsed.instance(inst.name)
            assert other.cell.name == inst.cell.name
            assert other.x == inst.x
            assert other.y == inst.y
            assert other.fixed == inst.fixed
            assert other.is_port == inst.is_port

        # Net topology: same nets, same pins in the same connection order
        # (the order fixes driver/sink semantics for the timing graph).
        assert _net_topology(parsed) == _net_topology(placed_design)

    def test_roundtrip_is_stable(self, placed_design, library):
        """write(parse(write(d))) == write(d): the DEF view is a fixpoint."""
        once = write_def(placed_design)
        twice = write_def(parse_def(once, library))
        assert once == twice

    def test_hpwl_preserved(self, placed_design, library):
        parsed = parse_def(write_def(placed_design), library)
        assert parsed.total_hpwl() == placed_design.total_hpwl()


class TestBookshelfRoundTrip:
    def test_pl_positions_survive(self, placed_design, library):
        placements = parse_bookshelf_pl(write_bookshelf_pl(placed_design))
        assert len(placements) == placed_design.num_instances
        for inst in placed_design.instances:
            x, y, fixed = placements[inst.name]
            assert x == inst.x
            assert y == inst.y
            assert fixed == inst.fixed

    def test_pl_applies_onto_fresh_copy(self, placed_design, library):
        text = write_bookshelf_pl(placed_design)
        fresh = generate_circuit(
            CircuitSpec(
                name="roundtrip",
                num_cells=120,
                sequential_fraction=0.2,
                logic_depth=5,
                num_primary_inputs=6,
                num_primary_outputs=6,
                seed=42,
            ),
            library=library,
        )
        applied = apply_bookshelf_pl(fresh, parse_bookshelf_pl(text))
        assert applied == fresh.num_movable
        # Fixed instances (ports) are deliberately skipped by apply, so the
        # comparison covers the movable cells.
        movable = fresh.core.movable_index
        fx, fy = fresh.positions()
        px, py = placed_design.positions()
        np.testing.assert_array_equal(fx[movable], px[movable])
        np.testing.assert_array_equal(fy[movable], py[movable])

    def test_nodes_footprints_survive(self, placed_design):
        rows = parse_bookshelf_nodes(write_bookshelf_nodes(placed_design))
        assert len(rows) == placed_design.num_instances
        by_name = {name: (w, h, term) for name, w, h, term in rows}
        for inst in placed_design.instances:
            width, height, terminal = by_name[inst.name]
            assert width == inst.width
            assert height == inst.height
            assert terminal == inst.fixed


class TestSdcRoundTrip:
    def test_constraints_survive(self, placed_design):
        constraints = parse_sdc(write_sdc(placed_design))
        assert constraints.clock_period is not None
        # %.3f formatting bounds the error; the generator's period is an
        # arbitrary float, so equality is up to the printed precision.
        assert constraints.clock_period == pytest.approx(
            placed_design.clock_period, abs=5e-4
        )
        assert constraints.clock_port == placed_design.clock_port
        assert set(constraints.input_delays) == set(placed_design.input_delays)
        assert set(constraints.output_delays) == set(placed_design.output_delays)

        fresh = generate_circuit(
            CircuitSpec(
                name="roundtrip", num_cells=120, sequential_fraction=0.2,
                logic_depth=5, num_primary_inputs=6, num_primary_outputs=6,
                seed=42,
            )
        )
        apply_sdc(fresh, constraints)
        assert fresh.clock_period == pytest.approx(
            placed_design.clock_period, abs=5e-4
        )
