"""The six contract-lint rules.

Each rule is a callable ``rule(ctx) -> list[Finding]`` over one parsed
module (:class:`~repro.analysis.engine.ModuleContext`); repo-specific
registries live in :mod:`repro.analysis.contracts`.  Rules are registered
into :data:`RULES` via :func:`register_rule` so the engine, the CLI's rule
listing, and the fixture tests all iterate the same set.

Static-analysis honesty: these checks are *syntactic*.  They cannot prove
an array is float (so ``kernel-purity`` bans every non-min/max ``ufunc.at``
in worker kernels, integer or not) and they cannot see allocation hidden
behind operators (``a * b`` temporaries pass the ``alloc`` rule; only named
constructor/ufunc calls are enforced).  The pragma escape hatch plus the
bitwise property tests cover what the AST cannot.
"""

from __future__ import annotations

import ast
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis import contracts
from repro.analysis.findings import Finding

Rule = Callable[["ModuleContext"], List[Finding]]

RULES: Dict[str, Rule] = {}
RULE_DESCRIPTIONS: Dict[str, str] = {}


def register_rule(rule_id: str, description: str) -> Callable[[Rule], Rule]:
    def wrap(fn: Rule) -> Rule:
        if rule_id in RULES:
            raise ValueError(f"rule {rule_id!r} already registered")
        RULES[rule_id] = fn
        RULE_DESCRIPTIONS[rule_id] = description
        return fn

    return wrap


def rule_ids() -> Tuple[str, ...]:
    return tuple(sorted(RULES))


# ----------------------------------------------------------------------
# Shared AST helpers
# ----------------------------------------------------------------------
def _attr_chain(node: ast.AST) -> Tuple[str, ...]:
    """Dotted-name chain of a Name/Attribute expression (outermost last).

    ``np.random.default_rng`` -> ("np", "random", "default_rng"); anything
    that is not a plain dotted chain yields ().
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return ()


_NUMPY_NAMES = {"np", "numpy"}


def _is_numpy_call(chain: Tuple[str, ...], name: str) -> bool:
    return len(chain) == 2 and chain[0] in _NUMPY_NAMES and chain[1] == name


def _has_keyword(call: ast.Call, name: str) -> bool:
    return any(kw.arg == name for kw in call.keywords)


def _keyword_value(call: ast.Call, name: str) -> Optional[ast.expr]:
    for kw in call.keywords:
        if kw.arg == name:
            return kw.value
    return None


def _subscript_base_name(node: ast.AST) -> Optional[str]:
    """The root Name of a (possibly nested) subscript target, if any."""
    while isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _decorator_names(fn: ast.AST) -> Set[str]:
    names: Set[str] = set()
    for deco in getattr(fn, "decorator_list", []):
        target = deco.func if isinstance(deco, ast.Call) else deco
        chain = _attr_chain(target)
        if chain:
            names.add(chain[-1])
    return names


def _walk_function_body(fn: ast.AST) -> Iterable[ast.AST]:
    """Walk a function body without descending into nested def/class scopes
    that carry their own contract marking."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _iter_functions(
    tree: ast.Module,
) -> Iterable[Tuple[str, ast.AST]]:
    """Yield ``(qualname, node)`` for every function in the module."""

    def visit(node: ast.AST, prefix: str) -> Iterable[Tuple[str, ast.AST]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{child.name}"
                yield qual, child
                yield from visit(child, f"{qual}.")
            elif isinstance(child, ast.ClassDef):
                yield from visit(child, f"{prefix}{child.name}.")
            elif isinstance(child, (ast.If, ast.Try, ast.With)):
                yield from visit(child, prefix)

    yield from visit(tree, "")


# ----------------------------------------------------------------------
# Rule 1: kernel-purity
# ----------------------------------------------------------------------
@register_rule(
    "kernel-purity",
    "worker kernels may not perform order-sensitive float accumulation, "
    "RNG, time, or I/O (the parent replay owns float scatter-adds)",
)
def check_kernel_purity(ctx: "ModuleContext") -> List[Finding]:
    findings: List[Finding] = []
    for qualname, fn in _iter_functions(ctx.tree):
        if not (_decorator_names(fn) & contracts.KERNEL_DECORATORS):
            continue
        params = [a.arg for a in fn.args.args]
        arrays_param = params[0] if params else None
        for node in _walk_function_body(fn):
            findings.extend(
                _kernel_node_findings(ctx, qualname, node, arrays_param)
            )
    return findings


def _kernel_node_findings(
    ctx: "ModuleContext", qualname: str, node: ast.AST, arrays_param: Optional[str]
) -> List[Finding]:
    out: List[Finding] = []

    def finding(message: str) -> None:
        out.append(ctx.finding("kernel-purity", node, f"{qualname}: {message}"))

    if isinstance(node, ast.Call):
        chain = _attr_chain(node.func)
        # ufunc.at / ufunc.reduceat with an order-sensitive fold.
        if len(chain) >= 2 and chain[-1] in {"at", "reduceat"}:
            ufunc = chain[-2]
            if ufunc not in contracts.ORDER_INDEPENDENT_UFUNCS:
                finding(
                    f"np.{ufunc}.{chain[-1]} is an order-sensitive float fold; "
                    "workers must leave scatter-adds to the parent replay"
                )
        # RNG / nondeterminism / I/O.
        if chain and chain[0] in _NUMPY_NAMES and "random" in chain:
            finding("RNG inside a worker kernel breaks bitwise reproducibility")
        elif chain and chain[0] in contracts.KERNEL_BANNED_MODULES:
            finding(
                f"call into the {chain[0]!r} module makes the kernel "
                "nondeterministic across shard decompositions"
            )
        elif len(chain) == 1 and chain[0] in contracts.KERNEL_BANNED_CALLS:
            finding(f"{chain[0]}() is side-effecting/nondeterministic in a kernel")
        elif len(chain) >= 2 and chain[-1] in contracts.KERNEL_BANNED_CALLS:
            finding(f"{'.'.join(chain)}() is nondeterministic in a kernel")
    elif isinstance(node, ast.AugAssign) and isinstance(
        node.op, (ast.Add, ast.Sub, ast.Mult)
    ):
        target = node.target
        if isinstance(target, ast.Subscript):
            base = _subscript_base_name(target)
            if arrays_param is not None and base == arrays_param:
                out.append(
                    ctx.finding(
                        "kernel-purity",
                        node,
                        f"{qualname}: in-place accumulation into the shared "
                        "array namespace is a cross-shard float fold; write "
                        "disjoint slices or return partials for the parent "
                        "to reduce",
                    )
                )
    return out


# ----------------------------------------------------------------------
# Rule 2: alloc (arena / allocation discipline)
# ----------------------------------------------------------------------
@register_rule(
    "alloc",
    "steady-state GP inner-loop functions may not call allocating NumPy "
    "constructors or out=-less binary ufuncs (stage through the arena)",
)
def check_alloc(ctx: "ModuleContext") -> List[Finding]:
    registered = contracts.STEADY_STATE_FUNCTIONS.get(ctx.repro_path, frozenset())
    findings: List[Finding] = []
    for qualname, fn in _iter_functions(ctx.tree):
        marked = "steady_state" in _decorator_names(fn)
        if not marked and qualname not in registered:
            continue
        for node in _walk_function_body(fn):
            if not isinstance(node, ast.Call):
                continue
            chain = _attr_chain(node.func)
            method = (
                node.func.attr if isinstance(node.func, ast.Attribute) else None
            )
            if method == "astype":
                copy_kw = _keyword_value(node, "copy")
                if not (
                    isinstance(copy_kw, ast.Constant) and copy_kw.value is False
                ):
                    findings.append(
                        ctx.finding(
                            "alloc",
                            node,
                            f"{qualname}: .astype without copy=False always "
                            "copies; cast into a preallocated buffer",
                        )
                    )
                continue
            if method == "copy" and (not chain or chain[0] not in _NUMPY_NAMES):
                findings.append(
                    ctx.finding(
                        "alloc",
                        node,
                        f"{qualname}: .copy() allocates; reuse a buffer with "
                        "np.copyto (or pragma with a reason)",
                    )
                )
                continue
            if not chain:
                continue
            if (
                len(chain) == 2
                and chain[0] in _NUMPY_NAMES
                and chain[1] in contracts.ALLOCATING_CONSTRUCTORS
            ):
                findings.append(
                    ctx.finding(
                        "alloc",
                        node,
                        f"{qualname}: np.{chain[1]} allocates every iteration; "
                        "use an arena buffer (or pragma with a reason)",
                    )
                )
            elif (
                len(chain) == 2
                and chain[0] in _NUMPY_NAMES
                and chain[1] in contracts.OUT_REQUIRED_CALLS
                and not _has_keyword(node, "out")
            ):
                findings.append(
                    ctx.finding(
                        "alloc",
                        node,
                        f"{qualname}: np.{chain[1]} without out= allocates a "
                        "fresh result array; stage it through a reused buffer",
                    )
                )
    return findings


# ----------------------------------------------------------------------
# Rule 3: shm-unlink (shared-memory lifecycle)
# ----------------------------------------------------------------------
_CLEANUP_ATTRS = {"unlink", "close", "_release_segment"}


@register_rule(
    "shm-unlink",
    "every SharedMemory(create=True) must reach unlink() on all exit paths "
    "(try/finally, context manager, or ExitStack)",
)
def check_shm_lifecycle(ctx: "ModuleContext") -> List[Finding]:
    findings: List[Finding] = []
    _scan_shm_block(ctx, list(ctx.tree.body), try_guard=False, findings=findings)
    return findings


def _creates_shared_memory(node: ast.AST) -> Optional[ast.Call]:
    """The SharedMemory(create=True) call inside ``node``, if any."""
    for sub in ast.walk(node):
        if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if not isinstance(sub, ast.Call):
            continue
        chain = _attr_chain(sub.func)
        if not chain or chain[-1] != "SharedMemory":
            continue
        create = _keyword_value(sub, "create")
        if isinstance(create, ast.Constant) and create.value is True:
            return sub
    return None


def _try_has_cleanup(node: ast.Try) -> bool:
    """True when any handler or the finally block performs unlink cleanup."""
    cleanup_scopes: List[ast.AST] = list(node.finalbody)
    cleanup_scopes.extend(node.handlers)
    for scope in cleanup_scopes:
        for sub in ast.walk(scope):
            if isinstance(sub, ast.Call):
                chain = _attr_chain(sub.func)
                if chain and chain[-1] in _CLEANUP_ATTRS:
                    return True
    return False


def _with_is_managed(item: ast.withitem) -> bool:
    """True when the with-item manages the segment (context manager or
    ExitStack registration)."""
    return _creates_shared_memory(item.context_expr) is not None


def _scan_shm_block(
    ctx: "ModuleContext",
    statements: Sequence[ast.stmt],
    *,
    try_guard: bool,
    findings: List[Finding],
) -> None:
    for index, stmt in enumerate(statements):
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            _scan_shm_block(ctx, stmt.body, try_guard=False, findings=findings)
            continue
        if isinstance(stmt, ast.ClassDef):
            _scan_shm_block(ctx, stmt.body, try_guard=False, findings=findings)
            continue
        if isinstance(stmt, ast.Try):
            guarded = try_guard or _try_has_cleanup(stmt)
            _scan_shm_block(ctx, stmt.body, try_guard=guarded, findings=findings)
            for handler in stmt.handlers:
                _scan_shm_block(
                    ctx, handler.body, try_guard=try_guard, findings=findings
                )
            _scan_shm_block(ctx, stmt.orelse, try_guard=guarded, findings=findings)
            _scan_shm_block(
                ctx, stmt.finalbody, try_guard=try_guard, findings=findings
            )
            continue
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            managed = any(_with_is_managed(item) for item in stmt.items)
            enter_calls = any(
                isinstance(item.context_expr, ast.Call)
                and _attr_chain(item.context_expr.func)
                and _attr_chain(item.context_expr.func)[-1]
                in {"ExitStack", "closing"}
                for item in stmt.items
            )
            _scan_shm_block(
                ctx,
                stmt.body,
                try_guard=try_guard or enter_calls,
                findings=findings,
            )
            if managed:
                continue
        if isinstance(stmt, (ast.If, ast.For, ast.While)):
            _scan_shm_block(ctx, stmt.body, try_guard=try_guard, findings=findings)
            _scan_shm_block(ctx, stmt.orelse, try_guard=try_guard, findings=findings)
            continue

        call = _creates_shared_memory(stmt)
        if call is None:
            continue
        if try_guard:
            continue
        # Creation inside an ExitStack registration (enter_context/callback)
        # is considered managed.
        if _inside_exitstack_registration(stmt, call):
            continue
        # Accept the canonical "create, then immediately guard" shape: the
        # next sibling statement is a try whose handlers/finally clean up.
        next_stmt = statements[index + 1] if index + 1 < len(statements) else None
        if isinstance(next_stmt, ast.Try) and _try_has_cleanup(next_stmt):
            continue
        findings.append(
            ctx.finding(
                "shm-unlink",
                call,
                "SharedMemory(create=True) is not provably unlinked on every "
                "exit path; wrap the segment in try/finally (unlink in the "
                "handler), a context manager, or an ExitStack",
            )
        )


def _inside_exitstack_registration(stmt: ast.stmt, call: ast.Call) -> bool:
    for sub in ast.walk(stmt):
        if not isinstance(sub, ast.Call):
            continue
        chain = _attr_chain(sub.func)
        if chain and chain[-1] in {"enter_context", "callback", "push"}:
            for arg in ast.walk(sub):
                if arg is call:
                    return True
    return False


# ----------------------------------------------------------------------
# Rule 4: ref-parity (reference-path / fast-path pairing)
# ----------------------------------------------------------------------
_REFERENCE_PREFIX = "_reference_"


@register_rule(
    "ref-parity",
    "every _reference_* function needs a fast-path twin in the same scope "
    "and a test that names both, so golden paths cannot drift untested",
)
def check_reference_parity(ctx: "ModuleContext") -> List[Finding]:
    findings: List[Finding] = []
    functions = list(_iter_functions(ctx.tree))
    names_by_scope: Dict[str, Set[str]] = {}
    for qualname, _fn in functions:
        scope, _, name = qualname.rpartition(".")
        names_by_scope.setdefault(scope, set()).add(name)

    for qualname, fn in functions:
        scope, _, name = qualname.rpartition(".")
        if not name.startswith(_REFERENCE_PREFIX):
            continue
        suffix = name[len(_REFERENCE_PREFIX):]
        twins = {suffix, "_" + suffix}
        siblings = names_by_scope.get(scope, set())
        twin = next((t for t in sorted(twins) if t in siblings), None)
        if twin is None:
            findings.append(
                ctx.finding(
                    "ref-parity",
                    fn,
                    f"{qualname}: no fast-path twin ({suffix!r} or "
                    f"{'_' + suffix!r}) in the same scope — the reference "
                    "implementation is orphaned",
                )
            )
            continue
        if ctx.test_identifiers is None:
            continue  # no tests directory supplied; structural check only
        covered = any(
            name in idents and twin in idents
            for idents in ctx.test_identifiers.values()
        )
        if not covered:
            findings.append(
                ctx.finding(
                    "ref-parity",
                    fn,
                    f"{qualname}: no test module names both {name!r} and "
                    f"{twin!r}; add a bitwise parity test so the pair "
                    "cannot drift apart",
                )
            )
    return findings


# ----------------------------------------------------------------------
# Rule 5: layering (import constraints)
# ----------------------------------------------------------------------
@register_rule(
    "layering",
    "engine packages (netlist/placement/timing/route) may not import "
    "repro.flow / repro.cli at module scope; parallel worker modules may "
    "never import the pool engine",
)
def check_layering(ctx: "ModuleContext") -> List[Finding]:
    findings: List[Finding] = []
    sub = ctx.repro_path
    package = sub.split("/", 1)[0] if "/" in sub else ""

    if package in contracts.LAYERED_PACKAGES:
        for node in _module_scope_imports(ctx.tree):
            for target in _imported_modules(node):
                if any(
                    target == banned or target.startswith(banned + ".")
                    for banned in contracts.FORBIDDEN_LAYER_IMPORTS
                ):
                    findings.append(
                        ctx.finding(
                            "layering",
                            node,
                            f"module-scope import of {target!r} from the "
                            f"{package!r} engine layer; the flow/CLI layer "
                            "must depend on engines, never the reverse "
                            "(lazy function-scope imports are the "
                            "sanctioned seam)",
                        )
                    )

    forbidden = contracts.WORKER_MODULE_FORBIDDEN_IMPORTS.get(sub, ())
    if forbidden:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.Import, ast.ImportFrom)):
                continue
            for target in _imported_modules(node):
                if any(
                    target == banned or target.startswith(banned + ".")
                    for banned in forbidden
                ):
                    findings.append(
                        ctx.finding(
                            "layering",
                            node,
                            f"worker kernel module imports {target!r}; "
                            "kernels are resolved by name precisely so "
                            "workers never load the pool engine",
                        )
                    )
    return findings


# ----------------------------------------------------------------------
# Rule 6: raw-timing
# ----------------------------------------------------------------------
@register_rule(
    "raw-timing",
    "raw wall-clock reads (time.perf_counter / time.time / ...) are banned "
    "outside repro.obs and repro.utils.profiling; use repro.obs.clock() "
    "or span() so the unified tracer sees the measurement",
)
def check_raw_timing(ctx: "ModuleContext") -> List[Finding]:
    sub = ctx.repro_path
    if any(sub.startswith(allowed) for allowed in contracts.TIMING_ALLOWED_PATHS):
        return []
    # Resolve how this module names the stdlib time module (plain import,
    # aliased import, and from-imports of the banned calls themselves).
    time_aliases: Set[str] = set()
    from_time_names: Dict[str, str] = {}
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "time":
                    time_aliases.add(alias.asname or alias.name)
        elif isinstance(node, ast.ImportFrom):
            if node.module == "time" and node.level == 0:
                for alias in node.names:
                    if alias.name in contracts.RAW_TIMING_CALLS:
                        from_time_names[alias.asname or alias.name] = alias.name
    if not time_aliases and not from_time_names:
        return []

    findings: List[Finding] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        chain = _attr_chain(node.func)
        if (
            len(chain) == 2
            and chain[0] in time_aliases
            and chain[1] in contracts.RAW_TIMING_CALLS
        ):
            source = f"time.{chain[1]}"
        elif len(chain) == 1 and chain[0] in from_time_names:
            source = f"time.{from_time_names[chain[0]]}"
        else:
            continue
        findings.append(
            ctx.finding(
                "raw-timing",
                node,
                f"{source}() is a raw wall-clock read; route timing through "
                "repro.obs (clock() for durations, span() for traced "
                "sections) so the tracer stays the single timing source",
            )
        )
    return findings


def _module_scope_imports(tree: ast.Module) -> Iterable[ast.stmt]:
    """Import statements at module scope (including under top-level if/try)."""

    def visit(statements: Sequence[ast.stmt]) -> Iterable[ast.stmt]:
        for stmt in statements:
            if isinstance(stmt, (ast.Import, ast.ImportFrom)):
                yield stmt
            elif isinstance(stmt, ast.If):
                yield from visit(stmt.body)
                yield from visit(stmt.orelse)
            elif isinstance(stmt, ast.Try):
                yield from visit(stmt.body)
                for handler in stmt.handlers:
                    yield from visit(handler.body)
                yield from visit(stmt.orelse)
                yield from visit(stmt.finalbody)

    yield from visit(tree.body)


def _imported_modules(node: ast.stmt) -> Iterable[str]:
    if isinstance(node, ast.Import):
        for alias in node.names:
            yield alias.name
    elif isinstance(node, ast.ImportFrom):
        if node.module and node.level == 0:
            yield node.module
