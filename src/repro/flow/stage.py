"""The :class:`FlowStage` protocol and the global stage registry.

A stage is any object with a ``name`` and a ``run(ctx)`` method; stages are
instantiated with their configuration and then executed in sequence by a
:class:`repro.flow.runner.FlowRunner`.  The registry maps stable string names
to stage factories so flows can be described declaratively (CLI, config
files, saved experiment manifests) instead of only in Python code::

    stage = create_stage("legalize")
    runner = FlowRunner([create_stage("global_place", config=cfg), stage, ...])
"""

from __future__ import annotations

from typing import Callable, Dict, List, Protocol, runtime_checkable

from repro.flow.context import FlowContext


@runtime_checkable
class FlowStage(Protocol):
    """One step of a placement flow (global place, legalize, evaluate, ...)."""

    name: str

    def run(self, ctx: FlowContext) -> None:
        """Execute the stage, reading and writing the shared context."""
        ...  # pragma: no cover - protocol body


_STAGE_REGISTRY: Dict[str, Callable[..., FlowStage]] = {}


def register_stage(name: str) -> Callable[[Callable[..., FlowStage]], Callable[..., FlowStage]]:
    """Class decorator registering a stage factory under ``name``."""

    def decorator(factory: Callable[..., FlowStage]) -> Callable[..., FlowStage]:
        if name in _STAGE_REGISTRY:
            raise ValueError(f"Stage {name!r} is already registered")
        _STAGE_REGISTRY[name] = factory
        return factory

    return decorator


def create_stage(name: str, **kwargs: object) -> FlowStage:
    """Instantiate a registered stage by name."""
    try:
        factory = _STAGE_REGISTRY[name]
    except KeyError as exc:
        raise KeyError(
            f"Unknown stage {name!r}; available: {', '.join(sorted(_STAGE_REGISTRY))}"
        ) from exc
    return factory(**kwargs)


def available_stages() -> List[str]:
    """Names of every registered stage, sorted."""
    return sorted(_STAGE_REGISTRY)
