"""Pin-to-pin attraction: the maintained pair set P and the PP objective term.

This module implements Sec. III-A and III-D of the paper:

* :class:`PinPairSet` holds the set ``P`` of attracted pin pairs.  When the
  flow traverses freshly extracted critical paths, each net-arc pin pair on a
  path is added to ``P`` (weight ``w0``) or, if already present, its weight
  is increased by ``w1 * (slack / WNS)`` — so pairs shared by several
  critical paths accumulate weight (the path-sharing effect of Eq. 9).
* :class:`PinAttractionObjective` turns the pair set into the ``beta * PP``
  objective term of Eq. 6/10 with a pluggable distance loss (Eq. 8 for the
  quadratic default), exposing value and per-instance gradients to the
  placement engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.netlist.core import as_core
from repro.core.losses import PairLoss, QuadraticLoss
from repro.timing.graph import TimingGraph
from repro.timing.report import TimingPath


class PinPairSet:
    """The maintained set ``P`` of critical pin pairs with dynamic weights."""

    def __init__(
        self,
        *,
        w0: float = 10.0,
        w1: float = 0.2,
        max_weight: Optional[float] = None,
    ) -> None:
        self.w0 = float(w0)
        self.w1 = float(w1)
        self.max_weight = max_weight
        self._weights: Dict[Tuple[int, int], float] = {}
        # Bumped on every mutation; consumers key derived-array caches on it.
        self._version = 0

    @property
    def version(self) -> int:
        """Monotone counter identifying the current pair-set contents."""
        return self._version

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._weights)

    def __contains__(self, pair: Tuple[int, int]) -> bool:
        return pair in self._weights

    def weight(self, pair: Tuple[int, int]) -> float:
        return self._weights.get(pair, 0.0)

    def items(self) -> Iterable[Tuple[Tuple[int, int], float]]:
        return self._weights.items()

    def clear(self) -> None:
        self._weights.clear()
        self._version += 1

    # ------------------------------------------------------------------
    def update_from_paths(
        self,
        paths: Sequence[TimingPath],
        graph: TimingGraph,
        wns: float,
    ) -> int:
        """Apply the Eq. 9 update for every pin pair on every path.

        Returns the number of *new* pairs added.  ``wns`` is the design's
        worst negative slack at this timing iteration; paths with
        non-negative slack are ignored (positive slacks are disregarded in
        timing metrics, as the paper's Fig. 2 discussion stresses).
        """
        wns = min(wns, -1e-12)
        added = 0
        for path in paths:
            slack = path.slack
            if slack >= 0:
                continue
            share = slack / wns  # in (0, 1], 1 for the most critical path
            for pair in path.pin_pairs(graph):
                if pair not in self._weights:
                    self._weights[pair] = self.w0
                    added += 1
                else:
                    updated = self._weights[pair] + self.w1 * share
                    if self.max_weight is not None:
                        updated = min(updated, self.max_weight)
                    self._weights[pair] = updated
        self._version += 1
        return added

    def set_weights(self, weights: Mapping[Tuple[int, int], float]) -> None:
        """Replace the pair set wholesale (used by smoothed baselines)."""
        self._weights = dict(weights)
        self._version += 1

    def as_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(pin_i, pin_j, weight)`` arrays for vectorized evaluation."""
        if not self._weights:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty.copy(), np.zeros(0, dtype=np.float64)
        pairs = np.array(list(self._weights.keys()), dtype=np.int64)
        weights = np.array(list(self._weights.values()), dtype=np.float64)
        return pairs[:, 0], pairs[:, 1], weights

    def total_weight(self) -> float:
        return float(sum(self._weights.values()))


@dataclass
class AttractionSnapshot:
    """Diagnostics of one objective evaluation (used by tests/experiments)."""

    value: float
    num_pairs: int
    total_weight: float


class PinAttractionObjective:
    """The ``beta * PP(x, y)`` objective term of Eq. 6/10.

    Implements the :class:`repro.placement.objective.ObjectiveTerm` protocol:
    ``weight`` is the paper's ``beta`` multiplier and ``evaluate`` returns the
    raw PP value with per-instance gradients.  The pair set can be updated in
    place between evaluations; an empty set contributes nothing.
    """

    def __init__(
        self,
        design,
        pairs: Optional[PinPairSet] = None,
        *,
        loss: Optional[PairLoss] = None,
        beta: float = 2.5e-5,
    ) -> None:
        self.core = as_core(design)
        self.pairs = pairs if pairs is not None else PinPairSet()
        self.loss = loss if loss is not None else QuadraticLoss()
        self.weight = float(beta)
        arrays = self.core
        self._pin_instance = arrays.pin_instance
        self._pin_offset_x = arrays.pin_offset_x
        self._pin_offset_y = arrays.pin_offset_y
        self._movable_mask = arrays.movable_mask
        self._fixed_mask = ~arrays.movable_mask
        self._num_instances = arrays.num_instances
        self.last_snapshot = AttractionSnapshot(0.0, 0, 0.0)

        # Derived pair arrays and the 2m scatter staging buffer, rebuilt only
        # when the pair set's version changes (timing epochs), so the per-
        # iteration evaluate allocates nothing pair-shaped.  The shared zero
        # gradients cover the empty-set phase before any paths arrive;
        # callers must treat returned gradients as borrowed.
        self._cached_version = -1
        self._pin_i = self._pin_j = self._pair_w = None
        self._inst_i = self._inst_j = None
        self._scatter_idx = None
        self._scatter_w = None
        self._zero_grad_x = np.zeros(self._num_instances, dtype=np.float64)
        self._zero_grad_y = np.zeros(self._num_instances, dtype=np.float64)

    def _pair_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Current pair arrays plus cached instance ids / scatter staging
        (re-derived only when the pair set has been mutated)."""
        if self._cached_version != self.pairs.version:
            pin_i, pin_j, weights = self.pairs.as_arrays()
            self._pin_i, self._pin_j, self._pair_w = pin_i, pin_j, weights
            self._inst_i = self._pin_instance[pin_i]
            self._inst_j = self._pin_instance[pin_j]
            self._scatter_idx = np.concatenate([self._inst_i, self._inst_j])
            self._scatter_w = np.empty(2 * pin_i.size, dtype=np.float64)
            self._cached_version = self.pairs.version
        return self._pin_i, self._pin_j, self._pair_w

    def evaluate(self, x: np.ndarray, y: np.ndarray) -> Tuple[float, np.ndarray, np.ndarray]:
        """Raw PP value and its gradient with respect to instance positions."""
        pin_i, pin_j, weights = self._pair_arrays()
        if pin_i.size == 0:
            self.last_snapshot = AttractionSnapshot(0.0, 0, 0.0)
            return 0.0, self._zero_grad_x, self._zero_grad_y

        inst_i = self._inst_i
        inst_j = self._inst_j
        xi = x[inst_i] + self._pin_offset_x[pin_i]
        yi = y[inst_i] + self._pin_offset_y[pin_i]
        xj = x[inst_j] + self._pin_offset_x[pin_j]
        yj = y[inst_j] + self._pin_offset_y[pin_j]

        value, grad_dx, grad_dy = self.loss.evaluate(xi - xj, yi - yj, weights)

        # d(loss)/d(x_i) = +grad_dx, d(loss)/d(x_j) = -grad_dx (pin offsets are
        # rigid, so pin gradients transfer directly onto their instances).
        # One bincount over the concatenated endpoints reproduces the two
        # sequential np.add.at scatters bit for bit (sequential fold in
        # input order); the concatenation itself stages through the reused
        # 2m buffer (copy + exact sign-bit negation — no rounding).
        m = pin_i.size
        buf = self._scatter_w
        buf[:m] = grad_dx
        np.negative(grad_dx, out=buf[m:])
        grad_x = np.bincount(
            self._scatter_idx, weights=buf, minlength=self._num_instances
        )
        buf[:m] = grad_dy
        np.negative(grad_dy, out=buf[m:])
        grad_y = np.bincount(
            self._scatter_idx, weights=buf, minlength=self._num_instances
        )
        grad_x[self._fixed_mask] = 0.0
        grad_y[self._fixed_mask] = 0.0

        self.last_snapshot = AttractionSnapshot(
            value=value, num_pairs=int(pin_i.size), total_weight=float(weights.sum())
        )
        return value, grad_x, grad_y

    def _reference_evaluate(
        self, x: np.ndarray, y: np.ndarray
    ) -> Tuple[float, np.ndarray, np.ndarray]:
        """Pre-plan evaluation via ``np.add.at`` (bitwise reference for tests)."""
        pin_i, pin_j, weights = self.pairs.as_arrays()
        grad_x = np.zeros(self._num_instances, dtype=np.float64)
        grad_y = np.zeros(self._num_instances, dtype=np.float64)
        if pin_i.size == 0:
            return 0.0, grad_x, grad_y

        inst_i = self._pin_instance[pin_i]
        inst_j = self._pin_instance[pin_j]
        xi = x[inst_i] + self._pin_offset_x[pin_i]
        yi = y[inst_i] + self._pin_offset_y[pin_i]
        xj = x[inst_j] + self._pin_offset_x[pin_j]
        yj = y[inst_j] + self._pin_offset_y[pin_j]

        value, grad_dx, grad_dy = self.loss.evaluate(xi - xj, yi - yj, weights)
        np.add.at(grad_x, inst_i, grad_dx)
        np.add.at(grad_x, inst_j, -grad_dx)
        np.add.at(grad_y, inst_i, grad_dy)
        np.add.at(grad_y, inst_j, -grad_dy)
        grad_x[~self._movable_mask] = 0.0
        grad_y[~self._movable_mask] = 0.0
        return value, grad_x, grad_y

    def gradient_norm(self, x: np.ndarray, y: np.ndarray) -> float:
        """L1 norm of the raw (unscaled) PP gradient; used for beta calibration."""
        _, gx, gy = self.evaluate(x, y)
        return float(np.abs(gx).sum() + np.abs(gy).sum())
