"""Integration tests: the full Efficient-TDP flow, baselines, and weighting schemes."""

import numpy as np
import pytest

from repro.baselines import (
    DifferentiableTDPBaseline,
    DifferentiableTDPConfig,
    DreamPlace4Baseline,
    DreamPlace4Config,
    DreamPlaceBaseline,
)
from repro.benchgen import CircuitSpec, generate_circuit
from repro.core import EfficientTDPConfig, EfficientTDPlacer, ExtractionConfig
from repro.placement import PlacementConfig
from repro.timing import STAEngine
from repro.weighting import MomentumNetWeighting, net_worst_slack, pin_criticality, smooth_pin_pair_weights


@pytest.fixture(scope="module")
def flow_spec():
    return CircuitSpec(
        name="flow_small",
        num_cells=260,
        sequential_fraction=0.2,
        logic_depth=7,
        num_primary_inputs=10,
        num_primary_outputs=10,
        utilization=0.62,
        clock_tightness=0.75,
        seed=11,
    )


def make_design(spec):
    return generate_circuit(spec)


FAST_SCHEDULE = dict(
    max_iterations=220,
    timing_start_iteration=90,
    min_timing_iterations=60,
    timing_update_interval=10,
)


@pytest.fixture(scope="module")
def baseline_result(flow_spec):
    return DreamPlaceBaseline(
        make_design(flow_spec), PlacementConfig(max_iterations=220, seed=0)
    ).run()


@pytest.fixture(scope="module")
def ours_result(flow_spec):
    config = EfficientTDPConfig(**FAST_SCHEDULE)
    return EfficientTDPlacer(make_design(flow_spec), config).run()


class TestWeightingSchemes:
    def test_net_worst_slack_shape(self, fresh_small_design):
        engine = STAEngine(fresh_small_design)
        result = engine.update_timing()
        worst = net_worst_slack(fresh_small_design, result)
        assert worst.shape == (fresh_small_design.num_nets,)

    def test_momentum_weighting_increases_critical_weights(self, fresh_small_design):
        engine = STAEngine(fresh_small_design)
        result = engine.update_timing()
        weighting = MomentumNetWeighting()
        weights = np.ones(fresh_small_design.num_nets)
        updated = weighting.update(fresh_small_design, result, weights)
        assert np.all(updated >= weights - 1e-12)
        assert updated.max() > 1.0
        assert updated.max() <= weighting.max_weight

    def test_momentum_weighting_ignores_clean_nets(self, fresh_small_design):
        engine = STAEngine(fresh_small_design)
        result = engine.update_timing()
        worst = net_worst_slack(fresh_small_design, result)
        weighting = MomentumNetWeighting()
        weights = np.ones(fresh_small_design.num_nets)
        updated = weighting.update(fresh_small_design, result, weights)
        clean = np.isfinite(worst) & (worst >= 0)
        assert np.allclose(updated[clean], 1.0)

    def test_pin_criticality_range(self, fresh_small_design):
        engine = STAEngine(fresh_small_design)
        result = engine.update_timing()
        crit = pin_criticality(result)
        assert np.all(crit >= 0) and np.all(crit <= 1)

    def test_smooth_pin_pair_weights_only_net_arcs(self, fresh_small_design):
        engine = STAEngine(fresh_small_design)
        result = engine.update_timing()
        weights = smooth_pin_pair_weights(fresh_small_design, engine.graph, result)
        assert weights
        net_arc_pairs = {
            (a.from_pin, a.to_pin) for a in engine.graph.arcs if a.is_net_arc
        }
        assert set(weights) <= net_arc_pairs


class TestEfficientTDPFlow:
    def test_produces_legal_evaluated_placement(self, ours_result):
        evaluation = ours_result.evaluation
        assert evaluation.overlap_area == pytest.approx(0.0, abs=1e-6)
        assert evaluation.out_of_die_cells == 0
        assert ours_result.num_pin_pairs > 0
        assert ours_result.extraction_stats, "timing iterations never ran"

    def test_improves_tns_over_wirelength_baseline(self, ours_result, baseline_result):
        assert ours_result.evaluation.tns >= baseline_result.evaluation.tns

    def test_hpwl_not_destroyed(self, ours_result, baseline_result):
        assert ours_result.evaluation.hpwl <= 1.15 * baseline_result.evaluation.hpwl

    def test_history_records_timing_trajectory(self, ours_result):
        assert "tns" in ours_result.history.extra
        assert "wns" in ours_result.history.extra
        assert len(ours_result.history.extra["tns"]) >= 2

    def test_profiler_has_timing_sections(self, ours_result):
        breakdown = ours_result.profiler.breakdown()
        assert breakdown.get("timing_analysis", 0) > 0
        assert breakdown.get("weighting", 0) >= 0
        assert breakdown.get("legalization", 0) > 0

    def test_summary_keys(self, ours_result):
        summary = ours_result.summary()
        assert {"design", "hpwl", "tns", "wns", "runtime_sec", "pin_pairs"} <= set(summary)

    def test_literal_beta_mode(self, flow_spec):
        config = EfficientTDPConfig(beta_mode="literal", beta=1e-4, **FAST_SCHEDULE)
        result = EfficientTDPlacer(make_design(flow_spec), config).run()
        assert result.evaluation.hpwl > 0

    def test_report_timing_extraction_mode_runs(self, flow_spec):
        config = EfficientTDPConfig(
            extraction=ExtractionConfig(mode="report_timing", max_endpoints=20),
            **FAST_SCHEDULE,
        )
        result = EfficientTDPlacer(make_design(flow_spec), config).run()
        assert result.evaluation.hpwl > 0

    def test_linear_loss_ablation_runs(self, flow_spec):
        config = EfficientTDPConfig(loss="linear", **FAST_SCHEDULE)
        result = EfficientTDPlacer(make_design(flow_spec), config).run()
        assert result.evaluation.tns <= 0


class TestBaselines:
    def test_dreamplace4_improves_tns(self, flow_spec, baseline_result):
        config = DreamPlace4Config(
            max_iterations=220,
            timing_start_iteration=90,
            min_timing_iterations=60,
            timing_update_interval=10,
        )
        result = DreamPlace4Baseline(make_design(flow_spec), config).run()
        assert result.evaluation.tns >= baseline_result.evaluation.tns
        assert result.evaluation.overlap_area == pytest.approx(0.0, abs=1e-6)

    def test_differentiable_tdp_runs_and_is_legal(self, flow_spec):
        config = DifferentiableTDPConfig(
            max_iterations=220,
            timing_start_iteration=90,
            min_timing_iterations=60,
            timing_update_interval=10,
        )
        result = DifferentiableTDPBaseline(make_design(flow_spec), config).run()
        assert result.evaluation.overlap_area == pytest.approx(0.0, abs=1e-6)
        assert "tns" in result.history.extra

    def test_wirelength_baseline_does_less_work(self, baseline_result, ours_result):
        # The wirelength-only flow runs no timing analysis and converges in
        # fewer iterations than the timing-driven flow.  (Wall-clock is too
        # noisy to assert directly at this design size.)
        assert baseline_result.profiler.total("timing_analysis") == 0.0
        assert ours_result.profiler.total("timing_analysis") > 0.0

    def test_baseline_records_timing_when_asked(self, flow_spec):
        flow = DreamPlaceBaseline(
            make_design(flow_spec),
            PlacementConfig(max_iterations=120, seed=0),
            record_timing_every=40,
        )
        result = flow.run()
        assert "tns" in result.history.extra
