"""Fixture: a properly paired and tested _reference_* implementation."""

import numpy as np


def _reference_fold(values):
    return float(np.sum(values))


def fold(values):
    return float(np.sum(values))
