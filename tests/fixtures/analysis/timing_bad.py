"""raw-timing fixture: every banned spelling of a wall-clock read."""

import time
import time as clockmod
from time import monotonic as mono
from time import perf_counter

def measure():
    t0 = time.perf_counter()
    t1 = time.time()
    t2 = clockmod.process_time()
    t3 = perf_counter()
    t4 = mono()
    return t0 + t1 + t2 + t3 + t4
