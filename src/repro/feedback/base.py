"""The placement-feedback protocol: one seam for every in-loop signal.

Global placement is a fixed-point iteration; everything "timing-driven",
"routability-driven", or "X-driven" about a flow is a *feedback* folded into
that iteration: periodically analyze the current positions, derive per-net
weight adjustments (or extra objective terms), and let the placer keep
going.  Before this module the repository had two parallel code paths for
that idea — timing strategies wired through raw placer callbacks, and a
separate post-place inflation loop — which could not compose.

A :class:`PlacementFeedback` is the common shape:

* :meth:`~PlacementFeedback.prepare` — build analysis state (STA engines,
  congestion estimators) before the placer exists; called once per flow run
  with the :class:`~repro.flow.context.FlowContext`.
* :meth:`~PlacementFeedback.attach` — hook objective terms onto a freshly
  constructed placer (pin-pair attraction does; net-weighting feedbacks
  don't need to).
* :meth:`~PlacementFeedback.update` — the per-firing body: analyze the
  current ``(x, y)`` and return a :class:`FeedbackUpdate` carrying an
  optional per-net *weight proposal* (a multiplicative boost, ``>= 1``) plus
  scalar metrics for the trajectory.  Feedbacks that mutate the placer
  directly (legacy strategies, raw callbacks) return proposal-free updates.
* :meth:`~PlacementFeedback.finalize` — publish summary state once the
  placement loop ends.

When a feedback fires is not its business: cadence (warmup, every-K,
cooldown) belongs to :class:`FeedbackCadence` and the
:class:`~repro.feedback.scheduler.FeedbackScheduler`, and merging several
proposals into one weight vector belongs to the
:class:`~repro.feedback.composer.WeightComposer` — so a feedback component
only ever answers "what does my signal say about each net *right now*".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Optional

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.placement.global_placer import GlobalPlacer

__all__ = ["FeedbackCadence", "FeedbackUpdate", "PlacementFeedback"]


@dataclass(frozen=True)
class FeedbackCadence:
    """When a feedback slot fires within the placement iteration stream.

    A slot fires at iteration ``i`` when ``i >= start`` (warmup over),
    ``(i - start) % interval == 0`` (every K iterations), and ``i <= end``
    when a cooldown boundary is set.  The default fires every iteration,
    which is the raw-callback compatibility cadence.
    """

    start: int = 0
    interval: int = 1
    end: Optional[int] = None

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError("cadence start must be non-negative")
        if self.interval < 1:
            raise ValueError("cadence interval must be at least 1")
        if self.end is not None and self.end < self.start:
            raise ValueError("cadence end must not precede start")

    def fires(self, iteration: int) -> bool:
        if iteration < self.start:
            return False
        if self.end is not None and iteration > self.end:
            return False
        return (iteration - self.start) % self.interval == 0


@dataclass
class FeedbackUpdate:
    """What one feedback firing produced.

    ``proposal`` is a per-net multiplicative weight boost (``>= 1``; ``1``
    means "no opinion on this net") destined for the
    :class:`~repro.feedback.composer.WeightComposer`, or ``None`` for
    observation-only / self-applying feedbacks.  ``metrics`` are scalar
    diagnostics recorded into the feedback trajectory (``wns``,
    ``peak_overflow``, ...).
    """

    proposal: Optional[np.ndarray] = None
    metrics: Dict[str, float] = field(default_factory=dict)


class PlacementFeedback:
    """Base class (and de-facto protocol) of placement feedback components.

    Subclasses override :meth:`update`; the lifecycle hooks default to
    no-ops so simple feedbacks stay small.  ``resets_momentum`` tells the
    scheduler whether an applied weight change from this feedback
    invalidates the optimizer's Nesterov momentum.
    """

    name: str = "feedback"
    resets_momentum: bool = True

    def prepare(self, ctx: Any) -> None:  # pragma: no cover - default no-op
        """Build analysis state before the placer exists."""

    def attach(self, placer: "GlobalPlacer") -> None:  # pragma: no cover
        """Hook objective terms onto a freshly constructed placer."""

    def update(
        self,
        placer: "GlobalPlacer",
        iteration: int,
        x: np.ndarray,
        y: np.ndarray,
    ) -> Optional[FeedbackUpdate]:
        raise NotImplementedError

    def finalize(self, placer: "GlobalPlacer") -> None:  # pragma: no cover
        """Publish summary state once the placement loop ends."""
