"""Contract-lint driver: file discovery, rule dispatch, pragma application.

``run_lint(paths)`` parses every ``.py`` file under the given paths, runs
each registered rule over each module, applies ``# contract: allow(...)``
pragmas (valid pragmas suppress; reasonless pragmas emit ``bad-pragma``
findings and suppress nothing), and returns a :class:`LintReport`.

The CLI contract (shared by ``python -m repro.analysis`` and
``repro lint-contracts``):

* exit 0 — clean (no unsuppressed findings)
* exit 1 — at least one unsuppressed finding
* exit 2 — usage error (no such path, not a .py file, unknown rule)
"""

from __future__ import annotations

import argparse
import ast
import json
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set

from repro.analysis import contracts
from repro.analysis.findings import Finding, LintReport
from repro.analysis.pragmas import (
    BAD_PRAGMA_RULE,
    Pragma,
    matching_pragma,
    scan_pragmas,
)
from repro.analysis.rules import RULE_DESCRIPTIONS, RULES, rule_ids


@dataclass
class ModuleContext:
    """Everything a rule needs to know about one parsed module."""

    path: str  # display path (as discovered)
    repro_path: str  # path suffix after the repro package root ("" if outside)
    tree: ast.Module
    source_lines: List[str] = field(default_factory=list)
    pragmas: Dict[int, Pragma] = field(default_factory=dict)
    # test-module name -> set of identifiers appearing in that module; None
    # when no tests directory was supplied (ref-parity then only checks
    # structure, not coverage).
    test_identifiers: Optional[Dict[str, Set[str]]] = None

    def finding(self, rule: str, node: ast.AST, message: str) -> Finding:
        return Finding(
            file=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=rule,
            message=message,
        )


def _discover_py_files(paths: Sequence[str]) -> List[Path]:
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise FileNotFoundError(f"no such path: {raw}")
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
        else:
            raise ValueError(f"not a Python file or directory: {raw}")
    # De-duplicate while preserving order (overlapping path arguments).
    seen: Set[Path] = set()
    unique: List[Path] = []
    for f in files:
        resolved = f.resolve()
        if resolved not in seen:
            seen.add(resolved)
            unique.append(f)
    return unique


def collect_test_identifiers(tests_dir: Path) -> Dict[str, Set[str]]:
    """Per-test-module identifier sets, for the ref-parity coverage check.

    Identifiers are every Name/Attribute/string-constant token in the test
    module's AST, so ``wl._reference_directional(...)``, ``getattr(obj,
    "_reference_splat")`` and plain calls all count as naming the function.
    """
    out: Dict[str, Set[str]] = {}
    if not tests_dir.is_dir():
        return out
    for test_file in sorted(tests_dir.rglob("test_*.py")):
        try:
            tree = ast.parse(test_file.read_text(encoding="utf-8"))
        except SyntaxError:
            continue
        idents: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Name):
                idents.add(node.id)
            elif isinstance(node, ast.Attribute):
                idents.add(node.attr)
            elif isinstance(node, ast.Constant) and isinstance(node.value, str):
                idents.add(node.value)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                idents.add(node.name)
        out[str(test_file)] = idents
    return out


def _apply_pragmas(ctx: ModuleContext, findings: List[Finding]) -> List[Finding]:
    """Suppress findings with valid pragmas; flag invalid/unused-bad pragmas."""
    out: List[Finding] = []
    for finding in findings:
        pragma = matching_pragma(ctx.pragmas, finding.line, finding.rule)
        if pragma is not None and pragma.valid:
            finding.suppressed = True
            finding.reason = pragma.reason
        out.append(finding)
    # Reasonless pragmas are always reported — they look like waivers but
    # suppress nothing, which is worse than either state.
    for lineno in sorted(ctx.pragmas):
        pragma = ctx.pragmas[lineno]
        if not pragma.valid:
            out.append(
                Finding(
                    file=ctx.path,
                    line=lineno,
                    rule=BAD_PRAGMA_RULE,
                    message=(
                        "contract pragma without reason= suppresses nothing; "
                        "add reason=<why this is safe> or remove it"
                    ),
                )
            )
    return out


def run_lint(
    paths: Sequence[str],
    *,
    tests_dir: Optional[str] = None,
    rules: Optional[Sequence[str]] = None,
) -> LintReport:
    """Run the contract rules over every ``.py`` file under ``paths``."""
    selected = list(rules) if rules is not None else list(rule_ids())
    unknown = [r for r in selected if r not in RULES]
    if unknown:
        raise KeyError(f"unknown rule(s): {', '.join(unknown)}")

    test_identifiers: Optional[Dict[str, Set[str]]] = None
    if tests_dir is not None:
        test_identifiers = collect_test_identifiers(Path(tests_dir))

    report = LintReport(paths=list(paths))
    for py_file in _discover_py_files(paths):
        display = str(py_file)
        source = py_file.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=display)
        except SyntaxError as exc:
            report.findings.append(
                Finding(
                    file=display,
                    line=exc.lineno or 1,
                    rule="syntax-error",
                    message=f"cannot parse: {exc.msg}",
                )
            )
            report.files_scanned += 1
            continue
        source_lines = source.splitlines()
        ctx = ModuleContext(
            path=display,
            repro_path=contracts.repro_subpath(py_file.as_posix()),
            tree=tree,
            source_lines=source_lines,
            pragmas=scan_pragmas(source_lines),
            test_identifiers=test_identifiers,
        )
        module_findings: List[Finding] = []
        for rule_id in selected:
            module_findings.extend(RULES[rule_id](ctx))
        module_findings.sort(key=lambda f: (f.line, f.col, f.rule))
        report.findings.extend(_apply_pragmas(ctx, module_findings))
        report.files_scanned += 1
    return report


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def build_parser(prog: str = "repro-lint-contracts") -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=prog,
        description=(
            "Contract linter: kernel bit-exactness, arena allocation "
            "discipline, shared-memory lifecycle, reference parity, "
            "import layering, and raw-timing discipline."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--tests-dir",
        default="tests",
        help=(
            "tests directory cross-checked by the ref-parity rule "
            "(pass an empty string to skip the coverage check)"
        ),
    )
    parser.add_argument(
        "--rule",
        action="append",
        dest="rules",
        metavar="RULE",
        help="run only this rule (repeatable); default: all rules",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="write the full findings report as JSON ('-' for stdout)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list rule ids with descriptions and exit",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress per-finding text output (exit code still reflects findings)",
    )
    return parser


def _emit_report(report: LintReport, args: argparse.Namespace) -> None:
    if args.json is not None:
        payload = json.dumps(report.as_dict(), indent=2, sort_keys=True)
        if args.json == "-":
            sys.stdout.write(payload + "\n")
        else:
            Path(args.json).write_text(payload + "\n", encoding="utf-8")
    if args.quiet:
        return
    stream = sys.stdout if args.json != "-" else sys.stderr
    for finding in report.findings:
        print(finding.format(), file=stream)
        if not finding.suppressed and finding.rule != BAD_PRAGMA_RULE:
            print(f"    suppress with: {finding.hint}", file=stream)
    bad = len(report.unsuppressed)
    print(
        f"contract-lint: {report.files_scanned} file(s) scanned, "
        f"{len(report.findings)} finding(s), {bad} unsuppressed",
        file=stream,
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        # argparse exits 2 on usage errors, 0 on --help; preserve both.
        return int(exc.code or 0)

    if args.list_rules:
        for rule_id in rule_ids():
            print(f"{rule_id}: {RULE_DESCRIPTIONS[rule_id]}")
        return 0

    tests_dir = args.tests_dir if args.tests_dir else None
    try:
        report = run_lint(args.paths, tests_dir=tests_dir, rules=args.rules)
    except (FileNotFoundError, ValueError, KeyError) as exc:
        message = exc.args[0] if exc.args else str(exc)
        print(f"contract-lint: error: {message}", file=sys.stderr)
        return 2

    _emit_report(report, args)
    return 1 if report.unsuppressed else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
