#!/usr/bin/env python3
"""Quickstart: timing-driven placement of a synthetic design in ~30 lines.

Generates a small superblue-like design and runs two flow presets through
the pipeline API (`repro.flow.build_flow`): the wirelength-only DREAMPlace
baseline and the paper's Efficient-TDP flow (wirelength-driven global
placement, periodic critical path extraction, pin-to-pin attraction with the
quadratic loss, Abacus legalization), then prints HPWL / TNS / WNS side by
side.

Run:  python examples/quickstart.py
      (or, with the package installed:  repro compare sb_mini_18)
"""

from repro import build_flow, load_benchmark


def main() -> None:
    name = "sb_mini_18"

    # Wirelength-only baseline (DREAMPlace-style).
    baseline = build_flow("dreamplace", max_iterations=450, seed=1).run(
        load_benchmark(name)
    )

    # The paper's flow: path-level timing feedback + pin-to-pin attraction.
    design = load_benchmark(name)
    result = build_flow("efficient_tdp").run(design)

    print(f"design: {name}  ({len(design.cells)} cells, "
          f"clock period {design.clock_period:.0f} ps)")
    print(f"{'metric':<10}{'DREAMPlace':>15}{'Efficient-TDP':>16}")
    for metric in ("hpwl", "tns", "wns"):
        base_value = getattr(baseline.evaluation, metric)
        ours_value = getattr(result.evaluation, metric)
        print(f"{metric:<10}{base_value:>15.1f}{ours_value:>16.1f}")
    print(f"pin pairs attracted: {len(result.context.pin_pairs)}")
    print(f"timing iterations:   {len(result.context.extraction_stats)}")
    print(f"runtime:             {result.runtime_seconds:.1f} s "
          f"(baseline {baseline.runtime_seconds:.1f} s)")


if __name__ == "__main__":
    main()
