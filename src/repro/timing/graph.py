"""Pin-level timing graph.

The graph follows the standard STA formulation the paper relies on
(Sec. II-B): nodes are design pins, directed edges ("timing arcs") are either

* **net arcs** — from a net's driver pin to each of its sink pins, whose delay
  is the Elmore wire delay and therefore depends on the placement, or
* **cell arcs** — from an input pin to an output pin of the same instance,
  whose delay follows the library characterization and the driven load.

Clock distribution is treated as ideal: nets feeding flip-flop clock pins are
excluded from the data graph and every clock pin gets arrival time zero, so
register-to-register paths start at clock-to-q arcs and end at D pins.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.netlist.design import Design, PinRef
from repro.netlist.library import TimingArcSpec


class ArcKind(enum.IntEnum):
    """Type of a timing arc."""

    CELL = 0
    NET = 1


def csr_gather(
    offsets: np.ndarray, sorted_items: np.ndarray, idx: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Concatenate CSR ranges ``[offsets[i], offsets[i+1])`` for ``i in idx``.

    Returns ``(flat_items, lengths)``: the payload of every requested row
    back to back, and each row's count (possibly zero).
    """
    starts = offsets[idx]
    lengths = offsets[idx + 1] - starts
    total = int(lengths.sum())
    if total == 0:
        return np.zeros(0, dtype=sorted_items.dtype), lengths
    cum = np.cumsum(lengths) - lengths
    positions = np.repeat(starts - cum, lengths) + np.arange(total, dtype=np.int64)
    return sorted_items[positions], lengths


@dataclass(frozen=True)
class Arc:
    """One timing arc (edge) of the graph."""

    index: int
    from_pin: int
    to_pin: int
    kind: ArcKind
    net_index: int = -1
    spec: Optional[TimingArcSpec] = None

    @property
    def is_net_arc(self) -> bool:
        return self.kind is ArcKind.NET


class TimingGraph:
    """Levelized timing DAG over the pins of a finalized design."""

    def __init__(self, design: Design) -> None:
        if not design.finalized:
            raise ValueError("TimingGraph requires a finalized design")
        self.design = design
        self.num_pins = design.num_pins

        self.clock_nets: Set[int] = self._identify_clock_nets()
        self.arcs: List[Arc] = []
        # Flat arrays for vectorized delay evaluation / propagation, built
        # from primitive accumulators during construction (a single
        # list->array conversion instead of per-arc attribute passes).
        self._from_acc: List[int] = []
        self._to_acc: List[int] = []
        self._kind_acc: List[int] = []
        self._net_acc: List[int] = []
        self._build_arcs()
        self.arc_from = np.asarray(self._from_acc, dtype=np.int64)
        self.arc_to = np.asarray(self._to_acc, dtype=np.int64)
        self.arc_kind = np.asarray(self._kind_acc, dtype=np.int8)
        self.arc_net = np.asarray(self._net_acc, dtype=np.int64)
        del self._from_acc, self._to_acc, self._kind_acc, self._net_acc

        self._build_adjacency()
        self.level = self._levelize()
        self.max_level = int(self.level.max()) if self.num_pins else 0

        self.startpoints = self._find_startpoints()
        self.endpoints = self._find_endpoints()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _identify_clock_nets(self) -> Set[int]:
        design = self.design
        clock_nets: Set[int] = set()
        for net in design.nets:
            if any(p.lib_pin.is_clock for p in net.sinks):
                clock_nets.add(net.index)
                continue
            driver = net.driver
            if (
                driver is not None
                and driver.instance.is_port
                and design.clock_port is not None
                and driver.instance.name == design.clock_port
            ):
                clock_nets.add(net.index)
        return clock_nets

    def _add_arc(
        self,
        from_pin: int,
        to_pin: int,
        kind: ArcKind,
        net_index: int = -1,
        spec: Optional[TimingArcSpec] = None,
    ) -> None:
        self.arcs.append(
            Arc(
                index=len(self.arcs),
                from_pin=from_pin,
                to_pin=to_pin,
                kind=kind,
                net_index=net_index,
                spec=spec,
            )
        )
        self._from_acc.append(from_pin)
        self._to_acc.append(to_pin)
        self._kind_acc.append(int(kind))
        self._net_acc.append(net_index)

    def _build_arcs(self) -> None:
        design = self.design
        # Net arcs (excluding clock nets).
        for net in design.nets:
            if net.index in self.clock_nets:
                continue
            driver = net.driver
            if driver is None:
                continue
            for sink in net.sinks:
                self._add_arc(driver.index, sink.index, ArcKind.NET, net_index=net.index)
        # Cell arcs.  Group pins by owning instance in a single pass first so
        # arc construction stays linear in design size.
        pins_by_instance: Dict[str, Dict[str, PinRef]] = {}
        for pin in design.pins:
            pins_by_instance.setdefault(pin.instance.name, {})[pin.lib_pin.name] = pin
        for inst in design.instances:
            if inst.is_port:
                continue
            pin_map = pins_by_instance.get(inst.name, {})
            for spec in inst.cell.arcs:
                from_pin = pin_map.get(spec.from_pin)
                to_pin = pin_map.get(spec.to_pin)
                if from_pin is None or to_pin is None:
                    continue
                self._add_arc(from_pin.index, to_pin.index, ArcKind.CELL, spec=spec)

    def _build_adjacency(self) -> None:
        """CSR fanin/fanout adjacency: arc indices grouped by to/from pin."""
        num_arcs = len(self.arcs)
        fanin_counts = np.bincount(self.arc_to, minlength=self.num_pins) if num_arcs else np.zeros(self.num_pins, dtype=np.int64)
        fanout_counts = np.bincount(self.arc_from, minlength=self.num_pins) if num_arcs else np.zeros(self.num_pins, dtype=np.int64)
        self.fanin_offsets = np.concatenate([[0], np.cumsum(fanin_counts)]).astype(np.int64)
        self.fanout_offsets = np.concatenate([[0], np.cumsum(fanout_counts)]).astype(np.int64)
        self.fanin_arcs = np.argsort(self.arc_to, kind="stable").astype(np.int64) if num_arcs else np.zeros(0, dtype=np.int64)
        self.fanout_arcs = np.argsort(self.arc_from, kind="stable").astype(np.int64) if num_arcs else np.zeros(0, dtype=np.int64)

    def fanin_of(self, pin: int) -> np.ndarray:
        """Indices of arcs whose sink is ``pin``."""
        return self.fanin_arcs[self.fanin_offsets[pin]: self.fanin_offsets[pin + 1]]

    def fanout_of(self, pin: int) -> np.ndarray:
        """Indices of arcs whose source is ``pin``."""
        return self.fanout_arcs[self.fanout_offsets[pin]: self.fanout_offsets[pin + 1]]

    def _levelize(self) -> np.ndarray:
        """Topological levels via wave-parallel Kahn's algorithm; raises on cycles.

        Each wave pops every pin whose indegree reached zero and relaxes all
        of their fanout arcs at once with array ops, so the cost is one numpy
        pass per logic level instead of one Python iteration per pin.
        """
        level = np.zeros(self.num_pins, dtype=np.int64)
        if not self.arcs:
            return level
        indegree = np.bincount(self.arc_to, minlength=self.num_pins).astype(np.int64)
        frontier = np.nonzero(indegree == 0)[0]
        processed = int(frontier.size)
        while frontier.size:
            out_arcs, _ = csr_gather(self.fanout_offsets, self.fanout_arcs, frontier)
            if out_arcs.size == 0:
                break
            targets = self.arc_to[out_arcs]
            np.maximum.at(level, targets, level[self.arc_from[out_arcs]] + 1)
            decrement = np.bincount(targets, minlength=self.num_pins)
            indegree -= decrement
            frontier = np.nonzero((decrement > 0) & (indegree == 0))[0]
            processed += int(frontier.size)
        if processed != self.num_pins:
            remaining = int(self.num_pins - processed)
            raise ValueError(
                f"Timing graph contains combinational loops ({remaining} pins unresolved)"
            )
        return level

    def _find_startpoints(self) -> List[int]:
        """Primary-input driver pins and flip-flop clock pins."""
        points: List[int] = []
        for pin in self.design.pins:
            if pin.instance.is_port and pin.is_driver:
                points.append(pin.index)
            elif pin.lib_pin.is_clock and pin.instance.is_sequential:
                points.append(pin.index)
        return points

    def _find_endpoints(self) -> List[int]:
        """Primary-output pins and flip-flop data (D) pins."""
        points: List[int] = []
        for pin in self.design.pins:
            if pin.instance.is_port and not pin.is_driver:
                points.append(pin.index)
            elif (
                pin.instance.is_sequential
                and pin.lib_pin.is_input
                and not pin.lib_pin.is_clock
            ):
                points.append(pin.index)
        return points

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_arcs(self) -> int:
        return len(self.arcs)

    @property
    def num_net_arcs(self) -> int:
        return int(np.sum(self.arc_kind == int(ArcKind.NET))) if self.arcs else 0

    @property
    def num_cell_arcs(self) -> int:
        return int(np.sum(self.arc_kind == int(ArcKind.CELL))) if self.arcs else 0

    def pin_name(self, pin_index: int) -> str:
        return self.design.pins[pin_index].full_name

    def describe(self) -> Dict[str, int]:
        """Summary statistics used in logs and tests."""
        return {
            "num_pins": self.num_pins,
            "num_arcs": self.num_arcs,
            "num_net_arcs": self.num_net_arcs,
            "num_cell_arcs": self.num_cell_arcs,
            "num_startpoints": len(self.startpoints),
            "num_endpoints": len(self.endpoints),
            "num_clock_nets": len(self.clock_nets),
            "max_level": self.max_level,
        }
